// Lint fixture: tier-2 mutable chunk access outside a kernel-side module.
// Never compiled; `xlint --self-test` asserts the scanner flags it.
pub fn poke(buffer: &Buffer) {
    let chunk = unsafe { buffer.chunk_mut(0, 4) };
    chunk[0] = 1;
}
