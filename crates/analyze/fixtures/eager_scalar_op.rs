// Lint fixture: a public core operator that materialises a host scalar
// eagerly instead of returning a device handle.
// Never compiled; `xlint --self-test` asserts the scanner flags it.
pub fn sum_now(ctx: &OcelotContext, values: &DevColumn<f32>) -> Result<f32> {
    let scalar = sum_f32(ctx, values)?;
    scalar.get(ctx)
}
