// Lint fixture: a stats surface that never feeds the unified metrics
// registry. Never compiled; `xlint --self-test` asserts the scanner
// flags it.
pub struct OrphanStats {
    pub events: u64,
    pub drops: u64,
}
