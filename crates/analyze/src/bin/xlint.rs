//! `xlint` — the repo contract lint (rule table in the `ocelot_analyze`
//! crate docs). Runs in CI next to clippy.
//!
//! ```text
//! xlint [ROOT]                 scan the workspace (default: .)
//! xlint --self-test            assert every fixture trips its rule
//! xlint --file AS_PATH FILE    scan one file under a claimed repo path
//! ```
//!
//! Exit code 0 means clean (or, under `--self-test`, that every fixture
//! failed as designed); 1 means findings (or a fixture that no longer
//! trips its rule).

use ocelot_analyze::lint::{self, scan_source};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn self_test() -> ExitCode {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut ok = true;
    for (fixture, claimed_path, rule) in lint::FIXTURES {
        let content = match std::fs::read_to_string(fixtures.join(fixture)) {
            Ok(content) => content,
            Err(error) => {
                eprintln!("xlint: cannot read fixture {fixture}: {error}");
                ok = false;
                continue;
            }
        };
        let findings = scan_source(claimed_path, &content);
        if findings.iter().any(|finding| finding.rule == *rule) {
            println!("fixture {fixture}: trips {rule} as designed");
        } else {
            eprintln!("xlint: fixture {fixture} no longer trips {rule}: {findings:?}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let findings = match args.first().map(String::as_str) {
        Some("--self-test") => return self_test(),
        Some("--file") => {
            let [_, claimed_path, file] = &args[..] else {
                eprintln!("usage: xlint --file AS_PATH FILE");
                return ExitCode::FAILURE;
            };
            match std::fs::read_to_string(file) {
                Ok(content) => scan_source(claimed_path, &content),
                Err(error) => {
                    eprintln!("xlint: cannot read {file}: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
        root => {
            let root = PathBuf::from(root.unwrap_or("."));
            match lint::scan_workspace(&root) {
                Ok(findings) => findings,
                Err(error) => {
                    eprintln!("xlint: workspace scan failed: {error}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("xlint: clean");
        ExitCode::SUCCESS
    } else {
        println!("xlint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
