//! Static analysis over the Ocelot workspace: one roof for the three
//! passes that check invariants *before* (or without) running anything.
//!
//! # The three passes and what each proves
//!
//! | Pass | Lives in | Runs | Proves |
//! |------|----------|------|--------|
//! | **Plan verifier** | `ocelot_engine::analyze` (re-exported here) | before execution, pure | register definition discipline (def-before-use, single assignment), operator signatures (arity + column/scalar/grouping kinds), last-use/liveness consistency, and a conservative static flush bound — including the paper's Q6 one-flush property |
//! | **Race detector** | `ocelot_kernel::race` (types re-exported here) | at `Queue::flush` when armed | declared tier-2 mutable ranges of event-unordered kernels are pairwise disjoint, writers are ordered before readers, and every bitmap producer leaves its tail-word padding zeroed |
//! | **Contract lint** | [`lint`] (the `xlint` binary) | in CI, over the source tree | the repo-wide source contracts of the table below |
//!
//! # Diagnostic taxonomy
//!
//! All three passes share the same discipline: findings are **typed values
//! that render** (`Display`), never panics and never prose-only logs.
//!
//! * [`PlanDiagnostic`] — one verifier finding, anchored to a node index.
//! * [`RaceDiagnostic`] — one detector finding, anchored to buffer,
//!   event pair and declared ranges.
//! * [`lint::LintDiagnostic`] — one lint finding, anchored to
//!   `path:line` and a stable rule id.
//!
//! # The source contracts `xlint` enforces
//!
//! | Rule id | Contract |
//! |---------|----------|
//! | `chunk-mut-outside-kernel` | `Buffer::chunk_mut` / `Bitmap::words_mut` (unchecked tier-2 mutable aliasing) appear only in kernel-side modules: `crates/kernel/src`, `crates/core/src/ops`, `crates/core/src/primitives` |
//! | `eager-host-scalar` | no public free-function operator in `crates/core/src/{ops,primitives}` returns a host scalar eagerly — operators return device handles (`DevColumn`, `DevScalar`, …) and the *caller* picks the sync point |
//! | `stats-without-metrics` | every file defining a `pub struct *Stats` also registers it with the unified metrics registry (`register_metrics`) |
//! | `registry-dependency` | every manifest dependency is `path = …` or `workspace = true` — the build environment has no crates.io access, so a version requirement can never resolve |
//!
//! A finding is suppressed by `// xlint:allow(<rule-id>)` on the same or
//! the preceding line (anywhere in the file for the file-level
//! `stats-without-metrics`); suppressions are deliberate, greppable
//! escape hatches.
//!
//! # Soundness caveats
//!
//! * The **race detector** checks *declared* access sets: a kernel
//!   without [`KernelAccesses`] is observed but not checked, and a wrong
//!   declaration produces wrong verdicts. Tier-1 atomic-cell traffic is
//!   exempt by the conflict rule (cells are device-atomic), which also
//!   exempts the deferred-length counter plumbing between producer and
//!   consumer kernels — a real protocol, but not a data race in this
//!   model.
//! * The **flush bound** models effective kernel-batch flushes on a
//!   unified-memory device; a simulated discrete device may add one
//!   transfer-only flush per `result` node, and host-resolving operators
//!   (joins, grouping, sorts, OID union) make the bound data-dependent
//!   rather than constant.
//! * The **lint** is a line scanner, not a parser: it sees through
//!   neither macros nor `include!`, and multi-line function signatures
//!   are joined textually. It trades completeness for zero dependencies
//!   and sub-second CI time.

pub mod lint;

pub use lint::{scan_manifest, scan_source, scan_workspace, LintDiagnostic};
pub use ocelot_engine::analyze::{verify, FlushBound, PlanDiagnostic, VerifyReport};
pub use ocelot_kernel::{
    AccessMode, AccessTier, BitmapClaim, BufferAccess, KernelAccesses, RaceDetector,
    RaceDiagnostic, RaceStats,
};
