//! The repo contract lint engine behind the `xlint` binary (rule table
//! and suppression syntax in the crate docs).
//!
//! Deliberately a line scanner over `std` only: no syn, no regex crate,
//! no filesystem watcher. Each rule is a pure function from
//! (repo-relative path, file content) to findings, so the fixture tests
//! and the binary share one code path.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One lint finding: where, which rule, and what the line did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line the finding anchors to.
    pub line: usize,
    /// Stable rule id (the `xlint:allow` key).
    pub rule: &'static str,
    /// Human-readable statement of the violation.
    pub message: String,
}

impl fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Directories whose modules may use the unchecked tier-2 mutable chunk
/// APIs (the kernel side of the ownership contract).
const KERNEL_SIDE: &[&str] =
    &["crates/kernel/src", "crates/core/src/ops", "crates/core/src/primitives"];

/// Return types that count as eagerly-materialised host scalars for the
/// `eager-host-scalar` rule.
const HOST_SCALARS: &[&str] = &["f32", "f64", "i32", "i64", "u32", "u64", "usize", "bool"];

fn has_allow(lines: &[&str], index: usize, rule: &str) -> bool {
    let marker = format!("xlint:allow({rule})");
    lines[index].contains(&marker)
        || (index > 0
            && lines[index - 1].trim_start().starts_with("//")
            && lines[index - 1].contains(&marker))
}

fn normalized(path: &str) -> String {
    path.replace('\\', "/")
}

/// Scans one Rust source file. `rel_path` is the repo-relative path — the
/// kernel-side allowance and the core-operator scope are path predicates,
/// so fixtures pass a claimed path alongside fixture content.
pub fn scan_source(rel_path: &str, content: &str) -> Vec<LintDiagnostic> {
    let path = normalized(rel_path);
    let lines: Vec<&str> = content.lines().collect();
    let mut findings = Vec::new();

    let kernel_side = KERNEL_SIDE.iter().any(|prefix| path.starts_with(prefix));
    let core_operator_module =
        path.starts_with("crates/core/src/ops") || path.starts_with("crates/core/src/primitives");

    for (index, line) in lines.iter().enumerate() {
        let code = line.split("//").next().unwrap_or(line);

        if !kernel_side
            // xlint:allow(chunk-mut-outside-kernel) — the needles themselves.
            && (code.contains(".chunk_mut(") || code.contains(".words_mut("))
            && !has_allow(&lines, index, "chunk-mut-outside-kernel")
        {
            findings.push(LintDiagnostic {
                path: path.clone(),
                line: index + 1,
                rule: "chunk-mut-outside-kernel",
                message: "unchecked tier-2 mutable chunk access outside a kernel-side module \
                          (allowed: crates/kernel/src, crates/core/src/{ops,primitives})"
                    .to_string(),
            });
        }

        // Public free-function operators returning host scalars: join the
        // signature until its body opens, then inspect the return type.
        if core_operator_module && line.starts_with("pub fn") {
            let mut signature = String::new();
            for continuation in &lines[index..] {
                let code = continuation.split("//").next().unwrap_or(continuation);
                signature.push_str(code.trim());
                signature.push(' ');
                if code.contains('{') || code.contains(';') {
                    break;
                }
            }
            let returns = signature
                .split("->")
                .nth(1)
                .map(|r| r.trim().trim_start_matches("Result<").trim_start_matches("Option<"));
            let eager = returns.is_some_and(|r| {
                HOST_SCALARS.iter().any(|scalar| {
                    r == *scalar
                        || r.starts_with(&format!("{scalar} "))
                        || r.starts_with(&format!("{scalar}>"))
                        || r.starts_with(&format!("{scalar},"))
                        || r.starts_with(&format!("{scalar}{{"))
                })
            });
            if eager && !has_allow(&lines, index, "eager-host-scalar") {
                findings.push(LintDiagnostic {
                    path: path.clone(),
                    line: index + 1,
                    rule: "eager-host-scalar",
                    message: "public core operator returns a host scalar eagerly — return a \
                              device handle and let the caller pick the sync point"
                        .to_string(),
                });
            }
        }
    }

    // File-level: a `pub struct *Stats` without metrics registration.
    let defines_stats = lines.iter().position(|line| {
        let code = line.split("//").next().unwrap_or(line);
        code.trim_start()
            .strip_prefix("pub struct ")
            .and_then(|rest| rest.split(|c: char| !c.is_alphanumeric() && c != '_').next())
            .is_some_and(|name| name.ends_with("Stats"))
    });
    if let Some(index) = defines_stats {
        let registered = content.contains("register_metrics");
        let allowed = content.contains("xlint:allow(stats-without-metrics)");
        if !registered && !allowed {
            findings.push(LintDiagnostic {
                path: path.clone(),
                line: index + 1,
                rule: "stats-without-metrics",
                message: "file defines a `*Stats` struct but never calls/implements \
                          `register_metrics` — every stats surface feeds the unified metrics \
                          registry"
                    .to_string(),
            });
        }
    }

    findings
}

/// Scans one `Cargo.toml`: inside dependency sections, every entry must
/// resolve in-repo (`path = …` or `workspace = true`).
pub fn scan_manifest(rel_path: &str, content: &str) -> Vec<LintDiagnostic> {
    let path = normalized(rel_path);
    let mut findings = Vec::new();
    let mut in_dependencies = false;
    for (index, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            let section = trimmed.trim_matches(['[', ']']);
            in_dependencies = section.ends_with("dependencies");
            continue;
        }
        if !in_dependencies || trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((_, spec)) = trimmed.split_once('=') else { continue };
        let resolves_in_repo = spec.contains("path") || spec.contains("workspace");
        if !resolves_in_repo && !trimmed.contains("xlint:allow(registry-dependency)") {
            findings.push(LintDiagnostic {
                path: path.clone(),
                line: index + 1,
                rule: "registry-dependency",
                message: format!(
                    "dependency `{}` is neither `path = …` nor `workspace = true` — the build \
                     environment cannot resolve crates.io requirements",
                    trimmed.split('=').next().unwrap_or(trimmed).trim()
                ),
            });
        }
    }
    findings
}

fn collect_rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never appears under a crate's `src/`, but guard
            // against stray build output anyway.
            if path.file_name().is_some_and(|name| name == "target") {
                continue;
            }
            collect_rust_sources(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Scans the whole workspace under `root`: every `src/` tree of every
/// member (crates, tests, examples, shims) plus every manifest. Fixture
/// directories (`crates/analyze/fixtures`) are excluded — they exist to
/// fail.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<LintDiagnostic>> {
    let mut findings = Vec::new();
    let mut sources = Vec::new();
    for member_dir in ["crates", "shims", "tests", "examples"] {
        let base = root.join(member_dir);
        if !base.is_dir() {
            continue;
        }
        // `tests` and `examples` are themselves crates; `crates`/`shims`
        // hold one crate per subdirectory.
        let members: Vec<PathBuf> = if base.join("Cargo.toml").is_file() {
            vec![base]
        } else {
            fs::read_dir(&base)?.flatten().map(|entry| entry.path()).collect()
        };
        for member in members {
            let manifest = member.join("Cargo.toml");
            if manifest.is_file() {
                let rel = manifest.strip_prefix(root).unwrap_or(&manifest).to_string_lossy();
                findings.extend(scan_manifest(&rel, &fs::read_to_string(&manifest)?));
            }
            collect_rust_sources(&member.join("src"), &mut sources);
        }
    }
    let manifest = root.join("Cargo.toml");
    if manifest.is_file() {
        findings.extend(scan_manifest("Cargo.toml", &fs::read_to_string(&manifest)?));
    }
    for source in sources {
        let rel = source.strip_prefix(root).unwrap_or(&source).to_string_lossy().to_string();
        if rel.starts_with("crates/analyze/fixtures") {
            continue;
        }
        findings.extend(scan_source(&rel, &fs::read_to_string(&source)?));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

/// The fixture suite: (file under `crates/analyze/fixtures/`, path the
/// scanner should pretend it has, rule it must trip). `xlint --self-test`
/// and the unit tests both walk this table.
pub const FIXTURES: &[(&str, &str, &str)] = &[
    ("chunk_mut_in_engine.rs", "crates/engine/src/bad.rs", "chunk-mut-outside-kernel"),
    ("eager_scalar_op.rs", "crates/core/src/ops/bad.rs", "eager-host-scalar"),
    ("stats_no_metrics.rs", "crates/core/src/bad.rs", "stats-without-metrics"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_mut_is_confined_to_kernel_side_modules() {
        // xlint:allow(chunk-mut-outside-kernel) — test payload.
        let body = "let out = unsafe { buffer.chunk_mut(0, 4) };\n";
        assert!(scan_source("crates/kernel/src/queue.rs", body).is_empty());
        assert!(scan_source("crates/core/src/ops/calc.rs", body).is_empty());
        let findings = scan_source("crates/engine/src/session.rs", body);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "chunk-mut-outside-kernel");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn commented_and_allowed_chunk_mut_pass() {
        let commented = "// the executor never calls chunk_mut(...) directly\n";
        assert!(scan_source("crates/engine/src/plan.rs", commented).is_empty());
        let allowed =
            "let out = unsafe { b.chunk_mut(0, 4) }; // xlint:allow(chunk-mut-outside-kernel)\n";
        assert!(scan_source("crates/engine/src/plan.rs", allowed).is_empty());
    }

    #[test]
    fn eager_scalar_operators_are_flagged_in_core_only() {
        let eager = "pub fn sum_now(ctx: &Ctx, col: &DevColumn<f32>) -> Result<f32> {\n";
        let findings = scan_source("crates/core/src/ops/aggregate.rs", eager);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "eager-host-scalar");
        // Same signature outside the operator library is fine (hosts sync
        // wherever they like).
        assert!(scan_source("crates/engine/src/session.rs", eager).is_empty());
        // Methods (indented) are accessors, not operator entry points.
        let accessor = "    pub fn len(&self) -> usize {\n";
        assert!(scan_source("crates/core/src/ops/join.rs", accessor).is_empty());
        // Device-handle returns are the contract.
        let lazy = "pub fn sum_f32(ctx: &Ctx, col: &DevColumn<f32>) -> Result<DevScalar<f32>> {\n";
        assert!(scan_source("crates/core/src/ops/aggregate.rs", lazy).is_empty());
    }

    #[test]
    fn multi_line_signatures_are_joined() {
        let eager = "pub fn resolve_len(\n    ctx: &Ctx,\n    col: &DevColumn<u32>,\n) -> Result<usize> {\n";
        assert_eq!(scan_source("crates/core/src/primitives/bitmap.rs", eager).len(), 1);
    }

    #[test]
    fn stats_structs_must_register_metrics() {
        let missing = "pub struct IdleStats {\n    pub naps: u64,\n}\n";
        let findings = scan_source("crates/core/src/idle.rs", missing);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "stats-without-metrics");
        let registered =
            format!("{missing}impl IdleStats {{ pub fn register_metrics(&self) {{}} }}\n");
        assert!(scan_source("crates/core/src/idle.rs", &registered).is_empty());
    }

    #[test]
    fn manifest_dependencies_must_resolve_in_repo() {
        let manifest = "[package]\nname = \"x\"\n\n[dependencies]\nocelot-core = { workspace = true }\nserde = \"1.0\"\n\n[dev-dependencies]\nlocal = { path = \"../local\" }\n";
        let findings = scan_manifest("crates/x/Cargo.toml", manifest);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "registry-dependency");
        assert!(findings[0].message.contains("serde"));
    }

    #[test]
    fn whole_repo_is_clean() {
        // CI runs the binary; this keeps `cargo test` self-sufficient.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = scan_workspace(&root).expect("workspace scan");
        assert!(
            findings.is_empty(),
            "repo violates its own source contracts:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn fixtures_trip_their_rules() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        for (fixture, claimed_path, rule) in super::FIXTURES {
            let content = fs::read_to_string(root.join(fixture)).expect(fixture);
            let findings = scan_source(claimed_path, &content);
            assert!(
                findings.iter().any(|f| f.rule == *rule),
                "fixture {fixture} should trip {rule}, got {findings:?}"
            );
        }
    }
}
