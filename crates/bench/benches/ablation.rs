fn main() {}
