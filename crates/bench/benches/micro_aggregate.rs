fn main() {}
