fn main() {}
