fn main() {}
