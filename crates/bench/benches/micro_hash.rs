fn main() {}
