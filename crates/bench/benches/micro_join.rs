fn main() {}
