//! Prefix-sum (scan) micro-benchmark: per-element atomic access vs the
//! tier-2 slice path across all three scan phases.
//!
//! Run with `cargo bench --bench micro_scan`. For the consolidated
//! `BENCH_pr1.json` report use the `bench_pr1` binary.

use ocelot_bench::access_path;
use ocelot_bench::harness::Report;

fn main() {
    let mut report = Report::new();
    access_path::bench_scan(&mut report);
}
