//! Selection micro-benchmark (paper Figure 5a/5b axis): per-element atomic
//! access vs the tier-2 slice path, plus the gather used by the fetch join.
//!
//! Run with `cargo bench --bench micro_select`. For the consolidated
//! `BENCH_pr1.json` report use the `bench_pr1` binary.

use ocelot_bench::access_path;
use ocelot_bench::harness::Report;

fn main() {
    let mut report = Report::new();
    access_path::bench_select(&mut report);
    access_path::bench_gather(&mut report);
}
