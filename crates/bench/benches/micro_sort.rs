fn main() {}
