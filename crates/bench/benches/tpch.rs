fn main() {}
