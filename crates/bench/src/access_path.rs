//! Access-path micro-benchmarks: per-element atomic accessors vs the tier-2
//! bulk slice views (PR 1's tentpole).
//!
//! Each benchmark runs the *same logical kernel* two ways on the same
//! device and data:
//!
//! * **atomic** — the pre-PR-1 style: every element access goes through
//!   `Buffer::get_u32` / `Buffer::set_u32` (a bounds-checked relaxed load or
//!   store on an `AtomicU32` cell). These baseline kernels are faithful
//!   replicas of the seed implementations.
//! * **slice** — the shipped operators, whose inner loops stream over
//!   tier-2 slice views obtained once per chunk.
//!
//! Both paths execute through the same lazy queue on the sequential CPU
//! driver, so queue/launch overheads cancel and the measured difference is
//! the access path itself.

use crate::harness::{measure_pair, Report};
use ocelot_core::context::OcelotContext;
use ocelot_core::ops::select;
use ocelot_core::primitives::bitmap::Bitmap;
use ocelot_core::primitives::{gather, prefix_sum};
use ocelot_kernel::{Buffer, Kernel, WorkGroupCtx};
use std::sync::Arc;

/// Elements per streaming benchmark iteration (4 MiB of words: large enough
/// to stream, small enough to stay LLC-resident so the measurement isolates
/// the access path rather than DRAM bandwidth).
pub const STREAM_N: usize = 1 << 20;
/// Gather table size: cache-resident, as in a dimension-table or
/// dictionary-code fetch join (nation keys, shipmode codes, …).
pub const GATHER_TABLE: usize = 1 << 13;
const WARMUP: usize = 3;
const SAMPLES: usize = 15;

// ---- baseline kernels: faithful replicas of the seed's per-element code ----

struct AtomicSelectKernel {
    input: Buffer,
    bitmap: Buffer,
    low: i32,
    high: i32,
    n: usize,
}

impl Kernel for AtomicSelectKernel {
    fn name(&self) -> &str {
        "bench_select_atomic"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let words = Bitmap::words_for(self.n);
        for item in group.items() {
            let (start_word, end_word) = item.chunk_bounds(words);
            for word_idx in start_word..end_word {
                let mut word = 0u32;
                let base = word_idx * 32;
                let limit = (base + 32).min(self.n);
                for row in base..limit {
                    let v = self.input.get_i32(row);
                    if v >= self.low && v <= self.high {
                        word |= 1 << (row - base);
                    }
                }
                self.bitmap.set_u32(word_idx, word);
            }
        }
    }
}

struct AtomicPartialSumKernel {
    input: Buffer,
    partials: Buffer,
    n: usize,
}

impl Kernel for AtomicPartialSumKernel {
    fn name(&self) -> &str {
        "bench_scan_partial_atomic"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            let mut sum: u32 = 0;
            for idx in start..end {
                sum = sum.wrapping_add(self.input.get_u32(idx));
            }
            self.partials.set_u32(item.global_id, sum);
        }
    }
}

struct AtomicScanPartialsKernel {
    partials: Buffer,
    total: Buffer,
    count: usize,
}

impl Kernel for AtomicScanPartialsKernel {
    fn name(&self) -> &str {
        "bench_scan_partials_atomic"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        if group.group_id() != 0 {
            return;
        }
        let mut running: u32 = 0;
        for i in 0..self.count {
            let value = self.partials.get_u32(i);
            self.partials.set_u32(i, running);
            running = running.wrapping_add(value);
        }
        self.total.set_u32(0, running);
    }
}

struct AtomicWritePrefixKernel {
    input: Buffer,
    partials: Buffer,
    output: Buffer,
    n: usize,
}

impl Kernel for AtomicWritePrefixKernel {
    fn name(&self) -> &str {
        "bench_scan_write_atomic"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            let mut running = self.partials.get_u32(item.global_id);
            for idx in start..end {
                let value = self.input.get_u32(idx);
                self.output.set_u32(idx, running);
                running = running.wrapping_add(value);
            }
        }
    }
}

struct AtomicGatherKernel {
    values: Buffer,
    indices: Buffer,
    output: Buffer,
}

impl Kernel for AtomicGatherKernel {
    fn name(&self) -> &str {
        "bench_gather_atomic"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let position = self.indices.get_u32(idx) as usize;
                self.output.set_u32(idx, self.values.get_u32(position));
            }
        }
    }
}

// ---- benchmark drivers ----

fn stream_values(n: usize) -> Vec<i32> {
    (0..n).map(|i| ((i * 37 + 11) % 1000) as i32).collect()
}

/// Selection-bitmap build: atomic per-element accessors vs the shipped
/// slice-path kernel.
pub fn bench_select(report: &mut Report) {
    let ctx = OcelotContext::cpu_sequential();
    let values = stream_values(STREAM_N);
    let col = ctx.upload_i32(&values, "bench_input").unwrap();
    ctx.sync().unwrap();

    let (atomic, slice) = measure_pair(
        "select/atomic",
        "select/slice",
        STREAM_N,
        WARMUP,
        SAMPLES,
        || {
            // Allocates the result bitmap per call, exactly like the operator.
            let bitmap = Bitmap::zeroed(&ctx, STREAM_N).unwrap();
            ctx.queue()
                .enqueue_kernel(
                    Arc::new(AtomicSelectKernel {
                        input: col.buffer.clone(),
                        bitmap: bitmap.buffer.clone(),
                        low: 100,
                        high: 300,
                        n: STREAM_N,
                    }),
                    ctx.launch(STREAM_N),
                    &[],
                )
                .unwrap();
            ctx.sync().unwrap();
            bitmap.buffer.get_u32(0)
        },
        || {
            let bm = select::select_range_i32(&ctx, &col, 100, 300).unwrap();
            ctx.sync().unwrap();
            bm.buffer.get_u32(0)
        },
    );
    report.push(atomic);
    report.push(slice);
    report.speedup("select_slice_over_atomic", "select/slice", "select/atomic");
}

/// Three-phase exclusive scan: atomic per-element accessors vs the shipped
/// slice-path kernels.
pub fn bench_scan(report: &mut Report) {
    let ctx = OcelotContext::cpu_sequential();
    let values: Vec<u32> = (0..STREAM_N).map(|i| (i % 7) as u32).collect();
    let col = ctx.upload_u32(&values, "bench_input").unwrap();
    ctx.sync().unwrap();

    let launch = ctx.launch(STREAM_N);
    let (atomic, slice) = measure_pair(
        "scan/atomic",
        "scan/slice",
        STREAM_N,
        WARMUP,
        SAMPLES,
        || {
            // Allocates partials/total/output per call, exactly like the
            // shipped `exclusive_scan_u32`.
            let partials = ctx.alloc(launch.total_items(), "bench_partials").unwrap();
            let total = ctx.alloc(1, "bench_total").unwrap();
            let output = ctx.alloc(STREAM_N, "bench_output").unwrap();
            let queue = ctx.queue();
            let e1 = queue
                .enqueue_kernel(
                    Arc::new(AtomicPartialSumKernel {
                        input: col.buffer.clone(),
                        partials: partials.clone(),
                        n: STREAM_N,
                    }),
                    launch.clone(),
                    &[],
                )
                .unwrap();
            let e2 = queue
                .enqueue_kernel(
                    Arc::new(AtomicScanPartialsKernel {
                        partials: partials.clone(),
                        total: total.clone(),
                        count: launch.total_items(),
                    }),
                    ctx.launch(launch.total_items()),
                    &[e1],
                )
                .unwrap();
            queue
                .enqueue_kernel(
                    Arc::new(AtomicWritePrefixKernel {
                        input: col.buffer.clone(),
                        partials: partials.clone(),
                        output: output.clone(),
                        n: STREAM_N,
                    }),
                    launch.clone(),
                    &[e2],
                )
                .unwrap();
            ctx.sync().unwrap();
            total.get_u32(0)
        },
        || {
            // The scan is deferred now; `.get()` forces the flush so the
            // measured work matches the baseline body.
            let (out, total) = prefix_sum::exclusive_scan_u32(&ctx, &col).unwrap();
            let _ = out;
            total.get(&ctx).unwrap()
        },
    );
    report.push(atomic);
    report.push(slice);
    report.speedup("scan_slice_over_atomic", "scan/slice", "scan/atomic");
}

/// Dimension-table gather (fetch join core): atomic per-element accessors vs
/// the shipped slice-path kernel.
pub fn bench_gather(report: &mut Report) {
    let ctx = OcelotContext::cpu_sequential();
    let table: Vec<u32> = (0..GATHER_TABLE as u32).map(|i| i * 3).collect();
    let indices: Vec<u32> =
        (0..STREAM_N).map(|i| ((i * 2_654_435_761) % GATHER_TABLE) as u32).collect();
    let values = ctx.upload_u32(&table, "bench_table").unwrap();
    let idx = ctx.upload_u32(&indices, "bench_indices").unwrap();
    ctx.sync().unwrap();

    let (atomic, slice) = measure_pair(
        "gather/atomic",
        "gather/slice",
        STREAM_N,
        WARMUP,
        SAMPLES,
        || {
            // Allocates the output per call, exactly like the shipped gather.
            let output = ctx.alloc(STREAM_N, "bench_output").unwrap();
            ctx.queue()
                .enqueue_kernel(
                    Arc::new(AtomicGatherKernel {
                        values: values.buffer.clone(),
                        indices: idx.buffer.clone(),
                        output: output.clone(),
                    }),
                    ctx.launch(STREAM_N),
                    &[],
                )
                .unwrap();
            ctx.sync().unwrap();
            output.get_u32(0)
        },
        || {
            let out = gather::gather(&ctx, &values, &idx).unwrap();
            ctx.sync().unwrap();
            out.buffer.get_u32(0)
        },
    );
    report.push(atomic);
    report.push(slice);
    report.speedup("gather_slice_over_atomic", "gather/slice", "gather/atomic");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_slice_select_agree() {
        // The benchmark is only meaningful if the two paths compute the same
        // result; check on a small input.
        let ctx = OcelotContext::cpu_sequential();
        let values = stream_values(10_000);
        let col = ctx.upload_i32(&values, "v").unwrap();
        let baseline = Bitmap::zeroed(&ctx, values.len()).unwrap();
        ctx.queue()
            .enqueue_kernel(
                Arc::new(AtomicSelectKernel {
                    input: col.buffer.clone(),
                    bitmap: baseline.buffer.clone(),
                    low: 100,
                    high: 300,
                    n: values.len(),
                }),
                ctx.launch(values.len()),
                &[],
            )
            .unwrap();
        ctx.sync().unwrap();
        let shipped = select::select_range_i32(&ctx, &col, 100, 300).unwrap();
        ctx.sync().unwrap();
        assert_eq!(baseline.buffer.to_vec_u32(), shipped.buffer.to_vec_u32());
    }
}
