//! PR 10 benchmark: what the device-phase race detector costs. Emits the
//! figures behind `BENCH_pr10.json`.
//!
//! The detector's contract mirrors the trace layer's: *not* detecting is
//! near-free. Disarmed (the default, and the state after any `disarm()`),
//! every enqueue and flush pays exactly one relaxed atomic load. Three
//! configurations run the same Q3/Q5/Q10 join stream on identical
//! devices:
//!
//! * `race/baseline` — a session whose detector was never armed.
//! * `race/disarmed` — the detector was armed once and disarmed again
//!   before the measurement (the post-use fast path).
//! * `race/armed` — shadow-state recording plus the per-flush pairwise
//!   analysis stay on for the whole run (reported for context, not
//!   asserted — arming is a debugging posture).
//!
//! The disarmed overhead over baseline is asserted `< 2%` on full runs
//! (reported but unasserted at smoke scale, where single-digit-ms streams
//! are noise-bound).

use crate::harness::{measure, measure_pair, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::{Plan, Session};
use ocelot_tpch::{q10_query, q3_query, q5_query, TpchConfig, TpchDb};
use std::hint::black_box;

fn run_stream(session: &Session<ocelot_engine::OcelotBackend>, db: &TpchDb, plans: &[Plan]) {
    for plan in plans {
        black_box(session.run(plan, db.catalog()).expect("bench plan failed"));
    }
}

/// Runs every experiment into `report`.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let sf = if smoke { 0.002 } else { 0.01 };
    let (warmup, samples) = if smoke { (1, 3) } else { (3, 11) };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 17 });
    let plans: Vec<Plan> = [q3_query(&db), q5_query(&db), q10_query(&db)]
        .iter()
        .map(|q| q.lower(db.catalog()).expect("lowering failed"))
        .collect();
    let elements = db.lineitem_rows() * plans.len();

    // --- disarmed-after-use vs never-armed (the headline, interleaved).
    let baseline = Session::ocelot(&SharedDevice::cpu());
    let disarmed = Session::ocelot(&SharedDevice::cpu());
    disarmed.backend().context().queue().race().arm();
    run_stream(&disarmed, &db, &plans);
    let _ = disarmed.backend().context().queue().race().take_diagnostics();
    disarmed.backend().context().queue().race().disarm();
    // Deep sample pool for the min estimator, as in the PR 9 trace bench:
    // the true delta is a fraction of a percent.
    let (base, off) = measure_pair(
        "race/baseline",
        "race/disarmed",
        elements,
        warmup,
        samples * 4,
        || run_stream(&baseline, &db, &plans),
        || run_stream(&disarmed, &db, &plans),
    );
    let overhead = off.min_ns as f64 / base.min_ns as f64;
    report.push(base);
    report.push(off);
    report.scalar("race/disarmed_overhead", overhead);
    if !smoke {
        assert!(overhead < 1.02, "disarmed detector must cost < 2%: {overhead:.4}x");
    }

    // --- armed run: recording + pairwise analysis, for context. --------
    let armed = Session::ocelot(&SharedDevice::cpu());
    let queue = armed.backend().context().queue();
    queue.race().arm();
    let m = measure("race/armed", elements, warmup, samples, || run_stream(&armed, &db, &plans));
    let stats = queue.race().stats();
    let diagnostics = queue.race().take_diagnostics();
    queue.race().disarm();
    assert!(diagnostics.is_empty(), "the bench stream must be race-free: {diagnostics:?}");
    report.push(m);
    report.speedup("race/armed_overhead", "race/baseline", "race/armed");
    report.scalar("race/kernels_observed", stats.kernels_observed as f64);
    report.scalar("race/kernels_declared", stats.kernels_declared as f64);
    report.scalar("race/pairs_checked", stats.pairs_checked as f64);
}
