//! Emits `BENCH_pr1.json`: the consolidated access-path micro-benchmark
//! report for PR 1 (select, scan and gather kernels, atomic per-element
//! baseline vs tier-2 slice path).
//!
//! Usage: `cargo run --release --bin bench_pr1 [output-path]`

use ocelot_bench::access_path;
use ocelot_bench::harness::Report;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_pr1.json".to_string());
    let mut report = Report::new();
    access_path::bench_select(&mut report);
    access_path::bench_scan(&mut report);
    access_path::bench_gather(&mut report);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
