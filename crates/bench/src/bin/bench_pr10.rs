//! Emits `BENCH_pr10.json`: the PR 10 analysis benchmark — the cost of the
//! device-phase race detector when disarmed and when armed on the
//! Q3/Q5/Q10 join stream.
//!
//! Usage: `cargo run --release --bin bench_pr10 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (few samples, short stream) for
//! CI, still exercising every configuration end to end and writing the
//! report. The `< 2%` disarmed assertion only applies to full runs.

use ocelot_bench::analysis;
use ocelot_bench::harness::Report;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr10.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let mut report = Report::new();
    analysis::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
