//! Emits `BENCH_pr2.json`: the PR 2 chained-pipeline micro-benchmark —
//! the old eager-readback operator API vs the deferred device-value path
//! (`DevScalar<T>` / deferred column lengths, one sync at the final `.get()`).
//!
//! Usage: `cargo run --release --bin bench_pr2 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (small input, few samples) for CI,
//! still exercising both paths end-to-end and writing the report.

use ocelot_bench::deferred;
use ocelot_bench::harness::Report;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr2.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }
    let mut report = Report::new();
    deferred::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
