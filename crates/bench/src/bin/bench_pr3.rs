//! Emits `BENCH_pr3.json`: the PR 3 session/scheduler benchmark —
//! concurrently admitted query sessions vs the run-to-completion serial
//! baseline (modeled GPU timeline), plus pooled-vs-cold session streams on
//! the CPU (wall-clock, cross-context buffer recycling).
//!
//! Usage: `cargo run --release --bin bench_pr3 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (small scale factor, few rounds)
//! for CI, still exercising the scheduler and the shared pool end-to-end
//! and writing the report.

use ocelot_bench::harness::Report;
use ocelot_bench::sessions;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr3.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }
    let mut report = Report::new();
    sessions::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
