//! Emits `BENCH_pr4.json`: the PR 4 memory benchmark — warm-vs-cold
//! device column cache on a Q1/Q3/Q6 session stream (CPU wall-clock and
//! simulated-GPU transfer volume), plus query throughput under shrinking
//! device-memory budgets with the eviction / node-restart counters that
//! explain the degradation.
//!
//! Usage: `cargo run --release --bin bench_pr4 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (small scale factor, few
//! samples) for CI, still exercising the cache and the budgeted streams
//! end-to-end and writing the report.

use ocelot_bench::harness::Report;
use ocelot_bench::pressure;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr4.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            path = arg;
        }
    }
    let mut report = Report::new();
    pressure::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
