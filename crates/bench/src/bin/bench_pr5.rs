//! Emits `BENCH_pr5.json`: the PR 5 query-algebra benchmark — optimized vs
//! naive lowering (predicate pushdown + selectivity ordering + projection
//! pruning ablated) on the Q3/Q5/Q10 join stream, and the execution-parity
//! overhead of DSL-lowered plans vs their hand-built oracles.
//!
//! Usage: `cargo run --release --bin bench_pr5 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (small scale factor, few
//! samples) for CI, still lowering and executing both plan variants end to
//! end and writing the report.

use ocelot_bench::harness::Report;
use ocelot_bench::query_dsl;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr5.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let mut report = Report::new();
    query_dsl::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
