//! Emits `BENCH_pr6.json`: the PR 6 fault-tolerance benchmark — the
//! fault-free overhead of an armed (zero-rate) fault plan on the Q3/Q5/Q10
//! stream, and throughput under sustained 1%/5% transient-fault rates with
//! the slowdown attributed to retries, backoff sleeps and quarantines.
//!
//! Usage: `cargo run --release --bin bench_pr6 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (small scale factor, few
//! samples) for CI, still exercising both experiments end to end and
//! writing the report.

use ocelot_bench::fault_tolerance;
use ocelot_bench::harness::Report;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr6.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let mut report = Report::new();
    fault_tolerance::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
