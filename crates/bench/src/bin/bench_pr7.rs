//! Emits `BENCH_pr7.json`: the PR 7 serving-layer benchmark — the cold vs
//! cached compile cost of the parameterized Q1/Q3/Q6 shapes, and an
//! open-loop multi-tenant request stream reporting p50/p95/p99 latency and
//! queries-per-second with and without the compiled-plan cache.
//!
//! Usage: `cargo run --release --bin bench_pr7 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (small scale factor, short
//! stream) for CI, still exercising both experiments end to end and
//! writing the report.

use ocelot_bench::harness::Report;
use ocelot_bench::serving;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr7.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let mut report = Report::new();
    serving::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
