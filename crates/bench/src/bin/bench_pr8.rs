//! Emits `BENCH_pr8.json`: the PR 8 out-of-core benchmark — the
//! partitioning overhead of the hybrid hash join at a fitting budget, the
//! restart-vs-spill head-to-head at an overflowing budget, and the PR 4
//! pressured stream rerun with budget-aware lowering (restarts > 0 with
//! blind plans, == 0 with planned spilling).
//!
//! Usage: `cargo run --release --bin bench_pr8 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (few samples, short stream) for
//! CI, still exercising all three experiments end to end and writing the
//! report.

use ocelot_bench::harness::Report;
use ocelot_bench::out_of_core;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr8.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let mut report = Report::new();
    out_of_core::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
