//! Emits `BENCH_pr9.json`: the PR 9 observability benchmark — the cost of
//! the trace layer when disarmed, armed-but-silent and recording on the
//! Q3/Q5/Q10 join stream, plus the EXPLAIN ANALYZE observer effect.
//!
//! Usage: `cargo run --release --bin bench_pr9 [-- --smoke] [output-path]`
//!
//! `--smoke` runs a reduced configuration (few samples, short stream) for
//! CI, still exercising every configuration end to end and writing the
//! report. The `< 2%` armed-but-silent assertion only applies to full
//! runs.

use ocelot_bench::harness::Report;
use ocelot_bench::observability;

fn main() {
    let mut smoke = false;
    let mut path = "BENCH_pr9.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let mut report = Report::new();
    observability::bench_all(&mut report, smoke);
    report.write_json(&path).expect("failed to write benchmark report");
    println!("wrote {path}");
}
