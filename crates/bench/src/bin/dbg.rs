use ocelot_core::ops::{groupby, project, select};
use ocelot_core::OcelotContext;
fn main() {
    for ctx in [OcelotContext::cpu(), OcelotContext::gpu(), OcelotContext::cpu_sequential()] {
        let a: Vec<i32> = (0..2000).map(|i| i % 100).collect();
        let c: Vec<i32> = (0..2000).map(|i| i % 7).collect();
        let ca = ctx.upload_i32(&a, "a").unwrap();
        let cc = ctx.upload_i32(&c, "c").unwrap();
        let bm = select::select_range_i32(&ctx, &ca, 10, 39).unwrap();
        let sel = select::materialize_bitmap(&ctx, &bm).unwrap();
        let c_sel = project::fetch_join(&ctx, &cc, &sel).unwrap();
        let vals = c_sel.read(&ctx).unwrap();
        let distinct: std::collections::HashSet<i32> = vals.iter().copied().collect();
        println!(
            "{:?} sel_len={} c_sel distinct={} flushes={}",
            ctx.device().info().kind,
            sel.len(&ctx).unwrap(),
            distinct.len(),
            ctx.queue().flush_count()
        );
        for hint in [7, 600, 1024] {
            let g = groupby::group_by_hash(&ctx, &c_sel, hint).unwrap();
            println!("   hint={} num_groups={}", hint, g.num_groups);
        }
    }
}
