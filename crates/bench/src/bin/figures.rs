//! Seeds the paper-figure sweep (§5.3): every ported TPC-H query on each
//! of the four evaluated configurations — MS, MP, Ocelot CPU, Ocelot GPU —
//! timed with the harness and attributed per plan node through
//! `Session::explain_analyze` profiles.
//!
//! Usage: `cargo run --release --bin figures [-- --smoke] [output-path]`
//!
//! For every `(query, backend)` cell the report carries the wall-clock
//! measurement (`figures/q{id}/{backend}`) plus two profile-derived
//! scalars: the profiled total in milliseconds and the executed node
//! count. Host backends have no device counters, so their profiles carry
//! time/rows only; the Ocelot configurations additionally attribute
//! kernels, transfers and flushes per node.

use ocelot_bench::harness::{measure, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::{Backend, Plan, Session};
use ocelot_tpch::{
    q10_query, q12_queries, q14_query, q1_query, q3_query, q4_query, q5_query, q6_query, run_query,
    TpchConfig, TpchDb, PORTED_QUERY_IDS,
};
use std::hint::black_box;

/// The DSL plans behind a ported query id (Q12 lowers to two plans).
fn plans(db: &TpchDb, id: u32) -> Vec<Plan> {
    let queries = match id {
        1 => vec![q1_query(db)],
        3 => vec![q3_query(db)],
        4 => vec![q4_query(db)],
        5 => vec![q5_query(db)],
        6 => vec![q6_query(db)],
        10 => vec![q10_query(db)],
        12 => {
            let (all, high) = q12_queries(db);
            vec![all, high]
        }
        14 => vec![q14_query(db)],
        other => panic!("Q{other} is not in PORTED_QUERY_IDS"),
    };
    queries.into_iter().map(|q| q.lower(db.catalog()).expect("ported query lowers")).collect()
}

/// One backend's column of the figure: every ported query measured and
/// profiled on `session`.
fn sweep<B: Backend>(
    report: &mut Report,
    label: &str,
    session: &Session<B>,
    db: &TpchDb,
    warmup: usize,
    samples: usize,
) {
    for id in PORTED_QUERY_IDS {
        let name = format!("figures/q{id}/{label}");
        let m = measure(&name, db.lineitem_rows(), warmup, samples, || {
            black_box(run_query(session, db, id).expect("ported query runs"))
        });
        report.push(m);

        let mut profiled_ns = 0u64;
        let mut nodes = 0usize;
        for plan in plans(db, id) {
            let (_, profile) =
                session.explain_analyze(&plan, db.catalog()).expect("ported query profiles");
            profiled_ns += profile.total_host_ns;
            nodes += profile.nodes.len();
        }
        report.scalar(&format!("figures/q{id}/{label}_profile_ms"), profiled_ns as f64 / 1e6);
        report.scalar(&format!("figures/q{id}/{label}_nodes"), nodes as f64);
    }
}

fn main() {
    let mut smoke = false;
    let mut path = "FIGURES.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else if arg != "--" {
            path = arg;
        }
    }
    let sf = if smoke { 0.002 } else { 0.01 };
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 7) };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 9 });

    let mut report = Report::new();
    sweep(&mut report, "ms", &Session::monet_seq(), &db, warmup, samples);
    sweep(&mut report, "mp", &Session::monet_par(), &db, warmup, samples);
    sweep(&mut report, "ocelot_cpu", &Session::ocelot(&SharedDevice::cpu()), &db, warmup, samples);
    sweep(&mut report, "ocelot_gpu", &Session::ocelot(&SharedDevice::gpu()), &db, warmup, samples);

    report.write_json(&path).expect("failed to write figure report");
    println!("wrote {path}");
}
