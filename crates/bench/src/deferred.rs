//! PR 2 chained-pipeline micro-benchmark: two eager baselines vs the
//! **deferred device-value path** (`DevScalar<T>` / deferred `DevColumn<T>`
//! lengths, one sync at the final `.get()`).
//!
//! All paths run the *same* select→materialise→gather→sum kernel chain on
//! the same device and data; they differ only in synchronisation behaviour:
//!
//! * **eager-flush** — the literal pre-redesign operator API: the queue is
//!   flushed mid-pipeline wherever the old signatures forced it
//!   (`selected_count` → host scalar, `exclusive_scan_u32` → host total,
//!   `sum_f32` → host float), but only one-word totals cross to the host.
//!   The delta against `deferred` isolates the pure flush/round-trip cost.
//! * **eager-readback** — the MonetDB operator-boundary handoff the paper's
//!   lazy-evaluation design argues against: after every operator the host
//!   takes ownership of the *full* intermediate (flush + device→host read
//!   of the whole column). This is the architectural alternative, not the
//!   PR 1 code.
//! * **deferred** — the new API: everything enqueued, one flush at the
//!   final `.get()`, four bytes read back.
//!
//! Two device variants are reported, per the `BENCH_pr1.json` conventions:
//!
//! * `pipeline/*` — wall-clock on the sequential CPU driver, paired
//!   interleaved sampling (machine-load drift cancels).
//! * `pipeline_gpu/*` — *modeled* nanoseconds on the simulated discrete GPU
//!   (the `reported_ns` convention for non-unified devices), where the
//!   readback baseline's full-column PCIe transfers dominate.

use crate::harness::{measure_pair, Measurement, Report};
use ocelot_core::ops::select;
use ocelot_core::primitives::{gather, reduce};
use ocelot_core::OcelotContext;
use std::hint::black_box;

/// Elements per pipeline iteration.
pub const PIPELINE_N: usize = 1 << 20;
const WARMUP: usize = 3;
const SAMPLES: usize = 15;

fn keys(n: usize) -> Vec<i32> {
    (0..n).map(|i| ((i * 37 + 11) % 1000) as i32).collect()
}

fn payload(n: usize) -> Vec<f32> {
    (0..n).map(|i| (i % 97) as f32 * 0.5).collect()
}

/// The deferred path: four chained operators, one flush at `.get()`.
fn run_deferred(
    ctx: &OcelotContext,
    k: &ocelot_core::DevColumn<i32>,
    p: &ocelot_core::DevColumn<f32>,
) -> f32 {
    let bitmap = select::select_range_i32(ctx, k, 100, 300).unwrap();
    let oids = select::materialize_bitmap(ctx, &bitmap).unwrap();
    let fetched = gather::gather(ctx, p, &oids).unwrap();
    let total = reduce::sum_f32(ctx, &fetched).unwrap();
    total.get(ctx).unwrap()
}

/// The flush-only baseline: the pre-redesign API's synchronisation pattern.
/// Mid-pipeline flushes with one-word readbacks — `selected_count` returned
/// a host count, `exclusive_scan_u32` (inside materialise) flushed for its
/// total, and `sum_f32` flushed for the result.
fn run_eager_flush(
    ctx: &OcelotContext,
    k: &ocelot_core::DevColumn<i32>,
    p: &ocelot_core::DevColumn<f32>,
) -> f32 {
    let bitmap = select::select_range_i32(ctx, k, 100, 300).unwrap();
    let count = select::selected_count(ctx, &bitmap).unwrap().get(ctx).unwrap();
    black_box(count);
    let oids = select::materialize_bitmap(ctx, &bitmap).unwrap();
    // Old scan: flush + host-resolved total (one word).
    black_box(oids.len(ctx).unwrap());
    let fetched = gather::gather(ctx, p, &oids).unwrap();
    let total = reduce::sum_f32(ctx, &fetched).unwrap();
    total.get(ctx).unwrap()
}

/// The readback baseline: the MonetDB operator-boundary handoff — after
/// every operator the host takes ownership of the full intermediate (a
/// flush plus a device→host read of the whole column). This is the
/// architecture the lazy design displaces, and the reference point for the
/// headline `pipeline*_deferred_over_eager_readback` ratio.
fn run_eager_readback(
    ctx: &OcelotContext,
    k: &ocelot_core::DevColumn<i32>,
    p: &ocelot_core::DevColumn<f32>,
) -> f32 {
    let bitmap = select::select_range_i32(ctx, k, 100, 300).unwrap();
    let count = select::selected_count(ctx, &bitmap).unwrap().get(ctx).unwrap();
    black_box(count);
    let oids = select::materialize_bitmap(ctx, &bitmap).unwrap();
    black_box(oids.read(ctx).unwrap());
    let fetched = gather::gather(ctx, p, &oids).unwrap();
    black_box(fetched.read(ctx).unwrap());
    let total = reduce::sum_f32(ctx, &fetched).unwrap();
    total.get(ctx).unwrap()
}

/// Wall-clock comparison on the sequential CPU driver (paired interleaved
/// sampling, `BENCH_pr1.json` style). The deferred path is interleaved with
/// each baseline so both ratios are drift-compensated.
pub fn bench_pipeline_cpu(report: &mut Report, n: usize, warmup: usize, samples: usize) {
    let ctx = OcelotContext::cpu_sequential();
    let k = ctx.upload_i32(&keys(n), "bench_keys").unwrap();
    let p = ctx.upload_f32(&payload(n), "bench_payload").unwrap();
    ctx.sync().unwrap();

    let (eager_flush, deferred) = measure_pair(
        "pipeline/eager-flush",
        "pipeline/deferred",
        n,
        warmup,
        samples,
        || run_eager_flush(&ctx, &k, &p),
        || run_deferred(&ctx, &k, &p),
    );
    report.push(eager_flush);
    report.push(deferred);
    report.speedup(
        "pipeline_deferred_over_eager_flush",
        "pipeline/deferred",
        "pipeline/eager-flush",
    );

    let (eager_readback, deferred2) = measure_pair(
        "pipeline/eager-readback",
        "pipeline/deferred#2",
        n,
        warmup,
        samples,
        || run_eager_readback(&ctx, &k, &p),
        || run_deferred(&ctx, &k, &p),
    );
    report.push(eager_readback);
    report.push(deferred2);
    report.speedup(
        "pipeline_deferred_over_eager_readback",
        "pipeline/deferred#2",
        "pipeline/eager-readback",
    );
}

/// Modeled-time comparison on the simulated discrete GPU: the deferred path
/// reads four bytes back; the flush baseline a handful of words; the
/// readback baseline every intermediate over the modeled PCIe link.
pub fn bench_pipeline_gpu_modeled(report: &mut Report, n: usize) {
    let ctx = OcelotContext::gpu();
    let k = ctx.upload_i32(&keys(n), "bench_keys").unwrap();
    let p = ctx.upload_f32(&payload(n), "bench_payload").unwrap();
    ctx.sync().unwrap();

    let modeled = |name: &str, body: &dyn Fn() -> f32| {
        // One warm-up (buffer pools settle), then one measured run — the
        // cost model is deterministic, so a single sample is exact.
        black_box(body());
        let before = ctx.queue().total_stats().modeled_ns;
        black_box(body());
        let ns = ctx.queue().total_stats().modeled_ns - before;
        Measurement {
            name: name.to_string(),
            elements: n,
            min_ns: ns.max(1),
            median_ns: ns.max(1),
            meps: n as f64 / (ns.max(1) as f64 / 1e9) / 1e6,
        }
    };
    let eager_flush = modeled("pipeline_gpu/eager-flush", &|| run_eager_flush(&ctx, &k, &p));
    let eager_readback =
        modeled("pipeline_gpu/eager-readback", &|| run_eager_readback(&ctx, &k, &p));
    let deferred = modeled("pipeline_gpu/deferred", &|| run_deferred(&ctx, &k, &p));
    report.push(eager_flush);
    report.push(eager_readback);
    report.push(deferred);
    report.speedup(
        "pipeline_gpu_deferred_over_eager_flush",
        "pipeline_gpu/deferred",
        "pipeline_gpu/eager-flush",
    );
    report.speedup(
        "pipeline_gpu_deferred_over_eager_readback",
        "pipeline_gpu/deferred",
        "pipeline_gpu/eager-readback",
    );
}

/// Full PR 2 report.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let (n, warmup, samples) = if smoke { (1 << 14, 1, 3) } else { (PIPELINE_N, WARMUP, SAMPLES) };
    bench_pipeline_cpu(report, n, warmup, samples);
    bench_pipeline_gpu_modeled(report, n);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paths_agree() {
        let ctx = OcelotContext::cpu_sequential();
        let n = 10_000;
        let k = ctx.upload_i32(&keys(n), "k").unwrap();
        let p = ctx.upload_f32(&payload(n), "p").unwrap();
        let deferred = run_deferred(&ctx, &k, &p);
        assert_eq!(run_eager_flush(&ctx, &k, &p).to_bits(), deferred.to_bits());
        assert_eq!(run_eager_readback(&ctx, &k, &p).to_bits(), deferred.to_bits());
    }
}
