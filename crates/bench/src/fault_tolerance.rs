//! PR 6 benchmark: the cost of the fault-injection layer and the recovery
//! protocol. Emits the figures behind `BENCH_pr6.json`.
//!
//! Two experiments over the Q3/Q5/Q10 DSL-lowered join stream:
//!
//! * **Fault-free overhead** (`overhead/*`) — the stream on a bare device
//!   vs the same stream on a device with an *armed but silent* fault plan
//!   (`FaultPlan::seeded(_, 0.0, 0.0)`: every launch, transfer and
//!   allocation consults the plan and draws from its RNG, no fault ever
//!   fires). The ratio `overhead/armed_over_bare` is the price every
//!   protected deployment pays; the acceptance bar is <2%.
//! * **Throughput under sustained transient rates** (`faulted/*`) — the
//!   stream under 1% and 5% per-operation transient-fault rates, with the
//!   slowdown attributed: retries taken, backoff steps slept, plans
//!   completed vs quarantined (budget exhaustion surfaces as the typed
//!   `PlanError::Faulted`, which the bench counts rather than hides).
//!
//! Plans are lowered once outside the timing loops: this measures
//! execution and recovery, not plan construction.

use crate::harness::{measure, measure_pair, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::{OcelotBackend, Plan, PlanError, Session};
use ocelot_kernel::FaultPlan;
use ocelot_tpch::{q10_query, q3_query, q5_query, TpchConfig, TpchDb};
use std::hint::black_box;

fn lowered_stream(db: &TpchDb) -> Vec<Plan> {
    [q3_query(db), q5_query(db), q10_query(db)]
        .iter()
        .map(|query| query.lower(db.catalog()).expect("lowering failed"))
        .collect()
}

/// Runs the stream, tolerating quarantines (at a 5% rate a node can
/// legitimately exhaust its retry budget). Returns (completed,
/// quarantined); any other error is a bench bug.
fn run_stream(session: &Session<OcelotBackend>, db: &TpchDb, plans: &[Plan]) -> (u64, u64) {
    let mut completed = 0;
    let mut quarantined = 0;
    for plan in plans {
        match session.run(plan, db.catalog()) {
            Ok(values) => {
                black_box(values);
                completed += 1;
            }
            Err(PlanError::Faulted { .. }) => quarantined += 1,
            Err(other) => panic!("bench stream failed with an untyped error: {other}"),
        }
    }
    (completed, quarantined)
}

/// Runs both experiments into `report`.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let sf = if smoke { 0.002 } else { 0.01 };
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 9) };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 5 });
    let rows = db.lineitem_rows();
    let plans = lowered_stream(&db);
    let units = rows * plans.len();

    // ---- fault-free overhead of an armed, zero-rate fault plan ----
    let bare_session = Session::ocelot(&SharedDevice::cpu());
    let armed = SharedDevice::cpu();
    armed.device().install_fault_plan(FaultPlan::seeded(5, 0.0, 0.0));
    let armed_session = Session::ocelot(&armed);
    let (bare, armed) = measure_pair(
        "overhead/bare",
        "overhead/armed_zero_rate",
        units,
        warmup,
        samples,
        || run_stream(&bare_session, &db, &plans),
        || run_stream(&armed_session, &db, &plans),
    );
    // Min-of-samples, as in the PR 5 parity experiment: same work, same
    // code paths, noise only ever adds time.
    let overhead = armed.min_ns as f64 / bare.min_ns as f64;
    report.push(bare);
    report.push(armed);
    report.scalar("overhead/armed_over_bare", overhead);

    // ---- throughput under sustained transient-fault rates ----
    for (label, rate) in [("faulted/rate_1pct", 0.01), ("faulted/rate_5pct", 0.05)] {
        let shared = SharedDevice::cpu();
        shared.device().install_fault_plan(FaultPlan::seeded(11, rate, 0.0));
        let session = Session::ocelot(&shared);
        let mut completed = 0u64;
        let mut quarantined = 0u64;
        let m = measure(label, units, warmup, samples, || {
            let (c, q) = run_stream(&session, &db, &plans);
            completed += c;
            quarantined += q;
        });
        report.push(m);
        report.speedup(&format!("{label}/throughput_vs_bare"), label, "overhead/bare");
        // Attribution: where the lost throughput went (counters aggregate
        // over warm-up and timed runs alike — they attribute, not time).
        let stats = session.recovery_stats();
        report.scalar(&format!("{label}/retries"), stats.retries as f64);
        report.scalar(&format!("{label}/backoff_steps"), stats.backoff_steps as f64);
        report.scalar(&format!("{label}/completed"), completed as f64);
        report.scalar(&format!("{label}/quarantined"), quarantined as f64);
        let faults = shared.device().fault_stats().expect("fault plan installed");
        report.scalar(&format!("{label}/faults_injected"), faults.total() as f64);
    }
}
