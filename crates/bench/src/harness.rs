//! A criterion-free micro-benchmark harness.
//!
//! Each measurement runs a closure over a fixed element count with warm-up
//! iterations, takes the median of several timed samples (robust against
//! scheduler noise), and reports throughput in million elements per second.
//! Reports can be serialised to a JSON file without any external
//! dependencies — the driver scripts consume `BENCH_pr1.json` produced this
//! way.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name, e.g. `select/atomic`.
    pub name: String,
    /// Elements processed per iteration.
    pub elements: usize,
    /// Fastest observed nanoseconds per iteration (the throughput basis:
    /// external noise only ever *adds* time, so the minimum is the most
    /// robust estimate of the code's own cost).
    pub min_ns: u64,
    /// Median nanoseconds per iteration (reported for context).
    pub median_ns: u64,
    /// Throughput in million elements per second, from `min_ns`.
    pub meps: f64,
}

/// Times `body` over `elements` items: `warmup` unmeasured runs, then
/// `samples` timed runs summarised as min/median. `body` must consume its
/// input and produce an observable value so the optimiser cannot elide the
/// work.
pub fn measure<T>(
    name: &str,
    elements: usize,
    warmup: usize,
    samples: usize,
    mut body: impl FnMut() -> T,
) -> Measurement {
    for _ in 0..warmup {
        black_box(body());
    }
    let mut times: Vec<u64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            black_box(body());
            start.elapsed().as_nanos() as u64
        })
        .collect();
    times.sort_unstable();
    let min_ns = times[0].max(1);
    let median_ns = times[times.len() / 2].max(1);
    let meps = elements as f64 / (min_ns as f64 / 1e9) / 1e6;
    Measurement { name: name.to_string(), elements, min_ns, median_ns, meps }
}

/// Times two bodies over the same work with *interleaved* samples
/// (A, B, A, B, …): machine-load drift during the run then shifts both
/// measurements equally instead of biasing whichever ran later. This is the
/// right primitive for head-to-head comparisons like atomic-vs-slice.
pub fn measure_pair<A, B>(
    name_a: &str,
    name_b: &str,
    elements: usize,
    warmup: usize,
    samples: usize,
    mut body_a: impl FnMut() -> A,
    mut body_b: impl FnMut() -> B,
) -> (Measurement, Measurement) {
    for _ in 0..warmup {
        black_box(body_a());
        black_box(body_b());
    }
    let mut times_a: Vec<u64> = Vec::with_capacity(samples);
    let mut times_b: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        black_box(body_a());
        times_a.push(start.elapsed().as_nanos() as u64);
        let start = Instant::now();
        black_box(body_b());
        times_b.push(start.elapsed().as_nanos() as u64);
    }
    let summarise = |name: &str, mut times: Vec<u64>| {
        times.sort_unstable();
        let min_ns = times[0].max(1);
        let median_ns = times[times.len() / 2].max(1);
        let meps = elements as f64 / (min_ns as f64 / 1e9) / 1e6;
        Measurement { name: name.to_string(), elements, min_ns, median_ns, meps }
    };
    (summarise(name_a, times_a), summarise(name_b, times_b))
}

/// A named collection of measurements plus derived speedups.
#[derive(Debug, Default)]
pub struct Report {
    measurements: Vec<Measurement>,
    speedups: Vec<(String, f64)>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Adds a measurement and echoes it to stdout.
    pub fn push(&mut self, m: Measurement) {
        println!(
            "{:<40} {:>12} elems {:>12} ns/iter (min) {:>10.1} Melem/s",
            m.name, m.elements, m.min_ns, m.meps
        );
        self.measurements.push(m);
    }

    /// Records the throughput ratio `numerator / denominator` under `label`.
    /// Panics if either name is unknown.
    pub fn speedup(&mut self, label: &str, numerator: &str, denominator: &str) -> f64 {
        let find = |name: &str| {
            self.measurements
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("no measurement named {name}"))
                .meps
        };
        let ratio = find(numerator) / find(denominator);
        println!("{label:<40} {ratio:>36.2}x");
        self.speedups.push((label.to_string(), ratio));
        ratio
    }

    /// Records an arbitrary labelled scalar (hit counts, modeled makespans)
    /// alongside the ratios — the JSON `speedups` map is a generic
    /// label→value map and drivers read both through it.
    pub fn scalar(&mut self, label: &str, value: f64) {
        println!("{label:<40} {value:>36.3}");
        self.speedups.push((label.to_string(), value));
    }

    /// Serialises the report as a JSON object (no external dependencies).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"measurements\": [\n");
        for (i, m) in self.measurements.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"elements\": {}, \"min_ns\": {}, \"median_ns\": {}, \"melem_per_s\": {:.2}}}{}",
                esc(&m.name),
                m.elements,
                m.min_ns,
                m.median_ns,
                m.meps,
                if i + 1 == self.measurements.len() { "" } else { "," }
            );
        }
        out.push_str("  ],\n  \"speedups\": {\n");
        for (i, (label, ratio)) in self.speedups.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {:.3}{}",
                esc(label),
                ratio,
                if i + 1 == self.speedups.len() { "" } else { "," }
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Merges another report's entries into this one.
    pub fn merge(&mut self, other: Report) {
        self.measurements.extend(other.measurements);
        self.speedups.extend(other.speedups);
    }

    /// Writes the JSON report to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_plausible_throughput() {
        let data: Vec<u32> = (0..10_000).collect();
        let m = measure("sum", data.len(), 1, 3, || data.iter().sum::<u32>());
        assert_eq!(m.elements, 10_000);
        assert!(m.median_ns >= 1);
        assert!(m.meps > 0.0);
    }

    #[test]
    fn report_json_shape() {
        let mut report = Report::new();
        report.push(Measurement {
            name: "a".into(),
            elements: 10,
            min_ns: 100,
            median_ns: 110,
            meps: 100.0,
        });
        report.push(Measurement {
            name: "b".into(),
            elements: 10,
            min_ns: 200,
            median_ns: 220,
            meps: 50.0,
        });
        let ratio = report.speedup("a_over_b", "a", "b");
        assert!((ratio - 2.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"a_over_b\": 2.000"));
        assert!(json.contains("\"melem_per_s\": 100.00"));
    }
}
