//! Shared benchmark utilities.
//!
//! The build environment has no crates.io access, so instead of criterion
//! the benches use [`harness`]: a small timing loop with warm-up, repeated
//! measurement and a machine-readable JSON report.

pub mod access_path;
pub mod analysis;
pub mod deferred;
pub mod fault_tolerance;
pub mod harness;
pub mod observability;
pub mod out_of_core;
pub mod pressure;
pub mod query_dsl;
pub mod serving;
pub mod sessions;
