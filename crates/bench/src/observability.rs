//! PR 9 benchmark: what the observability layer costs when it is off, and
//! what it records when it is on. Emits the figures behind
//! `BENCH_pr9.json`.
//!
//! The trace layer's contract is that *not* observing is near-free: a
//! detached [`ocelot_engine::TraceSink`] handle costs one relaxed atomic
//! load per would-be event, and an attached-but-silent sink (recording
//! disabled) adds only the recording check. Three configurations run the
//! same Q3/Q5/Q10 join stream on identical devices:
//!
//! * `trace/baseline` — no tracer was ever attached.
//! * `trace/detached` — a tracer was attached and detached again before
//!   the measurement (the disarmed fast path).
//! * `trace/armed_silent` — a tracer stays attached for the whole run but
//!   its sink has recording disabled; every emission site reaches the
//!   recording check and stops there.
//!
//! The armed-but-silent overhead over baseline is asserted `< 2%` on full
//! runs (reported but unasserted at smoke scale, where single-digit-ms
//! streams are noise-bound). A fourth, recording run reports the observer
//! effect and the event volume for context.

use crate::harness::{measure, measure_pair, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::{Plan, Session, TraceSink};
use ocelot_tpch::{q10_query, q3_query, q5_query, TpchConfig, TpchDb};
use std::hint::black_box;
use std::sync::Arc;

fn run_stream(session: &Session<ocelot_engine::OcelotBackend>, db: &TpchDb, plans: &[Plan]) {
    for plan in plans {
        black_box(session.run(plan, db.catalog()).expect("bench plan failed"));
    }
}

/// Runs every experiment into `report`.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let sf = if smoke { 0.002 } else { 0.01 };
    let (warmup, samples) = if smoke { (1, 3) } else { (3, 11) };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 13 });
    let plans: Vec<Plan> = [q3_query(&db), q5_query(&db), q10_query(&db)]
        .iter()
        .map(|q| q.lower(db.catalog()).expect("lowering failed"))
        .collect();
    let elements = db.lineitem_rows() * plans.len();

    // --- armed-but-silent vs baseline (the headline, interleaved). -----
    let baseline = Session::ocelot(&SharedDevice::cpu());
    let armed = Session::ocelot(&SharedDevice::cpu());
    let sink = Arc::new(TraceSink::new());
    sink.set_recording(false);
    armed.attach_tracer(&sink);
    // The headline ratio gets extra samples: the true delta is a fraction
    // of a percent, so the min estimator needs a deep pool before its
    // jitter drops safely below the asserted 2% bound.
    let (base, silent) = measure_pair(
        "trace/baseline",
        "trace/armed_silent",
        elements,
        warmup,
        samples * 4,
        || run_stream(&baseline, &db, &plans),
        || run_stream(&armed, &db, &plans),
    );
    let overhead = silent.min_ns as f64 / base.min_ns as f64;
    report.push(base);
    report.push(silent);
    report.scalar("trace/armed_silent_overhead", overhead);
    assert!(sink.is_empty(), "a silent sink must record nothing");
    if !smoke {
        assert!(overhead < 1.02, "armed-but-silent recorder must cost < 2%: {overhead:.4}x");
    }

    // --- detached handle (attached once, then detached). ---------------
    let detached = Session::ocelot(&SharedDevice::cpu());
    detached.attach_tracer(&Arc::new(TraceSink::new()));
    detached.detach_tracer();
    let m =
        measure("trace/detached", elements, warmup, samples, || run_stream(&detached, &db, &plans));
    report.push(m);

    // --- recording run: observer effect + event volume, for context. ---
    sink.set_recording(true);
    let m = measure("trace/recording", elements, warmup, samples, || {
        sink.clear();
        run_stream(&armed, &db, &plans)
    });
    armed.detach_tracer();
    report.push(m);
    report.scalar("trace/events_per_stream", sink.len() as f64);

    // --- explain_analyze: the profiled run against the plain run. ------
    let session = Session::ocelot(&SharedDevice::cpu());
    let profiled = measure("trace/explain_analyze", elements, warmup, samples, || {
        for plan in &plans {
            black_box(session.explain_analyze(plan, db.catalog()).expect("profile failed"));
        }
    });
    report.push(profiled);
    report.speedup("trace/profiling_observer_effect", "trace/baseline", "trace/explain_analyze");
}
