//! PR 8 benchmark: out-of-core execution. Emits the figures behind
//! `BENCH_pr8.json`.
//!
//! Three experiments around the Q3-shaped three-table join at a fixed
//! scale factor (the budgets below are calibrated against its working
//! set, so smoke mode reduces samples, not data):
//!
//! * **Fitting budget** (`fitting/*`) — the in-memory hash-join plan vs
//!   the partitioned hybrid hash-join plan on an *unconstrained* device:
//!   with everything hot and nothing to spill, the pair isolates the pure
//!   partitioning overhead (histogram + scatter passes, per-partition
//!   joins, result merge) the planner accepts when it chooses the
//!   out-of-core path.
//! * **Overflowing budget** (`overflow/*`) — the same two plans under a
//!   device budget smaller than the in-memory join's working set. The
//!   in-memory plan survives through the PR 4 OOM-restart protocol
//!   (`overflow/in_memory_restarts > 0`, work thrown away each fault);
//!   the budget-aware plan spills cold partitions instead
//!   (`overflow/partitioned_restarts == 0`, `overflow/spills > 0`). This
//!   is the acceptance figure: planned spilling replaces reactive
//!   restarts at equal results.
//! * **Pressured stream** (`pressured_stream/*`) — the PR 4 pressure
//!   experiment rerun: a stream of Q3 sessions under the overflow budget,
//!   once with blind lowering (restarts accumulate across the stream) and
//!   once with budget-aware lowering (zero restarts), with queries/sec
//!   for both.

use crate::harness::{measure_pair, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::{OcelotBackend, Plan, RewriteConfig, Session};
use ocelot_tpch::{q3_query, TpchConfig, TpchDb};
use std::hint::black_box;
use std::time::Instant;

/// Device budget for the overflow experiments: below the in-memory Q3
/// join's working set at scale factor 0.01 (the restart protocol must
/// engage), above the partitioned join's bounded transient peak (the
/// planned path must not fault). Same window as the `out_of_core`
/// example.
const OVERFLOW_BUDGET: usize = 2048 * 1024;

/// Runs `plan` in a fresh session on `shared`; returns (restart reclaim
/// passes, spill count) the run needed.
fn run_plan(shared: &SharedDevice, db: &TpchDb, plan: &Plan) -> (u64, u64) {
    let session = Session::ocelot(shared);
    black_box(session.run(plan, db.catalog()).expect("bench query failed"));
    (session.backend().reclaim_count(), session.backend().spill_stats().spills)
}

fn session_stream(shared: &SharedDevice, db: &TpchDb, plan: &Plan, reps: usize) -> (u64, u64) {
    let mut restarts = 0;
    let mut spills = 0;
    for _ in 0..reps {
        let (r, s) = run_plan(shared, db, plan);
        restarts += r;
        spills += s;
    }
    (restarts, spills)
}

fn bench_fitting(report: &mut Report, db: &TpchDb, plans: &Plans, smoke: bool) {
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 9) };
    let shared = SharedDevice::cpu();
    let (in_memory, partitioned) = measure_pair(
        "fitting/in_memory",
        "fitting/partitioned",
        db.lineitem_rows(),
        warmup,
        samples,
        || run_plan(&shared, db, &plans.in_memory),
        || run_plan(&shared, db, &plans.partitioned),
    );
    report.scalar(
        "fitting/partitioned_over_in_memory",
        partitioned.min_ns as f64 / in_memory.min_ns as f64,
    );
    report.push(in_memory);
    report.push(partitioned);
}

fn bench_overflow(report: &mut Report, db: &TpchDb, plans: &Plans, smoke: bool) {
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 9) };
    let in_memory_shared = SharedDevice::cpu().with_memory_budget(OVERFLOW_BUDGET);
    let partitioned_shared = SharedDevice::cpu().with_memory_budget(OVERFLOW_BUDGET);
    let mut in_memory_restarts = 0;
    let mut partitioned_restarts = 0;
    let mut spills = 0;
    let (in_memory, partitioned) = measure_pair(
        "overflow/in_memory",
        "overflow/partitioned",
        db.lineitem_rows(),
        warmup,
        samples,
        || {
            let (r, _) = run_plan(&in_memory_shared, db, &plans.in_memory);
            in_memory_restarts += r;
        },
        || {
            let (r, s) = run_plan(&partitioned_shared, db, &plans.partitioned);
            partitioned_restarts += r;
            spills += s;
        },
    );
    report.scalar(
        "overflow/partitioned_over_in_memory_speedup",
        in_memory.min_ns as f64 / partitioned.min_ns as f64,
    );
    report.scalar("overflow/in_memory_restarts", in_memory_restarts as f64);
    report.scalar("overflow/partitioned_restarts", partitioned_restarts as f64);
    report.scalar("overflow/spills", spills as f64);
    report.push(in_memory);
    report.push(partitioned);
}

fn bench_pressured_stream(report: &mut Report, db: &TpchDb, plans: &Plans, smoke: bool) {
    let reps = if smoke { 3 } else { 12 };
    for (label, plan) in [("blind", &plans.in_memory), ("budget_aware", &plans.partitioned)] {
        let shared = SharedDevice::cpu().with_memory_budget(OVERFLOW_BUDGET);
        let started = Instant::now();
        let (restarts, spills) = session_stream(&shared, db, plan, reps);
        let elapsed = started.elapsed().as_secs_f64();
        report.scalar(
            &format!("pressured_stream/{label}/queries_per_sec"),
            reps as f64 / elapsed.max(1e-9),
        );
        report.scalar(&format!("pressured_stream/{label}/restarts"), restarts as f64);
        report.scalar(&format!("pressured_stream/{label}/spills"), spills as f64);
    }
}

struct Plans {
    in_memory: Plan,
    partitioned: Plan,
}

/// Runs all three experiments into `report`.
pub fn bench_all(report: &mut Report, smoke: bool) {
    // Fixed scale factor: OVERFLOW_BUDGET is calibrated against this
    // working set; smoke mode reduces samples only.
    let db = TpchDb::generate(TpchConfig { scale_factor: 0.01, seed: 31 });
    let catalog = db.catalog();
    let plans = Plans {
        in_memory: q3_query(&db)
            .lower_with(catalog, &RewriteConfig::optimized())
            .expect("lowering failed"),
        partitioned: q3_query(&db)
            .lower_with(catalog, &RewriteConfig::optimized().with_device_budget(OVERFLOW_BUDGET))
            .expect("lowering failed"),
    };
    // Cross-check once, outside the timing loops: both plans agree.
    let reference = Session::<OcelotBackend>::ocelot(&SharedDevice::cpu());
    let expected = reference.run(&plans.in_memory, catalog).expect("reference run failed");
    let got = reference.run(&plans.partitioned, catalog).expect("partitioned run failed");
    assert_eq!(got, expected, "partitioned plan must be reference-equal");

    bench_fitting(report, &db, &plans, smoke);
    bench_overflow(report, &db, &plans, smoke);
    bench_pressured_stream(report, &db, &plans, smoke);
}
