//! PR 4 memory benchmark: the device column cache and behavior under
//! shrinking device-memory budgets. Emits the figures behind
//! `BENCH_pr4.json`.
//!
//! Three experiments:
//!
//! * **Warm vs cold column cache, CPU wall-clock** (`cache_cpu/*`) — the
//!   same Q1/Q3/Q6 session stream on one shared device, once binding base
//!   columns from the warm device-resident cache and once with the cache
//!   evicted before every query (pool kept warm in both, so the delta is
//!   the cache alone: per-bind staging, copying and allocation of every
//!   base column). Paired interleaved sampling.
//! * **Warm vs cold transfer volume, simulated GPU** (`cache_gpu/*`) — the
//!   same stream on the discrete device, reported as host→device bytes
//!   and modeled nanoseconds: the cold stream pays PCIe for every bind,
//!   the warm stream uploads nothing.
//! * **Shrinking budgets** (`budget/*`) — the plan-query stream under
//!   device budgets from unbounded down to ~2/3 of the working set:
//!   wall-clock throughput plus the eviction / node-restart counters that
//!   show *why* it slows down. The stream completes at every budget — the
//!   OOM-restart protocol's graceful-degradation claim.

use crate::harness::{measure_pair, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::Session;
use ocelot_tpch::{run_query, TpchConfig, TpchDb};
use std::hint::black_box;
use std::time::Instant;

/// Runs every query of `stream` in its own session; returns the number of
/// OOM-restart reclaim passes the stream needed.
fn run_stream(shared: &SharedDevice, db: &TpchDb, stream: &[u32], evict_first: bool) -> u64 {
    let mut reclaims = 0;
    for &query in stream {
        if evict_first {
            shared.cache().evict_unpinned();
        }
        let session = Session::ocelot(shared);
        black_box(run_query(&session, db, query).expect("bench query failed"));
        reclaims += session.backend().reclaim_count();
    }
    reclaims
}

/// Total host→device bytes and modeled nanoseconds of one stream, summed
/// over its per-session queues.
fn stream_transfers(shared: &SharedDevice, db: &TpchDb, stream: &[u32]) -> (u64, u64) {
    let mut bytes = 0;
    let mut modeled = 0;
    for &query in stream {
        let session = Session::ocelot(shared);
        black_box(run_query(&session, db, query).expect("bench query failed"));
        let stats = session.backend().context().queue().total_stats();
        bytes += stats.bytes_to_device;
        modeled += stats.modeled_ns;
    }
    (bytes, modeled)
}

fn bench_cache_cpu(report: &mut Report, db: &TpchDb, smoke: bool) {
    let stream = [1u32, 3, 6, 6, 3, 1, 6, 3, 6];
    let elements = db.lineitem_rows() * stream.len();
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 7) };
    let shared = SharedDevice::cpu();
    run_stream(&shared, db, &stream, false); // page in + warm the pool
    let (warm, cold) = measure_pair(
        "cache_cpu/warm",
        "cache_cpu/cold",
        elements,
        warmup,
        samples,
        || run_stream(&shared, db, &stream, false),
        || run_stream(&shared, db, &stream, true),
    );
    report.scalar("cache_cpu/warm_over_cold_speedup", cold.min_ns as f64 / warm.min_ns as f64);
    report.push(warm);
    report.push(cold);
}

fn bench_cache_gpu(report: &mut Report, db: &TpchDb) {
    let stream = [1u32, 3, 6, 6, 3, 1, 6, 3, 6];
    // Cold: a fresh device, every bind pays PCIe. Warm: the same shared
    // device again, every bind hits the resident cache.
    let shared = SharedDevice::gpu();
    let (cold_bytes, cold_ns) = stream_transfers(&shared, db, &stream);
    let (warm_bytes, warm_ns) = stream_transfers(&shared, db, &stream);
    report.scalar("cache_gpu/cold_bytes_to_device", cold_bytes as f64);
    report.scalar("cache_gpu/warm_bytes_to_device", warm_bytes as f64);
    report.scalar("cache_gpu/warm_over_cold_modeled_speedup", cold_ns as f64 / warm_ns as f64);
}

fn bench_budgets(report: &mut Report, db: &TpchDb, smoke: bool) {
    // Plan-path queries only: the OOM-restart protocol guards PlanRun
    // nodes (Q1 runs on the fluent backend path, outside it).
    let stream = [6u32, 3, 4, 12, 6, 3, 12, 6];
    let payload = db.payload_bytes();
    let reps = if smoke { 1 } else { 3 };
    for (label, budget) in [
        ("unbounded", usize::MAX),
        ("payload", payload),
        ("payload_3_4", payload * 3 / 4),
        ("payload_2_3", payload * 2 / 3),
    ] {
        let shared = if budget == usize::MAX {
            SharedDevice::cpu()
        } else {
            SharedDevice::cpu().with_memory_budget(budget)
        };
        // One untimed pass warms whatever fits, then timed passes.
        run_stream(&shared, db, &stream, false);
        let started = Instant::now();
        let mut restarts = 0;
        for _ in 0..reps {
            restarts += run_stream(&shared, db, &stream, false);
        }
        let elapsed = started.elapsed().as_secs_f64();
        let qps = (stream.len() * reps) as f64 / elapsed.max(1e-9);
        let stats = shared.cache().stats();
        report.scalar(&format!("budget/{label}/queries_per_sec"), qps);
        report.scalar(&format!("budget/{label}/evictions"), stats.evictions as f64);
        report.scalar(&format!("budget/{label}/node_restarts"), restarts as f64);
    }
}

/// Entry point of the `bench_pr4` binary.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let sf = if smoke { 0.002 } else { 0.01 };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 91 });
    report.scalar("config/scale_factor", sf);
    report.scalar("config/payload_bytes", db.payload_bytes() as f64);
    bench_cache_cpu(report, &db, smoke);
    bench_cache_gpu(report, &db);
    bench_budgets(report, &db, smoke);
}
