//! PR 5 benchmark: the logical query algebra's optimizing lowering. Emits
//! the figures behind `BENCH_pr5.json`.
//!
//! Two experiments:
//!
//! * **Optimized vs naive lowering** (`lowering/*`) — the Q3/Q5/Q10 join
//!   stream executed from plans lowered with every rewrite rule on
//!   (predicate pushdown, selectivity ordering, projection pruning) vs the
//!   naive configuration (predicates evaluated where the author wrote them
//!   — above the joins — and every scan column materialised). Same
//!   session, same data; the delta is what the rewrite rules buy.
//! * **DSL vs hand-built parity** (`parity/*`) — the DSL-lowered Q3 plan
//!   vs the hand-built physical oracle plan, executed back to back. The
//!   layer's promise is declarativeness at ~zero execution cost; the
//!   report records the overhead ratio (expected ≈1.0, <2%).
//!
//! Plans are built once outside the timing loops: this measures plan
//! *execution*, not plan construction.

use crate::harness::{measure_pair, Report};
use ocelot_engine::{Plan, RewriteConfig, Session};
use ocelot_tpch::{q10_query, q3_plan, q3_query, q5_query, TpchConfig, TpchDb};
use std::hint::black_box;

fn run_stream(session: &Session<ocelot_engine::OcelotBackend>, db: &TpchDb, plans: &[Plan]) {
    for plan in plans {
        black_box(session.run(plan, db.catalog()).expect("bench plan failed"));
    }
}

/// Runs both experiments into `report`.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let sf = if smoke { 0.002 } else { 0.01 };
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 9) };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 5 });
    let rows = db.lineitem_rows();

    // ---- optimized vs naive lowering on the Q3/Q5/Q10 join stream ----
    let queries = [q3_query(&db), q5_query(&db), q10_query(&db)];
    let optimized: Vec<Plan> =
        queries.iter().map(|q| q.lower(db.catalog()).expect("lowering failed")).collect();
    let naive: Vec<Plan> = queries
        .iter()
        .map(|q| q.lower_with(db.catalog(), &RewriteConfig::naive()).expect("lowering failed"))
        .collect();
    let opt_nodes: usize = optimized.iter().map(|p| p.len()).sum();
    let naive_nodes: usize = naive.iter().map(|p| p.len()).sum();
    report.scalar("lowering/optimized_nodes", opt_nodes as f64);
    report.scalar("lowering/naive_nodes", naive_nodes as f64);

    let session = Session::new(ocelot_engine::OcelotBackend::cpu());
    let (opt, nai) = measure_pair(
        "lowering/optimized",
        "lowering/naive",
        rows * queries.len(),
        warmup,
        samples,
        || run_stream(&session, &db, &optimized),
        || run_stream(&session, &db, &naive),
    );
    report.push(opt);
    report.push(nai);
    report.speedup("lowering/optimized_vs_naive", "lowering/optimized", "lowering/naive");

    // ---- DSL-lowered vs hand-built Q3 (parity overhead) ----
    let dsl_plan = q3_query(&db).lower(db.catalog()).expect("q3 lowers");
    let hand_plan = q3_plan(&db).expect("hand q3 builds");
    let (dsl, hand) = measure_pair(
        "parity/q3_dsl",
        "parity/q3_hand",
        rows,
        warmup,
        samples * 2,
        || black_box(session.run(&dsl_plan, db.catalog()).expect("dsl q3 failed")),
        || black_box(session.run(&hand_plan, db.catalog()).expect("hand q3 failed")),
    );
    // Min-of-samples is the stable estimator for "same work, same code";
    // medians wobble with allocator noise at smoke scale.
    let overhead = dsl.min_ns as f64 / hand.min_ns as f64;
    report.push(dsl);
    report.push(hand);
    report.scalar("parity/q3_dsl_over_hand", overhead);
}
