//! PR 7 benchmark: the serving layer. Emits the figures behind
//! `BENCH_pr7.json`.
//!
//! Two experiments over the parameterized Q1/Q3/Q6 shapes:
//!
//! * **Compile cost, cold vs cached** (`compile/*`) — compiling each
//!   prepared shape through a fresh [`PlanCache`] (a miss: rewrite rules,
//!   column-statistics scans, lowering) vs through a warm one (a hit:
//!   bind + fold + lower against the snapshotted statistics). The
//!   acceptance bar is `pr7_cached_compile_speedup ≥ 5`: amortising the
//!   statistics scans is the point of the cache.
//! * **Open-loop multi-tenant stream** (`pr7_stream_*`) — four tenant
//!   sessions on one shared device receive a round-robin stream of
//!   parameterized Q1/Q3/Q6 requests with rotating bindings. Each request
//!   compiles (cold: a fresh private cache per request; cached: the
//!   device-wide warm cache) and executes; the report carries p50/p95/p99
//!   per-request latency and the stream's queries-per-second, both ways.
//!
//! Data generation happens once outside every timing loop.

use crate::harness::{measure, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::{OcelotBackend, ParamValue, PlanCache, Query, Session};
use ocelot_storage::types::date_to_days;
use ocelot_tpch::{q1_query_p, q3_query_p, q6_query_p, TpchConfig, TpchDb};
use std::hint::black_box;
use std::time::Instant;

/// The served workload: each shape with its rotating per-request binding.
fn shapes(db: &TpchDb) -> Vec<(&'static str, Query)> {
    vec![("q1", q1_query_p(db)), ("q3", q3_query_p(db)), ("q6", q6_query_p(db))]
}

/// The `request`-th binding of shape `name` — literals move every request
/// (the serving pattern the cache amortises), the shape never does.
fn binding(db: &TpchDb, name: &str, request: usize) -> Vec<ParamValue> {
    let year = 1993 + (request % 5) as i32;
    match name {
        "q1" => vec![date_to_days(year, 9, 2).into()],
        "q3" => vec![
            date_to_days(year, 3, 15).into(),
            db.code("customer", "c_mktsegment", "BUILDING").into(),
        ],
        _ => {
            let band_lo = 2 + (request % 5) as i32;
            vec![
                date_to_days(year, 1, 1).into(),
                (date_to_days(year + 1, 1, 1) - 1).into(),
                (band_lo as f32 * 0.01 - 0.001).into(),
                ((band_lo + 2) as f32 * 0.01 + 0.001).into(),
                (20.0 + (request % 10) as f32).into(),
            ]
        }
    }
}

/// `p`-th percentile (0..=100) of `sorted` ascending latencies, in µs.
fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    let index = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[index] as f64 / 1_000.0
}

/// Runs both experiments into `report`.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let sf = if smoke { 0.002 } else { 0.01 };
    let (warmup, samples) = if smoke { (1, 3) } else { (2, 9) };
    let db = TpchDb::generate(TpchConfig { scale_factor: sf, seed: 7 });
    let catalog = db.catalog();
    let rows = db.lineitem_rows();

    // ---- compile cost: a fresh cache per compile vs a warm one ---------
    let mut worst = f64::INFINITY;
    for (name, shape) in &shapes(&db) {
        let params = binding(&db, name, 0);
        let cold = measure(&format!("compile/cold/{name}"), rows, warmup, samples, || {
            black_box(PlanCache::new().plan(shape, &params, catalog).unwrap())
        });
        let warm_cache = PlanCache::new();
        warm_cache.plan(shape, &params, catalog).unwrap(); // seed the entry
        let cached = measure(&format!("compile/cached/{name}"), rows, warmup, samples, || {
            black_box(warm_cache.plan(shape, &params, catalog).unwrap())
        });
        report.push(cold);
        report.push(cached);
        let ratio = report.speedup(
            &format!("pr7_cached_compile_speedup_{name}"),
            &format!("compile/cached/{name}"),
            &format!("compile/cold/{name}"),
        );
        worst = worst.min(ratio);
    }
    // The headline acceptance scalar: the worst shape still clears the bar.
    report.scalar("pr7_cached_compile_speedup", worst);

    // ---- open-loop multi-tenant parameterized stream -------------------
    let requests = if smoke { 48 } else { 240 };
    let shared = SharedDevice::cpu();
    let tenants: Vec<Session<OcelotBackend>> = (0..4).map(|_| Session::ocelot(&shared)).collect();
    let workload = shapes(&db);

    let mut run_stream = |label: &str, cached: bool| {
        let device_cache = PlanCache::on(&shared);
        if cached {
            // Prime every shape so the stream measures steady-state hits.
            for (name, shape) in &workload {
                device_cache.plan(shape, &binding(&db, name, 0), catalog).unwrap();
            }
        }
        let mut latencies: Vec<u64> = Vec::with_capacity(requests);
        let start = Instant::now();
        for request in 0..requests {
            let (name, shape) = &workload[request % workload.len()];
            let session = &tenants[request % tenants.len()];
            let params = binding(&db, name, request);
            let begin = Instant::now();
            let values = if cached {
                device_cache.execute(session, shape, &params, catalog).unwrap()
            } else {
                // Per-request private cache: every request pays the full
                // compile, the open-loop baseline.
                PlanCache::new().execute(session, shape, &params, catalog).unwrap()
            };
            black_box(values);
            latencies.push(begin.elapsed().as_nanos() as u64);
        }
        let elapsed = start.elapsed().as_secs_f64();
        latencies.sort_unstable();
        report.scalar(&format!("pr7_stream_{label}_p50_us"), percentile_us(&latencies, 50.0));
        report.scalar(&format!("pr7_stream_{label}_p95_us"), percentile_us(&latencies, 95.0));
        report.scalar(&format!("pr7_stream_{label}_p99_us"), percentile_us(&latencies, 99.0));
        report.scalar(&format!("pr7_stream_{label}_qps"), requests as f64 / elapsed);
    };
    run_stream("cold", false);
    run_stream("cached", true);
}
