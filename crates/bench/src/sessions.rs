//! PR 3 concurrency benchmark: multi-query sessions through the scheduler
//! vs a run-to-completion serial baseline, plus the cross-context
//! buffer-pool effect. Emits the figures behind `BENCH_pr3.json`.
//!
//! Two experiments:
//!
//! * **Modeled overlap on the discrete GPU** (`sessions_gpu/*`) — the
//!   workload is a Q3-heavy mix of TPC-H Q3 (hash builds, group count and
//!   sort schedule: several *interior* host-resolve points per query — the
//!   overlap opportunities) and Q6 (single tail flush), three Q3 per Q6,
//!   one session per query on a shared simulated GPU. The
//!   scheduler's [`StepTrace`] attributes every node's time to *host*
//!   (enqueue work, plan stepping, result decode — wall-clock minus the
//!   simulation's kernel-execution stand-in) or *device* (modeled kernel +
//!   PCIe nanoseconds). The traces are replayed through a two-resource
//!   timeline (one host, one device; a flush blocks its own query only):
//!   serial admission (`in_flight = 1`) leaves the device idle during every
//!   host segment, concurrent admission overlaps one query's host-resolve
//!   points with other queries' device work — the throughput delta is the
//!   scheduler's contribution, in the same modeled-time convention the
//!   repo's GPU figures already use.
//! * **Wall-clock pooled vs cold session streams on the CPU**
//!   (`sessions_cpu/*`) — the same stream of Q6 sessions on one physical
//!   device, once allocating through the warm shared pool and once through
//!   a fresh empty pool per query (same device, same thread pool — only
//!   the pool differs), paired interleaved sampling. Isolates the
//!   allocation/page-fault savings of cross-context recycling.

use crate::harness::{measure_pair, Measurement, Report};
use ocelot_core::SharedDevice;
use ocelot_engine::scheduler::{DeviceClock, StepTrace};
use ocelot_engine::{OcelotBackend, Plan, QueryJob, Scheduler, Session};
use ocelot_tpch::{q3_plan, q6_plan, TpchConfig, TpchDb};
use std::hint::black_box;

/// Run-to-completion semantics: one query at a time, the host idles during
/// its flushes and the device idles during its host segments, so the
/// makespan is the plain sum of every segment.
fn serial_ns(traces: &[StepTrace]) -> u64 {
    traces.iter().map(|t| t.host_ns + t.device_ns).sum()
}

/// Replays a scheduler trace on a two-resource timeline: one host (executes
/// steps in trace order), one device (executes flush segments in order). A
/// device segment blocks only the query that flushed; the host meanwhile
/// proceeds with other queries' steps — exactly the overlap the scheduler's
/// round-robin admission produces. Returns the makespan in nanoseconds.
fn overlapped_ns(traces: &[StepTrace], jobs: usize) -> u64 {
    let mut host_free = 0u64;
    let mut device_free = 0u64;
    let mut job_ready = vec![0u64; jobs];
    let mut end = 0u64;
    for trace in traces {
        let start = host_free.max(job_ready[trace.job]);
        let host_done = start + trace.host_ns;
        host_free = host_done;
        let job_done = if trace.device_ns > 0 {
            let device_start = host_done.max(device_free);
            device_free = device_start + trace.device_ns;
            device_free
        } else {
            host_done
        };
        job_ready[trace.job] = job_done;
        end = end.max(job_done);
    }
    end
}

fn probe(backend: &OcelotBackend) -> DeviceClock {
    let stats = backend.context().queue().total_stats();
    DeviceClock { kernel_host_ns: stats.host_ns, modeled_ns: stats.modeled_ns }
}

/// One admission run of the query mix: fresh sessions on a fresh shared
/// GPU, all plans admitted with the given cap. Returns the step traces and
/// the shared device (for pool statistics).
fn run_mix(db: &TpchDb, plans: &[&Plan], in_flight: usize) -> (Vec<StepTrace>, SharedDevice) {
    let shared = SharedDevice::gpu();
    let sessions: Vec<Session<OcelotBackend>> =
        plans.iter().map(|_| Session::ocelot(&shared)).collect();
    let jobs: Vec<QueryJob<'_, OcelotBackend>> = plans
        .iter()
        .zip(&sessions)
        .map(|(plan, session)| QueryJob { session, plan, catalog: db.catalog() })
        .collect();
    let (results, traces) = Scheduler::new().with_in_flight(in_flight).run_traced(&jobs, probe);
    for result in &results {
        assert!(result.is_ok(), "benchmark query failed: {result:?}");
    }
    black_box(&results);
    (traces, shared)
}

/// The modeled GPU overlap experiment (see module docs). `num_sessions`
/// queries stream through an admission window of `in_flight` — a window
/// smaller than the stream is what creates the overlap: while an admitted
/// query's flush occupies the device, the host runs enqueue work of its
/// window peers and of freshly admitted successors.
pub fn bench_gpu_overlap(
    report: &mut Report,
    db: &TpchDb,
    num_sessions: usize,
    in_flight: usize,
    rounds: usize,
) {
    let q3 = q3_plan(db).expect("q3 plan");
    let q6 = q6_plan(db).expect("q6 plan");
    let plans: Vec<&Plan> = (0..num_sessions).map(|i| if i % 4 != 3 { &q3 } else { &q6 }).collect();
    let elements = db.lineitem_rows() * num_sessions;

    let mut serial: Vec<u64> = Vec::new();
    let mut concurrent: Vec<u64> = Vec::new();
    let mut cross_hits = 0u64;
    let mut host_share = 0.0;
    for _ in 0..rounds.max(1) {
        let serial_traces = run_mix(db, &plans, 1).0;
        serial.push(serial_ns(&serial_traces));
        let host: u64 = serial_traces.iter().map(|t| t.host_ns).sum();
        host_share = host as f64 / serial.last().copied().unwrap_or(1).max(1) as f64;
        let (traces, shared) = run_mix(db, &plans, in_flight);
        concurrent.push(overlapped_ns(&traces, plans.len()));
        cross_hits = cross_hits.max(shared.pool().stats().cross_context_hits);
        if std::env::var_os("BENCH_PR3_DEBUG").is_some() {
            let h: u64 = traces.iter().map(|t| t.host_ns).sum();
            let d: u64 = traces.iter().map(|t| t.device_ns).sum();
            let sh: u64 = serial_traces.iter().map(|t| t.host_ns).sum();
            let sd: u64 = serial_traces.iter().map(|t| t.device_ns).sum();
            eprintln!(
                "serial H={sh} D={sd} sum={} overlap_model={} | conc H={h} D={d} sum={} overlap={}",
                serial_ns(&serial_traces),
                overlapped_ns(&serial_traces, plans.len()),
                serial_ns(&traces),
                overlapped_ns(&traces, plans.len()),
            );
        }
    }
    serial.sort_unstable();
    concurrent.sort_unstable();
    let to_measurement = |name: &str, times: &[u64]| Measurement {
        name: name.to_string(),
        elements,
        min_ns: times[0].max(1),
        median_ns: times[times.len() / 2].max(1),
        meps: elements as f64 / (times[0].max(1) as f64 / 1e9) / 1e6,
    };
    report.push(to_measurement("sessions_gpu/serial", &serial));
    report.push(to_measurement("sessions_gpu/concurrent", &concurrent));
    report.speedup(
        "sessions_gpu_concurrent_over_serial",
        "sessions_gpu/concurrent",
        "sessions_gpu/serial",
    );
    report.scalar("sessions_gpu/pool_cross_context_hits", cross_hits as f64);
    report.scalar("sessions_gpu/serial_host_time_share", host_share);
}

/// The wall-clock pooled-vs-cold CPU experiment (see module docs).
pub fn bench_cpu_pooling(
    report: &mut Report,
    db: &TpchDb,
    stream_len: usize,
    warmup: usize,
    samples: usize,
) {
    let plan = q6_plan(db).expect("q6 plan");
    let elements = db.lineitem_rows() * stream_len;
    // Both streams run on the SAME physical device (same thread pool, same
    // memory accountant) so the comparison isolates exactly one variable:
    // the pooled server keeps one shared pool warm across the whole
    // stream, while each cold query gets a fresh, empty pool.
    let warm = SharedDevice::cpu();
    let (pooled, cold) = measure_pair(
        "sessions_cpu/pooled-stream",
        "sessions_cpu/cold-stream",
        elements,
        warmup,
        samples,
        || {
            (0..stream_len)
                .map(|_| {
                    let session = Session::ocelot(&warm);
                    session.run(&plan, db.catalog()).unwrap().len()
                })
                .sum::<usize>()
        },
        || {
            (0..stream_len)
                .map(|_| {
                    let cold = SharedDevice::with_device(warm.device().clone());
                    let session = Session::ocelot(&cold);
                    session.run(&plan, db.catalog()).unwrap().len()
                })
                .sum::<usize>()
        },
    );
    report.push(pooled);
    report.push(cold);
    report.speedup(
        "sessions_cpu_pooled_over_cold",
        "sessions_cpu/pooled-stream",
        "sessions_cpu/cold-stream",
    );
    report.scalar(
        "sessions_cpu/pool_cross_context_hits",
        warm.pool().stats().cross_context_hits as f64,
    );
}

/// Runs both experiments at benchmark or smoke scale.
pub fn bench_all(report: &mut Report, smoke: bool) {
    let (scale_factor, num_sessions, in_flight, rounds) =
        if smoke { (0.002, 4, 2, 2) } else { (0.01, 8, 3, 5) };
    let (stream_len, warmup, samples) = if smoke { (3, 1, 3) } else { (4, 2, 9) };
    let db = TpchDb::generate(TpchConfig { scale_factor, seed: 37 });
    bench_gpu_overlap(report, &db, num_sessions, in_flight, rounds);
    bench_cpu_pooling(report, &db, stream_len, warmup, samples);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_model_overlaps_host_and_device() {
        // Two jobs, each one step of 10 host + 100 device. Run to
        // completion: 220 — nothing overlaps. Concurrently admitted, job
        // 1's host segment (t=10..20) hides inside job 0's device segment
        // (t=10..110) and its own device work queues behind it: 110..210.
        let traces = [
            StepTrace { job: 0, node: 0, host_ns: 10, device_ns: 100 },
            StepTrace { job: 1, node: 0, host_ns: 10, device_ns: 100 },
        ];
        assert_eq!(serial_ns(&traces), 220);
        assert_eq!(overlapped_ns(&traces, 2), 210);
        // A query's own later steps wait for its flush: no self-overlap.
        let chained = [
            StepTrace { job: 0, node: 0, host_ns: 10, device_ns: 100 },
            StepTrace { job: 0, node: 1, host_ns: 10, device_ns: 0 },
        ];
        assert_eq!(overlapped_ns(&chained, 1), 120);
    }

    #[test]
    fn smoke_benchmark_produces_a_speedup_entry() {
        let mut report = Report::new();
        let db = TpchDb::generate(TpchConfig { scale_factor: 0.002, seed: 37 });
        bench_gpu_overlap(&mut report, &db, 4, 2, 1);
        let json = report.to_json();
        assert!(json.contains("sessions_gpu_concurrent_over_serial"));
    }
}
