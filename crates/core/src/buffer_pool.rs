//! A result-buffer recycle pool that can be **shared across contexts**.
//!
//! PR 2 taught the Memory Manager to recycle result buffers by power-of-two
//! size class; that pool lived inside one `MemoryManager`, so a second
//! context on the same device (another query session) could never reuse the
//! first one's buffers. This module lifts the pool out into a standalone,
//! `Arc`-shareable [`BufferPool`]: every context created from the same
//! [`crate::SharedDevice`] allocates through the same pool, so a query that
//! finishes donates its intermediates to whichever session allocates next —
//! the "reuse across contexts" ROADMAP item.
//!
//! # Protocol
//!
//! The pool *retains* every class-sized allocation at allocation time and
//! hands out **clones**: a pooled buffer is reusable exactly when the pool's
//! handle is the only one left (`handle_count() == 1`), because operator
//! handles and pending queue operations all hold clones. Acquisition happens
//! under the pool lock, so two sessions racing for the same idle buffer
//! cannot both get it — the second one observes `handle_count() == 2` and
//! allocates (or reuses another entry) instead.
//!
//! Cross-context safety of the *contents* follows from the same invariant:
//! a buffer only becomes idle once every pending queue operation that
//! references it has executed (the in-order queues drop their clones at
//! flush), so an acquiring session never observes half-written words from
//! the donating session.
//!
//! Each [`MemoryManager`](crate::memory_manager::MemoryManager) registers as
//! a *client* and passes its client id on acquisition; the pool counts hits
//! where the previous owner was a different client as
//! [`PoolStats::cross_context_hits`] — the observability hook behind the
//! cross-session reuse regression tests and `BENCH_pr3.json`.

use ocelot_kernel::Buffer;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Statistics of a (possibly shared) buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions served from the pool.
    pub hits: u64,
    /// Subset of `hits` where the buffer's previous owner was a *different*
    /// client (another context/session) — cross-context reuse.
    pub cross_context_hits: u64,
    /// Pool-eligible acquisitions that found no idle buffer of the class.
    pub misses: u64,
}

impl PoolStats {
    /// Projects these counters into a
    /// [`ocelot_trace::MetricsRegistry`] under `<prefix>.hits`,
    /// `<prefix>.cross_context_hits` and `<prefix>.misses`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut ocelot_trace::MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.hits"), self.hits);
        registry.set_counter(&format!("{prefix}.cross_context_hits"), self.cross_context_hits);
        registry.set_counter(&format!("{prefix}.misses"), self.misses);
    }
}

/// Result buffers below this size are not pooled: small allocations are
/// cheap for the system allocator, and pooling them would churn the pool.
pub const MIN_POOLED_WORDS: usize = 1 << 12;

/// Maximum number of buffers retained for recycling.
const POOL_CAP: usize = 32;

/// The size class a pooled request is rounded up to: the next power of two.
/// At most 2x overallocation buys cross-size reuse (a 5 000-word column and
/// a 6 000-word column share the 8 192-word class). Callers see the class
/// size through `Buffer::len()`; logical lengths live in `DevColumn`.
pub fn recycle_class(words: usize) -> usize {
    words.next_power_of_two()
}

struct PoolEntry {
    buffer: Buffer,
    /// Client id of the last acquirer (or donor) — used to classify hits as
    /// same- or cross-context.
    owner: u64,
}

#[derive(Default)]
struct PoolState {
    entries: Vec<PoolEntry>,
    stats: PoolStats,
    next_client: u64,
}

/// A shareable pool of idle, class-sized result buffers (see module docs).
pub struct BufferPool {
    state: Mutex<PoolState>,
    /// Hard cap on bytes the pool may retain. Admissions beyond it retire
    /// idle entries first and are refused while nothing idle can make room
    /// (the buffer then simply is not pooled — its holder keeps the only
    /// handle and the allocation dies with it). Defaults to unlimited;
    /// devices under a memory budget shrink it so the pool cannot hoard
    /// the budget (see `crate::SharedDevice::with_memory_budget`).
    max_retained_bytes: AtomicUsize,
}

impl Default for BufferPool {
    fn default() -> BufferPool {
        BufferPool::new()
    }
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> BufferPool {
        BufferPool {
            state: Mutex::new(PoolState::default()),
            max_retained_bytes: AtomicUsize::new(usize::MAX),
        }
    }

    /// Caps the bytes the pool may retain (see the field docs).
    pub fn set_max_retained_bytes(&self, bytes: usize) {
        self.max_retained_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Bytes currently retained by pooled buffers.
    pub fn retained_bytes(&self) -> usize {
        self.state.lock().entries.iter().map(|e| e.buffer.bytes()).sum()
    }

    /// Registers a pool client (one per `MemoryManager`). The returned id is
    /// only used to attribute hits to same- vs cross-context reuse.
    pub fn register_client(&self) -> u64 {
        let mut state = self.state.lock();
        state.next_client += 1;
        state.next_client
    }

    /// Returns an idle pooled buffer of exactly `class_words` words, if one
    /// exists. The buffer stays in the pool; the caller receives a clone
    /// (see module docs for why that is the reuse guard).
    pub fn acquire(&self, class_words: usize, client: u64) -> Option<Buffer> {
        let mut state = self.state.lock();
        let found = state
            .entries
            .iter()
            .position(|e| e.buffer.len() == class_words && e.buffer.handle_count() == 1);
        match found {
            Some(pos) => {
                let cross = state.entries[pos].owner != client;
                state.entries[pos].owner = client;
                state.stats.hits += 1;
                if cross {
                    state.stats.cross_context_hits += 1;
                }
                Some(state.entries[pos].buffer.clone())
            }
            None => {
                state.stats.misses += 1;
                None
            }
        }
    }

    /// Admits a freshly allocated class-sized buffer into the pool (the
    /// caller keeps its own handle). When the pool is full (entry count or
    /// retained-byte budget) idle entries are retired in preference to
    /// still-live ones; if the byte budget still cannot fit the newcomer,
    /// it is not pooled at all.
    pub fn admit(&self, buffer: Buffer, client: u64) {
        let budget = self.max_retained_bytes.load(Ordering::Relaxed);
        if buffer.bytes() > budget {
            // Unpoolable no matter what is retired — do not drain the
            // pool's idle entries trying.
            return;
        }
        let mut state = self.state.lock();
        if state.entries.len() >= POOL_CAP {
            let pos = state.entries.iter().position(|e| e.buffer.handle_count() == 1).unwrap_or(0);
            state.entries.remove(pos);
        }
        let retained =
            |entries: &[PoolEntry]| -> usize { entries.iter().map(|e| e.buffer.bytes()).sum() };
        while retained(&state.entries).saturating_add(buffer.bytes()) > budget {
            match state.entries.iter().position(|e| e.buffer.handle_count() == 1) {
                Some(pos) => {
                    state.entries.remove(pos);
                }
                None => return,
            }
        }
        state.entries.push(PoolEntry { buffer, owner: client });
    }

    /// Drops one idle entry to give device memory back (the Memory Manager's
    /// cheapest eviction move). Returns whether an entry was released.
    pub fn release_one_idle(&self) -> bool {
        let mut state = self.state.lock();
        match state.entries.iter().position(|e| e.buffer.handle_count() == 1) {
            Some(pos) => {
                state.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Empties the pool (used between benchmark configurations). Buffers
    /// still held elsewhere stay alive through their other handles.
    pub fn clear(&self) {
        self.state.lock().entries.clear();
    }

    /// Number of buffers currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether the pool holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        self.state.lock().stats
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("BufferPool")
            .field("entries", &state.entries.len())
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_kernel::Device;

    #[test]
    fn acquire_hits_only_idle_buffers_of_the_class() {
        let device = Device::cpu_sequential();
        let pool = BufferPool::new();
        let client = pool.register_client();
        let buffer = device.alloc(8_192, "a").unwrap();
        pool.admit(buffer.clone(), client);
        // Still held by `buffer` — not idle, not acquirable.
        assert!(pool.acquire(8_192, client).is_none());
        drop(buffer);
        assert!(pool.acquire(4_096, client).is_none(), "class must match exactly");
        let reused = pool.acquire(8_192, client).expect("idle buffer is acquirable");
        // Held by the acquirer now: a second acquire misses.
        assert!(pool.acquire(8_192, client).is_none());
        drop(reused);
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn cross_context_hits_are_attributed() {
        let device = Device::cpu_sequential();
        let pool = BufferPool::new();
        let a = pool.register_client();
        let b = pool.register_client();
        pool.admit(device.alloc(4_096, "x").unwrap(), a);
        let first = pool.acquire(4_096, b).expect("hit");
        drop(first);
        // Same client again: a hit, but not a cross-context one.
        drop(pool.acquire(4_096, b).expect("hit"));
        let stats = pool.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.cross_context_hits, 1);
    }

    #[test]
    fn byte_budget_caps_retention_without_draining_the_pool() {
        let device = Device::cpu_sequential();
        let pool = BufferPool::new();
        let client = pool.register_client();
        pool.set_max_retained_bytes(40 * 1024);
        for i in 0..4 {
            pool.admit(device.alloc(4_096, &format!("b{i}")).unwrap(), client);
        }
        assert!(pool.retained_bytes() <= 40 * 1024);
        let retained_before = pool.len();
        // A buffer that can never fit the budget must be refused without
        // retiring the existing idle entries.
        pool.admit(device.alloc(16_384, "oversized").unwrap(), client);
        assert_eq!(pool.len(), retained_before, "oversized admit must not drain the pool");
        // A fitting buffer retires idles as needed and is admitted.
        let fits = device.alloc(8_192, "fits").unwrap();
        pool.admit(fits.clone(), client);
        assert!(pool.retained_bytes() <= 40 * 1024);
        assert!(pool.acquire(8_192, client).is_none(), "newcomer is busy (caller holds it)");
        drop(fits);
        assert!(pool.acquire(8_192, client).is_some(), "idle newcomer is reusable");
    }

    #[test]
    fn admit_retires_idle_entries_when_full() {
        let device = Device::cpu_sequential();
        let pool = BufferPool::new();
        let client = pool.register_client();
        for i in 0..40 {
            pool.admit(device.alloc(4_096, &format!("b{i}")).unwrap(), client);
        }
        assert!(pool.len() <= 32 + 1, "pool stays bounded");
        assert!(pool.release_one_idle());
        pool.clear();
        assert!(pool.is_empty());
    }
}
