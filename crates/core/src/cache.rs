//! The device column cache: lazily uploaded, budgeted, evictable base
//! columns shared by every session on a device (paper §3.3, §4.3).
//!
//! The Memory Manager's per-context BAT registry (PR 1) made repeated binds
//! *within one context* free, but every new session re-uploaded the same
//! base columns. This module lifts that registry into a standalone,
//! `Arc`-shared [`ColumnCache`] — one per [`crate::SharedDevice`] — so a
//! query stream re-running the same queries in fresh sessions performs zero
//! base-column re-uploads, and so device memory pressure has a single,
//! device-wide pool of resident columns to evict from.
//!
//! # Lifecycle contract
//!
//! Every base column a query binds is in exactly one of three states:
//!
//! * **Resident** — uploaded, unpinned, evictable. A resident entry serves
//!   hits without any transfer; its second-chance bit is set on every hit.
//! * **Pinned** — resident *and* referenced by at least one live
//!   [`Pinned`] guard. [`ColumnCache::get_or_upload`] returns a guard with
//!   every hit or upload; the guard is wired into the deferred-value layer
//!   (a [`DevColumn`] produced by [`ColumnCache::column_for_bat`] carries
//!   it), so a column stays pinned exactly as long as some plan register or
//!   operator handle can still reach it — "for the duration of the flush".
//!   Pinned entries are never evicted. Dropping the last guard (clone)
//!   returns the entry to *resident*; buffers still referenced by pending
//!   queue operations additionally fail the idle check
//!   (`handle_count() == 1`) until the owning queue flushes.
//! * **Evicted** — dropped from the cache under memory pressure (the
//!   cache's own byte budget at admission time, or a
//!   [`MemoryManager`](crate::memory_manager::MemoryManager) reclaim pass
//!   during the OOM-restart protocol below). The next bind is a miss and
//!   re-uploads.
//!
//! Eviction runs a **second-chance (clock) sweep**: victims must be
//! unpinned and idle; entries whose referenced bit is set get the bit
//! cleared and one more round before they are taken, so a hot working set
//! survives a burst of cold binds. With every bit cleared the policy
//! degrades to LRU-like FIFO order.
//!
//! # The OOM-restart protocol
//!
//! Cached columns are deliberately **not** evicted by the Memory Manager's
//! inline per-allocation eviction chain (idle pool buffers and the
//! manager's private registry go first — re-uploading a base column is the
//! most expensive memory to win back, and a node that is *currently
//! executing* may be about to bind the very column a greedy inline pass
//! would drop). Instead, when an allocation still fails after inline
//! eviction, the failure unwinds to the plan layer
//! (`ocelot_engine::plan::PlanRun`) as a typed [`DeviceOom`]: the register
//! machine drops the failed node's partial outputs, asks the backend to
//! **release** (flush the queue so finished intermediates become idle) and
//! **evict** (a full reclaim pass that *does* sweep this cache through the
//! Memory Manager's eviction callbacks), and then **restarts the failed
//! node** from scratch — the paper's operator-restart discipline. Columns
//! pinned by the plan's own live registers survive the sweep, so a restart
//! never invalidates data the retried node is about to read.

use crate::context::{DevColumn, DevWord, OcelotContext};
use crate::memory_manager::EvictionSink;
use ocelot_kernel::{Buffer, Result};
use ocelot_storage::BatRef;
use ocelot_trace::{MetricsRegistry, TraceEventKind, TraceHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Typed payload of an out-of-device-memory failure travelling from an
/// operator to the plan layer's restart protocol (see module docs). Raised
/// with `std::panic::panic_any` by the Ocelot backend when an allocation
/// fails even after inline eviction; `PlanRun` downcasts, reclaims and
/// restarts the node instead of failing the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceOom {
    /// Bytes the failing allocation asked for.
    pub requested: usize,
    /// Bytes that were available when it failed.
    pub available: usize,
}

/// Cache observability counters (the analogue of
/// [`crate::MemoryStats`] for the shared column cache).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Binds served from a resident entry — no transfer.
    pub hits: u64,
    /// Binds that uploaded (first use, or use after eviction).
    pub misses: u64,
    /// Entries dropped under memory pressure.
    pub evictions: u64,
    /// Bytes uploaded host → device for cached columns (discrete devices
    /// only; unified-memory uploads are zero-copy).
    pub bytes_uploaded: u64,
}

impl CacheStats {
    /// Projects these counters into a [`MetricsRegistry`] under
    /// `<prefix>.hits`, `<prefix>.misses`, `<prefix>.evictions` and
    /// `<prefix>.bytes_uploaded`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.hits"), self.hits);
        registry.set_counter(&format!("{prefix}.misses"), self.misses);
        registry.set_counter(&format!("{prefix}.evictions"), self.evictions);
        registry.set_counter(&format!("{prefix}.bytes_uploaded"), self.bytes_uploaded);
    }
}

struct Entry {
    key: usize,
    /// Admission generation: distinguishes this entry from earlier or
    /// later entries under the same key (the key is an allocation address
    /// and can be re-admitted after `invalidate`, or even reused by a new
    /// BAT once the old one is freed). Pin guards match on
    /// `(key, generation)`, so a stale guard from a removed entry can
    /// never unpin its successor.
    generation: u64,
    buffer: Buffer,
    /// Keeps the BAT alive while cached: the key is its allocation address,
    /// so dropping the last reference could let a later BAT alias the slot.
    #[allow(dead_code)]
    bat: BatRef,
    /// Live [`Pinned`] guards. `> 0` exempts the entry from eviction.
    pins: usize,
    /// Second-chance bit, set on every hit.
    referenced: bool,
}

#[derive(Default)]
struct CacheState {
    /// Entries in admission order; the clock hand sweeps this ring.
    entries: Vec<Entry>,
    hand: usize,
    next_generation: u64,
    stats: CacheStats,
}

/// The shared device column cache (see module docs for the full contract).
pub struct ColumnCache {
    state: Arc<Mutex<CacheState>>,
    budget: AtomicUsize,
    trace: TraceHandle,
}

impl Default for ColumnCache {
    fn default() -> ColumnCache {
        ColumnCache::new()
    }
}

/// Stable cache key for a BAT: the address of its shared allocation.
fn bat_key(bat: &BatRef) -> usize {
    Arc::as_ptr(bat) as usize
}

/// A refcounted pin on a cached column. While any clone is alive the entry
/// cannot be evicted; dropping the last clone returns it to *resident*.
#[derive(Clone)]
pub struct Pinned(Arc<PinGuard>);

struct PinGuard {
    state: Arc<Mutex<CacheState>>,
    key: usize,
    generation: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut state = self.state.lock();
        if let Some(entry) =
            state.entries.iter_mut().find(|e| e.key == self.key && e.generation == self.generation)
        {
            entry.pins = entry.pins.saturating_sub(1);
        }
    }
}

impl std::fmt::Debug for Pinned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pinned").field("key", &self.0.key).finish()
    }
}

impl ColumnCache {
    /// An unbounded cache (entries are still evictable under reclaim).
    pub fn new() -> ColumnCache {
        ColumnCache::with_budget(usize::MAX)
    }

    /// A cache whose resident bytes are capped at `budget_bytes`: admitting
    /// a column evicts unpinned entries until the new total fits. Pinned
    /// entries may transiently push the cache over budget — correctness
    /// (never evict what a running plan reads) wins over the cap.
    pub fn with_budget(budget_bytes: usize) -> ColumnCache {
        ColumnCache {
            state: Arc::new(Mutex::new(CacheState::default())),
            budget: AtomicUsize::new(budget_bytes),
            trace: TraceHandle::new(),
        }
    }

    /// The cache's trace attachment point: with a sink attached, every bind
    /// emits a [`TraceEventKind::CacheBind`] (tagged hit or miss) and every
    /// eviction a [`TraceEventKind::CacheEvict`].
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Adjusts the resident-byte budget (applies from the next admission).
    pub fn set_budget(&self, budget_bytes: usize) {
        self.budget.store(budget_bytes, Ordering::Relaxed);
    }

    /// The resident-byte budget.
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.state.lock().stats
    }

    /// Number of resident columns.
    pub fn resident_entries(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Bytes of device memory held by resident columns.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().entries.iter().map(|e| e.buffer.bytes()).sum()
    }

    /// Number of currently pinned columns.
    pub fn pinned_entries(&self) -> usize {
        self.state.lock().entries.iter().filter(|e| e.pins > 0).count()
    }

    /// Returns the device buffer for a base column plus a [`Pinned`] guard,
    /// uploading on first use. The upload is scheduled on the *requesting*
    /// context's queue (lazy — no flush), its transfer charged there once;
    /// later hits from any session perform no transfer at all.
    pub fn get_or_upload(&self, ctx: &OcelotContext, bat: &BatRef) -> Result<(Buffer, Pinned)> {
        let key = bat_key(bat);
        {
            let mut state = self.state.lock();
            if let Some(entry) = state.entries.iter_mut().find(|e| e.key == key) {
                entry.referenced = true;
                entry.pins += 1;
                let (buffer, generation) = (entry.buffer.clone(), entry.generation);
                state.stats.hits += 1;
                drop(state);
                self.trace
                    .emit(|| TraceEventKind::CacheBind { hit: true, bytes: buffer.bytes() as u64 });
                return Ok((buffer, self.pin(key, generation)));
            }
        }
        // Miss. Make room under our own byte budget first, then allocate
        // through the Memory Manager (inline eviction; a residual OOM
        // surfaces to the caller — the plan layer's restart protocol).
        let words = bat.to_words();
        let bytes = words.len() * 4;
        {
            let mut state = self.state.lock();
            let budget = self.budget();
            while Self::resident_bytes_locked(&state) + bytes > budget {
                match Self::evict_one_locked(&mut state) {
                    Some(evicted) => {
                        self.trace.emit(|| TraceEventKind::CacheEvict { bytes: evicted })
                    }
                    None => break,
                }
            }
        }
        let buffer = ctx.memory().alloc_exact(words.len().max(1), bat.name())?;
        buffer.copy_from_u32(&words);
        let event = ctx.queue().enqueue_write_prefix(&buffer, words.len(), &[])?;
        ctx.memory().record_producer(&buffer, event);
        let mut state = self.state.lock();
        // Another session may have admitted the same column while we
        // uploaded; keep the winner, drop our copy.
        if let Some(entry) = state.entries.iter_mut().find(|e| e.key == key) {
            entry.referenced = true;
            entry.pins += 1;
            let (winner, generation) = (entry.buffer.clone(), entry.generation);
            state.stats.hits += 1;
            drop(state);
            self.trace.emit(|| TraceEventKind::CacheBind { hit: true, bytes: bytes as u64 });
            return Ok((winner, self.pin(key, generation)));
        }
        state.stats.misses += 1;
        if !ctx.device().is_unified() {
            state.stats.bytes_uploaded += bytes as u64;
        }
        // Admitted with the referenced bit *clear*: a second chance is
        // earned by a re-reference, so a one-shot cold scan cannot push the
        // warm working set out (scan resistance; the pin protects the entry
        // while the admitting plan still runs).
        let generation = state.next_generation;
        state.next_generation += 1;
        state.entries.push(Entry {
            key,
            generation,
            buffer: buffer.clone(),
            bat: bat.clone(),
            pins: 1,
            referenced: false,
        });
        drop(state);
        self.trace.emit(|| TraceEventKind::CacheBind { hit: false, bytes: bytes as u64 });
        Ok((buffer, self.pin(key, generation)))
    }

    /// [`ColumnCache::get_or_upload`] wrapped as a typed deferred column
    /// that carries its pin — the bind path of the Ocelot backend. The
    /// column stays pinned until the last clone (plan register, operator
    /// handle) is dropped.
    pub fn column_for_bat<T: DevWord>(
        &self,
        ctx: &OcelotContext,
        bat: &BatRef,
    ) -> Result<DevColumn<T>> {
        let (buffer, pin) = self.get_or_upload(ctx, bat)?;
        Ok(DevColumn::new(buffer, bat.len())?.with_pin(pin))
    }

    fn pin(&self, key: usize, generation: u64) -> Pinned {
        Pinned(Arc::new(PinGuard { state: Arc::clone(&self.state), key, generation }))
    }

    fn resident_bytes_locked(state: &CacheState) -> usize {
        state.entries.iter().map(|e| e.buffer.bytes()).sum()
    }

    /// One second-chance sweep: unpinned, idle entries are taken; entries
    /// with the referenced bit get it cleared and one more round. Returns
    /// the victim's byte size, or `None` when nothing was evictable.
    fn evict_one_locked(state: &mut CacheState) -> Option<u64> {
        if state.entries.is_empty() {
            return None;
        }
        // Two full revolutions: the first may only clear referenced bits,
        // the second then takes the first eligible victim.
        for _ in 0..state.entries.len() * 2 {
            let index = state.hand % state.entries.len();
            let entry = &mut state.entries[index];
            let evictable = entry.pins == 0 && entry.buffer.handle_count() <= 1;
            if evictable && !entry.referenced {
                let bytes = entry.buffer.bytes() as u64;
                state.entries.remove(index);
                // The hand now points at the element after the victim.
                state.stats.evictions += 1;
                return Some(bytes);
            }
            if evictable {
                entry.referenced = false;
            }
            state.hand = state.hand.wrapping_add(1);
        }
        None
    }

    /// Evicts one unpinned, idle column (second-chance order). The reclaim
    /// entry point the Memory Manager's eviction callbacks use.
    pub fn evict_one(&self) -> bool {
        match Self::evict_one_locked(&mut self.state.lock()) {
            Some(bytes) => {
                self.trace.emit(|| TraceEventKind::CacheEvict { bytes });
                true
            }
            None => false,
        }
    }

    /// Evicts every unpinned, idle column; returns how many were dropped.
    pub fn evict_unpinned(&self) -> usize {
        let mut dropped = 0;
        while self.evict_one() {
            dropped += 1;
        }
        dropped
    }

    /// Drops the entry of a deleted/replaced BAT (mirror of
    /// [`crate::MemoryManager::invalidate`]).
    pub fn invalidate(&self, bat: &BatRef) {
        let key = bat_key(bat);
        self.state.lock().entries.retain(|e| e.key != key);
    }

    /// Whether a BAT is currently resident.
    pub fn contains(&self, bat: &BatRef) -> bool {
        let key = bat_key(bat);
        self.state.lock().entries.iter().any(|e| e.key == key)
    }

    /// Drops **every** entry, pinned or not — the device-loss invalidation
    /// path. When the backing device is lost its memory is gone, so
    /// residency would be a lie and even pinned entries are stale; the
    /// unwound plan's live [`Pinned`] guards become inert (they match on
    /// `(key, generation)` and find nothing to unpin). Returns how many
    /// entries were dropped. Counted as evictions in [`CacheStats`].
    pub fn purge_lost_device(&self) -> usize {
        let mut state = self.state.lock();
        let dropped = state.entries.len();
        state.entries.clear();
        state.hand = 0;
        state.stats.evictions += dropped as u64;
        dropped
    }
}

impl EvictionSink for ColumnCache {
    fn evict_one(&self) -> bool {
        ColumnCache::evict_one(self)
    }
}

impl std::fmt::Debug for ColumnCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("ColumnCache")
            .field("entries", &state.entries.len())
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_kernel::GpuConfig;
    use ocelot_storage::Bat;

    fn gpu_ctx() -> OcelotContext {
        OcelotContext::gpu_with(GpuConfig::default())
    }

    fn bat(n: usize, name: &str) -> BatRef {
        Bat::from_i32(name, (0..n as i32).collect()).into_ref()
    }

    #[test]
    fn second_use_is_a_hit_with_no_new_upload() {
        let ctx = gpu_ctx();
        let cache = ColumnCache::new();
        let b = bat(100, "a");
        let (first, pin1) = cache.get_or_upload(&ctx, &b).unwrap();
        let (second, pin2) = cache.get_or_upload(&ctx, &b).unwrap();
        assert_eq!(first.id(), second.id());
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert_eq!(stats.bytes_uploaded, 400, "only the first bind transfers");
        assert_eq!(cache.pinned_entries(), 1);
        drop((pin1, pin2));
        assert_eq!(cache.pinned_entries(), 0, "dropping every guard unpins");
    }

    #[test]
    fn hits_across_contexts_transfer_nothing() {
        let shared = crate::SharedDevice::gpu_with(GpuConfig::default());
        let b = bat(2_000, "warm");
        let a_ctx = shared.context();
        drop(shared.cache().get_or_upload(&a_ctx, &b).unwrap());
        a_ctx.sync().unwrap();
        let b_ctx = shared.context();
        let before = b_ctx.queue().total_stats().bytes_to_device;
        let (buffer, _pin) = shared.cache().get_or_upload(&b_ctx, &b).unwrap();
        assert_eq!(b_ctx.queue().total_stats().bytes_to_device, before);
        assert_eq!(buffer.len(), 2_000);
        assert_eq!(shared.cache().stats().hits, 1);
    }

    #[test]
    fn budget_evicts_unpinned_in_second_chance_order() {
        let ctx = gpu_ctx();
        // Budget fits two 100-word columns, not three.
        let cache = ColumnCache::with_budget(800);
        let (a, b, c) = (bat(100, "a"), bat(100, "b"), bat(100, "c"));
        drop(cache.get_or_upload(&ctx, &a).unwrap());
        drop(cache.get_or_upload(&ctx, &b).unwrap());
        ctx.sync().unwrap(); // pending uploads keep entries busy until here
                             // Re-reference `a` so the sweep prefers `b` once bits are cleared.
        drop(cache.get_or_upload(&ctx, &a).unwrap());
        drop(cache.get_or_upload(&ctx, &c).unwrap());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.contains(&a), "recently referenced column survives");
        assert!(!cache.contains(&b), "cold column is the victim");
        assert!(cache.contains(&c));
    }

    #[test]
    fn pinned_columns_are_never_evicted() {
        let ctx = gpu_ctx();
        let cache = ColumnCache::with_budget(800);
        let (a, b, c) = (bat(100, "a"), bat(100, "b"), bat(100, "c"));
        let (_, pin_a) = cache.get_or_upload(&ctx, &a).unwrap();
        drop(cache.get_or_upload(&ctx, &b).unwrap());
        ctx.sync().unwrap();
        drop(cache.get_or_upload(&ctx, &c).unwrap());
        assert!(cache.contains(&a), "pinned column survives pressure");
        assert!(!cache.contains(&b));
        assert_eq!(cache.evict_unpinned(), 0, "c is busy (pending upload), a is pinned");
        ctx.sync().unwrap();
        assert_eq!(cache.evict_unpinned(), 1, "after the flush only c is reclaimable");
        drop(pin_a);
        assert_eq!(cache.evict_unpinned(), 1);
        assert_eq!(cache.resident_entries(), 0);
    }

    #[test]
    fn columns_held_by_pending_ops_fail_the_idle_check() {
        let ctx = gpu_ctx();
        let cache = ColumnCache::new();
        let b = bat(100, "busy");
        drop(cache.get_or_upload(&ctx, &b).unwrap());
        // The upload is still pending on the queue: handle_count > 1.
        assert!(!cache.evict_one());
        ctx.sync().unwrap();
        assert!(cache.evict_one());
    }

    #[test]
    fn column_for_bat_pins_through_the_deferred_layer() {
        let ctx = gpu_ctx();
        let cache = ColumnCache::new();
        let b = bat(50, "col");
        let col: DevColumn<i32> = cache.column_for_bat(&ctx, &b).unwrap();
        let clone = col.clone();
        assert_eq!(cache.pinned_entries(), 1);
        drop(col);
        assert_eq!(cache.pinned_entries(), 1, "clones share the pin");
        assert_eq!(clone.read(&ctx).unwrap()[49], 49);
        drop(clone);
        assert_eq!(cache.pinned_entries(), 0);
    }

    #[test]
    fn stale_pins_cannot_unpin_a_readmitted_entry() {
        // A guard from a previous life of the key (removed by invalidate,
        // then re-admitted) must not decrement the new entry's pin count:
        // guards match on (key, generation), not just the key.
        let ctx = gpu_ctx();
        let cache = ColumnCache::new();
        let b = bat(10, "twice");
        let (_, stale_pin) = cache.get_or_upload(&ctx, &b).unwrap();
        cache.invalidate(&b);
        let (_, fresh_pin) = cache.get_or_upload(&ctx, &b).unwrap();
        assert_eq!(cache.pinned_entries(), 1);
        drop(stale_pin);
        assert_eq!(cache.pinned_entries(), 1, "stale guard must not unpin the new entry");
        ctx.sync().unwrap();
        assert!(!cache.evict_one(), "still pinned by the fresh guard");
        drop(fresh_pin);
        assert!(cache.evict_one());
    }

    #[test]
    fn invalidate_drops_the_entry() {
        let ctx = gpu_ctx();
        let cache = ColumnCache::new();
        let b = bat(10, "gone");
        drop(cache.get_or_upload(&ctx, &b).unwrap());
        cache.invalidate(&b);
        assert!(!cache.contains(&b));
        drop(cache.get_or_upload(&ctx, &b).unwrap());
        assert_eq!(cache.stats().misses, 2);
    }
}
