//! The Ocelot execution context: device + lazily evaluated queue + Memory
//! Manager, plus the *typed deferred value* handles every operator returns.
//!
//! # The deferred-value contract
//!
//! The paper's architectural claim (§3.1/§3.4) is that Ocelot's operators
//! stay lazy: work is only *enqueued* on the command queue and the host
//! synchronises exactly once — when MonetDB reads a result back through
//! `ocelot.sync`. This module encodes that contract in the type system:
//!
//! * [`DevColumn<T>`] — a device-resident column of `T: DevWord` values
//!   (`i32`, `f32` or [`Oid`]). Its logical length is either host-known
//!   ([`ColLen::Host`]) or **deferred** ([`ColLen::Device`]): a one-word
//!   device counter written by an earlier kernel (e.g. a scan total), plus a
//!   host-known capacity bound used for allocation and launch sizing.
//! * [`DevScalar<T>`] — a deferred scalar: a one-word device buffer plus the
//!   event that produces it. All reductions and counts return these.
//! * [`DevScalar::get`] and [`DevColumn::read`] are the **only**
//!   synchronisation points. Everything else — selections, scans, gathers,
//!   maps, reductions, bitmap materialisation — merely schedules kernels and
//!   returns immediately. A chained pipeline therefore performs exactly one
//!   queue flush, at its final `.get()`/`.read()`
//!   (see [`ocelot_kernel::Queue::flush_count`]).
//! * Operators *consume* deferred lengths on-device: kernels receive a
//!   [`LenSource`] and read the actual element count from the counter word
//!   at flush time (by which point the in-order queue guarantees the
//!   producing kernel has run). This is how `materialize_bitmap` sizes its
//!   output from a scan total without a round-trip to the host.
//!
//! Exceptions, documented at their definition sites, are operators whose
//! host-side control flow inherently depends on a device value: the hash
//! table build (its optimistic/pessimistic restart loop inspects a failure
//! counter), `group_by` (the group count sizes the result schema), and the
//! nested-loop join (its output bound is quadratic, so it resolves the scan
//! total instead of allocating the worst case). Each resolves via the same
//! `.get()` path and is a deliberate, visible sync point.

use crate::buffer_pool::BufferPool;
use crate::cache::{ColumnCache, Pinned};
use crate::memory_manager::MemoryManager;
use ocelot_kernel::{Buffer, Device, EventId, GpuConfig, KernelError, LaunchConfig, Queue, Result};
use std::marker::PhantomData;
use std::sync::Arc;

/// Tuple identifier — 32-bit, like the four-byte engine build of MonetDB.
pub use ocelot_storage::Oid;

mod sealed {
    pub trait Sealed {}
    impl Sealed for i32 {}
    impl Sealed for f32 {}
    impl Sealed for u32 {}
}

/// A 32-bit value type that can live in a device word: `i32`, `f32` or
/// [`Oid`] (`u32`). The trait fixes the bit-level encoding, which is what
/// lets one untyped kernel buffer serve every column type while the *host*
/// API stays typed.
pub trait DevWord:
    Copy + Send + Sync + PartialEq + std::fmt::Debug + sealed::Sealed + 'static
{
    /// Human-readable type tag (used in buffer labels and errors).
    const LABEL: &'static str;
    /// Decodes a raw device word.
    fn from_word(word: u32) -> Self;
    /// Encodes into a raw device word.
    fn to_word(self) -> u32;
    /// Bulk-stages host values into a buffer (single pass, no staging
    /// allocation — dispatches to the typed `Buffer::copy_from_*` helper).
    fn copy_to_buffer(values: &[Self], buffer: &Buffer);
}

impl DevWord for i32 {
    const LABEL: &'static str = "i32";
    #[inline]
    fn from_word(word: u32) -> i32 {
        word as i32
    }
    #[inline]
    fn to_word(self) -> u32 {
        self as u32
    }
    fn copy_to_buffer(values: &[i32], buffer: &Buffer) {
        buffer.copy_from_i32(values);
    }
}

impl DevWord for f32 {
    const LABEL: &'static str = "f32";
    #[inline]
    fn from_word(word: u32) -> f32 {
        f32::from_bits(word)
    }
    #[inline]
    fn to_word(self) -> u32 {
        self.to_bits()
    }
    fn copy_to_buffer(values: &[f32], buffer: &Buffer) {
        buffer.copy_from_f32(values);
    }
}

impl DevWord for u32 {
    const LABEL: &'static str = "oid";
    #[inline]
    fn from_word(word: u32) -> u32 {
        word
    }
    #[inline]
    fn to_word(self) -> u32 {
        self
    }
    fn copy_to_buffer(values: &[u32], buffer: &Buffer) {
        buffer.copy_from_u32(values);
    }
}

/// The logical length of a device column.
#[derive(Debug, Clone)]
pub enum ColLen {
    /// Known on the host (base tables, maps, gathers over known inputs).
    Host(usize),
    /// Deferred: the actual count lives in word 0 of `counter`, written by
    /// an earlier kernel; `cap` is a host-known upper bound (the allocation
    /// size of the column's buffer).
    Device {
        /// One-word device buffer holding the count.
        counter: Buffer,
        /// Upper bound on the count.
        cap: usize,
    },
}

impl ColLen {
    /// Host-known upper bound on the length (exact for [`ColLen::Host`]).
    pub fn cap(&self) -> usize {
        match self {
            ColLen::Host(n) => *n,
            ColLen::Device { cap, .. } => *cap,
        }
    }

    /// The length if it is host-known.
    pub fn host(&self) -> Option<usize> {
        match self {
            ColLen::Host(n) => Some(*n),
            ColLen::Device { .. } => None,
        }
    }

    /// Resolves the logical length, reading the device counter when
    /// deferred (**sync point** in that case). The single implementation
    /// behind [`DevColumn::len`] and `Bitmap::len`.
    pub(crate) fn resolve(&self, ctx: &OcelotContext) -> Result<usize> {
        match self {
            ColLen::Host(n) => Ok(*n),
            ColLen::Device { counter, cap } => {
                ctx.materialize(counter, 1)?;
                Ok((counter.get_u32(0) as usize).min(*cap))
            }
        }
    }

    /// The kernel-side view of this length.
    pub fn source(&self) -> LenSource {
        match self {
            ColLen::Host(n) => LenSource::Fixed(*n),
            ColLen::Device { counter, cap } => {
                LenSource::Counter { counter: counter.clone(), cap: *cap }
            }
        }
    }
}

/// How a kernel learns its logical element count. Resolved *inside*
/// `run_group`, i.e. at flush time, when the in-order queue guarantees any
/// producing kernel has already executed — this is what lets operators
/// consume scan totals without a host readback.
#[derive(Debug, Clone)]
pub enum LenSource {
    /// Host-known count.
    Fixed(usize),
    /// Device-resident count (word 0 of `counter`), clamped to `cap`.
    Counter {
        /// One-word device buffer holding the count.
        counter: Buffer,
        /// Safety clamp (the consuming buffer's capacity).
        cap: usize,
    },
}

impl LenSource {
    /// The element count, reading the device counter if deferred. Only call
    /// from inside a kernel's `run_group` (or after a flush).
    #[inline]
    pub fn get(&self) -> usize {
        match self {
            LenSource::Fixed(n) => *n,
            LenSource::Counter { counter, cap } => (counter.get_u32(0) as usize).min(*cap),
        }
    }

    /// Host-known upper bound (used for launch sizing).
    pub fn cap(&self) -> usize {
        match self {
            LenSource::Fixed(n) => *n,
            LenSource::Counter { cap, .. } => *cap,
        }
    }
}

/// A handle to a typed column that lives in device memory.
///
/// The buffer holds raw 32-bit words; the phantom type records how they
/// decode (`i32`, `f32`, [`Oid`]) so host code cannot mix them up, while
/// kernels keep seeing untyped words — exactly how OpenCL kernels see
/// `cl_mem` objects. The logical length may be host-known or deferred (see
/// [`ColLen`]); [`DevColumn::read`] is the only operation that synchronises.
pub struct DevColumn<T: DevWord> {
    /// The device buffer holding the values (`buffer.len() >= cap`).
    pub buffer: Buffer,
    len: ColLen,
    /// Pin on the shared column cache, when this column is a cached base
    /// column: the entry stays unevictable while any clone of the handle
    /// (a plan register, an operator input) is alive. `None` for
    /// intermediates and directly uploaded columns.
    pin: Option<Pinned>,
    _ty: PhantomData<fn() -> T>,
}

impl<T: DevWord> Clone for DevColumn<T> {
    fn clone(&self) -> Self {
        DevColumn {
            buffer: self.buffer.clone(),
            len: self.len.clone(),
            pin: self.pin.clone(),
            _ty: PhantomData,
        }
    }
}

impl<T: DevWord> std::fmt::Debug for DevColumn<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevColumn")
            .field("type", &T::LABEL)
            .field("buffer", &self.buffer)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: DevWord> DevColumn<T> {
    /// Wraps a buffer holding `len` host-known values. Malformed handles
    /// (a plan declaring more values than the buffer holds) surface as
    /// [`KernelError::BufferTooShort`] instead of a panic.
    pub fn new(buffer: Buffer, len: usize) -> Result<DevColumn<T>> {
        Self::with_len(buffer, ColLen::Host(len))
    }

    /// Wraps a buffer whose logical length is deferred: the count is in
    /// word 0 of `counter` and bounded by `cap`.
    pub fn deferred(buffer: Buffer, counter: Buffer, cap: usize) -> Result<DevColumn<T>> {
        Self::with_len(buffer, ColLen::Device { counter, cap })
    }

    /// Wraps a buffer with an explicit [`ColLen`] (used to propagate a
    /// producer's length onto an aligned result, e.g. a gather output that
    /// inherits its index column's deferred count).
    pub fn with_len(buffer: Buffer, len: ColLen) -> Result<DevColumn<T>> {
        if buffer.len() < len.cap() {
            return Err(KernelError::BufferTooShort {
                label: buffer.label().to_string(),
                buffer_words: buffer.len(),
                column_len: len.cap(),
            });
        }
        Ok(DevColumn { buffer, len, pin: None, _ty: PhantomData })
    }

    /// Attaches a [`Pinned`] cache guard: the backing cache entry stays
    /// unevictable until the last clone of this handle is dropped (the
    /// column-cache bind path; see `crate::cache`).
    pub fn with_pin(mut self, pin: Pinned) -> DevColumn<T> {
        self.pin = Some(pin);
        self
    }

    /// Host-known upper bound on the length (exact when not deferred).
    pub fn cap(&self) -> usize {
        self.len.cap()
    }

    /// The logical length if it is host-known; `None` while deferred.
    pub fn host_len(&self) -> Option<usize> {
        self.len.host()
    }

    /// Whether the length is device-resident.
    pub fn is_deferred(&self) -> bool {
        matches!(self.len, ColLen::Device { .. })
    }

    /// The column's length descriptor (clone it to propagate alignment).
    pub fn col_len(&self) -> &ColLen {
        &self.len
    }

    /// The kernel-side view of the column's length.
    pub fn len_source(&self) -> LenSource {
        self.len.source()
    }

    /// Reinterprets the raw words as another [`DevWord`] type (the device
    /// view is untyped; this is the host-side equivalent of an OpenCL kernel
    /// binding the same `cl_mem` under a different element type).
    pub fn reinterpret<U: DevWord>(&self) -> DevColumn<U> {
        DevColumn {
            buffer: self.buffer.clone(),
            len: self.len.clone(),
            pin: self.pin.clone(),
            _ty: PhantomData,
        }
    }

    /// Resolves the logical length. **Sync point** when the length is
    /// deferred and its producer has not executed yet.
    pub fn len(&self, ctx: &OcelotContext) -> Result<usize> {
        self.len.resolve(ctx)
    }

    /// Reads the column back to the host. **This is the sync point** — the
    /// moral equivalent of MonetDB taking ownership through `ocelot.sync`:
    /// it resolves a deferred length, flushes outstanding work (scheduling
    /// the device→host transfer so discrete devices are charged for it) and
    /// decodes the words.
    pub fn read(&self, ctx: &OcelotContext) -> Result<Vec<T>> {
        let n = self.len(ctx)?;
        ctx.materialize(&self.buffer, n)?;
        Ok(self.buffer.chunk(0, n).iter().map(|&w| T::from_word(w)).collect())
    }
}

/// A deferred scalar: a one-word device buffer plus the event producing it.
///
/// All reductions and counts return `DevScalar`s. The value stays on the
/// device — consumers can read the backing [`DevScalar::buffer`] from inside
/// their kernels (via a [`LenSource`] or directly) without any host
/// round-trip. [`DevScalar::get`] is the only synchronisation point.
pub struct DevScalar<T: DevWord> {
    buffer: Buffer,
    event: Option<EventId>,
    _ty: PhantomData<fn() -> T>,
}

impl<T: DevWord> Clone for DevScalar<T> {
    fn clone(&self) -> Self {
        DevScalar { buffer: self.buffer.clone(), event: self.event, _ty: PhantomData }
    }
}

impl<T: DevWord> std::fmt::Debug for DevScalar<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DevScalar")
            .field("type", &T::LABEL)
            .field("buffer", &self.buffer)
            .field("event", &self.event)
            .finish()
    }
}

impl<T: DevWord> DevScalar<T> {
    /// Wraps a one-word device buffer whose value is produced by `event`.
    pub fn new(buffer: Buffer, event: Option<EventId>) -> DevScalar<T> {
        debug_assert!(!buffer.is_empty(), "DevScalar needs a one-word buffer");
        DevScalar { buffer, event, _ty: PhantomData }
    }

    /// A scalar holding a host-known constant (used for empty-input
    /// identities). The value is staged and a host→device write is
    /// scheduled, so on-device consumers see it after any flush.
    pub fn constant(ctx: &OcelotContext, value: T) -> Result<DevScalar<T>> {
        let buffer = ctx.alloc_uninit(1, "scalar_const")?;
        buffer.set_u32(0, value.to_word());
        let event = ctx.queue().enqueue_write(&buffer, &[])?;
        ctx.memory().record_producer(&buffer, event);
        Ok(DevScalar { buffer, event: Some(event), _ty: PhantomData })
    }

    /// The one-word device buffer holding the value (for on-device
    /// consumption — e.g. as the [`LenSource`] counter of a result column).
    pub fn buffer(&self) -> &Buffer {
        &self.buffer
    }

    /// The event that produces the value, if any.
    pub fn event(&self) -> Option<EventId> {
        self.event
    }

    /// Reads the value back to the host. **This is the sync point**: it
    /// flushes outstanding work (scheduling a one-word device→host transfer
    /// — not the whole intermediate, which is the deferred design's win on
    /// discrete devices) and decodes the word.
    pub fn get(&self, ctx: &OcelotContext) -> Result<T> {
        ctx.materialize_with(&self.buffer, 1, self.event)?;
        Ok(T::from_word(self.buffer.get_u32(0)))
    }
}

/// The device-wide compiled-plan slot of a [`SharedDevice`].
///
/// The core crate cannot name the engine's plan-cache type (the dependency
/// points the other way), so the slot stores it type-erased: the engine
/// installs its cache as an `Arc<dyn Any + Send + Sync>` on first use and
/// downcasts on every later access. What core *does* own is the
/// **invalidation epoch**: device-loss recovery
/// (`Backend::on_device_lost`) bumps the epoch through
/// [`PlanSlot::invalidate`], and the engine-side cache compares the epoch
/// it last observed against [`PlanSlot::epoch`] on every lookup — so a
/// lost device can never serve a compiled plan from before the loss.
#[derive(Default)]
pub struct PlanSlot {
    cache: parking_lot::Mutex<Option<Arc<dyn std::any::Any + Send + Sync>>>,
    epoch: std::sync::atomic::AtomicU64,
}

impl PlanSlot {
    /// Fresh slot: nothing installed, epoch 0.
    pub fn new() -> PlanSlot {
        PlanSlot::default()
    }

    /// Returns the installed cache, installing `make()` first if the slot
    /// is empty. The caller downcasts the returned `Arc<dyn Any>`.
    pub fn get_or_install(
        &self,
        make: impl FnOnce() -> Arc<dyn std::any::Any + Send + Sync>,
    ) -> Arc<dyn std::any::Any + Send + Sync> {
        let mut slot = self.cache.lock();
        Arc::clone(slot.get_or_insert_with(make))
    }

    /// The current invalidation epoch. A cache that observed a smaller
    /// value must drop every compiled entry before serving a hit.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Invalidates every compiled plan on the device by bumping the epoch
    /// (called from device-loss recovery alongside the column-cache purge).
    /// Returns the new epoch.
    pub fn invalidate(&self) -> u64 {
        self.epoch.fetch_add(1, std::sync::atomic::Ordering::AcqRel) + 1
    }
}

impl std::fmt::Debug for PlanSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanSlot")
            .field("installed", &self.cache.lock().is_some())
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// Bundles everything an Ocelot operator needs: the device, its command
/// queue and the Memory Manager (paper Figure 2).
pub struct OcelotContext {
    device: Device,
    queue: Arc<Queue>,
    memory: MemoryManager,
    /// The device-wide shared column cache, when this context was created
    /// from a [`SharedDevice`]. Base-column binds route through it; `None`
    /// falls back to the Memory Manager's private BAT registry.
    column_cache: Option<Arc<ColumnCache>>,
    /// The device-wide compiled-plan slot, when this context was created
    /// from a [`SharedDevice`] (see [`PlanSlot`]).
    plan_slot: Option<Arc<PlanSlot>>,
}

impl OcelotContext {
    /// Context on the multi-core CPU driver (the paper's "Ocelot on CPU").
    pub fn cpu() -> OcelotContext {
        Self::with_device(Device::cpu_multicore())
    }

    /// Context on the sequential CPU driver (useful for debugging and as a
    /// deterministic baseline in tests).
    pub fn cpu_sequential() -> OcelotContext {
        Self::with_device(Device::cpu_sequential())
    }

    /// Context on the simulated discrete GPU with default parameters
    /// (the paper's "Ocelot on GPU").
    pub fn gpu() -> OcelotContext {
        Self::with_device(Device::simulated_gpu(GpuConfig::default()))
    }

    /// Context on the simulated GPU with an explicit configuration (used by
    /// benchmarks that downscale the device memory).
    pub fn gpu_with(config: GpuConfig) -> OcelotContext {
        Self::with_device(Device::simulated_gpu(config))
    }

    /// Context on an arbitrary device.
    pub fn with_device(device: Device) -> OcelotContext {
        Self::with_device_and_pool(device, Arc::new(BufferPool::new()))
    }

    /// Context on an arbitrary device whose result buffers recycle through a
    /// **shared** pool — the construction [`SharedDevice`] uses so several
    /// contexts (query sessions) on one device reuse each other's finished
    /// intermediates. The context still gets its own command queue: flushes
    /// of one session never execute another session's work.
    pub fn with_device_and_pool(device: Device, pool: Arc<BufferPool>) -> OcelotContext {
        let queue = Arc::new(device.create_queue());
        let memory = MemoryManager::with_pool(device.clone(), Arc::clone(&queue), pool);
        OcelotContext { device, queue, memory, column_cache: None, plan_slot: None }
    }

    /// Attaches the device's shared column cache: base-column binds are
    /// served from (and admitted to) it, and it is registered as a
    /// reclaim-time eviction sink with this context's Memory Manager.
    pub fn attach_column_cache(&mut self, cache: Arc<ColumnCache>) {
        self.memory.register_eviction_sink(Arc::clone(&cache) as Arc<_>);
        self.column_cache = Some(cache);
    }

    /// The shared column cache, when attached (see
    /// [`OcelotContext::attach_column_cache`]).
    pub fn column_cache(&self) -> Option<&Arc<ColumnCache>> {
        self.column_cache.as_ref()
    }

    /// Attaches the device's compiled-plan slot (done by
    /// [`SharedDevice::context`]).
    pub fn attach_plan_slot(&mut self, slot: Arc<PlanSlot>) {
        self.plan_slot = Some(slot);
    }

    /// The device-wide compiled-plan slot, when attached.
    pub fn plan_slot(&self) -> Option<&Arc<PlanSlot>> {
        self.plan_slot.as_ref()
    }

    /// The **release + evict** step of the OOM-restart protocol (delegates
    /// to [`MemoryManager::reclaim`]): flush pending work, drain idle
    /// pooled buffers, evict unpinned cached columns. Returns whether the
    /// pass made progress — callers only retry a failed node when it did.
    pub fn reclaim_device_memory(&self, requested_bytes: usize) -> bool {
        self.memory.reclaim(requested_bytes)
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The lazily evaluated command queue.
    pub fn queue(&self) -> &Queue {
        &self.queue
    }

    /// An owned handle to the command queue (shareable with a scheduler
    /// that observes or drains sessions from another thread).
    pub fn shared_queue(&self) -> Arc<Queue> {
        Arc::clone(&self.queue)
    }

    /// The Memory Manager.
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    /// Default launch configuration for `n` elements (delegates to the
    /// driver's heuristic — operators never pick their own group sizes).
    pub fn launch(&self, n: usize) -> LaunchConfig {
        self.device.launch_config(n)
    }

    /// Launch configuration with `local_words` words of per-group local
    /// memory.
    pub fn launch_with_local(&self, n: usize, local_words: usize) -> LaunchConfig {
        self.device.launch_config_with_local(n, local_words)
    }

    /// Allocates a result buffer of `words` values, evicting cached BATs if
    /// the device is out of memory.
    pub fn alloc(&self, words: usize, label: &str) -> Result<Buffer> {
        self.memory.alloc_result(words, label)
    }

    /// Allocates a result buffer whose contents are unspecified (fast path
    /// for kernels that overwrite every word — see
    /// [`MemoryManager::alloc_result_uninit`]).
    pub fn alloc_uninit(&self, words: usize, label: &str) -> Result<Buffer> {
        self.memory.alloc_result_uninit(words, label)
    }

    /// Uploads host values into a fresh device column (lazy: only the
    /// host→device transfer is scheduled).
    pub fn upload<T: DevWord>(&self, values: &[T], label: &str) -> Result<DevColumn<T>> {
        let buffer = self.alloc(values.len().max(1), label)?;
        T::copy_to_buffer(values, &buffer);
        // Charge the transfer for the logical values only (the pool may
        // have handed back a class-rounded buffer).
        let event = self.queue.enqueue_write_prefix(&buffer, values.len(), &[])?;
        self.memory.record_producer(&buffer, event);
        DevColumn::new(buffer, values.len())
    }

    /// Uploads host integers into a fresh device column.
    pub fn upload_i32(&self, values: &[i32], label: &str) -> Result<DevColumn<i32>> {
        self.upload(values, label)
    }

    /// Uploads host floats into a fresh device column.
    pub fn upload_f32(&self, values: &[f32], label: &str) -> Result<DevColumn<f32>> {
        self.upload(values, label)
    }

    /// Uploads host OIDs into a fresh device column.
    pub fn upload_u32(&self, values: &[u32], label: &str) -> Result<DevColumn<Oid>> {
        self.upload(values, label)
    }

    /// Wait-list for an operation that reads `column`: the producers of its
    /// value buffer *and*, when the length is deferred, of its counter.
    pub fn wait_for<T: DevWord>(&self, column: &DevColumn<T>) -> Vec<EventId> {
        let mut wait = self.memory.wait_for_read(&column.buffer);
        if let ColLen::Device { counter, .. } = column.col_len() {
            wait.extend(self.memory.wait_for_read(counter));
        }
        wait
    }

    /// Ensures every scheduled operation affecting `buffer` has executed and
    /// charges the device→host transfer of its first `words` words. The
    /// shared implementation behind [`DevScalar::get`] / [`DevColumn::read`]
    /// — and deliberately *not* public: operators must return deferred
    /// values, not synchronise internally.
    pub(crate) fn materialize(&self, buffer: &Buffer, words: usize) -> Result<()> {
        self.materialize_with(buffer, words, None)
    }

    /// [`OcelotContext::materialize`] with an explicit extra producer event
    /// to wait on — used by [`DevScalar::get`], whose handle carries the
    /// event that writes its word (covering scalars whose producer was never
    /// registered with the Memory Manager).
    pub(crate) fn materialize_with(
        &self,
        buffer: &Buffer,
        words: usize,
        producer: Option<EventId>,
    ) -> Result<()> {
        // In-order queue: nothing pending means every issued operation has
        // already executed. On unified-memory devices the host view is then
        // current and the read is free; a discrete device is still charged
        // the PCIe transfer of the logical prefix — the data lives on the
        // device regardless of flush state.
        if self.queue.pending_ops() == 0 && self.device.is_unified() {
            return Ok(());
        }
        let mut wait = self.memory.wait_for_read(buffer);
        if let Some(event) = producer {
            if !wait.contains(&event) {
                wait.push(event);
            }
        }
        self.queue.enqueue_read_prefix(buffer, words, &wait)?;
        self.queue.flush()?;
        Ok(())
    }

    /// Flushes every scheduled operation (the `sync` operator's core — the
    /// ownership hand-back boundary the MAL rewriter inserts).
    pub fn sync(&self) -> Result<ocelot_kernel::FlushStats> {
        self.queue.flush()
    }

    /// Attaches one trace sink to every emitter reachable from this
    /// context: the command queue (kernel/transfer/flush events), the
    /// device (allocation events), the Memory Manager (spill/unspill
    /// events) and the shared column cache when one is attached
    /// (bind/evict events). Events interleave on the shared sink in
    /// arrival order.
    pub fn attach_tracer(&self, sink: &Arc<ocelot_trace::TraceSink>) {
        self.queue.trace().attach(Arc::clone(sink));
        self.device.trace().attach(Arc::clone(sink));
        self.memory.trace().attach(Arc::clone(sink));
        if let Some(cache) = &self.column_cache {
            cache.trace().attach(Arc::clone(sink));
        }
    }

    /// Detaches the tracer from every emitter [`OcelotContext::attach_tracer`]
    /// wired up, returning them to the one-relaxed-load disabled path.
    pub fn detach_tracer(&self) {
        self.queue.trace().detach();
        self.device.trace().detach();
        self.memory.trace().detach();
        if let Some(cache) = &self.column_cache {
            cache.trace().detach();
        }
    }
}

impl std::fmt::Debug for OcelotContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OcelotContext").field("device", self.device.info()).finish()
    }
}

/// One physical device plus the buffer pool its sessions share.
///
/// A [`SharedDevice`] is the factory for *session contexts*: every
/// [`SharedDevice::context`] call produces a fresh [`OcelotContext`] with
/// its **own** command queue and Memory Manager (so per-session flush
/// accounting and event bookkeeping stay independent) but a **shared**
/// [`BufferPool`] and the same underlying device memory accountant. This is
/// the cross-context reuse point the ROADMAP left open after PR 2: result
/// buffers released by one session's finished query serve the allocations
/// of the next, whichever context it runs in.
#[derive(Clone)]
pub struct SharedDevice {
    device: Device,
    pool: Arc<BufferPool>,
    /// The device-wide column cache every session context binds through
    /// (see `crate::cache` for the resident/pinned/evicted contract).
    cache: Arc<ColumnCache>,
    /// Cap on device-wide used bytes (`usize::MAX` = unlimited), applied
    /// to every session's Memory Manager (exercises the eviction/restart
    /// paths even on unified-memory devices whose physical capacity is
    /// effectively unbounded). Shared across clones — like the cache and
    /// pool budgets it adjusts, it is device-wide state, so setting it on
    /// any handle consistently affects every session of the device.
    memory_budget: Arc<std::sync::atomic::AtomicUsize>,
    /// The device-wide compiled-plan slot every session context carries
    /// (see [`PlanSlot`] — the engine installs its plan cache here).
    plans: Arc<PlanSlot>,
}

impl SharedDevice {
    /// Shared multi-core CPU device.
    pub fn cpu() -> SharedDevice {
        Self::with_device(Device::cpu_multicore())
    }

    /// Shared sequential CPU device (deterministic baseline).
    pub fn cpu_sequential() -> SharedDevice {
        Self::with_device(Device::cpu_sequential())
    }

    /// Shared simulated discrete GPU with default parameters.
    pub fn gpu() -> SharedDevice {
        Self::with_device(Device::simulated_gpu(GpuConfig::default()))
    }

    /// Shared simulated GPU with an explicit configuration.
    pub fn gpu_with(config: GpuConfig) -> SharedDevice {
        Self::with_device(Device::simulated_gpu(config))
    }

    /// Wraps an arbitrary device with a fresh shared pool and column cache.
    pub fn with_device(device: Device) -> SharedDevice {
        SharedDevice {
            device,
            pool: Arc::new(BufferPool::new()),
            cache: Arc::new(ColumnCache::new()),
            memory_budget: Arc::new(std::sync::atomic::AtomicUsize::new(usize::MAX)),
            plans: Arc::new(PlanSlot::new()),
        }
    }

    /// Caps device-wide used bytes at `bytes` for every session created
    /// from this handle. The column cache's resident budget and the
    /// buffer pool's retained-byte cap are shrunk along with it (half the
    /// budget each) so neither can hoard the whole allowance.
    pub fn with_memory_budget(self, bytes: usize) -> SharedDevice {
        self.memory_budget.store(bytes, std::sync::atomic::Ordering::Relaxed);
        self.cache.set_budget(bytes / 2);
        self.pool.set_max_retained_bytes(bytes / 2);
        self
    }

    /// Overrides the column cache's resident-byte budget independently of
    /// the device-memory budget.
    pub fn with_cache_budget(self, bytes: usize) -> SharedDevice {
        self.cache.set_budget(bytes);
        self
    }

    /// The configured device-memory budget, if any.
    pub fn memory_budget(&self) -> Option<usize> {
        match self.memory_budget.load(std::sync::atomic::Ordering::Relaxed) {
            usize::MAX => None,
            bytes => Some(bytes),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The pool every session context of this device allocates through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The column cache every session context of this device binds through.
    pub fn cache(&self) -> &Arc<ColumnCache> {
        &self.cache
    }

    /// The compiled-plan slot shared by every session of this device.
    pub fn plan_slot(&self) -> &Arc<PlanSlot> {
        &self.plans
    }

    /// Creates a session context: own queue and Memory Manager, shared
    /// buffer pool, shared column cache and shared device memory (the
    /// memory budget, when set, is installed on the new manager).
    pub fn context(&self) -> OcelotContext {
        let mut ctx =
            OcelotContext::with_device_and_pool(self.device.clone(), Arc::clone(&self.pool));
        if let Some(budget) = self.memory_budget() {
            ctx.memory().set_budget(budget);
        }
        ctx.attach_column_cache(Arc::clone(&self.cache));
        ctx.attach_plan_slot(Arc::clone(&self.plans));
        ctx
    }
}

impl std::fmt::Debug for SharedDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedDevice")
            .field("device", self.device.info())
            .field("pool", &self.pool)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_read_round_trip() {
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let ints = ctx.upload_i32(&[1, -2, 3], "ints").unwrap();
            assert_eq!(ints.read(&ctx).unwrap(), vec![1, -2, 3]);
            let floats = ctx.upload_f32(&[0.5, 2.5], "floats").unwrap();
            assert_eq!(floats.read(&ctx).unwrap(), vec![0.5, 2.5]);
            let words = ctx.upload_u32(&[7, 9], "words").unwrap();
            assert_eq!(words.read(&ctx).unwrap(), vec![7, 9]);
        }
    }

    #[test]
    fn dev_column_checks_length() {
        let ctx = OcelotContext::cpu_sequential();
        let buffer = ctx.alloc(10, "buf").unwrap();
        let col: DevColumn<i32> = DevColumn::new(buffer.clone(), 5).unwrap();
        assert_eq!(col.host_len(), Some(5));
        assert_eq!(col.cap(), 5);
        assert!(!col.is_deferred());
    }

    #[test]
    fn dev_column_rejects_overlong_claim_as_error() {
        let ctx = OcelotContext::cpu_sequential();
        let buffer = ctx.alloc(2, "short").unwrap();
        let err = DevColumn::<i32>::new(buffer, 5).unwrap_err();
        match err {
            KernelError::BufferTooShort { label, buffer_words, column_len } => {
                assert_eq!(label, "short");
                assert_eq!(buffer_words, 2);
                assert_eq!(column_len, 5);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn deferred_column_resolves_via_counter() {
        let ctx = OcelotContext::cpu_sequential();
        let buffer = ctx.alloc(8, "data").unwrap();
        buffer.copy_from_u32(&[10, 11, 12, 13, 0, 0, 0, 0]);
        let counter = ctx.alloc(1, "count").unwrap();
        counter.set_u32(0, 4);
        let col: DevColumn<Oid> = DevColumn::deferred(buffer, counter, 8).unwrap();
        assert!(col.is_deferred());
        assert_eq!(col.host_len(), None);
        assert_eq!(col.cap(), 8);
        assert_eq!(col.len(&ctx).unwrap(), 4);
        assert_eq!(col.read(&ctx).unwrap(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn dev_scalar_constant_round_trips() {
        let ctx = OcelotContext::cpu();
        let s = DevScalar::constant(&ctx, -1.5f32).unwrap();
        assert_eq!(s.get(&ctx).unwrap(), -1.5);
        let n = DevScalar::constant(&ctx, 42u32).unwrap();
        assert_eq!(n.get(&ctx).unwrap(), 42);
    }

    #[test]
    fn reinterpret_preserves_bits() {
        let ctx = OcelotContext::cpu();
        let floats = ctx.upload_f32(&[1.0, -2.0], "f").unwrap();
        let words: DevColumn<Oid> = floats.reinterpret();
        assert_eq!(words.read(&ctx).unwrap(), vec![1.0f32.to_bits(), (-2.0f32).to_bits()]);
    }

    #[test]
    fn launch_delegates_to_driver() {
        let ctx = OcelotContext::cpu();
        let launch = ctx.launch(100);
        assert_eq!(launch.num_groups, ctx.device().info().compute_cores);
        let with_local = ctx.launch_with_local(100, 64);
        assert_eq!(with_local.local_mem_words, 64);
    }

    #[test]
    fn sync_flushes_pending_work() {
        let ctx = OcelotContext::cpu();
        let _col = ctx.upload_i32(&[1, 2, 3], "c").unwrap();
        assert!(ctx.queue().pending_ops() > 0);
        ctx.sync().unwrap();
        assert_eq!(ctx.queue().pending_ops(), 0);
    }

    #[test]
    fn shared_device_contexts_share_the_pool_but_not_queues() {
        let shared = SharedDevice::cpu_sequential();
        let a = shared.context();
        let b = shared.context();
        // Queues are per-session: enqueueing in one leaves the other empty.
        let data = vec![7; 20_000];
        let col = a.upload_i32(&data, "a_data").unwrap();
        assert!(a.queue().pending_ops() > 0);
        assert_eq!(b.queue().pending_ops(), 0);
        assert_eq!(col.read(&a).unwrap().len(), 20_000);
        // The pool is shared: b's same-class allocation reuses a's buffer.
        drop(col);
        let reused = b.alloc(20_000, "b_data").unwrap();
        drop(reused);
        assert!(shared.pool().stats().cross_context_hits > 0);
    }

    #[test]
    fn reads_without_pending_work_do_not_flush_again() {
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&[5, 6], "c").unwrap();
        let _ = col.read(&ctx).unwrap();
        let flushes = ctx.queue().flush_count();
        // A second read finds the queue drained and skips the flush.
        let _ = col.read(&ctx).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes);
    }
}
