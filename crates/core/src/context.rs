//! The Ocelot execution context: device + lazily evaluated queue + Memory
//! Manager, plus typed column handles.

use crate::memory_manager::MemoryManager;
use ocelot_kernel::{Buffer, Device, GpuConfig, LaunchConfig, Queue, Result};
use std::sync::Arc;

/// A handle to a column that lives in device memory.
///
/// The buffer holds `len` four-byte values; how they are interpreted
/// (`i32`, `f32`, OID) is decided by the operator that consumes them, which
/// mirrors how OpenCL kernels see untyped `cl_mem` objects.
#[derive(Debug, Clone)]
pub struct DevColumn {
    /// The device buffer holding the values.
    pub buffer: Buffer,
    /// Number of logical values (may be smaller than `buffer.len()`).
    pub len: usize,
}

impl DevColumn {
    /// Wraps a buffer holding `len` values.
    pub fn new(buffer: Buffer, len: usize) -> DevColumn {
        assert!(buffer.len() >= len, "DevColumn: buffer shorter than declared length");
        DevColumn { buffer, len }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Bundles everything an Ocelot operator needs: the device, its command
/// queue and the Memory Manager (paper Figure 2).
pub struct OcelotContext {
    device: Device,
    queue: Arc<Queue>,
    memory: MemoryManager,
}

impl OcelotContext {
    /// Context on the multi-core CPU driver (the paper's "Ocelot on CPU").
    pub fn cpu() -> OcelotContext {
        Self::with_device(Device::cpu_multicore())
    }

    /// Context on the sequential CPU driver (useful for debugging and as a
    /// deterministic baseline in tests).
    pub fn cpu_sequential() -> OcelotContext {
        Self::with_device(Device::cpu_sequential())
    }

    /// Context on the simulated discrete GPU with default parameters
    /// (the paper's "Ocelot on GPU").
    pub fn gpu() -> OcelotContext {
        Self::with_device(Device::simulated_gpu(GpuConfig::default()))
    }

    /// Context on the simulated GPU with an explicit configuration (used by
    /// benchmarks that downscale the device memory).
    pub fn gpu_with(config: GpuConfig) -> OcelotContext {
        Self::with_device(Device::simulated_gpu(config))
    }

    /// Context on an arbitrary device.
    pub fn with_device(device: Device) -> OcelotContext {
        let queue = Arc::new(device.create_queue());
        let memory = MemoryManager::new(device.clone(), Arc::clone(&queue));
        OcelotContext { device, queue, memory }
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The lazily evaluated command queue.
    pub fn queue(&self) -> &Queue {
        &self.queue
    }

    /// The Memory Manager.
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    /// Default launch configuration for `n` elements (delegates to the
    /// driver's heuristic — operators never pick their own group sizes).
    pub fn launch(&self, n: usize) -> LaunchConfig {
        self.device.launch_config(n)
    }

    /// Launch configuration with `local_words` words of per-group local
    /// memory.
    pub fn launch_with_local(&self, n: usize, local_words: usize) -> LaunchConfig {
        self.device.launch_config_with_local(n, local_words)
    }

    /// Allocates a result buffer of `words` values, evicting cached BATs if
    /// the device is out of memory.
    pub fn alloc(&self, words: usize, label: &str) -> Result<Buffer> {
        self.memory.alloc_result(words, label)
    }

    /// Allocates a result buffer whose contents are unspecified (fast path
    /// for kernels that overwrite every word — see
    /// [`MemoryManager::alloc_result_uninit`]).
    pub fn alloc_uninit(&self, words: usize, label: &str) -> Result<Buffer> {
        self.memory.alloc_result_uninit(words, label)
    }

    /// Uploads host integers into a fresh device column.
    pub fn upload_i32(&self, values: &[i32], label: &str) -> Result<DevColumn> {
        let buffer = self.alloc(values.len(), label)?;
        buffer.copy_from_i32(values);
        self.queue.enqueue_write(&buffer, &[])?;
        Ok(DevColumn::new(buffer, values.len()))
    }

    /// Uploads host floats into a fresh device column.
    pub fn upload_f32(&self, values: &[f32], label: &str) -> Result<DevColumn> {
        let buffer = self.alloc(values.len(), label)?;
        buffer.copy_from_f32(values);
        self.queue.enqueue_write(&buffer, &[])?;
        Ok(DevColumn::new(buffer, values.len()))
    }

    /// Uploads host 32-bit words (OIDs) into a fresh device column.
    pub fn upload_u32(&self, values: &[u32], label: &str) -> Result<DevColumn> {
        let buffer = self.alloc(values.len(), label)?;
        buffer.copy_from_u32(values);
        self.queue.enqueue_write(&buffer, &[])?;
        Ok(DevColumn::new(buffer, values.len()))
    }

    /// Flushes outstanding work and reads a column back as integers.
    pub fn download_i32(&self, column: &DevColumn) -> Result<Vec<i32>> {
        self.queue.enqueue_read(&column.buffer, &[])?;
        self.queue.flush()?;
        Ok(column.buffer.prefix_i32(column.len))
    }

    /// Flushes outstanding work and reads a column back as floats.
    pub fn download_f32(&self, column: &DevColumn) -> Result<Vec<f32>> {
        self.queue.enqueue_read(&column.buffer, &[])?;
        self.queue.flush()?;
        Ok(column.buffer.prefix_f32(column.len))
    }

    /// Flushes outstanding work and reads a column back as raw words.
    pub fn download_u32(&self, column: &DevColumn) -> Result<Vec<u32>> {
        self.queue.enqueue_read(&column.buffer, &[])?;
        self.queue.flush()?;
        Ok(column.buffer.prefix_u32(column.len))
    }

    /// Flushes every scheduled operation (the `sync` operator's core).
    pub fn sync(&self) -> Result<ocelot_kernel::FlushStats> {
        self.queue.flush()
    }
}

impl std::fmt::Debug for OcelotContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OcelotContext").field("device", self.device.info()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upload_download_round_trip() {
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let ints = ctx.upload_i32(&[1, -2, 3], "ints").unwrap();
            assert_eq!(ctx.download_i32(&ints).unwrap(), vec![1, -2, 3]);
            let floats = ctx.upload_f32(&[0.5, 2.5], "floats").unwrap();
            assert_eq!(ctx.download_f32(&floats).unwrap(), vec![0.5, 2.5]);
            let words = ctx.upload_u32(&[7, 9], "words").unwrap();
            assert_eq!(ctx.download_u32(&words).unwrap(), vec![7, 9]);
        }
    }

    #[test]
    fn dev_column_checks_length() {
        let ctx = OcelotContext::cpu_sequential();
        let buffer = ctx.alloc(10, "buf").unwrap();
        let col = DevColumn::new(buffer.clone(), 5);
        assert_eq!(col.len, 5);
        assert!(!col.is_empty());
    }

    #[test]
    #[should_panic(expected = "shorter than declared")]
    fn dev_column_rejects_overlong_claim() {
        let ctx = OcelotContext::cpu_sequential();
        let buffer = ctx.alloc(2, "buf").unwrap();
        DevColumn::new(buffer, 5);
    }

    #[test]
    fn launch_delegates_to_driver() {
        let ctx = OcelotContext::cpu();
        let launch = ctx.launch(100);
        assert_eq!(launch.num_groups, ctx.device().info().compute_cores);
        let with_local = ctx.launch_with_local(100, 64);
        assert_eq!(with_local.local_mem_words, 64);
    }

    #[test]
    fn sync_flushes_pending_work() {
        let ctx = OcelotContext::cpu();
        let _col = ctx.upload_i32(&[1, 2, 3], "c").unwrap();
        assert!(ctx.queue().pending_ops() > 0);
        ctx.sync().unwrap();
        assert_eq!(ctx.queue().pending_ops(), 0);
    }
}
