//! # ocelot-core — hardware-oblivious relational operators
//!
//! This crate is the Rust reproduction of the paper's primary contribution:
//! a *single* set of relational operators written against the kernel
//! programming model ([`ocelot_kernel`]), with no inherent reliance on any
//! particular hardware architecture. The same operator code runs unchanged
//! on the sequential CPU driver, the multi-core CPU driver and the simulated
//! discrete GPU — the only device-dependent decisions (launch configuration
//! and preferred memory-access pattern) are made by the driver, exactly as
//! the paper prescribes (§4.2).
//!
//! The crate is organised the way Figure 2 of the paper draws the system:
//!
//! * [`context::OcelotContext`] — bundles a device, its lazily evaluated
//!   command queue and the Memory Manager (the paper's "OpenCL context
//!   management" + "memory manager" boxes).
//! * [`memory_manager::MemoryManager`] — transparently turns MonetDB-style
//!   BATs into device buffers, caches them on the device, evicts in LRU
//!   order under memory pressure, supports pinning, offloads intermediates
//!   to the host, and tracks producer/consumer events per buffer (§3.3).
//! * [`cache::ColumnCache`] — the *device-wide* base-column cache shared by
//!   every session of a [`SharedDevice`]: lazy upload on first bind,
//!   refcounted pinning through the deferred-value handles, second-chance
//!   eviction under a byte budget, and the OOM-restart protocol that lets
//!   plans survive allocation failure (§3.3, §4.3 — see the module docs
//!   for the full lifecycle contract).
//! * [`primitives`] — the data-parallel building blocks the operators are
//!   composed of: prefix sums, gather, reduction, bitmaps and the two-phase
//!   "count, scan, write" pattern used whenever result sizes are unknown.
//! * [`ops`] — the operators themselves: bitmap selection, projection /
//!   fetch join, radix sort, the optimistic/pessimistic parallel hash table,
//!   hash and nested-loop joins, grouping and aggregation (§4.1).
//!
//! ## Quick example
//!
//! ```
//! use ocelot_core::context::OcelotContext;
//! use ocelot_core::ops;
//!
//! // The same code runs on any device — swap in `OcelotContext::gpu()` or
//! // `OcelotContext::cpu_sequential()` and nothing else changes. Every
//! // operator returns a *deferred* device value; `.read()` / `.get()` at
//! // the end is the pipeline's single synchronisation point.
//! let ctx = OcelotContext::cpu();
//! let column = ctx.upload_i32(&[5, 1, 9, 3, 7, 3], "values").unwrap();
//! let bitmap = ops::select::select_range_i32(&ctx, &column, 3, 7).unwrap();
//! let oids = ops::select::materialize_bitmap(&ctx, &bitmap).unwrap();
//! assert_eq!(oids.read(&ctx).unwrap(), vec![0, 3, 4, 5]);
//! ```

pub mod buffer_pool;
pub mod cache;
pub mod context;
pub mod memory_manager;
pub mod ops;
pub mod partition;
pub mod primitives;
pub mod recovery;

pub use buffer_pool::{BufferPool, PoolStats};
pub use cache::{CacheStats, ColumnCache, DeviceOom, Pinned};
pub use context::{
    ColLen, DevColumn, DevScalar, DevWord, LenSource, OcelotContext, Oid, PlanSlot, SharedDevice,
};
pub use memory_manager::{EvictionSink, MemoryManager, MemoryStats};
pub use ocelot_trace::{MetricsRegistry, TraceEvent, TraceEventKind, TraceHandle, TraceSink};
pub use partition::{
    partition_by_key, partitioned_pkfk_join, Partition, PartitionedJoin, PartitionedJoinConfig,
    SpillPool, SpillStats,
};
pub use primitives::bitmap::Bitmap;
pub use recovery::{DeviceLostFault, TransientFault};
