//! The Memory Manager (paper §3.3).
//!
//! The Memory Manager is the storage interface between Ocelot and the BAT
//! world: operators never allocate device memory themselves, they request
//! buffers for BATs and result columns here. Responsibilities reproduced
//! from the paper:
//!
//! * **BAT registry / device cache** — the first request for a BAT uploads
//!   it and registers the buffer; later requests are served from the cache.
//!   On unified-memory devices the "upload" is zero-copy (no transfer cost);
//!   on the simulated GPU it is charged PCIe transfer time.
//! * **LRU eviction** — when an allocation does not fit, unpinned,
//!   not-in-use cache entries are evicted in least-recently-used order and
//!   the allocation is retried.
//! * **Pinning & reference counting** — pinned BATs are never evicted;
//!   entries whose buffer handle is still held by a running operator are
//!   skipped as well (the `handle_count` check).
//! * **Host offload** — intermediate result buffers can be offloaded to the
//!   host and restored later instead of being recomputed.
//! * **Producer/consumer events** — every buffer's pending writes and reads
//!   are tracked so operators can build wait-lists for the lazy queue
//!   (paper §3.4).
//! * **Hash-table cache** — hash tables built over base-table columns are
//!   cached for reuse across queries (paper §5.2.6).
//! * **Result-buffer recycling** — operators allocate a fresh result buffer
//!   per call; without pooling every large allocation is served by fresh
//!   zero pages whose page-in cost lands on the first kernel that touches
//!   them. Recycling is delegated to a [`BufferPool`] (power-of-two size
//!   classes, idle-when-`handle_count() == 1` reuse guard — see
//!   `crate::buffer_pool` for the full protocol). Since PR 3 the pool is a
//!   standalone, `Arc`-shared object: managers created from the same
//!   [`crate::SharedDevice`] recycle buffers **across contexts**, so one
//!   query session's finished intermediates serve the next session's
//!   allocations.

use crate::buffer_pool::{recycle_class, BufferPool, MIN_POOLED_WORDS};
use crate::ops::hash_table::OcelotHashTable;
use ocelot_kernel::{Buffer, Device, EventId, HostCopy, KernelError, Queue, Result};
use ocelot_storage::BatRef;
use ocelot_trace::{MetricsRegistry, TraceEventKind, TraceHandle};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// An external holder of evictable device memory (the shared
/// [`ColumnCache`](crate::cache::ColumnCache) is the canonical one).
/// Registered sinks are consulted **only** by [`MemoryManager::reclaim`] —
/// the plan layer's OOM-restart pass — never by the inline per-allocation
/// eviction chain: dropping a shared base column mid-node would thrash
/// re-uploads and could invalidate data the very node about to be retried
/// still binds. See `crate::cache` for the full protocol.
pub trait EvictionSink: Send + Sync {
    /// Drops one evictable entry; returns whether anything was released.
    fn evict_one(&self) -> bool;
}

/// Cache/transfer statistics, used by benchmarks (Figure 7b/7d swapping
/// analysis) and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Cache hits when requesting a BAT buffer.
    pub cache_hits: u64,
    /// Cache misses (uploads).
    pub cache_misses: u64,
    /// Number of cache entries evicted under memory pressure.
    pub evictions: u64,
    /// Bytes uploaded host → device for BATs.
    pub bytes_uploaded: u64,
    /// Bytes of intermediates offloaded to the host.
    pub bytes_offloaded: u64,
    /// Hash-table cache hits.
    pub hash_cache_hits: u64,
    /// Result-buffer allocations served from the recycle pool (this
    /// manager's hits only; the shared pool's own [`BufferPool::stats`]
    /// additionally distinguishes cross-context hits).
    pub recycle_hits: u64,
}

impl MemoryStats {
    /// Projects these counters into a [`MetricsRegistry`] under
    /// `<prefix>.cache_hits`, `<prefix>.cache_misses`,
    /// `<prefix>.evictions`, `<prefix>.bytes_uploaded`,
    /// `<prefix>.bytes_offloaded`, `<prefix>.hash_cache_hits` and
    /// `<prefix>.recycle_hits`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.cache_hits"), self.cache_hits);
        registry.set_counter(&format!("{prefix}.cache_misses"), self.cache_misses);
        registry.set_counter(&format!("{prefix}.evictions"), self.evictions);
        registry.set_counter(&format!("{prefix}.bytes_uploaded"), self.bytes_uploaded);
        registry.set_counter(&format!("{prefix}.bytes_offloaded"), self.bytes_offloaded);
        registry.set_counter(&format!("{prefix}.hash_cache_hits"), self.hash_cache_hits);
        registry.set_counter(&format!("{prefix}.recycle_hits"), self.recycle_hits);
    }
}

struct CacheEntry {
    buffer: Buffer,
    /// Keeps the BAT alive while it is cached: the cache key is the BAT's
    /// allocation address, so the registry must hold a reference to prevent
    /// a later BAT from reusing the address and aliasing the entry.
    #[allow(dead_code)]
    bat: BatRef,
    last_used: u64,
    pinned: bool,
}

#[derive(Default)]
struct EventEntry {
    producers: Vec<EventId>,
    consumers: Vec<EventId>,
}

struct State {
    cache: HashMap<usize, CacheEntry>,
    clock: u64,
    stats: MemoryStats,
    events: HashMap<u64, EventEntry>,
    hash_tables: HashMap<usize, Arc<OcelotHashTable>>,
    offloaded: HashMap<u64, HostCopy>,
}

/// The Memory Manager. One instance per [`crate::OcelotContext`]; the
/// recycle pool it allocates through may be shared with other managers on
/// the same device (see [`MemoryManager::with_pool`]).
pub struct MemoryManager {
    device: Device,
    queue: Arc<Queue>,
    pool: Arc<BufferPool>,
    pool_client: u64,
    /// Hard cap on *device-wide* used bytes this manager will allocate up
    /// to (defaults to unlimited; the device's own capacity still applies).
    /// Checked against the shared accountant, so every session of a
    /// [`crate::SharedDevice`] given the same budget behaves like a small
    /// device even on unified-memory hardware.
    budget: AtomicUsize,
    /// Reclaim-time eviction callbacks (see [`EvictionSink`]).
    sinks: Mutex<Vec<Arc<dyn EvictionSink>>>,
    state: Mutex<State>,
    trace: TraceHandle,
}

/// Stable cache key for a BAT: the address of its shared allocation.
fn bat_key(bat: &BatRef) -> usize {
    Arc::as_ptr(bat) as usize
}

impl MemoryManager {
    /// Creates a Memory Manager with a private recycle pool.
    pub fn new(device: Device, queue: Arc<Queue>) -> MemoryManager {
        Self::with_pool(device, queue, Arc::new(BufferPool::new()))
    }

    /// Creates a Memory Manager that recycles result buffers through a
    /// shared [`BufferPool`] — the cross-context construction used by
    /// [`crate::SharedDevice`]. The pool must belong to the same device:
    /// pooled buffers are handed straight to kernels on this queue.
    pub fn with_pool(device: Device, queue: Arc<Queue>, pool: Arc<BufferPool>) -> MemoryManager {
        let pool_client = pool.register_client();
        MemoryManager {
            device,
            queue,
            pool,
            pool_client,
            budget: AtomicUsize::new(usize::MAX),
            sinks: Mutex::new(Vec::new()),
            state: Mutex::new(State {
                cache: HashMap::new(),
                clock: 0,
                stats: MemoryStats::default(),
                events: HashMap::new(),
                hash_tables: HashMap::new(),
                offloaded: HashMap::new(),
            }),
            trace: TraceHandle::new(),
        }
    }

    /// The manager's trace attachment point: with a sink attached,
    /// intermediate offloads emit [`TraceEventKind::Spill`] and restores
    /// emit [`TraceEventKind::Unspill`] (see the `ocelot_trace` emission
    /// contract).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The (possibly shared) result-buffer recycle pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Caps allocations at `bytes` of device-wide used memory (see the
    /// `budget` field). Exceeding the cap behaves exactly like running out
    /// of physical device memory: inline eviction, then
    /// [`KernelError::OutOfDeviceMemory`].
    pub fn set_budget(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// The configured device-memory budget (`usize::MAX` = unlimited).
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Bytes still allocatable under both the device capacity and the
    /// configured budget.
    pub fn headroom(&self) -> usize {
        let used = self.device.memory().used();
        self.device.memory().available().min(self.budget().saturating_sub(used))
    }

    /// Registers a reclaim-time eviction callback (see [`EvictionSink`]).
    pub fn register_eviction_sink(&self, sink: Arc<dyn EvictionSink>) {
        self.sinks.lock().push(sink);
    }

    /// The **release + evict** half of the OOM-restart protocol: flushes
    /// the queue (pending operations drop their buffer clones, so dead
    /// intermediates and the failed node's partial allocations become
    /// idle), drains every idle pooled buffer, evicts this manager's own
    /// unpinned cached BATs, and sweeps the registered eviction sinks (the
    /// shared column cache) dry. The pass is deliberately **aggressive** —
    /// everything evictable goes, not just `requested_bytes` worth: a
    /// restarted node re-runs its whole allocation sequence, so freeing
    /// minimally would ratchet through one restart per allocation and
    /// exhaust the restart limit before converging. After the pass, used
    /// memory is exactly the pinned working set plus live registers —
    /// if the retry still does not fit, the plan genuinely cannot run in
    /// the budget. Returns whether the pass made progress — the plan
    /// layer only restarts a failed node when it did.
    pub fn reclaim(&self, requested_bytes: usize) -> bool {
        let _ = requested_bytes;
        let had_pending = self.queue.pending_ops() > 0;
        let used_before = self.device.memory().used();
        let _ = self.queue.flush();
        while self.pool.release_one_idle() {}
        while self.evict_one_cached() {}
        let sinks: Vec<Arc<dyn EvictionSink>> = self.sinks.lock().clone();
        for sink in sinks {
            while sink.evict_one() {}
        }
        had_pending || self.device.memory().used() < used_before
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> MemoryStats {
        self.state.lock().stats
    }

    /// Number of BATs currently cached on the device.
    pub fn cached_entries(&self) -> usize {
        self.state.lock().cache.len()
    }

    /// Bytes of device memory currently used by cached BATs.
    pub fn cached_bytes(&self) -> usize {
        self.state.lock().cache.values().map(|e| e.buffer.bytes()).sum()
    }

    /// Returns the device buffer for a BAT, uploading it on first use
    /// (paper: "when a BAT is requested, the corresponding buffer object is
    /// returned from this registry").
    pub fn get_or_upload(&self, bat: &BatRef) -> Result<Buffer> {
        let key = bat_key(bat);
        {
            let mut state = self.state.lock();
            state.clock += 1;
            let clock = state.clock;
            let cached = state.cache.get_mut(&key).map(|entry| {
                entry.last_used = clock;
                entry.buffer.clone()
            });
            if let Some(buffer) = cached {
                state.stats.cache_hits += 1;
                return Ok(buffer);
            }
        }
        // Miss: allocate (with eviction retries), fill, and schedule the
        // host-to-device transfer.
        let words = bat.to_words();
        let buffer = self.alloc_with_eviction(words.len(), bat.name())?;
        buffer.copy_from_u32(&words);
        let event = self.queue.enqueue_write_prefix(&buffer, words.len(), &[])?;
        let mut state = self.state.lock();
        state.clock += 1;
        let clock = state.clock;
        state.stats.cache_misses += 1;
        if !self.device.is_unified() {
            state.stats.bytes_uploaded += buffer.bytes() as u64;
        }
        state.events.entry(buffer.id()).or_default().producers.push(event);
        state.cache.insert(
            key,
            CacheEntry {
                buffer: buffer.clone(),
                bat: bat.clone(),
                last_used: clock,
                pinned: false,
            },
        );
        Ok(buffer)
    }

    /// Allocates a result buffer, evicting cached BATs in LRU order until
    /// the allocation fits. Large requests are served from the recycle pool
    /// when an idle same-sized buffer is available (re-zeroed, so callers
    /// may rely on fresh result buffers reading as zero either way).
    pub fn alloc_result(&self, words: usize, label: &str) -> Result<Buffer> {
        let (buffer, recycled) = self.alloc_pooled(words, label)?;
        if recycled {
            // The bulk fill is sound: handle_count was 1 at pop time, so no
            // operator or pending queue op references the buffer.
            buffer.fill_u32(0);
        }
        Ok(buffer)
    }

    /// Like [`MemoryManager::alloc_result`], but the returned words are
    /// **unspecified** (possibly stale data from a recycled buffer) instead
    /// of zero. For operators that overwrite every word they later expose —
    /// scans, gathers, maps, sort shuffles — this skips a full zeroing pass
    /// over the buffer. Never hand the result to a consumer that reads
    /// words the producing kernel did not write.
    pub fn alloc_result_uninit(&self, words: usize, label: &str) -> Result<Buffer> {
        Ok(self.alloc_pooled(words, label)?.0)
    }

    /// Returns `(buffer, came_from_pool)`. Pooled requests are served and
    /// allocated at their power-of-two size class (see [`recycle_class`]).
    fn alloc_pooled(&self, words: usize, label: &str) -> Result<(Buffer, bool)> {
        if words < MIN_POOLED_WORDS {
            return Ok((self.alloc_with_eviction(words, label)?, false));
        }
        let class = recycle_class(words);
        if let Some(buffer) = self.pool.acquire(class, self.pool_client) {
            // Any event bookkeeping in *this* manager belongs to the
            // buffer's previous life here. A previous life in another
            // context left no entries in this manager, and that context's
            // entries are never consulted again (buffer ids are unique per
            // device), so they are merely unused.
            let mut state = self.state.lock();
            state.events.remove(&buffer.id());
            state.stats.recycle_hits += 1;
            return Ok((buffer, true));
        }
        let buffer = self.alloc_with_eviction(class, label)?;
        self.pool.admit(buffer.clone(), self.pool_client);
        Ok((buffer, false))
    }

    /// Exact-size allocation through the inline eviction chain, bypassing
    /// the recycle pool — the allocation path of the shared
    /// [`crate::cache::ColumnCache`] (cached columns must not be
    /// class-rounded or pool-retained).
    pub(crate) fn alloc_exact(&self, words: usize, label: &str) -> Result<Buffer> {
        self.alloc_with_eviction(words, label)
    }

    fn alloc_with_eviction(&self, words: usize, label: &str) -> Result<Buffer> {
        let bytes = words * 4;
        let mut retried_after_flush = false;
        loop {
            // A configured budget is enforced exactly like physical
            // capacity: over-budget requests take the eviction path. The
            // check-and-reserve is atomic in the shared accountant, so
            // concurrent sessions cannot jointly overshoot the budget.
            match self.device.alloc_capped(words, label, self.budget()) {
                Ok(buffer) => return Ok(buffer),
                Err(KernelError::OutOfDeviceMemory { .. }) => {
                    if self.evict_one()? {
                        retried_after_flush = false;
                    } else {
                        // No pool/cache victim — but the flush inside
                        // `evict_one` may still have released non-pooled
                        // buffers held only by pending queue operations.
                        // Give the allocation one retry when room appeared.
                        if !retried_after_flush && self.headroom() >= bytes {
                            retried_after_flush = true;
                            continue;
                        }
                        return Err(KernelError::OutOfDeviceMemory {
                            requested: bytes,
                            available: self.headroom(),
                        });
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Evicts the least-recently-used unpinned, not-in-use cache entry.
    /// Returns `false` when nothing can be evicted.
    fn evict_one(&self) -> Result<bool> {
        // Make sure pending work on cached buffers has executed before we
        // drop one of them.
        self.queue.flush()?;
        // Idle recycled buffers are the cheapest memory to give back:
        // release them before evicting cached BATs (which would have to be
        // re-uploaded).
        if self.pool.release_one_idle() {
            return Ok(true);
        }
        Ok(self.evict_one_cached())
    }

    /// Evicts the least-recently-used unpinned, not-in-use entry of this
    /// manager's private BAT registry (no flush, no pool interaction).
    fn evict_one_cached(&self) -> bool {
        let mut state = self.state.lock();
        let victim = state
            .cache
            .iter()
            .filter(|(_, e)| !e.pinned && e.buffer.handle_count() <= 1)
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| *k);
        match victim {
            Some(key) => {
                if let Some(entry) = state.cache.remove(&key) {
                    state.events.remove(&entry.buffer.id());
                    state.stats.evictions += 1;
                }
                true
            }
            None => false,
        }
    }

    /// Pins a BAT so it is never evicted (paper: "this mechanism can be used
    /// to pin frequently accessed BATs permanently to the device").
    pub fn pin(&self, bat: &BatRef) -> Result<()> {
        let buffer = self.get_or_upload(bat)?;
        let key = bat_key(bat);
        let mut state = self.state.lock();
        if let Some(entry) = state.cache.get_mut(&key) {
            entry.pinned = true;
        }
        drop(buffer);
        Ok(())
    }

    /// Unpins a previously pinned BAT.
    pub fn unpin(&self, bat: &BatRef) {
        let key = bat_key(bat);
        let mut state = self.state.lock();
        if let Some(entry) = state.cache.get_mut(&key) {
            entry.pinned = false;
        }
    }

    /// Drops the cached buffer of a BAT (the callback MonetDB invokes when a
    /// BAT is deleted or recycled, paper §4.3).
    pub fn invalidate(&self, bat: &BatRef) {
        let key = bat_key(bat);
        let mut state = self.state.lock();
        if let Some(entry) = state.cache.remove(&key) {
            state.events.remove(&entry.buffer.id());
        }
        state.hash_tables.remove(&key);
    }

    /// Clears the whole cache (used between benchmark configurations). Also
    /// empties the recycle pool — including buffers donated by other
    /// contexts when the pool is shared.
    pub fn clear(&self) {
        let mut state = self.state.lock();
        state.cache.clear();
        state.events.clear();
        state.hash_tables.clear();
        state.offloaded.clear();
        drop(state);
        self.pool.clear();
    }

    // ---- producer / consumer event tracking (paper §3.4) ----

    /// Entry count past which [`MemoryManager::record_producer`] prunes
    /// event bookkeeping for quiesced buffers (see below).
    const EVENTS_PRUNE_THRESHOLD: usize = 512;

    /// Drops event entries whose every recorded event has completed. Such
    /// entries only ever contribute completed events to wait-lists (no-ops),
    /// so removing them is always sound. This bounds the `events` map on
    /// long-running sessions: without it, buffers that leave this manager's
    /// life through the *shared* pool — retired under the pool cap, or
    /// acquired by another context — would leave their entries behind
    /// forever (only a same-manager re-acquire removes them eagerly).
    fn prune_completed_events(state: &mut State, queue: &Queue) {
        let registry = queue.events();
        state.events.retain(|_, entry| {
            entry
                .producers
                .iter()
                .chain(entry.consumers.iter())
                .any(|event| !registry.is_complete(*event))
        });
    }

    /// Records that `event` produces (writes) `buffer`.
    pub fn record_producer(&self, buffer: &Buffer, event: EventId) {
        let mut state = self.state.lock();
        if state.events.len() >= Self::EVENTS_PRUNE_THRESHOLD {
            Self::prune_completed_events(&mut state, &self.queue);
        }
        state.events.entry(buffer.id()).or_default().producers.push(event);
    }

    /// Records that `event` consumes (reads) `buffer`.
    pub fn record_consumer(&self, buffer: &Buffer, event: EventId) {
        self.state.lock().events.entry(buffer.id()).or_default().consumers.push(event);
    }

    /// Number of buffers with event bookkeeping (observability for the
    /// pruning regression test).
    pub fn tracked_event_entries(&self) -> usize {
        self.state.lock().events.len()
    }

    /// Wait-list for an operation that wants to *read* `buffer`: all of its
    /// producers.
    pub fn wait_for_read(&self, buffer: &Buffer) -> Vec<EventId> {
        self.state.lock().events.get(&buffer.id()).map(|e| e.producers.clone()).unwrap_or_default()
    }

    /// Wait-list for an operation that wants to *overwrite* `buffer`: its
    /// producers and consumers.
    pub fn wait_for_write(&self, buffer: &Buffer) -> Vec<EventId> {
        self.state
            .lock()
            .events
            .get(&buffer.id())
            .map(|e| {
                let mut all = e.producers.clone();
                all.extend(e.consumers.iter().copied());
                all
            })
            .unwrap_or_default()
    }

    // ---- host offload of intermediates (paper §3.3) ----

    /// Offloads an intermediate buffer to host memory and frees its device
    /// allocation. Returns a token to restore it later.
    pub fn offload_intermediate(&self, buffer: Buffer) -> Result<u64> {
        // All pending producers must have executed before we snapshot.
        self.queue.flush()?;
        let id = buffer.id();
        let copy = buffer.offload_to_host();
        let bytes = copy.bytes() as u64;
        let mut state = self.state.lock();
        state.stats.bytes_offloaded += bytes;
        state.offloaded.insert(id, copy);
        drop(state);
        self.trace.emit(|| TraceEventKind::Spill { bytes });
        // Dropping the buffer releases its device memory.
        drop(buffer);
        Ok(id)
    }

    /// Restores a previously offloaded intermediate into a fresh device
    /// buffer (re-paying the transfer).
    pub fn restore_intermediate(&self, token: u64) -> Result<Buffer> {
        let copy = self
            .state
            .lock()
            .offloaded
            .remove(&token)
            .ok_or_else(|| KernelError::Internal(format!("unknown offload token {token}")))?;
        let bytes = copy.bytes() as u64;
        let buffer = self.alloc_with_eviction(copy.len(), copy.label())?;
        copy.restore_into(&buffer);
        let event = self.queue.enqueue_write(&buffer, &[])?;
        self.record_producer(&buffer, event);
        self.trace.emit(|| TraceEventKind::Unspill { bytes });
        Ok(buffer)
    }

    // ---- hash-table cache (paper §5.2.6) ----

    /// Returns the cached hash table for a base-table BAT, if one was built
    /// before.
    pub fn cached_hash_table(&self, bat: &BatRef) -> Option<Arc<OcelotHashTable>> {
        let mut state = self.state.lock();
        let found = state.hash_tables.get(&bat_key(bat)).cloned();
        if found.is_some() {
            state.stats.hash_cache_hits += 1;
        }
        found
    }

    /// Stores a hash table built over a base-table BAT for later reuse.
    pub fn cache_hash_table(&self, bat: &BatRef, table: Arc<OcelotHashTable>) {
        self.state.lock().hash_tables.insert(bat_key(bat), table);
    }
}

impl std::fmt::Debug for MemoryManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("MemoryManager")
            .field("cached_entries", &state.cache.len())
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_kernel::GpuConfig;
    use ocelot_storage::Bat;

    fn gpu_manager(mem_bytes: usize) -> (Device, Arc<Queue>, MemoryManager) {
        let device = Device::simulated_gpu(GpuConfig::default().with_global_mem(mem_bytes));
        let queue = Arc::new(device.create_queue());
        let mm = MemoryManager::new(device.clone(), Arc::clone(&queue));
        (device, queue, mm)
    }

    fn bat(n: usize, name: &str) -> BatRef {
        Bat::from_i32(name, (0..n as i32).collect()).into_ref()
    }

    #[test]
    fn caches_uploaded_bats() {
        let (_, _, mm) = gpu_manager(1 << 20);
        let b = bat(100, "a");
        let first = mm.get_or_upload(&b).unwrap();
        let second = mm.get_or_upload(&b).unwrap();
        assert_eq!(first.id(), second.id());
        let stats = mm.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.bytes_uploaded, 400);
        assert_eq!(mm.cached_entries(), 1);
        assert_eq!(mm.cached_bytes(), 400);
    }

    #[test]
    fn uploads_preserve_contents() {
        let (_, queue, mm) = gpu_manager(1 << 20);
        let b = Bat::from_f32("f", vec![1.5, -2.5]).into_ref();
        let buffer = mm.get_or_upload(&b).unwrap();
        queue.flush().unwrap();
        assert_eq!(buffer.prefix_f32(2), vec![1.5, -2.5]);
    }

    #[test]
    fn evicts_lru_under_pressure() {
        // Device fits two 100-word BATs but not three.
        let (_, _, mm) = gpu_manager(1000);
        let a = bat(100, "a");
        let b = bat(100, "b");
        let c = bat(100, "c");
        drop(mm.get_or_upload(&a).unwrap());
        drop(mm.get_or_upload(&b).unwrap());
        // Touch `a` so `b` becomes the LRU victim.
        drop(mm.get_or_upload(&a).unwrap());
        drop(mm.get_or_upload(&c).unwrap());
        assert_eq!(mm.stats().evictions, 1);
        assert_eq!(mm.cached_entries(), 2);
        // `b` was evicted; re-requesting it is a miss again.
        let misses_before = mm.stats().cache_misses;
        drop(mm.get_or_upload(&b).unwrap());
        assert_eq!(mm.stats().cache_misses, misses_before + 1);
    }

    #[test]
    fn pinned_bats_are_never_evicted() {
        let (_, _, mm) = gpu_manager(1000);
        let a = bat(100, "a");
        let b = bat(100, "b");
        mm.pin(&a).unwrap();
        drop(mm.get_or_upload(&b).unwrap());
        // Allocating more than fits must evict `b`, not the pinned `a`.
        let _big = mm.alloc_result(100, "scratch").unwrap();
        assert_eq!(mm.cached_entries(), 1);
        let hits_before = mm.stats().cache_hits;
        drop(mm.get_or_upload(&a).unwrap());
        assert_eq!(mm.stats().cache_hits, hits_before + 1, "pinned BAT still cached");
        mm.unpin(&a);
    }

    #[test]
    fn in_use_buffers_are_not_evicted() {
        let (_, _, mm) = gpu_manager(1000);
        let a = bat(100, "a");
        let held = mm.get_or_upload(&a).unwrap();
        // Allocation pressure cannot evict `a` because we hold its buffer.
        let err = mm.alloc_result(200, "big").unwrap_err();
        assert!(matches!(err, KernelError::OutOfDeviceMemory { .. }));
        drop(held);
        assert!(mm.alloc_result(150, "big").is_ok());
    }

    #[test]
    fn allocation_failure_when_nothing_to_evict() {
        let (_, _, mm) = gpu_manager(100);
        let err = mm.alloc_result(1000, "huge").unwrap_err();
        assert!(matches!(err, KernelError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn invalidate_removes_cache_entry() {
        let (_, _, mm) = gpu_manager(1 << 20);
        let a = bat(10, "a");
        drop(mm.get_or_upload(&a).unwrap());
        assert_eq!(mm.cached_entries(), 1);
        mm.invalidate(&a);
        assert_eq!(mm.cached_entries(), 0);
    }

    #[test]
    fn producer_consumer_wait_lists() {
        let (device, queue, mm) = gpu_manager(1 << 20);
        let buffer = device.alloc(10, "x").unwrap();
        let write = queue.enqueue_write(&buffer, &[]).unwrap();
        mm.record_producer(&buffer, write);
        assert_eq!(mm.wait_for_read(&buffer), vec![write]);
        let read = queue.enqueue_read(&buffer, &mm.wait_for_read(&buffer)).unwrap();
        mm.record_consumer(&buffer, read);
        let write_wait = mm.wait_for_write(&buffer);
        assert!(write_wait.contains(&write));
        assert!(write_wait.contains(&read));
        queue.flush().unwrap();
    }

    #[test]
    fn offload_and_restore_round_trip() {
        let (device, queue, mm) = gpu_manager(1 << 20);
        let buffer = device.alloc(4, "intermediate").unwrap();
        buffer.copy_from_i32(&[9, 8, 7, 6]);
        queue.enqueue_write(&buffer, &[]).unwrap();
        let used_before = device.memory().used();
        let token = mm.offload_intermediate(buffer).unwrap();
        assert!(device.memory().used() < used_before, "device memory was released");
        assert_eq!(mm.stats().bytes_offloaded, 16);
        let restored = mm.restore_intermediate(token).unwrap();
        queue.flush().unwrap();
        assert_eq!(restored.prefix_i32(4), vec![9, 8, 7, 6]);
        assert!(mm.restore_intermediate(token).is_err(), "token is single-use");
    }

    #[test]
    fn recycling_uses_power_of_two_size_classes() {
        let (_, _, mm) = gpu_manager(1 << 24);
        let first = mm.alloc_result(5_000, "a").unwrap();
        assert_eq!(first.len(), 8_192, "pooled allocations are class-sized");
        let id = first.id();
        drop(first);
        // A *different* request size in the same class is served from the
        // pool (exact-size matching would miss here).
        let second = mm.alloc_result(6_000, "b").unwrap();
        assert_eq!(second.id(), id);
        assert_eq!(mm.stats().recycle_hits, 1);
        assert!(second.as_words().iter().all(|w| *w == 0), "recycled buffers read as zero");
        // A request in a different class misses and allocates its own class.
        let third = mm.alloc_result(9_000, "c").unwrap();
        assert_eq!(third.len(), 16_384);
        assert_eq!(mm.stats().recycle_hits, 1);
    }

    #[test]
    fn size_class_pool_lifts_hit_rate_for_mixed_sizes() {
        let (_, _, mm) = gpu_manager(1 << 24);
        // Mixed result sizes that all round to the 8 192-word class — the
        // shape of a query stream with varying selectivities.
        for i in 0..20 {
            let words = 4_100 + i * 150;
            drop(mm.alloc_result(words, "mixed").unwrap());
        }
        let stats = mm.stats();
        assert!(
            stats.recycle_hits >= 19,
            "all but the first allocation should hit the pool: {stats:?}"
        );
    }

    #[test]
    fn small_allocations_bypass_the_pool() {
        let (_, _, mm) = gpu_manager(1 << 24);
        let small = mm.alloc_result(100, "s").unwrap();
        assert_eq!(small.len(), 100, "sub-threshold requests are not class-rounded");
        drop(small);
        drop(mm.alloc_result(100, "s2").unwrap());
        assert_eq!(mm.stats().recycle_hits, 0);
    }

    #[test]
    fn shared_pool_recycles_across_managers() {
        // Two managers (two contexts) on one device share one pool: a
        // buffer released by the first serves the second's allocation.
        let device = Device::simulated_gpu(GpuConfig::default());
        let pool = Arc::new(crate::buffer_pool::BufferPool::new());
        let queue_a = Arc::new(device.create_queue());
        let queue_b = Arc::new(device.create_queue());
        let a = MemoryManager::with_pool(device.clone(), Arc::clone(&queue_a), Arc::clone(&pool));
        let b = MemoryManager::with_pool(device, queue_b, pool);

        let first = a.alloc_result(5_000, "from_a").unwrap();
        let id = first.id();
        drop(first);
        let second = b.alloc_result(6_000, "from_b").unwrap();
        assert_eq!(second.id(), id, "same class: b reuses a's buffer");
        assert_eq!(b.stats().recycle_hits, 1);
        assert_eq!(a.stats().recycle_hits, 0);
        let pool_stats = b.pool().stats();
        assert_eq!(pool_stats.hits, 1);
        assert_eq!(pool_stats.cross_context_hits, 1, "reuse crossed contexts");
        assert!(second.as_words().iter().all(|w| *w == 0), "recycled buffers read as zero");
    }

    #[test]
    fn busy_buffers_are_not_recycled_across_managers() {
        // A buffer with a pending queue operation in context A must not be
        // handed to context B: the pending op's clone keeps it busy.
        let device = Device::simulated_gpu(GpuConfig::default());
        let pool = Arc::new(crate::buffer_pool::BufferPool::new());
        let queue_a = Arc::new(device.create_queue());
        let queue_b = Arc::new(device.create_queue());
        let a = MemoryManager::with_pool(device.clone(), Arc::clone(&queue_a), Arc::clone(&pool));
        let b = MemoryManager::with_pool(device, queue_b, pool);

        let buffer = a.alloc_result(5_000, "from_a").unwrap();
        let id = buffer.id();
        queue_a.enqueue_write(&buffer, &[]).unwrap();
        drop(buffer);
        // Still referenced by A's pending write: B allocates fresh.
        let fresh = b.alloc_result(5_000, "from_b").unwrap();
        assert_ne!(fresh.id(), id);
        assert_eq!(b.stats().recycle_hits, 0);
        // After A flushes, the buffer is idle and reusable.
        drop(fresh);
        queue_a.flush().unwrap();
        let ids: Vec<u64> = (0..2)
            .map(|_| {
                let buf = b.alloc_result(5_000, "later").unwrap();
                buf.id()
            })
            .collect();
        assert!(ids.contains(&id), "post-flush the donated buffer is reusable: {ids:?}");
    }

    #[test]
    fn event_bookkeeping_stays_bounded_under_pool_churn() {
        // Two managers alternate through one shared pool, so every reuse is
        // a *cross-context* acquire: the acquiring manager has no entry to
        // remove and the donor's entry would linger forever without the
        // completed-event pruning in `record_producer`.
        let device = Device::simulated_gpu(GpuConfig::default());
        let pool = Arc::new(crate::buffer_pool::BufferPool::new());
        let queues: Vec<Arc<Queue>> = (0..2).map(|_| Arc::new(device.create_queue())).collect();
        let managers: Vec<MemoryManager> = queues
            .iter()
            .map(|q| MemoryManager::with_pool(device.clone(), Arc::clone(q), Arc::clone(&pool)))
            .collect();
        for round in 0..2_000 {
            let who = round % 2;
            let buffer = managers[who].alloc_result(5_000, "churn").unwrap();
            let event = queues[who].enqueue_write(&buffer, &[]).unwrap();
            managers[who].record_producer(&buffer, event);
            queues[who].flush().unwrap();
        }
        for manager in &managers {
            assert!(
                manager.tracked_event_entries() <= MemoryManager::EVENTS_PRUNE_THRESHOLD,
                "events map must stay bounded, found {}",
                manager.tracked_event_entries()
            );
        }
    }

    #[test]
    fn unified_memory_devices_report_no_upload_bytes() {
        let device = Device::cpu_multicore_with(2);
        let queue = Arc::new(device.create_queue());
        let mm = MemoryManager::new(device, queue);
        let b = bat(50, "a");
        drop(mm.get_or_upload(&b).unwrap());
        assert_eq!(mm.stats().bytes_uploaded, 0, "zero-copy on unified memory");
    }
}
