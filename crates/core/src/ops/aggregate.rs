//! Aggregation operators (paper §4.1.7).
//!
//! * **Ungrouped aggregation** delegates to the hierarchical parallel
//!   reduction in [`crate::primitives::reduce`] — every result is a deferred
//!   [`DevScalar`] whose `.get()` is the pipeline's only sync point.
//! * **Grouped aggregation** accumulates into a table of atomically updated
//!   accumulators. To reduce contention when there are only a few groups,
//!   each group's value is spread over multiple accumulators (their number
//!   chosen inversely proportional to the number of groups, exactly as the
//!   paper describes); a final kernel folds the accumulators of each group
//!   into the result. Floating-point atomics are emulated with CAS on
//!   integer words (paper footnote 7).

use crate::context::{DevColumn, DevScalar, LenSource, OcelotContext, Oid};
use crate::primitives::reduce;
use ocelot_kernel::atomic::{atomic_add_f32, atomic_max_f32, atomic_min_f32};
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::atomic::Ordering;
use std::sync::Arc;

pub use crate::primitives::reduce::{max_f32, max_i32, min_f32, min_i32, sum_f32, sum_i32};

/// Which grouped aggregate to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupedAgg {
    /// Per-group sum of an `f32` column.
    SumF32,
    /// Per-group minimum of an `f32` column.
    MinF32,
    /// Per-group maximum of an `f32` column.
    MaxF32,
    /// Per-group row count (the value column is ignored).
    Count,
}

impl GroupedAgg {
    fn identity_word(self) -> u32 {
        match self {
            GroupedAgg::SumF32 | GroupedAgg::Count => 0f32.to_bits(),
            GroupedAgg::MinF32 => f32::INFINITY.to_bits(),
            GroupedAgg::MaxF32 => f32::NEG_INFINITY.to_bits(),
        }
    }

    fn combine(self, a: f32, b: f32) -> f32 {
        match self {
            GroupedAgg::SumF32 | GroupedAgg::Count => a + b,
            GroupedAgg::MinF32 => a.min(b),
            GroupedAgg::MaxF32 => a.max(b),
        }
    }
}

/// The accumulation kernel: every row atomically folds its value into one of
/// its group's accumulators, selected by the work-item id to spread
/// contention (paper: "the values for each group are aggregated across
/// multiple accumulators").
struct GroupedAccumulateKernel {
    values: Option<Buffer>,
    gids: Buffer,
    accumulators: Buffer,
    num_accumulators: usize,
    agg: GroupedAgg,
    n: LenSource,
}

impl Kernel for GroupedAccumulateKernel {
    fn name(&self) -> &str {
        "grouped_accumulate"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let n = self.n.get();
        for item in group.items() {
            let accumulator_lane = item.global_id % self.num_accumulators;
            for idx in item.assigned() {
                if idx >= n {
                    continue;
                }
                let gid = self.gids.get_u32(idx) as usize;
                let slot = gid * self.num_accumulators + accumulator_lane;
                let value = match (&self.values, self.agg) {
                    (_, GroupedAgg::Count) => 1.0,
                    (Some(values), _) => values.get_f32(idx),
                    (None, _) => 0.0,
                };
                let cell = self.accumulators.cell(slot);
                match self.agg {
                    GroupedAgg::SumF32 | GroupedAgg::Count => {
                        atomic_add_f32(cell, value);
                    }
                    GroupedAgg::MinF32 => {
                        atomic_min_f32(cell, value);
                    }
                    GroupedAgg::MaxF32 => {
                        atomic_max_f32(cell, value);
                    }
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(
            (launch.n as u64) * 8,
            (launch.n as u64) * 4,
            launch.n as u64,
            launch.n as u64,
        )
    }
}

/// Folds the accumulators of each group into the final per-group value.
struct FoldAccumulatorsKernel {
    accumulators: Buffer,
    output: Buffer,
    num_accumulators: usize,
    num_groups: usize,
    agg: GroupedAgg,
}

impl Kernel for FoldAccumulatorsKernel {
    fn name(&self) -> &str {
        "grouped_fold"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for gid in item.assigned() {
                if gid >= self.num_groups {
                    continue;
                }
                let mut acc = f32::from_bits(self.agg.identity_word());
                for lane in 0..self.num_accumulators {
                    let value = self.accumulators.get_f32(gid * self.num_accumulators + lane);
                    acc = self.agg.combine(acc, value);
                }
                self.output.set_f32(gid, acc);
            }
        }
    }
}

/// Number of accumulators per group: inversely proportional to the group
/// count, capped so the accumulator table stays small (paper §4.1.7).
fn accumulators_for(num_groups: usize) -> usize {
    if num_groups == 0 {
        return 1;
    }
    (4096 / num_groups).clamp(1, 64)
}

fn grouped_aggregate(
    ctx: &OcelotContext,
    values: Option<&DevColumn<f32>>,
    gids: &DevColumn<Oid>,
    num_groups: usize,
    agg: GroupedAgg,
) -> Result<DevColumn<f32>> {
    if let Some(values) = values {
        // Aligned inputs: when both lengths are host-known they must match;
        // a deferred value column (e.g. a fetch over an uncounted selection)
        // only needs to cover every row the gid column can address.
        match (values.host_len(), gids.host_len()) {
            (Some(a), Some(b)) => assert_eq!(a, b, "grouped aggregate: length mismatch"),
            _ => assert!(values.cap() >= gids.cap(), "grouped aggregate: length mismatch"),
        }
    }
    let output = ctx.alloc(num_groups.max(1), "grouped_output")?;
    if num_groups == 0 {
        return DevColumn::new(output, 0);
    }
    let num_accumulators = accumulators_for(num_groups);
    let accumulators = ctx.alloc(num_groups * num_accumulators, "grouped_accumulators")?;
    // Initialise the accumulators with the aggregate's identity.
    for slot in 0..num_groups * num_accumulators {
        accumulators.cell(slot).store(agg.identity_word(), Ordering::Relaxed);
    }
    let init_event = ctx.queue().enqueue_write(&accumulators, &[])?;
    ctx.memory().record_producer(&accumulators, init_event);

    if gids.cap() > 0 {
        let mut wait = ctx.wait_for(gids);
        wait.push(init_event);
        if let Some(values) = values {
            wait.extend(ctx.wait_for(values));
        }
        let acc_event = ctx.queue().enqueue_kernel(
            Arc::new(GroupedAccumulateKernel {
                values: values.map(|v| v.buffer.clone()),
                gids: gids.buffer.clone(),
                accumulators: accumulators.clone(),
                num_accumulators,
                agg,
                n: gids.len_source(),
            }),
            ctx.launch(gids.cap()),
            &wait,
        )?;
        ctx.memory().record_producer(&accumulators, acc_event);
    }
    let fold_event = ctx.queue().enqueue_kernel(
        Arc::new(FoldAccumulatorsKernel {
            accumulators: accumulators.clone(),
            output: output.clone(),
            num_accumulators,
            num_groups,
            agg,
        }),
        ctx.launch(num_groups),
        &ctx.memory().wait_for_read(&accumulators),
    )?;
    ctx.memory().record_producer(&output, fold_event);
    DevColumn::new(output, num_groups)
}

/// Per-group sums of a float column.
pub fn grouped_sum_f32(
    ctx: &OcelotContext,
    values: &DevColumn<f32>,
    gids: &DevColumn<Oid>,
    num_groups: usize,
) -> Result<DevColumn<f32>> {
    grouped_aggregate(ctx, Some(values), gids, num_groups, GroupedAgg::SumF32)
}

/// Per-group minima of a float column (`+∞` for empty groups).
pub fn grouped_min_f32(
    ctx: &OcelotContext,
    values: &DevColumn<f32>,
    gids: &DevColumn<Oid>,
    num_groups: usize,
) -> Result<DevColumn<f32>> {
    grouped_aggregate(ctx, Some(values), gids, num_groups, GroupedAgg::MinF32)
}

/// Per-group maxima of a float column (`-∞` for empty groups).
pub fn grouped_max_f32(
    ctx: &OcelotContext,
    values: &DevColumn<f32>,
    gids: &DevColumn<Oid>,
    num_groups: usize,
) -> Result<DevColumn<f32>> {
    grouped_aggregate(ctx, Some(values), gids, num_groups, GroupedAgg::MaxF32)
}

/// Per-group row counts, returned as a float column (the four-byte engine
/// representation; counts stay exactly representable up to 2^24 rows).
pub fn grouped_count(
    ctx: &OcelotContext,
    gids: &DevColumn<Oid>,
    num_groups: usize,
) -> Result<DevColumn<f32>> {
    grouped_aggregate(ctx, None, gids, num_groups, GroupedAgg::Count)
}

/// Per-group averages of a float column (0 for empty groups).
pub fn grouped_avg_f32(
    ctx: &OcelotContext,
    values: &DevColumn<f32>,
    gids: &DevColumn<Oid>,
    num_groups: usize,
) -> Result<DevColumn<f32>> {
    let sums = grouped_sum_f32(ctx, values, gids, num_groups)?;
    let counts = grouped_count(ctx, gids, num_groups)?;
    let output = ctx.alloc(num_groups.max(1), "grouped_avg")?;
    if num_groups == 0 {
        return DevColumn::new(output, 0);
    }
    let mut wait = ctx.wait_for(&sums);
    wait.extend(ctx.wait_for(&counts));
    let event = ctx.queue().enqueue_kernel(
        Arc::new(DivideKernel {
            numerator: sums.buffer.clone(),
            denominator: counts.buffer.clone(),
            output: output.clone(),
        }),
        ctx.launch(num_groups),
        &wait,
    )?;
    ctx.memory().record_producer(&output, event);
    DevColumn::new(output, num_groups)
}

struct DivideKernel {
    numerator: Buffer,
    denominator: Buffer,
    output: Buffer,
}

impl Kernel for DivideKernel {
    fn name(&self) -> &str {
        "grouped_divide"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let denom = self.denominator.get_f32(idx);
                let value = if denom == 0.0 { 0.0 } else { self.numerator.get_f32(idx) / denom };
                self.output.set_f32(idx, value);
            }
        }
    }
}

/// Divides the one-word sum by the (possibly device-resident) element count:
/// the tail of the deferred average.
struct ScalarDivByLenKernel {
    sum: Buffer,
    output: Buffer,
    n: LenSource,
}

impl Kernel for ScalarDivByLenKernel {
    fn name(&self) -> &str {
        "scalar_div_by_len"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        if group.group_id() != 0 {
            return;
        }
        let n = self.n.get();
        let value = if n == 0 { 0.0 } else { self.sum.get_f32(0) / n as f32 };
        self.output.set_f32(0, value);
    }
}

/// Number of rows in a column as a deferred scalar: for host-known lengths a
/// staged constant, for deferred columns the existing device counter —
/// either way, no synchronisation.
pub fn count<T: crate::context::DevWord>(
    ctx: &OcelotContext,
    column: &DevColumn<T>,
) -> Result<DevScalar<u32>> {
    match column.col_len() {
        crate::context::ColLen::Host(n) => DevScalar::constant(ctx, *n as u32),
        crate::context::ColLen::Device { counter, .. } => Ok(DevScalar::new(counter.clone(), None)),
    }
}

/// Average of a float column, as a deferred scalar (`0` for an empty
/// column). The division by the element count happens on the device, so the
/// average of a deferred-length column is still sync-free.
pub fn avg_f32(ctx: &OcelotContext, values: &DevColumn<f32>) -> Result<DevScalar<f32>> {
    if values.cap() == 0 {
        return DevScalar::constant(ctx, 0.0f32);
    }
    let total = reduce::sum_f32(ctx, values)?;
    let output = ctx.alloc(1, "avg_output")?;
    let mut wait = ctx.memory().wait_for_read(total.buffer());
    if let crate::context::ColLen::Device { counter, .. } = values.col_len() {
        wait.extend(ctx.memory().wait_for_read(counter));
    }
    let event = ctx.queue().enqueue_kernel(
        Arc::new(ScalarDivByLenKernel {
            sum: total.buffer().clone(),
            output: output.clone(),
            n: values.len_source(),
        }),
        ctx.launch(1),
        &wait,
    )?;
    ctx.memory().record_producer(&output, event);
    Ok(DevScalar::new(output, Some(event)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;

    fn setup(n: usize, groups: u32) -> (Vec<f32>, Vec<u32>) {
        let values: Vec<f32> = (0..n).map(|i| ((i * 13 + 5) % 101) as f32 * 0.5).collect();
        let gids: Vec<u32> = (0..n).map(|i| (i as u32 * 7 + 3) % groups).collect();
        (values, gids)
    }

    #[test]
    fn grouped_sum_matches_monet_on_all_devices() {
        let (values, gids) = setup(10_000, 37);
        let expected = monet::grouped_sum_f32(&values, &gids, 37);
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let v = ctx.upload_f32(&values, "v").unwrap();
            let g = ctx.upload_u32(&gids, "g").unwrap();
            let sums = grouped_sum_f32(&ctx, &v, &g, 37).unwrap().read(&ctx).unwrap();
            for (a, b) in sums.iter().zip(expected.iter()) {
                assert!((a - b).abs() < 0.5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn grouped_min_max_count_avg() {
        let (values, gids) = setup(5_000, 11);
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_f32(&values, "v").unwrap();
        let g = ctx.upload_u32(&gids, "g").unwrap();

        assert_eq!(
            grouped_min_f32(&ctx, &v, &g, 11).unwrap().read(&ctx).unwrap(),
            monet::grouped_min_f32(&values, &gids, 11)
        );
        assert_eq!(
            grouped_max_f32(&ctx, &v, &g, 11).unwrap().read(&ctx).unwrap(),
            monet::grouped_max_f32(&values, &gids, 11)
        );
        let counts = grouped_count(&ctx, &g, 11).unwrap().read(&ctx).unwrap();
        let expected_counts = monet::grouped_count(&gids, 11);
        for (a, b) in counts.iter().zip(expected_counts.iter()) {
            assert_eq!(*a as i64, *b);
        }
        let avgs = grouped_avg_f32(&ctx, &v, &g, 11).unwrap().read(&ctx).unwrap();
        let expected_avgs = monet::grouped_avg_f32(&values, &gids, 11);
        for (a, b) in avgs.iter().zip(expected_avgs.iter()) {
            assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn few_groups_use_many_accumulators() {
        assert_eq!(accumulators_for(1), 64);
        assert_eq!(accumulators_for(100), 40);
        assert_eq!(accumulators_for(10_000), 1);
        assert_eq!(accumulators_for(0), 1);
    }

    #[test]
    fn single_group_aggregation_is_exact_for_counts() {
        let ctx = OcelotContext::gpu();
        let gids = vec![0u32; 5_000];
        let g = ctx.upload_u32(&gids, "g").unwrap();
        let counts = grouped_count(&ctx, &g, 1).unwrap().read(&ctx).unwrap();
        assert_eq!(counts, vec![5_000.0]);
    }

    #[test]
    fn ungrouped_aggregates_are_deferred() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_f32(&[1.0, 2.0, 3.0], "v").unwrap();
        let flushes = ctx.queue().flush_count();
        let sum = sum_f32(&ctx, &v).unwrap();
        let min = min_f32(&ctx, &v).unwrap();
        let max = max_f32(&ctx, &v).unwrap();
        let avg = avg_f32(&ctx, &v).unwrap();
        let n = count(&ctx, &v).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes, "aggregates must not flush");
        assert_eq!(sum.get(&ctx).unwrap(), 6.0);
        assert_eq!(min.get(&ctx).unwrap(), 1.0);
        assert_eq!(max.get(&ctx).unwrap(), 3.0);
        assert_eq!(avg.get(&ctx).unwrap(), 2.0);
        assert_eq!(n.get(&ctx).unwrap(), 3);
        let empty = ctx.upload_f32(&[], "e").unwrap();
        assert_eq!(avg_f32(&ctx, &empty).unwrap().get(&ctx).unwrap(), 0.0);
    }

    #[test]
    fn empty_group_identities() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_f32(&[1.0], "v").unwrap();
        let g = ctx.upload_u32(&[2], "g").unwrap();
        let mins = grouped_min_f32(&ctx, &v, &g, 4).unwrap().read(&ctx).unwrap();
        assert_eq!(mins[0], f32::INFINITY);
        assert_eq!(mins[2], 1.0);
        let counts = grouped_count(&ctx, &g, 4).unwrap().read(&ctx).unwrap();
        assert_eq!(counts, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_groups() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_f32(&[], "v").unwrap();
        let g = ctx.upload_u32(&[], "g").unwrap();
        assert_eq!(grouped_sum_f32(&ctx, &v, &g, 0).unwrap().read(&ctx).unwrap().len(), 0);
    }
}
