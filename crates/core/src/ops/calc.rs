//! Element-wise arithmetic map operators — the hardware-oblivious analogue
//! of MonetDB's `batcalc` module.
//!
//! TPC-H expressions like `l_extendedprice * (1 - l_discount)` become chains
//! of these kernels. Every kernel is a trivial streaming map (the paper's
//! Listing 1 is exactly this shape), so the default [`KernelCost`] applies.
//!
//! Maps are fully lazy and length-polymorphic: when the inputs carry a
//! deferred length (aligned gathers over an uncounted selection), the kernel
//! resolves the actual count at flush time and the output inherits the same
//! deferred length.

use crate::context::{DevColumn, DevWord, LenSource, OcelotContext};
use ocelot_kernel::{
    Buffer, BufferAccess, Kernel, KernelAccesses, KernelCost, LaunchConfig, Result, WorkGroupCtx,
};
use ocelot_storage::types::days_to_date;
use std::sync::Arc;

/// The element-wise operation a [`MapKernel`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MapOp {
    /// `out = a * b` (f32).
    MulF32,
    /// `out = a + b` (f32).
    AddF32,
    /// `out = a - b` (f32).
    SubF32,
    /// `out = c - a` (f32).
    ConstMinusF32(f32),
    /// `out = c + a` (f32).
    ConstPlusF32(f32),
    /// `out = a * c` (f32).
    MulConstF32(f32),
    /// `out = (f32) a` for an i32 column.
    CastI32F32,
    /// `out = year(a)` for a day-number date column.
    ExtractYear,
}

struct MapKernel {
    a: Buffer,
    b: Option<Buffer>,
    output: Buffer,
    op: MapOp,
    n: LenSource,
}

/// Binary float map over raw word slices: the op is monomorphised per chunk
/// so the inner loop is a plain vectorisable stream.
#[inline]
fn map2_f32(out: &mut [u32], a: &[u32], b: &[u32], f: impl Fn(f32, f32) -> f32) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(f32::from_bits(x), f32::from_bits(y)).to_bits();
    }
}

/// Unary word map over raw word slices.
#[inline]
fn map1(out: &mut [u32], a: &[u32], f: impl Fn(u32) -> u32) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = f(x);
    }
}

impl MapKernel {
    /// Applies the op to one contiguous chunk through tier-2 slice views.
    fn run_chunk(&self, out: &mut [u32], a: &[u32], b: Option<&[u32]>) {
        let binary = || b.expect("binary op requires b");
        match self.op {
            MapOp::MulF32 => map2_f32(out, a, binary(), |x, y| x * y),
            MapOp::AddF32 => map2_f32(out, a, binary(), |x, y| x + y),
            MapOp::SubF32 => map2_f32(out, a, binary(), |x, y| x - y),
            MapOp::ConstMinusF32(c) => map1(out, a, |w| (c - f32::from_bits(w)).to_bits()),
            MapOp::ConstPlusF32(c) => map1(out, a, |w| (c + f32::from_bits(w)).to_bits()),
            MapOp::MulConstF32(c) => map1(out, a, |w| (f32::from_bits(w) * c).to_bits()),
            MapOp::CastI32F32 => map1(out, a, |w| ((w as i32) as f32).to_bits()),
            MapOp::ExtractYear => map1(out, a, |w| {
                let (year, _, _) = days_to_date(w as i32);
                year as u32
            }),
        }
    }
}

impl Kernel for MapKernel {
    fn name(&self) -> &str {
        match self.op {
            MapOp::MulF32 => "calc_mul_f32",
            MapOp::AddF32 => "calc_add_f32",
            MapOp::SubF32 => "calc_sub_f32",
            MapOp::ConstMinusF32(_) => "calc_const_minus_f32",
            MapOp::ConstPlusF32(_) => "calc_const_plus_f32",
            MapOp::MulConstF32(_) => "calc_mul_const_f32",
            MapOp::CastI32F32 => "calc_cast_i32_f32",
            MapOp::ExtractYear => "calc_extract_year",
        }
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        // Deferred lengths resolve at flush time.
        let n = self.n.get();
        let a = self.a.as_words();
        let b = self.b.as_ref().map(|b| b.as_words());
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                let end = range.end.min(n);
                let start = range.start.min(end);
                if start >= end {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of the
                // output exclusively to this item within this phase.
                let out = unsafe { self.output.chunk_mut(start, end) };
                self.run_chunk(out, &a[start..end], b.map(|b| &b[start..end]));
            } else {
                // Strided/coalesced pattern: apply per element through a
                // one-word tier-2 chunk — the strided assignment gives each
                // index to exactly one work-item, so the chunks are
                // pairwise disjoint.
                for idx in assigned {
                    if idx >= n {
                        continue;
                    }
                    // SAFETY: index `idx` is owned by this item alone
                    // within this phase (disjoint one-word chunks).
                    let out = unsafe { self.output.chunk_mut(idx, idx + 1) };
                    self.run_chunk(out, &a[idx..idx + 1], b.map(|b| &b[idx..idx + 1]));
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::streaming(launch.n)
    }
    fn declared_accesses(&self, _launch: &LaunchConfig) -> Option<KernelAccesses> {
        let mut accesses = vec![
            BufferAccess::slice_read(&self.a, 0..self.a.len()),
            BufferAccess::slice_write(&self.output, 0..self.output.len()),
        ];
        if let Some(b) = &self.b {
            accesses.push(BufferAccess::slice_read(b, 0..b.len()));
        }
        Some(KernelAccesses::of(accesses))
    }
}

/// Writes `min(a, b)` of two (possibly device-resident) element counts into
/// a one-word counter — the aligned length of a binary map whose inputs
/// carry *different* deferred counters.
struct MinLenKernel {
    a: LenSource,
    b: LenSource,
    out: Buffer,
}

impl Kernel for MinLenKernel {
    fn name(&self) -> &str {
        "calc_min_len"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        if group.group_id() != 0 {
            return;
        }
        self.out.set_u32(0, self.a.get().min(self.b.get()) as u32);
    }
}

/// The length driving a binary map and its output. Host lengths must match
/// exactly (asserted by the caller); identical deferred counters are shared
/// as-is; any other combination is conservatively combined into a fresh
/// `min` counter on the device, so a misaligned pair can never expose one
/// input's uninitialised tail as data.
fn aligned_len(
    ctx: &OcelotContext,
    a: &crate::context::ColLen,
    b: &crate::context::ColLen,
) -> Result<crate::context::ColLen> {
    use crate::context::ColLen;
    match (a, b) {
        (ColLen::Host(_), ColLen::Host(_)) => Ok(a.clone()),
        (ColLen::Device { counter: ca, .. }, ColLen::Device { counter: cb, .. })
            if ca.id() == cb.id() =>
        {
            Ok(a.clone())
        }
        _ => {
            let out = ctx.alloc(1, "calc_len")?;
            let mut wait = Vec::new();
            for len in [a, b] {
                if let ColLen::Device { counter, .. } = len {
                    wait.extend(ctx.memory().wait_for_read(counter));
                }
            }
            let event = ctx.queue().enqueue_kernel(
                Arc::new(MinLenKernel { a: a.source(), b: b.source(), out: out.clone() }),
                ctx.launch(1),
                &wait,
            )?;
            ctx.memory().record_producer(&out, event);
            Ok(ColLen::Device { counter: out, cap: a.cap().min(b.cap()) })
        }
    }
}

fn run_map<A: DevWord, B: DevWord, O: DevWord>(
    ctx: &OcelotContext,
    a: &DevColumn<A>,
    b: Option<&DevColumn<B>>,
    op: MapOp,
) -> Result<DevColumn<O>> {
    if let Some(b) = b {
        assert_eq!(a.cap(), b.cap(), "calc: input length mismatch");
        if let (Some(la), Some(lb)) = (a.host_len(), b.host_len()) {
            assert_eq!(la, lb, "calc: input length mismatch");
        }
    }
    let len = match b {
        Some(b) => aligned_len(ctx, a.col_len(), b.col_len())?,
        None => a.col_len().clone(),
    };
    let output = ctx.alloc_uninit(a.cap().max(1), "calc_output")?;
    if a.cap() == 0 {
        return DevColumn::new(output, 0);
    }
    let mut wait = ctx.wait_for(a);
    if let Some(b) = b {
        wait.extend(ctx.wait_for(b));
    }
    let event = ctx.queue().enqueue_kernel(
        Arc::new(MapKernel {
            a: a.buffer.clone(),
            b: b.map(|col| col.buffer.clone()),
            output: output.clone(),
            op,
            n: len.source(),
        }),
        ctx.launch(a.cap()),
        &wait,
    )?;
    ctx.memory().record_producer(&output, event);
    ctx.memory().record_consumer(&a.buffer, event);
    if let Some(b) = b {
        ctx.memory().record_consumer(&b.buffer, event);
    }
    DevColumn::with_len(output, len)
}

/// Element-wise `a * b` over float columns.
pub fn mul_f32(
    ctx: &OcelotContext,
    a: &DevColumn<f32>,
    b: &DevColumn<f32>,
) -> Result<DevColumn<f32>> {
    run_map(ctx, a, Some(b), MapOp::MulF32)
}

/// Element-wise `a + b` over float columns.
pub fn add_f32(
    ctx: &OcelotContext,
    a: &DevColumn<f32>,
    b: &DevColumn<f32>,
) -> Result<DevColumn<f32>> {
    run_map(ctx, a, Some(b), MapOp::AddF32)
}

/// Element-wise `a - b` over float columns.
pub fn sub_f32(
    ctx: &OcelotContext,
    a: &DevColumn<f32>,
    b: &DevColumn<f32>,
) -> Result<DevColumn<f32>> {
    run_map(ctx, a, Some(b), MapOp::SubF32)
}

/// Element-wise `constant - a` (e.g. `1 - l_discount`).
pub fn const_minus_f32(
    ctx: &OcelotContext,
    constant: f32,
    a: &DevColumn<f32>,
) -> Result<DevColumn<f32>> {
    run_map::<f32, f32, f32>(ctx, a, None, MapOp::ConstMinusF32(constant))
}

/// Element-wise `constant + a` (e.g. `1 + l_tax`).
pub fn const_plus_f32(
    ctx: &OcelotContext,
    constant: f32,
    a: &DevColumn<f32>,
) -> Result<DevColumn<f32>> {
    run_map::<f32, f32, f32>(ctx, a, None, MapOp::ConstPlusF32(constant))
}

/// Element-wise `a * constant`.
pub fn mul_const_f32(
    ctx: &OcelotContext,
    a: &DevColumn<f32>,
    constant: f32,
) -> Result<DevColumn<f32>> {
    run_map::<f32, f32, f32>(ctx, a, None, MapOp::MulConstF32(constant))
}

/// Casts an integer column to float.
pub fn cast_i32_f32(ctx: &OcelotContext, a: &DevColumn<i32>) -> Result<DevColumn<f32>> {
    run_map::<i32, i32, f32>(ctx, a, None, MapOp::CastI32F32)
}

/// Extracts the calendar year from a day-number date column.
pub fn extract_year(ctx: &OcelotContext, a: &DevColumn<i32>) -> Result<DevColumn<i32>> {
    run_map::<i32, i32, i32>(ctx, a, None, MapOp::ExtractYear)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;
    use ocelot_storage::types::date_to_days;

    #[test]
    fn binary_maps_match_monet_on_all_devices() {
        let a: Vec<f32> = (0..3_000).map(|i| i as f32 * 0.25).collect();
        let b: Vec<f32> = (0..3_000).map(|i| (i % 13) as f32).collect();
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let ca = ctx.upload_f32(&a, "a").unwrap();
            let cb = ctx.upload_f32(&b, "b").unwrap();
            assert_eq!(
                mul_f32(&ctx, &ca, &cb).unwrap().read(&ctx).unwrap(),
                monet::mul_f32(&a, &b)
            );
            assert_eq!(
                add_f32(&ctx, &ca, &cb).unwrap().read(&ctx).unwrap(),
                monet::add_f32(&a, &b)
            );
            assert_eq!(
                sub_f32(&ctx, &ca, &cb).unwrap().read(&ctx).unwrap(),
                monet::sub_f32(&a, &b)
            );
        }
    }

    #[test]
    fn unary_maps() {
        let ctx = OcelotContext::cpu();
        let a: Vec<f32> = vec![0.1, 0.5, 0.9];
        let ca = ctx.upload_f32(&a, "a").unwrap();
        assert_eq!(
            const_minus_f32(&ctx, 1.0, &ca).unwrap().read(&ctx).unwrap(),
            monet::const_minus_f32(1.0, &a)
        );
        assert_eq!(
            const_plus_f32(&ctx, 1.0, &ca).unwrap().read(&ctx).unwrap(),
            monet::const_plus_f32(1.0, &a)
        );
        assert_eq!(
            mul_const_f32(&ctx, &ca, 2.0).unwrap().read(&ctx).unwrap(),
            monet::mul_const_f32(&a, 2.0)
        );

        let ints: Vec<i32> = vec![3, -4, 5];
        let ci = ctx.upload_i32(&ints, "i").unwrap();
        assert_eq!(cast_i32_f32(&ctx, &ci).unwrap().read(&ctx).unwrap(), vec![3.0, -4.0, 5.0]);
    }

    #[test]
    fn year_extraction_matches_monet() {
        let days: Vec<i32> = (0..2_000)
            .map(|i| date_to_days(1992 + (i % 7), 1 + (i % 12) as u32, 1 + (i % 28) as u32))
            .collect();
        let ctx = OcelotContext::gpu();
        let col = ctx.upload_i32(&days, "dates").unwrap();
        assert_eq!(
            extract_year(&ctx, &col).unwrap().read(&ctx).unwrap(),
            monet::extract_year(&days)
        );
    }

    #[test]
    fn tpch_q1_style_expression_chain_is_single_flush() {
        // extendedprice * (1 - discount) * (1 + tax), lazily chained.
        let price = vec![100.0f32, 200.0, 50.0];
        let discount = vec![0.1f32, 0.0, 0.5];
        let tax = vec![0.05f32, 0.1, 0.0];
        let ctx = OcelotContext::cpu();
        let p = ctx.upload_f32(&price, "p").unwrap();
        let d = ctx.upload_f32(&discount, "d").unwrap();
        let t = ctx.upload_f32(&tax, "t").unwrap();
        let flushes = ctx.queue().flush_count();
        let one_minus_d = const_minus_f32(&ctx, 1.0, &d).unwrap();
        let one_plus_t = const_plus_f32(&ctx, 1.0, &t).unwrap();
        let disc_price = mul_f32(&ctx, &p, &one_minus_d).unwrap();
        let charge = mul_f32(&ctx, &disc_price, &one_plus_t).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes, "map chain must not flush");
        let result = charge.read(&ctx).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes + 1);
        let expected: Vec<f32> =
            (0..3).map(|i| price[i] * (1.0 - discount[i]) * (1.0 + tax[i])).collect();
        assert_eq!(result, expected);
    }

    #[test]
    fn binary_map_drives_from_the_deferred_side() {
        // A host-known column aligned with a deferred one: the kernel must
        // clamp to the deferred count, never exposing b's garbage tail.
        use crate::context::{DevColumn, Oid};
        let ctx = OcelotContext::cpu();
        let a = ctx.upload_f32(&[2.0, 3.0, 4.0, 5.0], "a").unwrap();
        let raw = ctx.upload_f32(&[10.0, 20.0, f32::NAN, f32::NAN], "b").unwrap();
        let counter = ctx.alloc(1, "count").unwrap();
        counter.set_u32(0, 2);
        ctx.queue().enqueue_write(&counter, &[]).unwrap();
        let b: DevColumn<f32> =
            DevColumn::<Oid>::deferred(raw.buffer.clone(), counter, 4).unwrap().reinterpret();
        let product = mul_f32(&ctx, &a, &b).unwrap();
        assert!(product.is_deferred(), "output inherits the deferred length");
        assert_eq!(product.read(&ctx).unwrap(), vec![20.0, 60.0]);
    }

    #[test]
    fn binary_map_with_two_distinct_deferred_counters_clamps_to_min() {
        // Misaligned deferred inputs must never surface an uninitialised
        // tail: the map combines the two counters into a device-side min.
        use crate::context::{DevColumn, Oid};
        let ctx = OcelotContext::cpu();
        let deferred_f32 = |values: &[f32], count: u32| -> DevColumn<f32> {
            let raw = ctx.upload_f32(values, "v").unwrap();
            let counter = ctx.alloc(1, "count").unwrap();
            counter.set_u32(0, count);
            ctx.queue().enqueue_write(&counter, &[]).unwrap();
            DevColumn::<Oid>::deferred(raw.buffer.clone(), counter, values.len())
                .unwrap()
                .reinterpret()
        };
        let a = deferred_f32(&[1.0, 2.0, 3.0, f32::NAN], 3);
        let b = deferred_f32(&[5.0, 6.0, f32::NAN, f32::NAN], 2);
        let sum = add_f32(&ctx, &a, &b).unwrap();
        assert_eq!(sum.read(&ctx).unwrap(), vec![6.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let ctx = OcelotContext::cpu();
        let a = ctx.upload_f32(&[1.0], "a").unwrap();
        let b = ctx.upload_f32(&[1.0, 2.0], "b").unwrap();
        let _ = mul_f32(&ctx, &a, &b);
    }

    #[test]
    fn empty_columns() {
        let ctx = OcelotContext::cpu();
        let a = ctx.upload_f32(&[], "a").unwrap();
        let b = ctx.upload_f32(&[], "b").unwrap();
        assert!(mul_f32(&ctx, &a, &b).unwrap().read(&ctx).unwrap().is_empty());
    }
}
