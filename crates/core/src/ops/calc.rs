//! Element-wise arithmetic map operators — the hardware-oblivious analogue
//! of MonetDB's `batcalc` module.
//!
//! TPC-H expressions like `l_extendedprice * (1 - l_discount)` become chains
//! of these kernels. Every kernel is a trivial streaming map (the paper's
//! Listing 1 is exactly this shape), so the default [`KernelCost`] applies.

use crate::context::{DevColumn, OcelotContext};
use ocelot_kernel::{Buffer, Kernel, Result, WorkGroupCtx};
use ocelot_storage::types::days_to_date;
use std::sync::Arc;

/// The element-wise operation a [`MapKernel`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MapOp {
    /// `out = a * b` (f32).
    MulF32,
    /// `out = a + b` (f32).
    AddF32,
    /// `out = a - b` (f32).
    SubF32,
    /// `out = c - a` (f32).
    ConstMinusF32(f32),
    /// `out = c + a` (f32).
    ConstPlusF32(f32),
    /// `out = a * c` (f32).
    MulConstF32(f32),
    /// `out = (f32) a` for an i32 column.
    CastI32F32,
    /// `out = year(a)` for a day-number date column.
    ExtractYear,
}

struct MapKernel {
    a: Buffer,
    b: Option<Buffer>,
    output: Buffer,
    op: MapOp,
}

/// Binary float map over raw word slices: the op is monomorphised per chunk
/// so the inner loop is a plain vectorisable stream.
#[inline]
fn map2_f32(out: &mut [u32], a: &[u32], b: &[u32], f: impl Fn(f32, f32) -> f32) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = f(f32::from_bits(x), f32::from_bits(y)).to_bits();
    }
}

/// Unary word map over raw word slices.
#[inline]
fn map1(out: &mut [u32], a: &[u32], f: impl Fn(u32) -> u32) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = f(x);
    }
}

impl MapKernel {
    /// Applies the op to one contiguous chunk through tier-2 slice views.
    fn run_chunk(&self, out: &mut [u32], a: &[u32], b: Option<&[u32]>) {
        let binary = || b.expect("binary op requires b");
        match self.op {
            MapOp::MulF32 => map2_f32(out, a, binary(), |x, y| x * y),
            MapOp::AddF32 => map2_f32(out, a, binary(), |x, y| x + y),
            MapOp::SubF32 => map2_f32(out, a, binary(), |x, y| x - y),
            MapOp::ConstMinusF32(c) => map1(out, a, |w| (c - f32::from_bits(w)).to_bits()),
            MapOp::ConstPlusF32(c) => map1(out, a, |w| (c + f32::from_bits(w)).to_bits()),
            MapOp::MulConstF32(c) => map1(out, a, |w| (f32::from_bits(w) * c).to_bits()),
            MapOp::CastI32F32 => map1(out, a, |w| ((w as i32) as f32).to_bits()),
            MapOp::ExtractYear => map1(out, a, |w| {
                let (year, _, _) = days_to_date(w as i32);
                year as u32
            }),
        }
    }
}

impl Kernel for MapKernel {
    fn name(&self) -> &str {
        match self.op {
            MapOp::MulF32 => "calc_mul_f32",
            MapOp::AddF32 => "calc_add_f32",
            MapOp::SubF32 => "calc_sub_f32",
            MapOp::ConstMinusF32(_) => "calc_const_minus_f32",
            MapOp::ConstPlusF32(_) => "calc_const_plus_f32",
            MapOp::MulConstF32(_) => "calc_mul_const_f32",
            MapOp::CastI32F32 => "calc_cast_i32_f32",
            MapOp::ExtractYear => "calc_extract_year",
        }
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let a = self.a.as_words();
        let b = self.b.as_ref().map(|b| b.as_words());
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                if range.is_empty() {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of the
                // output exclusively to this item within this phase.
                let out = unsafe { self.output.chunk_mut(range.start, range.end) };
                self.run_chunk(out, &a[range.clone()], b.map(|b| &b[range.clone()]));
            } else {
                // Strided/coalesced pattern: apply per element through a
                // one-word chunk; reads still avoid atomic loads.
                let output = self.output.cells();
                for idx in assigned {
                    let mut word = [0u32];
                    self.run_chunk(&mut word, &a[idx..idx + 1], b.map(|b| &b[idx..idx + 1]));
                    output[idx].store(word[0], std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }
}

fn run_map(
    ctx: &OcelotContext,
    a: &DevColumn,
    b: Option<&DevColumn>,
    op: MapOp,
) -> Result<DevColumn> {
    if let Some(b) = b {
        assert_eq!(a.len, b.len, "calc: input length mismatch");
    }
    let output = ctx.alloc_uninit(a.len.max(1), "calc_output")?;
    if a.len == 0 {
        return Ok(DevColumn::new(output, 0));
    }
    let mut wait = ctx.memory().wait_for_read(&a.buffer);
    if let Some(b) = b {
        wait.extend(ctx.memory().wait_for_read(&b.buffer));
    }
    let event = ctx.queue().enqueue_kernel(
        Arc::new(MapKernel {
            a: a.buffer.clone(),
            b: b.map(|col| col.buffer.clone()),
            output: output.clone(),
            op,
        }),
        ctx.launch(a.len),
        &wait,
    )?;
    ctx.memory().record_producer(&output, event);
    Ok(DevColumn::new(output, a.len))
}

/// Element-wise `a * b` over float columns.
pub fn mul_f32(ctx: &OcelotContext, a: &DevColumn, b: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, Some(b), MapOp::MulF32)
}

/// Element-wise `a + b` over float columns.
pub fn add_f32(ctx: &OcelotContext, a: &DevColumn, b: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, Some(b), MapOp::AddF32)
}

/// Element-wise `a - b` over float columns.
pub fn sub_f32(ctx: &OcelotContext, a: &DevColumn, b: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, Some(b), MapOp::SubF32)
}

/// Element-wise `constant - a` (e.g. `1 - l_discount`).
pub fn const_minus_f32(ctx: &OcelotContext, constant: f32, a: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, None, MapOp::ConstMinusF32(constant))
}

/// Element-wise `constant + a` (e.g. `1 + l_tax`).
pub fn const_plus_f32(ctx: &OcelotContext, constant: f32, a: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, None, MapOp::ConstPlusF32(constant))
}

/// Element-wise `a * constant`.
pub fn mul_const_f32(ctx: &OcelotContext, a: &DevColumn, constant: f32) -> Result<DevColumn> {
    run_map(ctx, a, None, MapOp::MulConstF32(constant))
}

/// Casts an integer column to float.
pub fn cast_i32_f32(ctx: &OcelotContext, a: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, None, MapOp::CastI32F32)
}

/// Extracts the calendar year from a day-number date column.
pub fn extract_year(ctx: &OcelotContext, a: &DevColumn) -> Result<DevColumn> {
    run_map(ctx, a, None, MapOp::ExtractYear)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;
    use ocelot_storage::types::date_to_days;

    #[test]
    fn binary_maps_match_monet_on_all_devices() {
        let a: Vec<f32> = (0..3_000).map(|i| i as f32 * 0.25).collect();
        let b: Vec<f32> = (0..3_000).map(|i| (i % 13) as f32).collect();
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let ca = ctx.upload_f32(&a, "a").unwrap();
            let cb = ctx.upload_f32(&b, "b").unwrap();
            assert_eq!(
                ctx.download_f32(&mul_f32(&ctx, &ca, &cb).unwrap()).unwrap(),
                monet::mul_f32(&a, &b)
            );
            assert_eq!(
                ctx.download_f32(&add_f32(&ctx, &ca, &cb).unwrap()).unwrap(),
                monet::add_f32(&a, &b)
            );
            assert_eq!(
                ctx.download_f32(&sub_f32(&ctx, &ca, &cb).unwrap()).unwrap(),
                monet::sub_f32(&a, &b)
            );
        }
    }

    #[test]
    fn unary_maps() {
        let ctx = OcelotContext::cpu();
        let a: Vec<f32> = vec![0.1, 0.5, 0.9];
        let ca = ctx.upload_f32(&a, "a").unwrap();
        assert_eq!(
            ctx.download_f32(&const_minus_f32(&ctx, 1.0, &ca).unwrap()).unwrap(),
            monet::const_minus_f32(1.0, &a)
        );
        assert_eq!(
            ctx.download_f32(&const_plus_f32(&ctx, 1.0, &ca).unwrap()).unwrap(),
            monet::const_plus_f32(1.0, &a)
        );
        assert_eq!(
            ctx.download_f32(&mul_const_f32(&ctx, &ca, 2.0).unwrap()).unwrap(),
            monet::mul_const_f32(&a, 2.0)
        );

        let ints: Vec<i32> = vec![3, -4, 5];
        let ci = ctx.upload_i32(&ints, "i").unwrap();
        assert_eq!(
            ctx.download_f32(&cast_i32_f32(&ctx, &ci).unwrap()).unwrap(),
            vec![3.0, -4.0, 5.0]
        );
    }

    #[test]
    fn year_extraction_matches_monet() {
        let days: Vec<i32> = (0..2_000)
            .map(|i| date_to_days(1992 + (i % 7), 1 + (i % 12) as u32, 1 + (i % 28) as u32))
            .collect();
        let ctx = OcelotContext::gpu();
        let col = ctx.upload_i32(&days, "dates").unwrap();
        assert_eq!(
            ctx.download_i32(&extract_year(&ctx, &col).unwrap()).unwrap(),
            monet::extract_year(&days)
        );
    }

    #[test]
    fn tpch_q1_style_expression_chain() {
        // extendedprice * (1 - discount) * (1 + tax)
        let price = vec![100.0f32, 200.0, 50.0];
        let discount = vec![0.1f32, 0.0, 0.5];
        let tax = vec![0.05f32, 0.1, 0.0];
        let ctx = OcelotContext::cpu();
        let p = ctx.upload_f32(&price, "p").unwrap();
        let d = ctx.upload_f32(&discount, "d").unwrap();
        let t = ctx.upload_f32(&tax, "t").unwrap();
        let one_minus_d = const_minus_f32(&ctx, 1.0, &d).unwrap();
        let one_plus_t = const_plus_f32(&ctx, 1.0, &t).unwrap();
        let disc_price = mul_f32(&ctx, &p, &one_minus_d).unwrap();
        let charge = mul_f32(&ctx, &disc_price, &one_plus_t).unwrap();
        let result = ctx.download_f32(&charge).unwrap();
        let expected: Vec<f32> =
            (0..3).map(|i| price[i] * (1.0 - discount[i]) * (1.0 + tax[i])).collect();
        assert_eq!(result, expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let ctx = OcelotContext::cpu();
        let a = ctx.upload_f32(&[1.0], "a").unwrap();
        let b = ctx.upload_f32(&[1.0, 2.0], "b").unwrap();
        let _ = mul_f32(&ctx, &a, &b);
    }

    #[test]
    fn empty_columns() {
        let ctx = OcelotContext::cpu();
        let a = ctx.upload_f32(&[], "a").unwrap();
        let b = ctx.upload_f32(&[], "b").unwrap();
        assert!(ctx.download_f32(&mul_f32(&ctx, &a, &b).unwrap()).unwrap().is_empty());
    }
}
