//! The group-by operator (paper §4.1.6).
//!
//! Produces a column assigning a *dense group id* to every tuple. Two
//! implementations are provided, chosen by the caller based on the BAT's
//! `sorted` descriptor flag:
//!
//! * **Sorted path** — every thread compares its values with their
//!   successors to find group boundaries; a prefix sum over the boundary
//!   flags yields dense ids.
//! * **Hash path** — a parallel hash table over the keys yields dense ids
//!   through lookups (the path whose atomic-heavy build dominates the
//!   grouping microbenchmark, Figure 5g/5h).
//!
//! Multi-column grouping recursively combines the dense ids of two grouping
//! columns and groups the combined ids again, exactly as described in the
//! paper.
//!
//! **Deliberate sync point:** `num_groups` shapes the result schema (it
//! sizes every grouped aggregate), so grouping resolves it on the host —
//! via the hash build's internal flushes or the sorted path's scan-total
//! `.get()`. Everything downstream of the grouping stays lazy.

use crate::context::{DevColumn, DevWord, OcelotContext, Oid};
use crate::ops::hash_table::OcelotHashTable;
use crate::primitives::prefix_sum::exclusive_scan_u32;
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

/// Result of a grouping operation.
#[derive(Debug, Clone)]
pub struct GroupBy {
    /// Dense group id per input row.
    pub gids: DevColumn<Oid>,
    /// Number of distinct groups.
    pub num_groups: usize,
    /// Representative row per group (the smallest row id of the group),
    /// used to project the grouping key values into the result set.
    pub representatives: DevColumn<Oid>,
}

/// Group-by over an unsorted key column using the parallel hash table.
/// `distinct_hint` sizes the initial table.
pub fn group_by_hash<T: DevWord>(
    ctx: &OcelotContext,
    keys: &DevColumn<T>,
    distinct_hint: usize,
) -> Result<GroupBy> {
    let table = OcelotHashTable::build(ctx, keys, distinct_hint)?;
    let gids = table.probe_gids(ctx, keys)?;
    Ok(GroupBy { gids, num_groups: table.num_distinct(), representatives: table.representatives() })
}

// ---- sorted fast path ----

struct BoundaryKernel {
    keys: Buffer,
    flags: Buffer,
}

impl Kernel for BoundaryKernel {
    fn name(&self) -> &str {
        "group_boundaries"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let flag = if idx == 0 {
                    0
                } else {
                    u32::from(self.keys.get_u32(idx) != self.keys.get_u32(idx - 1))
                };
                self.flags.set_u32(idx, flag);
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 8, (launch.n as u64) * 4, launch.n as u64, 0)
    }
}

struct RepresentativeFromBoundariesKernel {
    gids: Buffer,
    flags: Buffer,
    representatives: Buffer,
    n: usize,
}

impl Kernel for RepresentativeFromBoundariesKernel {
    fn name(&self) -> &str {
        "group_sorted_representatives"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                if idx >= self.n {
                    continue;
                }
                if idx == 0 || self.flags.get_u32(idx) == 1 {
                    let gid = self.gids.get_u32(idx) as usize;
                    self.representatives.set_u32(gid, idx as u32);
                }
            }
        }
    }
}

/// Group-by over a key column that is known to be sorted: boundary flags +
/// prefix sum (no hash table, no atomics). Resolves the group count on the
/// host (see module docs); a deferred input length resolves with it.
pub fn group_by_sorted<T: DevWord>(ctx: &OcelotContext, keys: &DevColumn<T>) -> Result<GroupBy> {
    let n = keys.len(ctx)?;
    if n == 0 {
        let empty = ctx.alloc(1, "group_empty")?;
        return Ok(GroupBy {
            gids: DevColumn::new(empty.clone(), 0)?,
            num_groups: 0,
            representatives: DevColumn::new(empty, 0)?,
        });
    }
    let flags = ctx.alloc(n, "group_flags")?;
    let wait = ctx.wait_for(keys);
    let boundary_event = ctx.queue().enqueue_kernel(
        Arc::new(BoundaryKernel { keys: keys.buffer.clone(), flags: flags.clone() }),
        ctx.launch(n),
        &wait,
    )?;
    ctx.memory().record_producer(&flags, boundary_event);
    let flags_col = DevColumn::<u32>::new(flags.clone(), n)?;
    // Inclusive group id of row i = exclusive_scan(flags)[i] + flags[i]; but
    // because flags[0] is 0 and boundaries carry a 1 exactly where a new
    // group starts, the *inclusive* scan is the group id. We get it from the
    // exclusive scan shifted by the flag itself.
    let (exclusive, total) = exclusive_scan_u32(ctx, &flags_col)?;
    let gids = ctx.alloc(n, "group_gids")?;
    let fixup_event = ctx.queue().enqueue_kernel(
        Arc::new(InclusiveFixupKernel {
            exclusive: exclusive.buffer.clone(),
            flags: flags.clone(),
            gids: gids.clone(),
        }),
        ctx.launch(n),
        &ctx.memory().wait_for_read(&exclusive.buffer),
    )?;
    ctx.memory().record_producer(&gids, fixup_event);
    // Schema-shaping resolve: the group count sizes the representatives.
    let num_groups = (total.get(ctx)? as usize) + 1;
    let representatives = ctx.alloc(num_groups, "group_reps")?;
    let rep_event = ctx.queue().enqueue_kernel(
        Arc::new(RepresentativeFromBoundariesKernel {
            gids: gids.clone(),
            flags,
            representatives: representatives.clone(),
            n,
        }),
        ctx.launch(n),
        &ctx.memory().wait_for_read(&gids),
    )?;
    ctx.memory().record_producer(&representatives, rep_event);
    Ok(GroupBy {
        gids: DevColumn::new(gids, n)?,
        num_groups,
        representatives: DevColumn::new(representatives, num_groups)?,
    })
}

struct InclusiveFixupKernel {
    exclusive: Buffer,
    flags: Buffer,
    gids: Buffer,
}

impl Kernel for InclusiveFixupKernel {
    fn name(&self) -> &str {
        "group_inclusive_fixup"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let gid = self.exclusive.get_u32(idx) + self.flags.get_u32(idx);
                self.gids.set_u32(idx, gid);
            }
        }
    }
}

// ---- multi-column grouping ----

struct CombineGidKernel {
    previous: Buffer,
    next: Buffer,
    combined: Buffer,
    next_groups: u32,
}

impl Kernel for CombineGidKernel {
    fn name(&self) -> &str {
        "group_combine_gids"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let combined =
                    self.previous.get_u32(idx) * self.next_groups + self.next.get_u32(idx);
                self.combined.set_u32(idx, combined);
            }
        }
    }
}

/// Refines an existing grouping with an additional key column: the column is
/// grouped on its own, the two dense-id columns are combined into a single
/// id, and the combined ids are grouped again (paper §4.1.6).
pub fn group_refine<T: DevWord>(
    ctx: &OcelotContext,
    previous: &GroupBy,
    keys: &DevColumn<T>,
    distinct_hint: usize,
) -> Result<GroupBy> {
    let next = group_by_hash(ctx, keys, distinct_hint)?;
    let n = keys.len(ctx)?;
    // The alignment invariant is on *logical* lengths, not capacities: a
    // refined gid column has a resolved host length while later key columns
    // may still carry their (larger) deferred capacity bound. The resolve
    // is free here — `group_by_hash` already synced for its group count.
    assert_eq!(previous.gids.len(ctx)?, n, "group_refine: length mismatch");
    if n == 0 {
        return Ok(next);
    }
    let combined_product = (previous.num_groups as u64) * (next.num_groups as u64);
    assert!(
        combined_product < u32::MAX as u64,
        "group_refine: combined group id space overflows 32 bits ({combined_product})"
    );
    let combined = ctx.alloc(n, "group_combined_ids")?;
    let mut wait = ctx.memory().wait_for_read(&previous.gids.buffer);
    wait.extend(ctx.memory().wait_for_read(&next.gids.buffer));
    let combine_event = ctx.queue().enqueue_kernel(
        Arc::new(CombineGidKernel {
            previous: previous.gids.buffer.clone(),
            next: next.gids.buffer.clone(),
            combined: combined.clone(),
            next_groups: next.num_groups.max(1) as u32,
        }),
        ctx.launch(n),
        &wait,
    )?;
    ctx.memory().record_producer(&combined, combine_event);
    let combined_col = DevColumn::<u32>::new(combined, n)?;
    let hint = (previous.num_groups * next.num_groups).max(1).min(n.max(1));
    group_by_hash(ctx, &combined_col, hint)
}

/// Groups by several key columns at once (repeated refinement).
pub fn group_by_columns<T: DevWord>(
    ctx: &OcelotContext,
    columns: &[&DevColumn<T>],
    distinct_hint: usize,
) -> Result<GroupBy> {
    assert!(!columns.is_empty(), "group_by_columns: need at least one column");
    let mut result = group_by_hash(ctx, columns[0], distinct_hint)?;
    for column in &columns[1..] {
        result = group_refine(ctx, &result, column, distinct_hint)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;

    fn check_same_partition(values: &[i32], gids: &[u32], expected_groups: usize) {
        let reference = monet::group_by_i32(values);
        assert_eq!(expected_groups, reference.num_groups);
        for i in (0..values.len()).step_by(37) {
            for j in (0..values.len()).step_by(41) {
                assert_eq!(
                    reference.gids[i] == reference.gids[j],
                    gids[i] == gids[j],
                    "rows {i},{j}"
                );
            }
        }
    }

    #[test]
    fn hash_grouping_matches_monet_on_all_devices() {
        let values: Vec<i32> = (0..8_000).map(|i| (i * 131 + 7) % 100).collect();
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let col = ctx.upload_i32(&values, "keys").unwrap();
            let result = group_by_hash(&ctx, &col, 100).unwrap();
            assert_eq!(result.num_groups, 100);
            let gids = result.gids.read(&ctx).unwrap();
            check_same_partition(&values, &gids, result.num_groups);
        }
    }

    #[test]
    fn sorted_grouping_matches_hash_grouping() {
        let mut values: Vec<i32> = (0..5_000).map(|i| (i * 17 + 3) % 50).collect();
        values.sort_unstable();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&values, "keys").unwrap();
        let sorted = group_by_sorted(&ctx, &col).unwrap();
        assert_eq!(sorted.num_groups, 50);
        let gids = sorted.gids.read(&ctx).unwrap();
        // Sorted input: group ids must be non-decreasing and dense.
        assert!(gids.windows(2).all(|w| w[1] == w[0] || w[1] == w[0] + 1));
        assert_eq!(*gids.last().unwrap() as usize, sorted.num_groups - 1);
        check_same_partition(&values, &gids, sorted.num_groups);
        // Representatives point at the first row of each group.
        let reps = sorted.representatives.read(&ctx).unwrap();
        for (gid, rep) in reps.iter().enumerate() {
            assert_eq!(gids[*rep as usize] as usize, gid);
            assert!(*rep == 0 || gids[(*rep - 1) as usize] as usize == gid - 1);
        }
    }

    #[test]
    fn representatives_carry_group_keys() {
        let values: Vec<i32> = (0..3_000).map(|i| (i * 7) % 31).collect();
        let ctx = OcelotContext::gpu();
        let col = ctx.upload_i32(&values, "keys").unwrap();
        let result = group_by_hash(&ctx, &col, 31).unwrap();
        let gids = result.gids.read(&ctx).unwrap();
        let reps = result.representatives.read(&ctx).unwrap();
        for (row, gid) in gids.iter().enumerate() {
            assert_eq!(values[reps[*gid as usize] as usize], values[row]);
        }
    }

    #[test]
    fn multi_column_grouping() {
        let a: Vec<i32> = (0..4_000).map(|i| i % 4).collect();
        let b: Vec<i32> = (0..4_000).map(|i| i % 6).collect();
        let ctx = OcelotContext::cpu();
        let ca = ctx.upload_i32(&a, "a").unwrap();
        let cb = ctx.upload_i32(&b, "b").unwrap();
        let result = group_by_columns(&ctx, &[&ca, &cb], 32).unwrap();
        // lcm(4, 6) = 12 distinct pairs.
        assert_eq!(result.num_groups, 12);
        let gids = result.gids.read(&ctx).unwrap();
        for i in (0..a.len()).step_by(17) {
            for j in (0..a.len()).step_by(23) {
                assert_eq!((a[i], b[i]) == (a[j], b[j]), gids[i] == gids[j]);
            }
        }
    }

    #[test]
    fn three_deferred_key_columns_group_correctly() {
        // Regression: the second refinement meets a `previous` grouping
        // whose gid column has a *resolved* host length while the third key
        // still carries its deferred capacity bound (the shape of TPC-H
        // Q3's three-key group-by over join outputs). Alignment is on
        // logical lengths, not capacities.
        use crate::ops::select;
        use crate::primitives::gather;
        let a: Vec<i32> = (0..5_000).map(|i| i % 3).collect();
        let b: Vec<i32> = (0..5_000).map(|i| i % 4).collect();
        let c: Vec<i32> = (0..5_000).map(|i| i % 5).collect();
        let sel: Vec<i32> = (0..5_000).map(|i| i % 10).collect();
        let ctx = OcelotContext::cpu();
        let keep = select::select_range_i32(&ctx, &ctx.upload_i32(&sel, "s").unwrap(), 0, 6)
            .and_then(|bitmap| select::materialize_bitmap(&ctx, &bitmap))
            .unwrap();
        assert!(keep.is_deferred(), "the key columns must inherit a deferred length");
        let ka = gather::gather(&ctx, &ctx.upload_i32(&a, "a").unwrap(), &keep).unwrap();
        let kb = gather::gather(&ctx, &ctx.upload_i32(&b, "b").unwrap(), &keep).unwrap();
        let kc = gather::gather(&ctx, &ctx.upload_i32(&c, "c").unwrap(), &keep).unwrap();
        let result = group_by_columns(&ctx, &[&ka, &kb, &kc], 16).unwrap();
        // (i%3, i%4, i%5) ↔ i%60 is a bijection (CRT) and i%10 is a
        // function of i%60, so keeping i%10 <= 6 keeps 42 of the 60
        // residue classes — 42 distinct triples.
        assert_eq!(result.num_groups, 42);
        let gids = result.gids.read(&ctx).unwrap();
        let rows: Vec<usize> = (0..5_000).filter(|i| sel[*i] <= 6).collect();
        assert_eq!(gids.len(), rows.len());
        for (x, i) in rows.iter().enumerate().step_by(31) {
            for (y, j) in rows.iter().enumerate().step_by(47) {
                assert_eq!((a[*i], b[*i], c[*i]) == (a[*j], b[*j], c[*j]), gids[x] == gids[y]);
            }
        }
    }

    #[test]
    fn single_group_and_empty_inputs() {
        let ctx = OcelotContext::cpu();
        let uniform = ctx.upload_i32(&[7; 100], "u").unwrap();
        let result = group_by_hash(&ctx, &uniform, 4).unwrap();
        assert_eq!(result.num_groups, 1);
        assert!(result.gids.read(&ctx).unwrap().iter().all(|g| *g == 0));

        let empty = ctx.upload_i32(&[], "e").unwrap();
        assert_eq!(group_by_hash(&ctx, &empty, 4).unwrap().num_groups, 0);
        assert_eq!(group_by_sorted(&ctx, &empty).unwrap().num_groups, 0);
    }
}
