//! Ocelot's parallel hash table (paper §4.1.4).
//!
//! The build follows the optimistic/pessimistic scheme the paper derives
//! from Alcantara et al. and García et al.:
//!
//! 1. **Optimistic round** — every thread inserts its keys without any
//!    synchronisation. Races may overwrite keys.
//! 2. **Check round** — every thread verifies its key ended up in the table
//!    (findable along its probe sequence). Lost keys are flagged.
//! 3. **Pessimistic round** — flagged keys are re-inserted with atomic
//!    compare-and-swap. If a key still cannot be placed the build restarts
//!    with a doubled table (the paper starts at `1.4 ×` the expected
//!    distinct count, matching its observed ~75 % fill rate).
//!
//! Probing uses six multiplicative hash functions before reverting to linear
//! probing, as described in the paper. The finished table assigns a *dense
//! group id* to every distinct key (via an exclusive scan over slot
//! occupancy), which is exactly what the group-by and join operators need
//! (the "multi-stage hash lookup table" of He et al.).
//!
//! Restrictions: keys are 32-bit words and the value `0xFFFF_FFFF`
//! (`-1` as `i32`) is reserved as the empty-slot sentinel. The TPC-H data
//! and the benchmark generators never produce it.

use crate::context::{DevColumn, DevWord, LenSource, OcelotContext, Oid};
use crate::primitives::prefix_sum::exclusive_scan_u32;
use ocelot_kernel::atomic::atomic_cas_u32;
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Sentinel marking an empty slot (and a failed lookup).
pub const EMPTY_KEY: u32 = u32::MAX;
/// Sentinel returned by lookups that find no match.
pub const NOT_FOUND: u32 = u32::MAX;

const HASH_SEEDS: [u32; 6] =
    [0x9E37_79B1, 0x85EB_CA77, 0xC2B2_AE3D, 0x27D4_EB2F, 0x1656_67B1, 0x2545_F491];

/// Slot visited at probe `attempt` for `key` in a table of `capacity` slots
/// (`capacity` must be a power of two). Six hash functions, then linear
/// probing from the last one.
#[inline]
fn probe_slot(key: u32, attempt: usize, capacity: usize) -> usize {
    let mask = capacity - 1;
    if attempt < HASH_SEEDS.len() {
        (key.wrapping_mul(HASH_SEEDS[attempt]) as usize) & mask
    } else {
        let base = key.wrapping_mul(HASH_SEEDS[HASH_SEEDS.len() - 1]) as usize;
        (base + (attempt - HASH_SEEDS.len() + 1)) & mask
    }
}

/// Finds the first slot along `key`'s probe sequence that already holds
/// `key`. Returns `None` if an empty slot (or probe exhaustion) is reached
/// first.
#[inline]
fn find_key_slot(keys: &Buffer, key: u32, capacity: usize, max_probe: usize) -> Option<usize> {
    for attempt in 0..max_probe {
        let slot = probe_slot(key, attempt, capacity);
        let current = keys.get_u32(slot);
        if current == key {
            return Some(slot);
        }
        if current == EMPTY_KEY {
            return None;
        }
    }
    None
}

struct OptimisticInsertKernel {
    input: Buffer,
    keys: Buffer,
    capacity: usize,
    max_probe: usize,
}

impl Kernel for OptimisticInsertKernel {
    fn name(&self) -> &str {
        "hash_optimistic_insert"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let key = self.input.get_u32(idx);
                for attempt in 0..self.max_probe {
                    let slot = probe_slot(key, attempt, self.capacity);
                    let current = self.keys.get_u32(slot);
                    if current == key {
                        break;
                    }
                    if current == EMPTY_KEY {
                        // Unsynchronised write — may be overwritten by a
                        // racing thread; the check round will notice.
                        self.keys.set_u32(slot, key);
                        break;
                    }
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 12, (launch.n as u64) * 4, (launch.n as u64) * 4, 0)
    }
}

struct CheckKernel {
    input: Buffer,
    keys: Buffer,
    failed_flags: Buffer,
    failed_count: Buffer,
    capacity: usize,
    max_probe: usize,
}

impl Kernel for CheckKernel {
    fn name(&self) -> &str {
        "hash_check"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let key = self.input.get_u32(idx);
                if find_key_slot(&self.keys, key, self.capacity, self.max_probe).is_none() {
                    self.failed_flags.set_u32(idx, 1);
                    self.failed_count.cell(0).fetch_add(1, Ordering::AcqRel);
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 12, 0, (launch.n as u64) * 4, launch.n as u64 / 16)
    }
}

struct PessimisticInsertKernel {
    input: Buffer,
    keys: Buffer,
    failed_flags: Buffer,
    restart_flag: Buffer,
    capacity: usize,
    max_probe: usize,
}

impl Kernel for PessimisticInsertKernel {
    fn name(&self) -> &str {
        "hash_pessimistic_insert"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                if self.failed_flags.get_u32(idx) == 0 {
                    continue;
                }
                let key = self.input.get_u32(idx);
                let mut placed = false;
                for attempt in 0..self.max_probe {
                    let slot = probe_slot(key, attempt, self.capacity);
                    let current = self.keys.get_u32(slot);
                    if current == key {
                        placed = true;
                        break;
                    }
                    if current == EMPTY_KEY {
                        let previous = atomic_cas_u32(self.keys.cell(slot), EMPTY_KEY, key);
                        if previous == EMPTY_KEY || previous == key {
                            placed = true;
                            break;
                        }
                        // Lost the race to a different key — keep probing.
                    }
                }
                if !placed {
                    self.restart_flag.set_u32(0, 1);
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(
            (launch.n as u64) * 8,
            (launch.n as u64) * 2,
            (launch.n as u64) * 2,
            launch.n as u64 / 4,
        )
    }
}

/// Marks canonical occupied slots: a slot counts only if it is the *first*
/// slot along its key's probe sequence that holds the key (racy optimistic
/// inserts can leave the same key in two slots; only one may define the
/// group).
struct OccupancyKernel {
    keys: Buffer,
    occupancy: Buffer,
    capacity: usize,
    max_probe: usize,
}

impl Kernel for OccupancyKernel {
    fn name(&self) -> &str {
        "hash_occupancy"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for slot in item.assigned() {
                let key = self.keys.get_u32(slot);
                let canonical = key != EMPTY_KEY
                    && find_key_slot(&self.keys, key, self.capacity, self.max_probe) == Some(slot);
                self.occupancy.set_u32(slot, u32::from(canonical));
            }
        }
    }
}

/// Fills each group's representative with the smallest row id carrying the
/// group's key (deterministic regardless of scheduling).
struct RepresentativeKernel {
    input: Buffer,
    keys: Buffer,
    slot_gids: Buffer,
    representatives: Buffer,
    capacity: usize,
    max_probe: usize,
}

impl Kernel for RepresentativeKernel {
    fn name(&self) -> &str {
        "hash_representatives"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            for idx in item.assigned() {
                let key = self.input.get_u32(idx);
                if let Some(slot) = find_key_slot(&self.keys, key, self.capacity, self.max_probe) {
                    let gid = self.slot_gids.get_u32(slot) as usize;
                    // atomic min on the representative row id.
                    let cell = self.representatives.cell(gid);
                    let mut current = cell.load(Ordering::Relaxed);
                    while (idx as u32) < current {
                        match cell.compare_exchange_weak(
                            current,
                            idx as u32,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(actual) => current = actual,
                        }
                    }
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(
            (launch.n as u64) * 12,
            (launch.n as u64) * 4,
            (launch.n as u64) * 4,
            launch.n as u64 / 8,
        )
    }
}

/// Looks up the dense group id for every probe key (`NOT_FOUND` if absent).
struct LookupGidKernel {
    probe: Buffer,
    keys: Buffer,
    slot_gids: Buffer,
    output: Buffer,
    capacity: usize,
    max_probe: usize,
    n: LenSource,
}

impl Kernel for LookupGidKernel {
    fn name(&self) -> &str {
        "hash_lookup_gid"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        // A deferred probe count resolves here, at flush time.
        let n = self.n.get();
        for item in group.items() {
            for idx in item.assigned() {
                if idx >= n {
                    continue;
                }
                let key = self.probe.get_u32(idx);
                let gid = match find_key_slot(&self.keys, key, self.capacity, self.max_probe) {
                    Some(slot) => self.slot_gids.get_u32(slot),
                    None => NOT_FOUND,
                };
                self.output.set_u32(idx, gid);
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 12, (launch.n as u64) * 4, (launch.n as u64) * 4, 0)
    }
}

/// A finished parallel hash table over a key column.
pub struct OcelotHashTable {
    keys: Buffer,
    slot_gids: Buffer,
    representatives: Buffer,
    capacity: usize,
    distinct: usize,
    build_attempts: usize,
}

impl std::fmt::Debug for OcelotHashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OcelotHashTable")
            .field("capacity", &self.capacity)
            .field("distinct", &self.distinct)
            .field("build_attempts", &self.build_attempts)
            .finish()
    }
}

impl OcelotHashTable {
    /// Builds a table over `keys`. `distinct_hint` sizes the initial table
    /// (`1.4 ×` the hint, rounded to a power of two); an underestimate only
    /// costs extra restart rounds.
    ///
    /// **Deliberate sync point:** the optimistic/pessimistic build loop's
    /// host-side control flow inspects the failure counter after each round,
    /// so the build flushes internally (a deferred input length is resolved
    /// on entry for the same reason). The *probes* stay lazy.
    pub fn build<T: DevWord>(
        ctx: &OcelotContext,
        keys_col: &DevColumn<T>,
        distinct_hint: usize,
    ) -> Result<OcelotHashTable> {
        let n = keys_col.len(ctx)?;
        let mut capacity =
            (((distinct_hint.max(1) as f64) * 1.4).ceil() as usize).next_power_of_two().max(16);
        let mut build_attempts = 0;

        loop {
            build_attempts += 1;
            let max_probe = HASH_SEEDS.len() + capacity;
            // fill_u32 overwrites every word, so skip the zeroing alloc.
            let keys = ctx.alloc_uninit(capacity, "hash_keys")?;
            keys.fill_u32(EMPTY_KEY);
            ctx.queue().enqueue_write(&keys, &[])?;

            if n > 0 {
                let launch = ctx.launch(n);
                let wait = ctx.wait_for(keys_col);
                let optimistic = ctx.queue().enqueue_kernel(
                    Arc::new(OptimisticInsertKernel {
                        input: keys_col.buffer.clone(),
                        keys: keys.clone(),
                        capacity,
                        max_probe,
                    }),
                    launch.clone(),
                    &wait,
                )?;

                let failed_flags = ctx.alloc(n, "hash_failed_flags")?;
                let failed_count = ctx.alloc(1, "hash_failed_count")?;
                let check = ctx.queue().enqueue_kernel(
                    Arc::new(CheckKernel {
                        input: keys_col.buffer.clone(),
                        keys: keys.clone(),
                        failed_flags: failed_flags.clone(),
                        failed_count: failed_count.clone(),
                        capacity,
                        max_probe,
                    }),
                    launch.clone(),
                    &[optimistic],
                )?;
                ctx.queue().flush()?;
                let _ = check;

                if failed_count.get_u32(0) > 0 {
                    let restart_flag = ctx.alloc(1, "hash_restart_flag")?;
                    ctx.queue().enqueue_kernel(
                        Arc::new(PessimisticInsertKernel {
                            input: keys_col.buffer.clone(),
                            keys: keys.clone(),
                            failed_flags,
                            restart_flag: restart_flag.clone(),
                            capacity,
                            max_probe,
                        }),
                        launch,
                        &[],
                    )?;
                    ctx.queue().flush()?;
                    if restart_flag.get_u32(0) != 0 {
                        // Restarting is expensive (paper §4.1.4) — double the
                        // table and try again.
                        capacity *= 2;
                        continue;
                    }
                }
            }

            // Finalisation: dense group ids per canonical occupied slot.
            let occupancy = ctx.alloc(capacity, "hash_occupancy")?;
            ctx.queue().enqueue_kernel(
                Arc::new(OccupancyKernel {
                    keys: keys.clone(),
                    occupancy: occupancy.clone(),
                    capacity,
                    max_probe,
                }),
                ctx.launch(capacity),
                &[],
            )?;
            let occupancy_col = DevColumn::<u32>::new(occupancy, capacity)?;
            let (slot_gids, distinct) = exclusive_scan_u32(ctx, &occupancy_col)?;
            // The group count shapes the result schema (representative
            // allocation below), so the build resolves it here.
            let distinct = distinct.get(ctx)? as usize;

            // Representatives: smallest row id per group.
            // fill_u32 overwrites every word, so skip the zeroing alloc.
            let representatives = ctx.alloc_uninit(distinct.max(1), "hash_representatives")?;
            representatives.fill_u32(u32::MAX);
            ctx.queue().enqueue_write(&representatives, &[])?;
            if n > 0 {
                ctx.queue().enqueue_kernel(
                    Arc::new(RepresentativeKernel {
                        input: keys_col.buffer.clone(),
                        keys: keys.clone(),
                        slot_gids: slot_gids.buffer.clone(),
                        representatives: representatives.clone(),
                        capacity,
                        max_probe,
                    }),
                    ctx.launch(n),
                    &[],
                )?;
            }
            ctx.queue().flush()?;

            return Ok(OcelotHashTable {
                keys,
                slot_gids: slot_gids.buffer,
                representatives,
                capacity,
                distinct,
                build_attempts,
            });
        }
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct keys indexed.
    pub fn num_distinct(&self) -> usize {
        self.distinct
    }

    /// How many build attempts (restarts + 1) were needed.
    pub fn build_attempts(&self) -> usize {
        self.build_attempts
    }

    /// The representative (smallest) row id per dense group id, as a device
    /// column of `num_distinct()` OIDs.
    pub fn representatives(&self) -> DevColumn<Oid> {
        DevColumn::new(self.representatives.clone(), self.distinct)
            .expect("representative buffer covers the distinct count")
    }

    /// Looks up the dense group id of every probe key. Missing keys map to
    /// [`NOT_FOUND`]. Lazy: probe columns with deferred lengths are
    /// supported, and the output inherits the same length.
    pub fn probe_gids<T: DevWord>(
        &self,
        ctx: &OcelotContext,
        probe: &DevColumn<T>,
    ) -> Result<DevColumn<Oid>> {
        // The lookup kernel overwrites the logical prefix; the tail past a
        // deferred count is never read.
        let output = ctx.alloc_uninit(probe.cap().max(1), "hash_probe_gids")?;
        if probe.cap() == 0 {
            return DevColumn::new(output, 0);
        }
        let max_probe = HASH_SEEDS.len() + self.capacity;
        let wait = ctx.wait_for(probe);
        let event = ctx.queue().enqueue_kernel(
            Arc::new(LookupGidKernel {
                probe: probe.buffer.clone(),
                keys: self.keys.clone(),
                slot_gids: self.slot_gids.clone(),
                output: output.clone(),
                capacity: self.capacity,
                max_probe,
                n: probe.len_source(),
            }),
            ctx.launch(probe.cap()),
            &wait,
        )?;
        ctx.memory().record_producer(&output, event);
        DevColumn::with_len(output, probe.col_len().clone())
    }

    /// Looks up the representative row id (in the build input) of every
    /// probe key. Missing keys map to [`NOT_FOUND`]. This is the probe half
    /// of a PK-FK hash join.
    pub fn probe_representatives<T: DevWord>(
        &self,
        ctx: &OcelotContext,
        probe: &DevColumn<T>,
    ) -> Result<DevColumn<Oid>> {
        let gids = self.probe_gids(ctx, probe)?;
        // representative[gid] with NOT_FOUND pass-through.
        let output = ctx.alloc_uninit(probe.cap().max(1), "hash_probe_reps")?;
        if probe.cap() == 0 {
            return DevColumn::new(output, 0);
        }
        let kernel = TranslateGidKernel {
            gids: gids.buffer.clone(),
            representatives: self.representatives.clone(),
            output: output.clone(),
            n: gids.len_source(),
        };
        let wait = ctx.wait_for(&gids);
        let event = ctx.queue().enqueue_kernel(Arc::new(kernel), ctx.launch(probe.cap()), &wait)?;
        ctx.memory().record_producer(&output, event);
        DevColumn::with_len(output, probe.col_len().clone())
    }
}

struct TranslateGidKernel {
    gids: Buffer,
    representatives: Buffer,
    output: Buffer,
    n: LenSource,
}

impl Kernel for TranslateGidKernel {
    fn name(&self) -> &str {
        "hash_translate_gid"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let n = self.n.get();
        for item in group.items() {
            for idx in item.assigned() {
                if idx >= n {
                    continue;
                }
                let gid = self.gids.get_u32(idx);
                let value = if gid == NOT_FOUND {
                    NOT_FOUND
                } else {
                    self.representatives.get_u32(gid as usize)
                };
                self.output.set_u32(idx, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use std::collections::HashSet;

    fn contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    #[test]
    fn distinct_count_matches_reference_on_all_devices() {
        let keys: Vec<i32> = (0..20_000).map(|i| (i * 131 + 17) % 500).collect();
        let expected: HashSet<i32> = keys.iter().copied().collect();
        for ctx in contexts() {
            let col = ctx.upload_i32(&keys, "keys").unwrap();
            let table = OcelotHashTable::build(&ctx, &col, 500).unwrap();
            assert_eq!(table.num_distinct(), expected.len(), "{:?}", ctx.device().info().kind);
        }
    }

    #[test]
    fn lookups_are_consistent_and_dense() {
        let keys: Vec<i32> = (0..5_000).map(|i| (i * 7 + 1) % 250).collect();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&keys, "keys").unwrap();
        let table = OcelotHashTable::build(&ctx, &col, 250).unwrap();
        let gids_col = table.probe_gids(&ctx, &col).unwrap();
        let gids = gids_col.read(&ctx).unwrap();

        // gid is dense, and two rows share a gid iff they share a key.
        assert!(gids.iter().all(|g| (*g as usize) < table.num_distinct()));
        for i in (0..keys.len()).step_by(97) {
            for j in (0..keys.len()).step_by(89) {
                assert_eq!(keys[i] == keys[j], gids[i] == gids[j], "rows {i},{j}");
            }
        }
    }

    #[test]
    fn representatives_carry_the_group_key() {
        let keys: Vec<i32> = (0..3_000).map(|i| (i * 13 + 5) % 77).collect();
        let ctx = OcelotContext::gpu();
        let col = ctx.upload_i32(&keys, "keys").unwrap();
        let table = OcelotHashTable::build(&ctx, &col, 77).unwrap();
        let reps = table.representatives().read(&ctx).unwrap();
        let gids = table.probe_gids(&ctx, &col).unwrap().read(&ctx).unwrap();
        assert_eq!(reps.len(), table.num_distinct());
        for (row, gid) in gids.iter().enumerate() {
            let rep_row = reps[*gid as usize] as usize;
            assert_eq!(keys[rep_row], keys[row], "representative must share the key");
            assert!(rep_row <= row || keys[rep_row] == keys[row]);
        }
        // Representatives are the *smallest* row of their group.
        for (gid, rep) in reps.iter().enumerate() {
            let first = keys.iter().position(|k| {
                let krow_gid = gids[keys.iter().position(|x| x == k).unwrap()];
                krow_gid as usize == gid
            });
            if let Some(first_row) = first {
                assert_eq!(*rep as usize, first_row);
            }
        }
    }

    #[test]
    fn missing_probe_keys_return_not_found() {
        let ctx = OcelotContext::cpu();
        let build = ctx.upload_i32(&[10, 20, 30], "build").unwrap();
        let table = OcelotHashTable::build(&ctx, &build, 3).unwrap();
        let probe = ctx.upload_i32(&[20, 99, 10, 55], "probe").unwrap();
        let reps = table.probe_representatives(&ctx, &probe).unwrap().read(&ctx).unwrap();
        assert_eq!(reps, vec![1, NOT_FOUND, 0, NOT_FOUND]);
    }

    #[test]
    fn unique_keys_give_identity_representatives() {
        let keys: Vec<i32> = (0..1_000).collect();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&keys, "keys").unwrap();
        let table = OcelotHashTable::build(&ctx, &col, keys.len()).unwrap();
        assert_eq!(table.num_distinct(), 1_000);
        let reps = table.probe_representatives(&ctx, &col).unwrap().read(&ctx).unwrap();
        let expected: Vec<u32> = (0..1_000).collect();
        assert_eq!(reps, expected);
    }

    #[test]
    fn undersized_hint_triggers_restart_but_succeeds() {
        let keys: Vec<i32> = (0..4_000).collect();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&keys, "keys").unwrap();
        // Hint of 4 forces multiple restarts before all 4000 distinct keys fit.
        let table = OcelotHashTable::build(&ctx, &col, 4).unwrap();
        assert_eq!(table.num_distinct(), 4_000);
        assert!(table.build_attempts() > 1, "expected at least one restart");
        assert!(table.capacity() >= 4_096);
    }

    #[test]
    fn empty_input() {
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&[], "keys").unwrap();
        let table = OcelotHashTable::build(&ctx, &col, 10).unwrap();
        assert_eq!(table.num_distinct(), 0);
        let probe = ctx.upload_i32(&[1, 2], "probe").unwrap();
        let gids = table.probe_gids(&ctx, &probe).unwrap().read(&ctx).unwrap();
        assert_eq!(gids, vec![NOT_FOUND, NOT_FOUND]);
    }

    #[test]
    fn probe_slot_sequences_cover_the_table() {
        // The first six probes use distinct hash functions, then linear probing.
        let capacity = 64;
        let visited: HashSet<usize> =
            (0..capacity + 6).map(|attempt| probe_slot(42, attempt, capacity)).collect();
        assert!(visited.len() >= capacity, "probe sequence must be able to visit every slot");
    }
}
