//! Join operators (paper §4.1.5).
//!
//! Equi-joins are hash joins against an [`OcelotHashTable`] built over the
//! (unique-key) build side; theta-joins use a nested-loop kernel. Both use
//! the two-step scheme to produce compact results without synchronisation:
//! every work-item first counts the result tuples it will emit, a prefix sum
//! turns the counts into unique write offsets, and a second pass performs
//! the join writing at those offsets. When the caller knows every probe row
//! matches (e.g. a PK-FK join against an unfiltered key column), the
//! counting pass is skipped and the aligned lookup is returned directly —
//! the paper's "execute the join directly, omitting the additional
//! overhead" optimisation.
//!
//! Hash-join compaction is fully lazy: a probe row produces at most one
//! result tuple, so the outputs are allocated at the probe cardinality and
//! carry the scan total as a deferred length — no host round-trip. The
//! nested-loop theta join is the documented exception: its output bound is
//! `|L| × |R|`, so it resolves the scan total (one sync) instead of
//! allocating the quadratic worst case.

use crate::context::{DevColumn, LenSource, OcelotContext, Oid};
use crate::ops::hash_table::{OcelotHashTable, NOT_FOUND};
use crate::primitives::prefix_sum::exclusive_scan_u32;
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

/// A compacted join result: aligned probe-side and build-side OID columns
/// (lengths may be deferred — resolve with [`JoinResult::len`] or read the
/// columns).
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// OIDs into the probe (left) input, one per result tuple.
    pub probe_oids: DevColumn<Oid>,
    /// OIDs into the build (right) input, aligned with `probe_oids`.
    pub build_oids: DevColumn<Oid>,
}

impl JoinResult {
    /// Number of result tuples (**sync point** when deferred).
    pub fn len(&self, ctx: &OcelotContext) -> Result<usize> {
        self.probe_oids.len(ctx)
    }

    /// Whether the join produced no tuples (**sync point** when deferred).
    pub fn is_empty(&self, ctx: &OcelotContext) -> Result<bool> {
        Ok(self.len(ctx)? == 0)
    }
}

// ---- compaction of aligned lookups (shared by hash join / semi / anti) ----

struct CountMatchesKernel {
    lookups: Buffer,
    counts: Buffer,
    keep_found: bool,
    n: LenSource,
}

impl Kernel for CountMatchesKernel {
    fn name(&self) -> &str {
        "join_count_matches"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        // A deferred probe count resolves here, at flush time; the value is
        // identical for every item, so the chunk partition is consistent.
        let n = self.n.get();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(n);
            let mut count = 0u32;
            for idx in start..end {
                let found = self.lookups.get_u32(idx) != NOT_FOUND;
                if found == self.keep_found {
                    count += 1;
                }
            }
            self.counts.set_u32(item.global_id, count);
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 4, launch.total_items() as u64 * 4, launch.n as u64, 0)
    }
}

struct WriteMatchesKernel {
    lookups: Buffer,
    offsets: Buffer,
    probe_out: Buffer,
    build_out: Option<Buffer>,
    keep_found: bool,
    n: LenSource,
}

impl Kernel for WriteMatchesKernel {
    fn name(&self) -> &str {
        "join_write_matches"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let n = self.n.get();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(n);
            let mut cursor = self.offsets.get_u32(item.global_id) as usize;
            for idx in start..end {
                let lookup = self.lookups.get_u32(idx);
                let found = lookup != NOT_FOUND;
                if found == self.keep_found {
                    self.probe_out.set_u32(cursor, idx as u32);
                    if let Some(build_out) = &self.build_out {
                        build_out.set_u32(cursor, lookup);
                    }
                    cursor += 1;
                }
            }
        }
    }
}

/// Compacts an aligned lookup column (`NOT_FOUND` = miss) into the probe
/// OIDs whose lookup status matches `keep_found`, optionally emitting the
/// matching build OIDs as well. Lazy: a probe row emits at most one tuple,
/// so outputs are capacity-allocated and the scan total becomes their
/// deferred length.
fn compact_lookups(
    ctx: &OcelotContext,
    lookups: &DevColumn<Oid>,
    keep_found: bool,
    emit_build: bool,
) -> Result<(DevColumn<Oid>, Option<DevColumn<Oid>>)> {
    let cap = lookups.cap();
    if cap == 0 {
        let empty = ctx.alloc(1, "join_empty")?;
        let build =
            if emit_build { Some(DevColumn::new(ctx.alloc(1, "join_empty_b")?, 0)?) } else { None };
        return Ok((DevColumn::new(empty, 0)?, build));
    }
    let launch = ctx.launch(cap);
    let counts = ctx.alloc(launch.total_items(), "join_counts")?;
    let wait = ctx.wait_for(lookups);
    let count_event = ctx.queue().enqueue_kernel(
        Arc::new(CountMatchesKernel {
            lookups: lookups.buffer.clone(),
            counts: counts.clone(),
            keep_found,
            n: lookups.len_source(),
        }),
        launch.clone(),
        &wait,
    )?;
    ctx.memory().record_producer(&counts, count_event);
    let counts_col = DevColumn::<u32>::new(counts, launch.total_items())?;
    let (offsets, total) = exclusive_scan_u32(ctx, &counts_col)?;

    // The write kernel fills exactly the logical prefix (the scan total),
    // which is all any consumer may read — no zeroing needed.
    let probe_out = ctx.alloc_uninit(cap, "join_probe_oids")?;
    let build_out = if emit_build { Some(ctx.alloc_uninit(cap, "join_build_oids")?) } else { None };
    let mut write_wait = ctx.memory().wait_for_read(&offsets.buffer);
    write_wait.extend(ctx.wait_for(lookups));
    let event = ctx.queue().enqueue_kernel(
        Arc::new(WriteMatchesKernel {
            lookups: lookups.buffer.clone(),
            offsets: offsets.buffer.clone(),
            probe_out: probe_out.clone(),
            build_out: build_out.clone(),
            keep_found,
            n: lookups.len_source(),
        }),
        launch,
        &write_wait,
    )?;
    ctx.memory().record_producer(&probe_out, event);
    if let Some(build_out) = &build_out {
        ctx.memory().record_producer(build_out, event);
    }
    let probe_col = DevColumn::deferred(probe_out, total.buffer().clone(), cap)?;
    let build_col = match build_out {
        Some(buffer) => Some(DevColumn::deferred(buffer, total.buffer().clone(), cap)?),
        None => None,
    };
    Ok((probe_col, build_col))
}

/// Hash equi-join of a probe column against a table built over a unique key
/// column. Probe rows without a partner are dropped.
pub fn hash_join(
    ctx: &OcelotContext,
    probe: &DevColumn<i32>,
    table: &OcelotHashTable,
) -> Result<JoinResult> {
    let lookups = table.probe_representatives(ctx, probe)?;
    let (probe_oids, build_oids) = compact_lookups(ctx, &lookups, true, true)?;
    Ok(JoinResult { probe_oids, build_oids: build_oids.expect("build side requested") })
}

/// Aligned PK-FK lookup: for every probe row the matching build OID
/// (`NOT_FOUND` when missing). This is the "known result size" fast path the
/// paper uses when joining against a key column.
pub fn hash_join_aligned(
    ctx: &OcelotContext,
    probe: &DevColumn<i32>,
    table: &OcelotHashTable,
) -> Result<DevColumn<Oid>> {
    table.probe_representatives(ctx, probe)
}

/// Semi join (`EXISTS`): probe OIDs that have at least one partner.
pub fn semi_join(
    ctx: &OcelotContext,
    probe: &DevColumn<i32>,
    table: &OcelotHashTable,
) -> Result<DevColumn<Oid>> {
    let lookups = table.probe_representatives(ctx, probe)?;
    let (oids, _) = compact_lookups(ctx, &lookups, true, false)?;
    Ok(oids)
}

/// Anti join (`NOT EXISTS`): probe OIDs without any partner.
pub fn anti_join(
    ctx: &OcelotContext,
    probe: &DevColumn<i32>,
    table: &OcelotHashTable,
) -> Result<DevColumn<Oid>> {
    let lookups = table.probe_representatives(ctx, probe)?;
    let (oids, _) = compact_lookups(ctx, &lookups, false, false)?;
    Ok(oids)
}

// ---- nested-loop theta join ----

/// Comparison used by the nested-loop theta join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThetaOp {
    /// `left < right`
    Less,
    /// `left <= right`
    LessEqual,
    /// `left > right`
    Greater,
    /// `left >= right`
    GreaterEqual,
    /// `left != right`
    NotEqual,
}

impl ThetaOp {
    #[inline]
    fn matches(self, left: i32, right: i32) -> bool {
        match self {
            ThetaOp::Less => left < right,
            ThetaOp::LessEqual => left <= right,
            ThetaOp::Greater => left > right,
            ThetaOp::GreaterEqual => left >= right,
            ThetaOp::NotEqual => left != right,
        }
    }
}

struct NestedLoopCountKernel {
    left: Buffer,
    right: Buffer,
    counts: Buffer,
    op: ThetaOp,
    left_len: usize,
    right_len: usize,
}

impl Kernel for NestedLoopCountKernel {
    fn name(&self) -> &str {
        "nested_loop_count"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.left_len);
            let mut count = 0u32;
            for l in start..end {
                let lv = self.left.get_i32(l);
                for r in 0..self.right_len {
                    if self.op.matches(lv, self.right.get_i32(r)) {
                        count += 1;
                    }
                }
            }
            self.counts.set_u32(item.global_id, count);
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        let pairs = (launch.n as u64) * self.right_len as u64;
        KernelCost::new(pairs * 8, launch.total_items() as u64 * 4, pairs, 0)
    }
}

struct NestedLoopWriteKernel {
    left: Buffer,
    right: Buffer,
    offsets: Buffer,
    left_out: Buffer,
    right_out: Buffer,
    op: ThetaOp,
    left_len: usize,
    right_len: usize,
}

impl Kernel for NestedLoopWriteKernel {
    fn name(&self) -> &str {
        "nested_loop_write"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.left_len);
            let mut cursor = self.offsets.get_u32(item.global_id) as usize;
            for l in start..end {
                let lv = self.left.get_i32(l);
                for r in 0..self.right_len {
                    if self.op.matches(lv, self.right.get_i32(r)) {
                        self.left_out.set_u32(cursor, l as u32);
                        self.right_out.set_u32(cursor, r as u32);
                        cursor += 1;
                    }
                }
            }
        }
    }
}

/// Nested-loop theta join producing every `(left_oid, right_oid)` pair whose
/// values satisfy `op`.
///
/// **Deliberate sync point:** the output bound is `|L| × |R|`, so the scan
/// total is resolved on the host to size the result exactly instead of
/// allocating the quadratic worst case.
pub fn nested_loop_join(
    ctx: &OcelotContext,
    left: &DevColumn<i32>,
    right: &DevColumn<i32>,
    op: ThetaOp,
) -> Result<JoinResult> {
    let n = left.len(ctx)?;
    let right_len = right.len(ctx)?;
    if n == 0 || right_len == 0 {
        let empty_l = ctx.alloc(1, "nlj_empty_l")?;
        let empty_r = ctx.alloc(1, "nlj_empty_r")?;
        return Ok(JoinResult {
            probe_oids: DevColumn::new(empty_l, 0)?,
            build_oids: DevColumn::new(empty_r, 0)?,
        });
    }
    let launch = ctx.launch(n);
    let counts = ctx.alloc(launch.total_items(), "nlj_counts")?;
    let mut wait = ctx.wait_for(left);
    wait.extend(ctx.wait_for(right));
    let count_event = ctx.queue().enqueue_kernel(
        Arc::new(NestedLoopCountKernel {
            left: left.buffer.clone(),
            right: right.buffer.clone(),
            counts: counts.clone(),
            op,
            left_len: n,
            right_len,
        }),
        launch.clone(),
        &wait,
    )?;
    ctx.memory().record_producer(&counts, count_event);
    let counts_col = DevColumn::<u32>::new(counts, launch.total_items())?;
    let (offsets, total) = exclusive_scan_u32(ctx, &counts_col)?;
    let total = total.get(ctx)? as usize;
    let left_out = ctx.alloc(total.max(1), "nlj_left_oids")?;
    let right_out = ctx.alloc(total.max(1), "nlj_right_oids")?;
    let write_event = ctx.queue().enqueue_kernel(
        Arc::new(NestedLoopWriteKernel {
            left: left.buffer.clone(),
            right: right.buffer.clone(),
            offsets: offsets.buffer.clone(),
            left_out: left_out.clone(),
            right_out: right_out.clone(),
            op,
            left_len: n,
            right_len,
        }),
        launch,
        &ctx.memory().wait_for_read(&offsets.buffer),
    )?;
    ctx.memory().record_producer(&left_out, write_event);
    ctx.memory().record_producer(&right_out, write_event);
    Ok(JoinResult {
        probe_oids: DevColumn::new(left_out, total)?,
        build_oids: DevColumn::new(right_out, total)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;
    use ocelot_monet::MonetHashTable;

    fn contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    #[test]
    fn pkfk_hash_join_matches_monet_on_all_devices() {
        let pk: Vec<i32> = (0..200).collect();
        let fk: Vec<i32> = (0..5_000).map(|i| (i * 17 + 3) % 200).collect();
        let reference_table = MonetHashTable::build(&pk);
        let (expected_fk, expected_pk) = monet::pkfk_join_i32(&fk, &reference_table);
        for ctx in contexts() {
            let build = ctx.upload_i32(&pk, "pk").unwrap();
            let probe = ctx.upload_i32(&fk, "fk").unwrap();
            let table = OcelotHashTable::build(&ctx, &build, pk.len()).unwrap();
            let result = hash_join(&ctx, &probe, &table).unwrap();
            assert_eq!(result.probe_oids.read(&ctx).unwrap(), expected_fk);
            assert_eq!(result.build_oids.read(&ctx).unwrap(), expected_pk);
            assert_eq!(result.len(&ctx).unwrap(), fk.len());
        }
    }

    #[test]
    fn hash_join_compaction_is_sync_free() {
        let ctx = OcelotContext::cpu();
        let pk: Vec<i32> = (0..100).collect();
        let fk: Vec<i32> = (0..10_000).map(|i| (i * 13 + 1) % 150).collect();
        let build = ctx.upload_i32(&pk, "pk").unwrap();
        let probe = ctx.upload_i32(&fk, "fk").unwrap();
        let table = OcelotHashTable::build(&ctx, &build, pk.len()).unwrap();
        ctx.sync().unwrap();
        let flushes = ctx.queue().flush_count();
        let result = hash_join(&ctx, &probe, &table).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes, "hash join must not flush");
        assert!(result.probe_oids.is_deferred());
        let expected = fk.iter().filter(|v| **v < 100).count();
        assert_eq!(result.len(&ctx).unwrap(), expected);
        assert_eq!(ctx.queue().flush_count(), flushes + 1);
    }

    #[test]
    fn probe_rows_without_partner_are_dropped() {
        let ctx = OcelotContext::cpu();
        let build = ctx.upload_i32(&[10, 20, 30], "pk").unwrap();
        let probe = ctx.upload_i32(&[20, 99, 30, 55, 10], "fk").unwrap();
        let table = OcelotHashTable::build(&ctx, &build, 3).unwrap();
        let result = hash_join(&ctx, &probe, &table).unwrap();
        assert_eq!(result.probe_oids.read(&ctx).unwrap(), vec![0, 2, 4]);
        assert_eq!(result.build_oids.read(&ctx).unwrap(), vec![1, 2, 0]);
    }

    #[test]
    fn aligned_lookup_fast_path() {
        let ctx = OcelotContext::cpu();
        let build = ctx.upload_i32(&[5, 6, 7], "pk").unwrap();
        let probe = ctx.upload_i32(&[7, 5, 7, 6], "fk").unwrap();
        let table = OcelotHashTable::build(&ctx, &build, 3).unwrap();
        let aligned = hash_join_aligned(&ctx, &probe, &table).unwrap();
        assert_eq!(aligned.read(&ctx).unwrap(), vec![2, 0, 2, 1]);
    }

    #[test]
    fn semi_and_anti_join_match_monet() {
        let left: Vec<i32> = (0..3_000).map(|i| (i * 31 + 1) % 400).collect();
        let right: Vec<i32> = (0..120).map(|i| i * 3).collect();
        let expected_semi = monet::semi_join_i32(&left, &right);
        let expected_anti = monet::anti_join_i32(&left, &right);
        for ctx in contexts() {
            let l = ctx.upload_i32(&left, "l").unwrap();
            let r = ctx.upload_i32(&right, "r").unwrap();
            let table = OcelotHashTable::build(&ctx, &r, right.len()).unwrap();
            assert_eq!(semi_join(&ctx, &l, &table).unwrap().read(&ctx).unwrap(), expected_semi);
            assert_eq!(anti_join(&ctx, &l, &table).unwrap().read(&ctx).unwrap(), expected_anti);
        }
    }

    #[test]
    fn nested_loop_theta_join_matches_monet() {
        let left: Vec<i32> = (0..150).map(|i| i % 40).collect();
        let right: Vec<i32> = (0..60).map(|i| i % 25).collect();
        let (expected_l, expected_r) = monet::nested_loop_join_i32(&left, &right, |a, b| a < b);
        let ctx = OcelotContext::cpu();
        let l = ctx.upload_i32(&left, "l").unwrap();
        let r = ctx.upload_i32(&right, "r").unwrap();
        let result = nested_loop_join(&ctx, &l, &r, ThetaOp::Less).unwrap();
        let mut expected: Vec<(u32, u32)> = expected_l.into_iter().zip(expected_r).collect();
        let mut got: Vec<(u32, u32)> = result
            .probe_oids
            .read(&ctx)
            .unwrap()
            .into_iter()
            .zip(result.build_oids.read(&ctx).unwrap())
            .collect();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn theta_ops_cover_all_comparisons() {
        assert!(ThetaOp::Less.matches(1, 2));
        assert!(ThetaOp::LessEqual.matches(2, 2));
        assert!(ThetaOp::Greater.matches(3, 2));
        assert!(ThetaOp::GreaterEqual.matches(2, 2));
        assert!(ThetaOp::NotEqual.matches(1, 2));
        assert!(!ThetaOp::NotEqual.matches(2, 2));
    }

    #[test]
    fn empty_inputs() {
        let ctx = OcelotContext::cpu();
        let empty = ctx.upload_i32(&[], "e").unwrap();
        let table = OcelotHashTable::build(&ctx, &empty, 4).unwrap();
        let probe = ctx.upload_i32(&[1, 2], "p").unwrap();
        let result = hash_join(&ctx, &probe, &table).unwrap();
        assert!(result.is_empty(&ctx).unwrap());
        assert_eq!(anti_join(&ctx, &probe, &table).unwrap().read(&ctx).unwrap(), vec![0, 1]);
        let nlj = nested_loop_join(&ctx, &empty, &probe, ThetaOp::Less).unwrap();
        assert!(nlj.is_empty(&ctx).unwrap());
    }
}
