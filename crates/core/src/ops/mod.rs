//! The hardware-oblivious operator set (paper §4.1).
//!
//! Each module is the Rust analogue of one Ocelot operator family. All
//! operator host-code is written exclusively against [`crate::OcelotContext`]
//! and the kernel programming model — none of it inspects the device kind.

pub mod aggregate;
pub mod calc;
pub mod groupby;
pub mod hash_table;
pub mod join;
pub mod project;
pub mod select;
pub mod sort_radix;
