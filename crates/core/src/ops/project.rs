//! The projection / left fetch join operator (paper §4.1.2, §5.2.2).
//!
//! In a column store a projection is a join between a list of tuple IDs and
//! a column; because the IDs directly identify the join partner it reduces
//! to a parallel gather. When the left input is a bitmap (a selection
//! result), it is first materialised into a tuple-ID list.

use crate::context::{DevColumn, DevWord, OcelotContext, Oid};
use crate::ops::select::materialize_bitmap;
use crate::primitives::bitmap::Bitmap;
use crate::primitives::gather::gather;
use ocelot_kernel::Result;
use ocelot_storage::BatRef;

/// Fetches `column[oid]` for every OID in `oids` (the left fetch join).
/// Lazy end to end, including over OID lists whose length is still
/// device-resident.
pub fn fetch_join<T: DevWord>(
    ctx: &OcelotContext,
    column: &DevColumn<T>,
    oids: &DevColumn<Oid>,
) -> Result<DevColumn<T>> {
    gather(ctx, column, oids)
}

/// Fetch join whose left input is a selection bitmap: the bitmap is
/// materialised into tuple IDs first (two-step prefix-sum scheme), then the
/// values are gathered — without any host round-trip for the OID count.
pub fn fetch_join_bitmap<T: DevWord>(
    ctx: &OcelotContext,
    column: &DevColumn<T>,
    bitmap: &Bitmap,
) -> Result<DevColumn<T>> {
    let oids = materialize_bitmap(ctx, bitmap)?;
    gather(ctx, column, &oids)
}

/// Uploads a BAT through the Memory Manager (cache-aware) and wraps it as a
/// device column of the caller's element type. This is the entry point the
/// query layer uses for base table columns.
pub fn device_column_for_bat<T: DevWord>(
    ctx: &OcelotContext,
    bat: &BatRef,
) -> Result<DevColumn<T>> {
    let buffer = ctx.memory().get_or_upload(bat)?;
    DevColumn::new(buffer, bat.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use crate::ops::select::select_range_i32;
    use ocelot_monet::sequential as monet;
    use ocelot_storage::Bat;

    #[test]
    fn fetch_join_matches_monet_on_all_devices() {
        let column: Vec<i32> = (0..5_000).map(|i| i * 3 - 1000).collect();
        let oids: Vec<u32> = (0..2_500).map(|i| (i * 7) % 5_000).collect();
        let expected = monet::fetch_i32(&column, &oids);
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let col = ctx.upload_i32(&column, "col").unwrap();
            let ids = ctx.upload_u32(&oids, "oids").unwrap();
            let out = fetch_join(&ctx, &col, &ids).unwrap();
            assert_eq!(out.read(&ctx).unwrap(), expected);
        }
    }

    #[test]
    fn bitmap_left_input_is_materialised_transparently() {
        let values: Vec<i32> = (0..4_000).map(|i| i % 100).collect();
        let payload: Vec<f32> = (0..4_000).map(|i| i as f32 * 0.5).collect();
        let ctx = OcelotContext::cpu();
        let vcol = ctx.upload_i32(&values, "v").unwrap();
        let pcol = ctx.upload_f32(&payload, "p").unwrap();
        let bitmap = select_range_i32(&ctx, &vcol, 10, 19).unwrap();
        let projected = fetch_join_bitmap(&ctx, &pcol, &bitmap).unwrap();

        let oids = monet::select_range_i32(&values, 10, 19);
        let expected = monet::fetch_f32(&payload, &oids);
        assert_eq!(projected.read(&ctx).unwrap(), expected);
    }

    #[test]
    fn bat_upload_goes_through_memory_manager() {
        let ctx = OcelotContext::cpu();
        let bat = Bat::from_i32("base", (0..100).collect()).into_ref();
        let col1 = device_column_for_bat::<i32>(&ctx, &bat).unwrap();
        let col2 = device_column_for_bat::<i32>(&ctx, &bat).unwrap();
        assert_eq!(col1.buffer.id(), col2.buffer.id(), "second request served from cache");
        assert_eq!(ctx.memory().stats().cache_hits, 1);
        assert_eq!(col1.read(&ctx).unwrap()[99], 99);
    }
}
