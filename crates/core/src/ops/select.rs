//! The selection operator (paper §4.1.1).
//!
//! Following Wu et al., the selection result is encoded as a bitmap: every
//! work-item evaluates the predicate on a small chunk of the input and emits
//! whole bitmap words. Bitmaps keep the result size independent of the
//! selectivity (the effect Figure 5b measures) and let complex predicates be
//! assembled from per-predicate bitmaps with bit operations
//! ([`crate::primitives::bitmap::combine`]).
//!
//! Bitmaps are internal: [`materialize_bitmap`] converts them to the OID
//! lists MonetDB-style operators expect, using the two-step
//! count-scan-write pattern (per-item bit counts, exclusive scan, position
//! writes). The materialised column's length is the scan total — which stays
//! **on the device**: the output is allocated at the bitmap's capacity bound
//! and carries the total as a deferred length, so no host round-trip happens
//! anywhere in a select→materialise→consume chain. (The capacity allocation
//! trades transient memory for the removed sync — the paper's lazy-queue
//! bet.)

use crate::context::{DevColumn, DevScalar, LenSource, OcelotContext, Oid};
use crate::primitives::bitmap::Bitmap;
use crate::primitives::prefix_sum::exclusive_scan_u32;
use ocelot_kernel::{
    Buffer, BufferAccess, Kernel, KernelAccesses, KernelCost, LaunchConfig, Result, WorkGroupCtx,
};
use std::sync::Arc;

/// The comparison a selection kernel evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Predicate {
    /// `low <= value <= high` over `i32`.
    RangeI32 { low: i32, high: i32 },
    /// `low <= value <= high` over `f32`.
    RangeF32 { low: f32, high: f32 },
    /// `value == needle` over `i32`.
    EqI32 { needle: i32 },
    /// `value != needle` over `i32`.
    NeI32 { needle: i32 },
}

/// Selection kernel: each work-item produces whole bitmap words for its
/// chunk of the input (the paper found one result byte — eight values — per
/// thread iteration to work well; one 32-bit word per iteration is the same
/// idea on word granularity).
struct SelectKernel {
    input: Buffer,
    bitmap: Buffer,
    predicate: Predicate,
    n: LenSource,
    /// Host-known logical row count, when there is one — lets the race
    /// detector's bitmap-padding check run at kernel completion.
    rows: Option<usize>,
}

/// Builds the bitmap words `start_word..start_word + out.len()` from `input`
/// with a monomorphised predicate: the enum dispatch happens once per chunk,
/// and the bit loop runs over plain slices (tier-2 views). Bits at positions
/// `>= n` stay zero — the bitmap zero-padding invariant.
#[inline]
fn build_bitmap_words(
    input: &[u32],
    out: &mut [u32],
    start_word: usize,
    n: usize,
    matches: impl Fn(u32) -> bool,
) {
    for (offset, word) in out.iter_mut().enumerate() {
        let base = (start_word + offset) * 32;
        let limit = (base + 32).min(n);
        let mut bits = 0u32;
        if base < limit {
            for (bit, &value) in input[base..limit].iter().enumerate() {
                bits |= (matches(value) as u32) << bit;
            }
        }
        *word = bits;
    }
}

impl Kernel for SelectKernel {
    fn name(&self) -> &str {
        "select_bitmap"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        // A deferred row count resolves here, at flush time; rows past `n`
        // hold garbage and must contribute zero bits.
        let n = self.n.get();
        let words = Bitmap::words_for(self.n.cap());
        let input = self.input.as_words();
        for item in group.items() {
            // Each item owns a contiguous range of bitmap *words* so that a
            // word is written by exactly one item.
            let (start_word, end_word) = item.chunk_bounds(words);
            if start_word >= end_word {
                continue;
            }
            // SAFETY: bitmap words `start_word..end_word` belong exclusively
            // to this item within this phase (chunk_bounds partitions the
            // word range across items).
            let out = unsafe { self.bitmap.chunk_mut(start_word, end_word) };
            match self.predicate {
                Predicate::RangeI32 { low, high } => {
                    build_bitmap_words(input, out, start_word, n, |w| {
                        let v = w as i32;
                        v >= low && v <= high
                    });
                }
                Predicate::RangeF32 { low, high } => {
                    build_bitmap_words(input, out, start_word, n, |w| {
                        let v = f32::from_bits(w);
                        v >= low && v <= high
                    });
                }
                Predicate::EqI32 { needle } => {
                    build_bitmap_words(input, out, start_word, n, |w| w as i32 == needle);
                }
                Predicate::NeI32 { needle } => {
                    build_bitmap_words(input, out, start_word, n, |w| w as i32 != needle);
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 4, (launch.n as u64) / 8, launch.n as u64, 0)
    }
    fn declared_accesses(&self, _launch: &LaunchConfig) -> Option<KernelAccesses> {
        let words = Bitmap::words_for(self.n.cap());
        let mut declared = KernelAccesses::of(vec![
            BufferAccess::slice_read(&self.input, 0..self.input.len()),
            BufferAccess::slice_write(&self.bitmap, 0..words),
        ]);
        if let Some(rows) = self.rows {
            declared = declared.with_bitmap(&self.bitmap, rows);
        }
        Some(declared)
    }
}

fn run_select(
    ctx: &OcelotContext,
    input: &Buffer,
    len: &crate::context::ColLen,
    wait: Vec<ocelot_kernel::EventId>,
    predicate: Predicate,
) -> Result<Bitmap> {
    // The kernel writes every backing word, so the bitmap can skip zeroing.
    let bitmap = Bitmap::for_overwrite(ctx, len.clone())?;
    if len.cap() == 0 {
        return Ok(bitmap);
    }
    let event = ctx.queue().enqueue_kernel(
        Arc::new(SelectKernel {
            input: input.clone(),
            bitmap: bitmap.buffer.clone(),
            predicate,
            n: len.source(),
            rows: match len {
                crate::context::ColLen::Host(n) => Some(*n),
                crate::context::ColLen::Device { .. } => None,
            },
        }),
        ctx.launch(len.cap()),
        &wait,
    )?;
    ctx.memory().record_producer(&bitmap.buffer, event);
    ctx.memory().record_consumer(input, event);
    Ok(bitmap)
}

/// Inclusive range selection over an integer column.
pub fn select_range_i32(
    ctx: &OcelotContext,
    input: &DevColumn<i32>,
    low: i32,
    high: i32,
) -> Result<Bitmap> {
    run_select(
        ctx,
        &input.buffer,
        input.col_len(),
        ctx.wait_for(input),
        Predicate::RangeI32 { low, high },
    )
}

/// Inclusive range selection over a float column.
pub fn select_range_f32(
    ctx: &OcelotContext,
    input: &DevColumn<f32>,
    low: f32,
    high: f32,
) -> Result<Bitmap> {
    run_select(
        ctx,
        &input.buffer,
        input.col_len(),
        ctx.wait_for(input),
        Predicate::RangeF32 { low, high },
    )
}

/// Equality selection over an integer column (also serves dictionary-encoded
/// strings and dates).
pub fn select_eq_i32(ctx: &OcelotContext, input: &DevColumn<i32>, needle: i32) -> Result<Bitmap> {
    run_select(
        ctx,
        &input.buffer,
        input.col_len(),
        ctx.wait_for(input),
        Predicate::EqI32 { needle },
    )
}

/// Inequality selection over an integer column.
pub fn select_ne_i32(ctx: &OcelotContext, input: &DevColumn<i32>, needle: i32) -> Result<Bitmap> {
    run_select(
        ctx,
        &input.buffer,
        input.col_len(),
        ctx.wait_for(input),
        Predicate::NeI32 { needle },
    )
}

// ---- bitmap materialisation (paper §4.1.2) ----

struct CountBitsKernel {
    bitmap: Buffer,
    counts: Buffer,
    words: usize,
}

impl Kernel for CountBitsKernel {
    fn name(&self) -> &str {
        "materialize_count"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let bitmap = self.bitmap.as_words();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.words);
            let count: u32 = bitmap[start..end].iter().map(|w| w.count_ones()).sum();
            self.counts.set_u32(item.global_id, count);
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) / 8, launch.total_items() as u64 * 4, launch.n as u64, 0)
    }
    fn declared_accesses(&self, launch: &LaunchConfig) -> Option<KernelAccesses> {
        Some(KernelAccesses::of(vec![
            BufferAccess::slice_read(&self.bitmap, 0..self.words),
            BufferAccess::cells_write(&self.counts, 0..launch.total_items()),
        ]))
    }
}

struct WritePositionsKernel {
    bitmap: Buffer,
    offsets: Buffer,
    output: Buffer,
    words: usize,
}

impl Kernel for WritePositionsKernel {
    fn name(&self) -> &str {
        "materialize_write"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let bitmap = self.bitmap.as_words();
        let output = self.output.cells();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.words);
            let mut cursor = self.offsets.get_u32(item.global_id) as usize;
            for (offset, &word) in bitmap[start..end].iter().enumerate() {
                if word == 0 {
                    continue;
                }
                let base = (start + offset) * 32;
                // Iterate set bits only (count_ones-driven) instead of
                // testing all 32 positions. Padding bits are zero by the
                // bitmap invariant, so no row-limit check is needed.
                let mut remaining = word;
                while remaining != 0 {
                    let bit = remaining.trailing_zeros() as usize;
                    remaining &= remaining - 1;
                    output[cursor].store((base + bit) as u32, std::sync::atomic::Ordering::Relaxed);
                    cursor += 1;
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) / 8, (launch.n as u64) * 4, launch.n as u64, 0)
    }
    fn declared_accesses(&self, launch: &LaunchConfig) -> Option<KernelAccesses> {
        Some(KernelAccesses::of(vec![
            BufferAccess::slice_read(&self.bitmap, 0..self.words),
            BufferAccess::cells_read(&self.offsets, 0..launch.total_items()),
            BufferAccess::cells_write(&self.output, 0..self.output.len()),
        ]))
    }
}

/// Materialises a bitmap into the sorted list of qualifying OIDs, using the
/// two-step prefix-sum scheme from §4.1.2: per-item bit counts, exclusive
/// scan for unique write offsets, then position writes.
///
/// Nothing synchronises: the output is allocated at the bitmap's capacity
/// bound and its logical length is the scan total, attached as a deferred
/// device counter. Downstream gathers/reductions consume it at flush time.
pub fn materialize_bitmap(ctx: &OcelotContext, bitmap: &Bitmap) -> Result<DevColumn<Oid>> {
    let words = bitmap.words();
    if words == 0 {
        let empty = ctx.alloc(1, "materialized_oids")?;
        return DevColumn::new(empty, 0);
    }
    let launch = ctx.launch(words);
    let counts_buffer = ctx.alloc_uninit(launch.total_items(), "materialize_counts")?;
    let wait = ctx.memory().wait_for_read(&bitmap.buffer);
    let count_event = ctx.queue().enqueue_kernel(
        Arc::new(CountBitsKernel {
            bitmap: bitmap.buffer.clone(),
            counts: counts_buffer.clone(),
            words,
        }),
        launch.clone(),
        &wait,
    )?;
    ctx.memory().record_producer(&counts_buffer, count_event);

    let counts = DevColumn::<u32>::new(counts_buffer, launch.total_items())?;
    let (offsets, total) = exclusive_scan_u32(ctx, &counts)?;

    // Capacity allocation: at most every covered row qualifies.
    let cap = bitmap.cap_bits();
    let output = ctx.alloc_uninit(cap.max(1), "materialized_oids")?;
    let mut write_wait = ctx.memory().wait_for_read(&offsets.buffer);
    write_wait.extend(ctx.memory().wait_for_read(&bitmap.buffer));
    let write_event = ctx.queue().enqueue_kernel(
        Arc::new(WritePositionsKernel {
            bitmap: bitmap.buffer.clone(),
            offsets: offsets.buffer.clone(),
            output: output.clone(),
            words,
        }),
        launch,
        &write_wait,
    )?;
    ctx.memory().record_producer(&output, write_event);
    DevColumn::deferred(output, total.buffer().clone(), cap)
}

/// Number of qualifying rows of a selection result, as a deferred scalar.
pub fn selected_count(ctx: &OcelotContext, bitmap: &Bitmap) -> Result<DevScalar<u32>> {
    crate::primitives::bitmap::count_ones(ctx, bitmap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;

    fn contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    #[test]
    fn range_selection_matches_monet_on_all_devices() {
        let values: Vec<i32> = (0..10_000).map(|i| (i * 37 + 11) % 1000).collect();
        let expected: Vec<u32> = monet::select_range_i32(&values, 100, 300);
        for ctx in contexts() {
            let col = ctx.upload_i32(&values, "v").unwrap();
            let bitmap = select_range_i32(&ctx, &col, 100, 300).unwrap();
            let oids = materialize_bitmap(&ctx, &bitmap).unwrap();
            assert!(oids.is_deferred(), "materialised length stays on the device");
            assert_eq!(oids.read(&ctx).unwrap(), expected);
            assert_eq!(
                selected_count(&ctx, &bitmap).unwrap().get(&ctx).unwrap() as usize,
                expected.len()
            );
        }
    }

    #[test]
    fn materialize_is_sync_free() {
        let ctx = OcelotContext::cpu();
        let values: Vec<i32> = (0..50_000).map(|i| i % 100).collect();
        let col = ctx.upload_i32(&values, "v").unwrap();
        let flushes = ctx.queue().flush_count();
        let bitmap = select_range_i32(&ctx, &col, 10, 19).unwrap();
        let oids = materialize_bitmap(&ctx, &bitmap).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes, "select + materialise must not flush");
        assert_eq!(
            oids.len(&ctx).unwrap(),
            values.iter().filter(|v| (10..20).contains(*v)).count()
        );
        assert_eq!(ctx.queue().flush_count(), flushes + 1, "single flush at the resolve");
    }

    #[test]
    fn float_range_selection() {
        let values: Vec<f32> = (0..5_000).map(|i| (i % 997) as f32 * 0.1).collect();
        let expected = monet::select_range_f32(&values, 10.0, 20.0);
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_f32(&values, "v").unwrap();
        let bitmap = select_range_f32(&ctx, &col, 10.0, 20.0).unwrap();
        let oids = materialize_bitmap(&ctx, &bitmap).unwrap();
        assert_eq!(oids.read(&ctx).unwrap(), expected);
    }

    #[test]
    fn equality_and_inequality_selection() {
        let values: Vec<i32> = (0..3_000).map(|i| i % 17).collect();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&values, "v").unwrap();

        let eq = select_eq_i32(&ctx, &col, 5).unwrap();
        let eq_oids = materialize_bitmap(&ctx, &eq).unwrap();
        assert_eq!(eq_oids.read(&ctx).unwrap(), monet::select_eq_i32(&values, 5));

        let ne = select_ne_i32(&ctx, &col, 5).unwrap();
        assert_eq!(
            selected_count(&ctx, &ne).unwrap().get(&ctx).unwrap() as usize,
            values.iter().filter(|v| **v != 5).count()
        );
    }

    #[test]
    fn conjunction_via_bitmap_and() {
        use crate::primitives::bitmap::{combine, BitmapCombine};
        let values: Vec<i32> = (0..2_000).map(|i| i % 100).collect();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&values, "v").unwrap();
        let a = select_range_i32(&ctx, &col, 10, 60).unwrap();
        let b = select_range_i32(&ctx, &col, 40, 90).unwrap();
        let both = combine(&ctx, &a, &b, BitmapCombine::And).unwrap();
        let oids = materialize_bitmap(&ctx, &both).unwrap();
        assert_eq!(oids.read(&ctx).unwrap(), monet::select_range_i32(&values, 40, 60));
    }

    #[test]
    fn negative_values_and_extremes() {
        let values = vec![-100, -1, 0, 1, 100, i32::MIN, i32::MAX];
        let ctx = OcelotContext::cpu_sequential();
        let col = ctx.upload_i32(&values, "v").unwrap();
        let bitmap = select_range_i32(&ctx, &col, -1, 1).unwrap();
        let oids = materialize_bitmap(&ctx, &bitmap).unwrap();
        assert_eq!(oids.read(&ctx).unwrap(), vec![1, 2, 3]);
        let all = select_range_i32(&ctx, &col, i32::MIN, i32::MAX).unwrap();
        assert_eq!(selected_count(&ctx, &all).unwrap().get(&ctx).unwrap(), 7);
    }

    #[test]
    fn empty_and_no_match() {
        let ctx = OcelotContext::cpu();
        let empty = ctx.upload_i32(&[], "v").unwrap();
        let bitmap = select_range_i32(&ctx, &empty, 0, 10).unwrap();
        assert_eq!(materialize_bitmap(&ctx, &bitmap).unwrap().len(&ctx).unwrap(), 0);

        let col = ctx.upload_i32(&[1, 2, 3], "v").unwrap();
        let none = select_range_i32(&ctx, &col, 100, 200).unwrap();
        let oids = materialize_bitmap(&ctx, &none).unwrap();
        assert_eq!(oids.len(&ctx).unwrap(), 0);
        assert!(oids.read(&ctx).unwrap().is_empty());
    }

    #[test]
    fn selection_over_deferred_input() {
        // Select over a gather output whose length is device-resident: the
        // bitmap inherits the deferred length and padding rows stay zero.
        use crate::primitives::gather::gather;
        let ctx = OcelotContext::cpu();
        let values = ctx.upload_i32(&[5, 50, 500, 5000], "v").unwrap();
        let raw = ctx.upload_u32(&[3, 0, 2, 1], "idx").unwrap();
        let counter = ctx.alloc(1, "count").unwrap();
        counter.set_u32(0, 3);
        ctx.queue().enqueue_write(&counter, &[]).unwrap();
        let idx = DevColumn::<Oid>::deferred(raw.buffer.clone(), counter, 4).unwrap();
        let gathered = gather(&ctx, &values, &idx).unwrap(); // [5000, 5, 500]
        let bitmap = select_range_i32(&ctx, &gathered, 100, 10_000).unwrap();
        assert_eq!(selected_count(&ctx, &bitmap).unwrap().get(&ctx).unwrap(), 2);
        let oids = materialize_bitmap(&ctx, &bitmap).unwrap();
        assert_eq!(oids.read(&ctx).unwrap(), vec![0, 2]);
    }
}
