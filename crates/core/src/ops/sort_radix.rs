//! The sort operator: a binary radix sort (paper §4.1.3, §5.2.7).
//!
//! Least-significant-digit radix sort with an 8-bit radix (four passes over
//! 32-bit keys). Every pass runs three steps, all expressed as kernels:
//!
//! 1. **Histogram** — every work-item counts the digit occurrences of its
//!    slice into a digit-major count table (`counts[digit][item]`).
//! 2. **Scan** — an exclusive prefix sum over the count table yields, for
//!    every `(digit, item)` pair, the first output position of that item's
//!    elements with that digit (this is the "shuffle the histograms so that
//!    all buckets for the same radix are laid out consecutively" step).
//! 3. **Scatter** — every work-item replays its slice in order and writes
//!    each element (key and its OID) to its reserved position.
//!
//! Negative integers and floats are handled by an order-preserving key
//! transformation (sign-bit flip / IEEE-754 total-order transform), matching
//! the paper's "minor modifications to handle arbitrary input sizes and
//! negative values".
//!
//! Work-items always walk *contiguous* slices here (regardless of the
//! device's preferred access pattern): LSD radix sort requires a stable
//! element order per pass, and the strided interleaving would interleave
//! items' elements non-monotonically.

use crate::context::{DevColumn, DevWord, OcelotContext, Oid};
use crate::primitives::prefix_sum::exclusive_scan_u32;
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

const RADIX_BITS: usize = 8;
const RADIX_SIZE: usize = 1 << RADIX_BITS;
const PASSES: usize = 32 / RADIX_BITS;

/// How raw column words map to sortable unsigned keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyTransform {
    /// Signed integers: flip the sign bit.
    I32,
    /// IEEE-754 floats: flip all bits of negatives, set the sign bit of
    /// positives (total order).
    F32,
}

impl KeyTransform {
    #[inline]
    fn encode(self, word: u32) -> u32 {
        match self {
            KeyTransform::I32 => word ^ 0x8000_0000,
            KeyTransform::F32 => {
                if word & 0x8000_0000 != 0 {
                    !word
                } else {
                    word | 0x8000_0000
                }
            }
        }
    }

    #[inline]
    fn decode(self, key: u32) -> u32 {
        match self {
            KeyTransform::I32 => key ^ 0x8000_0000,
            KeyTransform::F32 => {
                if key & 0x8000_0000 != 0 {
                    key & 0x7FFF_FFFF
                } else {
                    !key
                }
            }
        }
    }
}

struct TransformKernel {
    input: Buffer,
    keys: Buffer,
    oids: Buffer,
    transform: KeyTransform,
}

impl Kernel for TransformKernel {
    fn name(&self) -> &str {
        "radix_transform"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let input = self.input.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                if range.is_empty() {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of both
                // outputs exclusively to this item within this phase.
                let keys = unsafe { self.keys.chunk_mut(range.start, range.end) };
                let oids = unsafe { self.oids.chunk_mut(range.start, range.end) };
                for (offset, ((key, oid), &word)) in
                    keys.iter_mut().zip(oids.iter_mut()).zip(&input[range.clone()]).enumerate()
                {
                    *key = self.transform.encode(word);
                    *oid = (range.start + offset) as u32;
                }
            } else {
                let keys = self.keys.cells();
                let oids = self.oids.cells();
                for idx in assigned {
                    keys[idx].store(
                        self.transform.encode(input[idx]),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                    oids[idx].store(idx as u32, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }
}

struct HistogramKernel {
    keys: Buffer,
    counts: Buffer,
    shift: usize,
    total_items: usize,
    n: usize,
}

impl Kernel for HistogramKernel {
    fn name(&self) -> &str {
        "radix_histogram"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let keys = self.keys.as_words();
        let counts = self.counts.cells();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            let mut local = [0u32; RADIX_SIZE];
            for &key in &keys[start..end] {
                let digit = ((key >> self.shift) as usize) & (RADIX_SIZE - 1);
                local[digit] += 1;
            }
            // The count table is digit-major: cell (digit, item) is written
            // by exactly one item, so relaxed stores through the cell slice
            // suffice.
            for (digit, count) in local.iter().enumerate() {
                counts[digit * self.total_items + item.global_id]
                    .store(*count, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(
            (launch.n as u64) * 4,
            (launch.total_items() * RADIX_SIZE) as u64 * 4,
            launch.n as u64,
            0,
        )
    }
}

struct ScatterKernel {
    keys_in: Buffer,
    oids_in: Buffer,
    keys_out: Buffer,
    oids_out: Buffer,
    offsets: Buffer,
    shift: usize,
    total_items: usize,
    n: usize,
}

impl Kernel for ScatterKernel {
    fn name(&self) -> &str {
        "radix_scatter"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let keys_in = self.keys_in.as_words();
        let oids_in = self.oids_in.as_words();
        // Scatter targets are disjoint across items (the scanned offsets
        // reserve a unique position per element) but not contiguous, so the
        // writes go through the atomic-cell slices.
        let keys_out = self.keys_out.cells();
        let oids_out = self.oids_out.cells();
        let offsets = self.offsets.as_words();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            if start >= end {
                continue;
            }
            let mut cursors = [0u32; RADIX_SIZE];
            for (digit, cursor) in cursors.iter_mut().enumerate() {
                *cursor = offsets[digit * self.total_items + item.global_id];
            }
            for (&key, &oid) in keys_in[start..end].iter().zip(&oids_in[start..end]) {
                let digit = ((key >> self.shift) as usize) & (RADIX_SIZE - 1);
                let position = cursors[digit] as usize;
                keys_out[position].store(key, std::sync::atomic::Ordering::Relaxed);
                oids_out[position].store(oid, std::sync::atomic::Ordering::Relaxed);
                cursors[digit] += 1;
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 8, (launch.n as u64) * 8, launch.n as u64, 0)
    }
}

struct DecodeKernel {
    keys: Buffer,
    output: Buffer,
    transform: KeyTransform,
}

impl Kernel for DecodeKernel {
    fn name(&self) -> &str {
        "radix_decode"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let keys = self.keys.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                if range.is_empty() {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of the
                // output exclusively to this item within this phase.
                let out = unsafe { self.output.chunk_mut(range.start, range.end) };
                for (o, &key) in out.iter_mut().zip(&keys[range]) {
                    *o = self.transform.decode(key);
                }
            } else {
                let output = self.output.cells();
                for idx in assigned {
                    output[idx].store(
                        self.transform.decode(keys[idx]),
                        std::sync::atomic::Ordering::Relaxed,
                    );
                }
            }
        }
    }
}

/// The result of a sort: the sorted values and the permutation of input OIDs
/// that produces them (used to reorder dependent columns with a fetch join).
#[derive(Debug, Clone)]
pub struct SortResult<T: DevWord> {
    /// The sorted values.
    pub values: DevColumn<T>,
    /// `order[i]` = OID of the input row at sorted position `i`.
    pub order: DevColumn<Oid>,
}

/// **Deliberate sync point:** the multi-pass ping-pong schedule is host-side
/// control flow over the element count, so a deferred input length is
/// resolved on entry. The passes themselves (including their scans) are
/// fully lazy — nothing flushes until the caller reads a result.
fn radix_sort<T: DevWord>(
    ctx: &OcelotContext,
    input: &DevColumn<T>,
    transform: KeyTransform,
) -> Result<SortResult<T>> {
    let n = input.len(ctx)?;
    if n == 0 {
        let empty_v = ctx.alloc(1, "sort_values")?;
        let empty_o = ctx.alloc(1, "sort_order")?;
        return Ok(SortResult {
            values: DevColumn::new(empty_v, 0)?,
            order: DevColumn::new(empty_o, 0)?,
        });
    }
    let launch = ctx.launch(n);
    let total_items = launch.total_items();

    let mut keys_a = ctx.alloc_uninit(n, "sort_keys_a")?;
    let mut oids_a = ctx.alloc_uninit(n, "sort_oids_a")?;
    let mut keys_b = ctx.alloc_uninit(n, "sort_keys_b")?;
    let mut oids_b = ctx.alloc_uninit(n, "sort_oids_b")?;

    let wait = ctx.wait_for(input);
    ctx.queue().enqueue_kernel(
        Arc::new(TransformKernel {
            input: input.buffer.clone(),
            keys: keys_a.clone(),
            oids: oids_a.clone(),
            transform,
        }),
        launch.clone(),
        &wait,
    )?;

    for pass in 0..PASSES {
        let shift = pass * RADIX_BITS;
        let counts = ctx.alloc_uninit(RADIX_SIZE * total_items, "sort_counts")?;
        ctx.queue().enqueue_kernel(
            Arc::new(HistogramKernel {
                keys: keys_a.clone(),
                counts: counts.clone(),
                shift,
                total_items,
                n,
            }),
            launch.clone(),
            &[],
        )?;
        let counts_col = DevColumn::<u32>::new(counts, RADIX_SIZE * total_items)?;
        // The scan total equals `n` by construction; it stays deferred and
        // unread — the offsets feed the scatter directly on the device.
        let (offsets, _total) = exclusive_scan_u32(ctx, &counts_col)?;
        ctx.queue().enqueue_kernel(
            Arc::new(ScatterKernel {
                keys_in: keys_a.clone(),
                oids_in: oids_a.clone(),
                keys_out: keys_b.clone(),
                oids_out: oids_b.clone(),
                offsets: offsets.buffer.clone(),
                shift,
                total_items,
                n,
            }),
            launch.clone(),
            &[],
        )?;
        std::mem::swap(&mut keys_a, &mut keys_b);
        std::mem::swap(&mut oids_a, &mut oids_b);
    }

    let values = ctx.alloc_uninit(n, "sort_values")?;
    let decode_event = ctx.queue().enqueue_kernel(
        Arc::new(DecodeKernel { keys: keys_a, output: values.clone(), transform }),
        launch,
        &[],
    )?;
    ctx.memory().record_producer(&values, decode_event);
    ctx.memory().record_producer(&oids_a, decode_event);
    Ok(SortResult { values: DevColumn::new(values, n)?, order: DevColumn::new(oids_a, n)? })
}

/// Sorts an integer column ascending.
pub fn sort_i32(ctx: &OcelotContext, input: &DevColumn<i32>) -> Result<SortResult<i32>> {
    radix_sort(ctx, input, KeyTransform::I32)
}

/// Sorts a float column ascending (IEEE total order).
pub fn sort_f32(ctx: &OcelotContext, input: &DevColumn<f32>) -> Result<SortResult<f32>> {
    radix_sort(ctx, input, KeyTransform::F32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;
    use ocelot_monet::sequential as monet;

    fn contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    #[test]
    fn integer_sort_matches_monet_on_all_devices() {
        let values: Vec<i32> = (0..20_000).map(|i| ((i * 73 + 19) % 8191) - 4000).collect();
        let (expected, _) = monet::sort_i32(&values);
        for ctx in contexts() {
            let col = ctx.upload_i32(&values, "v").unwrap();
            let result = sort_i32(&ctx, &col).unwrap();
            assert_eq!(result.values.read(&ctx).unwrap(), expected);
            // The order column is a permutation producing the sorted output.
            let order = result.order.read(&ctx).unwrap();
            let mut seen = vec![false; values.len()];
            for (pos, oid) in order.iter().enumerate() {
                assert_eq!(values[*oid as usize], expected[pos]);
                assert!(!seen[*oid as usize]);
                seen[*oid as usize] = true;
            }
        }
    }

    #[test]
    fn float_sort_matches_monet() {
        let values: Vec<f32> =
            (0..10_000).map(|i| (((i * 37 + 5) % 999) as f32 - 500.0) * 0.25).collect();
        let (expected, _) = monet::sort_f32(&values);
        let ctx = OcelotContext::gpu();
        let col = ctx.upload_f32(&values, "v").unwrap();
        let result = sort_f32(&ctx, &col).unwrap();
        assert_eq!(result.values.read(&ctx).unwrap(), expected);
    }

    #[test]
    fn negative_and_extreme_integers() {
        let values = vec![0, -1, i32::MIN, i32::MAX, 42, -42, 1, i32::MIN + 1];
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&values, "v").unwrap();
        let result = sort_i32(&ctx, &col).unwrap();
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(result.values.read(&ctx).unwrap(), expected);
    }

    #[test]
    fn sort_is_stable_within_equal_keys() {
        // Duplicate keys: the order column must preserve input order.
        let values: Vec<i32> = (0..1_000).map(|i| i % 10).collect();
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&values, "v").unwrap();
        let result = sort_i32(&ctx, &col).unwrap();
        let order = result.order.read(&ctx).unwrap();
        for window in order.windows(2) {
            let (a, b) = (window[0] as usize, window[1] as usize);
            if values[a] == values[b] {
                assert!(a < b, "stability violated for equal keys: {a} before {b}");
            }
        }
    }

    #[test]
    fn already_sorted_reverse_and_uniform() {
        let ctx = OcelotContext::cpu();
        let asc: Vec<i32> = (0..500).collect();
        let desc: Vec<i32> = (0..500).rev().collect();
        let uniform = vec![7i32; 500];
        for input in [asc.clone(), desc, uniform] {
            let col = ctx.upload_i32(&input, "v").unwrap();
            let result = sort_i32(&ctx, &col).unwrap();
            let mut expected = input.clone();
            expected.sort_unstable();
            assert_eq!(result.values.read(&ctx).unwrap(), expected);
        }
    }

    #[test]
    fn empty_and_single_element() {
        let ctx = OcelotContext::cpu();
        let empty = ctx.upload_i32(&[], "v").unwrap();
        let result = sort_i32(&ctx, &empty).unwrap();
        assert_eq!(result.values.host_len(), Some(0));
        let single = ctx.upload_i32(&[-5], "v").unwrap();
        let result = sort_i32(&ctx, &single).unwrap();
        assert_eq!(result.values.read(&ctx).unwrap(), vec![-5]);
        assert_eq!(result.order.read(&ctx).unwrap(), vec![0]);
    }
}
