//! The partition manager: radix partitioning, the spill pool and the
//! partitioned hybrid hash join — the *planned* out-of-core path that makes
//! the OOM-restart protocol (`cache.rs`) the fallback instead of the plan.
//!
//! A join whose hash table does not fit the device budget is split into
//! `P = 2^bits` partitions by a multiplicative hash of the key: build and
//! probe rows with equal keys land in the same partition, so the join
//! decomposes into `P` independent small joins whose tables *do* fit. Hot
//! partitions stay device-resident; cold ones are evicted to host staging
//! buffers through [`MemoryManager::offload_intermediate`] and restored
//! one-at-a-time as the join stream reaches them — the hybrid hash join
//! discipline.
//!
//! # Lifecycle contract
//!
//! Every partition produced by [`partition_by_key`] is in exactly one of
//! three states, and every transition is accounted in [`SpillStats`]:
//!
//! | State      | Device memory          | Host staging                | Transitions (accounting)                                    |
//! |------------|------------------------|-----------------------------|-------------------------------------------------------------|
//! | `Device`   | keys + oids resident   | —                           | [`SpillPool::spill`] → `Spilled` (`spills` +1, `spilled_bytes` += buffer bytes); consumed by the join → `Consumed` |
//! | `Spilled`  | —                      | snapshot held by the Memory Manager, keyed by restore tokens | [`SpillPool::restore`] → `Device` (`unspills` +1, re-pays the host→device transfer) |
//! | `Consumed` | —                      | —                           | terminal: buffers dropped, memory returned                   |
//!
//! Accounting invariants (checked by the module tests):
//!
//! * `spills ≥ unspills`, and every spill moves *both* of a partition's
//!   buffers (keys and oids) to the host — a partition is never half
//!   resident.
//! * `spilled_bytes` equals the sum of the device bytes freed by spills and
//!   is mirrored 1:1 in [`crate::MemoryStats::bytes_offloaded`].
//! * After the join completes, every partition is `Consumed`: no staging
//!   buffer and no partition device buffer outlives the operator.
//! * The join's result is **identical** to the in-memory join's, in the
//!   same (probe-row) order — partitioning is an execution strategy, not a
//!   semantics change.
//!
//! # Deliberate sync points
//!
//! Partitioning resolves the per-partition sizes on the host (one flush):
//! the partition buffers are exact-size allocations and the spill/restore
//! schedule is host-side control flow, exactly like the group-by's group
//! count and the sort's pass schedule. Spilling flushes the queue (pending
//! producers must run before a snapshot). The per-partition joins then
//! stay lazy until their results are read for the OID remap.
//!
//! # Skew
//!
//! Partition sizing ([`PartitionedJoinConfig::plan`]) derives the partition
//! count from the *estimated distinct count*, not just the row count: a
//! build side whose rows concentrate on few keys (rows ≫ ndv) gets extra
//! partition bits so the heaviest partition still fits. If a partition
//! still overflows (the estimate lied), the join **recursively
//! repartitions** it with a different hash seed (`repartitions` counts
//! these passes) up to [`PartitionedJoinConfig::max_passes`]; past that it
//! builds the oversized table anyway and lets the OOM-restart protocol be
//! the backstop it was designed to be.

use crate::context::{DevColumn, OcelotContext, Oid};
use crate::memory_manager::MemoryManager;
use crate::ops::hash_table::OcelotHashTable;
use crate::ops::join;
use crate::primitives::prefix_sum::exclusive_scan_u32;
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

/// Upper bound on partition bits per pass (256 partitions): the histogram
/// keeps a per-item count table of `2^bits` entries.
pub const MAX_PARTITION_BITS: u32 = 8;

/// One multiplicative hash seed per recursion pass, so a repartition
/// redistributes keys that collided in the parent pass.
const PARTITION_SEEDS: [u32; 4] = [0x9E37_79B1, 0x85EB_CA77, 0xC2B2_AE3D, 0x2545_F491];

/// The partition of a key word at recursion depth `pass`.
#[inline]
fn partition_of(word: u32, pass: usize, bits: u32) -> usize {
    let seed = PARTITION_SEEDS[pass % PARTITION_SEEDS.len()];
    (word.wrapping_add(pass as u32).wrapping_mul(seed) >> (32 - bits)) as usize
}

/// Counters of the spill pool and the partitioned join (the observability
/// surface the out-of-core example and benchmarks assert on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Partitions produced across all passes.
    pub partitions: u64,
    /// Partitions that stayed device-resident from creation to consumption.
    pub hot: u64,
    /// Partition evictions to host staging buffers.
    pub spills: u64,
    /// Partition restores from host staging buffers.
    pub unspills: u64,
    /// Device bytes freed by spills (mirrored in
    /// [`crate::MemoryStats::bytes_offloaded`]).
    pub spilled_bytes: u64,
    /// Recursive repartition passes taken on overflowing partitions.
    pub repartitions: u64,
}

impl SpillStats {
    /// Projects these counters into a
    /// [`ocelot_trace::MetricsRegistry`] under `<prefix>.partitions`,
    /// `<prefix>.hot`, `<prefix>.spills`, `<prefix>.unspills`,
    /// `<prefix>.spilled_bytes` and `<prefix>.repartitions`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut ocelot_trace::MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.partitions"), self.partitions);
        registry.set_counter(&format!("{prefix}.hot"), self.hot);
        registry.set_counter(&format!("{prefix}.spills"), self.spills);
        registry.set_counter(&format!("{prefix}.unspills"), self.unspills);
        registry.set_counter(&format!("{prefix}.spilled_bytes"), self.spilled_bytes);
        registry.set_counter(&format!("{prefix}.repartitions"), self.repartitions);
    }

    /// Adds another counter snapshot into this one (operators accumulate
    /// per-join stats into a backend-lifetime total).
    pub fn merge(&mut self, other: &SpillStats) {
        self.partitions += other.partitions;
        self.hot += other.hot;
        self.spills += other.spills;
        self.unspills += other.unspills;
        self.spilled_bytes += other.spilled_bytes;
        self.repartitions += other.repartitions;
    }
}

// ---------------------------------------------------------------------------
// Radix partitioning kernels
// ---------------------------------------------------------------------------

struct PartitionHistogramKernel {
    keys: Buffer,
    counts: Buffer,
    pass: usize,
    bits: u32,
    total_items: usize,
    n: usize,
}

impl Kernel for PartitionHistogramKernel {
    fn name(&self) -> &str {
        "partition_histogram"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let keys = self.keys.as_words();
        let counts = self.counts.cells();
        let parts = 1usize << self.bits;
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            let mut local = vec![0u32; parts];
            for &key in &keys[start..end] {
                local[partition_of(key, self.pass, self.bits)] += 1;
            }
            // Digit-major count table: cell (partition, item) is written by
            // exactly one item, so relaxed stores suffice.
            for (p, count) in local.iter().enumerate() {
                counts[p * self.total_items + item.global_id]
                    .store(*count, std::sync::atomic::Ordering::Relaxed);
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(
            (launch.n as u64) * 4,
            (launch.total_items() as u64) * (1u64 << self.bits) * 4,
            launch.n as u64,
            0,
        )
    }
}

/// Scatters each element (key and OID) into its partition's own exact-size
/// buffer. `starts[p]` is the global first output position of partition `p`
/// (resolved on the host), so the in-partition position is the scanned
/// offset minus the partition start.
struct PartitionScatterKernel {
    keys_in: Buffer,
    /// Carried OIDs; `None` at the top level (the OID *is* the row index).
    oids_in: Option<Buffer>,
    keys_out: Vec<Buffer>,
    oids_out: Vec<Buffer>,
    offsets: Buffer,
    starts: Vec<u32>,
    pass: usize,
    bits: u32,
    total_items: usize,
    n: usize,
}

impl Kernel for PartitionScatterKernel {
    fn name(&self) -> &str {
        "partition_scatter"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let keys_in = self.keys_in.as_words();
        let oids_in = self.oids_in.as_ref().map(|b| b.as_words());
        let offsets = self.offsets.as_words();
        let parts = 1usize << self.bits;
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            if start >= end {
                continue;
            }
            let mut cursors = vec![0u32; parts];
            for (p, cursor) in cursors.iter_mut().enumerate() {
                *cursor = offsets[p * self.total_items + item.global_id];
            }
            for idx in start..end {
                let key = keys_in[idx];
                let p = partition_of(key, self.pass, self.bits);
                let local = (cursors[p] - self.starts[p]) as usize;
                let oid = match oids_in {
                    Some(oids) => oids[idx],
                    None => idx as u32,
                };
                // Scatter targets are disjoint across items (the scanned
                // offsets reserve a unique position per element) but not
                // contiguous, so the writes go through the atomic cells.
                self.keys_out[p].cells()[local].store(key, std::sync::atomic::Ordering::Relaxed);
                self.oids_out[p].cells()[local].store(oid, std::sync::atomic::Ordering::Relaxed);
                cursors[p] += 1;
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 8, (launch.n as u64) * 8, launch.n as u64, 0)
    }
}

// ---------------------------------------------------------------------------
// Partitions and the spill pool
// ---------------------------------------------------------------------------

/// Where a partition's buffers currently live (see the module contract).
enum PartitionState {
    /// Keys and OIDs resident on the device.
    Device { keys: DevColumn<i32>, oids: DevColumn<Oid> },
    /// Both buffers snapshot to host staging; tokens restore them.
    Spilled { keys_token: u64, oids_token: u64 },
    /// Buffers dropped after the join consumed the partition.
    Consumed,
}

/// One partition of a partitioned input: `rows` keys plus the original row
/// ids (OIDs) they came from.
pub struct Partition {
    rows: usize,
    /// Device bytes the partition occupies when resident.
    resident_bytes: usize,
    /// Whether this partition was ever spilled (hot = never).
    was_spilled: bool,
    state: PartitionState,
}

impl Partition {
    /// Number of rows in the partition.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the partition is currently device-resident.
    pub fn is_resident(&self) -> bool {
        matches!(self.state, PartitionState::Device { .. })
    }

    /// Device bytes the partition occupies while resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// The resident key/OID columns. Panics when not resident (restore
    /// first — state errors here are operator bugs, not runtime conditions).
    fn columns(&self) -> (&DevColumn<i32>, &DevColumn<Oid>) {
        match &self.state {
            PartitionState::Device { keys, oids } => (keys, oids),
            _ => panic!("partition is not device-resident"),
        }
    }
}

/// Keeps hot partitions device-resident under a byte budget and evicts cold
/// ones to host staging buffers (see the module contract table).
pub struct SpillPool {
    /// Budget for *resident partition* bytes (`None` = keep everything hot).
    budget: Option<usize>,
    resident_bytes: usize,
    stats: SpillStats,
}

impl SpillPool {
    /// A pool that keeps at most `budget` bytes of partitions resident.
    pub fn new(budget: Option<usize>) -> SpillPool {
        SpillPool { budget, resident_bytes: 0, stats: SpillStats::default() }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Bytes of partitions currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Registers a freshly produced resident partition.
    fn admit(&mut self, partition: &Partition) {
        self.stats.partitions += 1;
        self.resident_bytes += partition.resident_bytes;
    }

    /// Whether the current resident set plus `working` more bytes (the
    /// active pair's hash-table scratch) exceeds the pool budget.
    pub fn over_budget(&self, working: usize) -> bool {
        match self.budget {
            Some(budget) => self.resident_bytes + working > budget,
            None => false,
        }
    }

    /// Evicts a resident partition to host staging buffers. **Sync point**:
    /// the snapshot flushes pending producers. No-op on non-resident
    /// partitions.
    pub fn spill(&mut self, memory: &MemoryManager, partition: &mut Partition) -> Result<()> {
        let (keys, oids) = match std::mem::replace(&mut partition.state, PartitionState::Consumed) {
            PartitionState::Device { keys, oids } => (keys, oids),
            other => {
                partition.state = other;
                return Ok(());
            }
        };
        let keys_token = memory.offload_intermediate(keys.buffer)?;
        let oids_token = memory.offload_intermediate(oids.buffer)?;
        partition.state = PartitionState::Spilled { keys_token, oids_token };
        partition.was_spilled = true;
        self.stats.spills += 1;
        self.stats.spilled_bytes += partition.resident_bytes as u64;
        self.resident_bytes -= partition.resident_bytes;
        Ok(())
    }

    /// Restores a spilled partition to the device (re-pays the transfer).
    /// No-op on resident partitions.
    pub fn restore(&mut self, memory: &MemoryManager, partition: &mut Partition) -> Result<()> {
        let PartitionState::Spilled { keys_token, oids_token } = partition.state else {
            return Ok(());
        };
        let keys = memory.restore_intermediate(keys_token)?;
        let oids = memory.restore_intermediate(oids_token)?;
        partition.state = PartitionState::Device {
            keys: DevColumn::new(keys, partition.rows)?,
            oids: DevColumn::new(oids, partition.rows)?,
        };
        self.stats.unspills += 1;
        self.resident_bytes += partition.resident_bytes;
        Ok(())
    }

    /// Marks a partition consumed and drops its buffers (terminal state).
    pub fn consume(&mut self, partition: &mut Partition) {
        if partition.is_resident() {
            self.resident_bytes -= partition.resident_bytes;
            if !partition.was_spilled {
                self.stats.hot += 1;
            }
        }
        partition.state = PartitionState::Consumed;
    }

    fn count_repartition(&mut self) {
        self.stats.repartitions += 1;
    }
}

/// Radix-partitions `keys` (with carried `oids`, or the row index at the
/// top level) into `2^bits` partitions by the pass-`pass` hash.
///
/// **Deliberate sync point:** the per-partition sizes are resolved on the
/// host (one flush) so each partition gets an exact-size, individually
/// spillable allocation — the analogue of the group-by's group-count
/// resolve. Registered partitions start `Device` (hot); the caller's
/// [`SpillPool`] decides who stays.
pub fn partition_by_key(
    ctx: &OcelotContext,
    keys: &DevColumn<i32>,
    oids: Option<&DevColumn<Oid>>,
    bits: u32,
    pass: usize,
    pool: &mut SpillPool,
) -> Result<Vec<Partition>> {
    let bits = bits.clamp(1, MAX_PARTITION_BITS);
    let parts = 1usize << bits;
    let n = keys.len(ctx)?;
    if n == 0 {
        let empty = (0..parts)
            .map(|_| Partition {
                rows: 0,
                resident_bytes: 0,
                was_spilled: false,
                state: PartitionState::Consumed,
            })
            .collect::<Vec<_>>();
        for p in &empty {
            pool.admit(p);
        }
        return Ok(empty);
    }

    let launch = ctx.launch(n);
    let total_items = launch.total_items();
    let counts = ctx.alloc_uninit(parts * total_items, "partition_counts")?;
    let mut wait = ctx.wait_for(keys);
    if let Some(oids) = oids {
        wait.extend(ctx.wait_for(oids));
    }
    let count_event = ctx.queue().enqueue_kernel(
        Arc::new(PartitionHistogramKernel {
            keys: keys.buffer.clone(),
            counts: counts.clone(),
            pass,
            bits,
            total_items,
            n,
        }),
        launch.clone(),
        &wait,
    )?;
    ctx.memory().record_producer(&counts, count_event);
    let counts_col = DevColumn::<u32>::new(counts, parts * total_items)?;
    let (offsets, _total) = exclusive_scan_u32(ctx, &counts_col)?;

    // Host-resolve the partition starts (the documented sync point): the
    // scanned value at (partition, item 0) is the partition's first global
    // output position.
    ctx.queue().flush()?;
    let mut starts = Vec::with_capacity(parts + 1);
    for p in 0..parts {
        starts.push(offsets.buffer.get_u32(p * total_items));
    }
    starts.push(n as u32);
    let sizes: Vec<usize> = (0..parts).map(|p| (starts[p + 1] - starts[p]) as usize).collect();

    // Exact-size (pool-bypassing) allocations: each partition's buffers are
    // individually spillable, and dropping them must actually return the
    // device memory rather than park it in the recycle pool.
    let mut keys_out = Vec::with_capacity(parts);
    let mut oids_out = Vec::with_capacity(parts);
    for (p, &size) in sizes.iter().enumerate() {
        keys_out.push(ctx.memory().alloc_exact(size.max(1), &format!("part_keys_{p}"))?);
        oids_out.push(ctx.memory().alloc_exact(size.max(1), &format!("part_oids_{p}"))?);
    }

    let scatter_event = ctx.queue().enqueue_kernel(
        Arc::new(PartitionScatterKernel {
            keys_in: keys.buffer.clone(),
            oids_in: oids.map(|o| o.buffer.clone()),
            keys_out: keys_out.clone(),
            oids_out: oids_out.clone(),
            offsets: offsets.buffer.clone(),
            starts: starts[..parts].to_vec(),
            pass,
            bits,
            total_items,
            n,
        }),
        launch,
        &ctx.memory().wait_for_read(&offsets.buffer),
    )?;

    let mut partitions = Vec::with_capacity(parts);
    for (p, &rows) in sizes.iter().enumerate() {
        ctx.memory().record_producer(&keys_out[p], scatter_event);
        ctx.memory().record_producer(&oids_out[p], scatter_event);
        let resident_bytes = keys_out[p].bytes() + oids_out[p].bytes();
        let partition = Partition {
            rows,
            resident_bytes,
            was_spilled: false,
            state: PartitionState::Device {
                keys: DevColumn::new(keys_out[p].clone(), rows)?,
                oids: DevColumn::new(oids_out[p].clone(), rows)?,
            },
        };
        pool.admit(&partition);
        partitions.push(partition);
    }
    Ok(partitions)
}

// ---------------------------------------------------------------------------
// The partitioned hybrid hash join
// ---------------------------------------------------------------------------

/// Configuration of a partitioned join (see [`PartitionedJoinConfig::plan`]
/// for the stats-driven constructor).
#[derive(Debug, Clone, Copy)]
pub struct PartitionedJoinConfig {
    /// Partition bits for the first pass (`2^bits` partitions).
    pub partition_bits: u32,
    /// Byte budget for resident partitions + the per-partition working set
    /// (`None` = unbounded: everything stays hot).
    pub device_budget: Option<usize>,
    /// Build rows past which a partition is recursively repartitioned.
    pub max_build_rows: usize,
    /// Maximum partitioning passes (initial pass included).
    pub max_passes: usize,
}

/// Bytes of the hash-table working set for a build side of `rows` keys —
/// the same model `Plan::estimate_device_footprint` charges, so planner
/// and executor agree on what fits.
pub fn hash_table_bytes(rows: usize) -> usize {
    let slots = (((rows.max(1) as f64) * 1.4).ceil() as usize).next_power_of_two().max(16);
    2 * slots * 4
}

impl PartitionedJoinConfig {
    /// Plans partition sizing from catalog statistics. The partition count
    /// is the smallest power of two whose *expected heaviest* build
    /// partition fits the per-partition budget share; the skew factor
    /// `rows / ndv` inflates the expectation so concentrated key
    /// distributions get extra bits (one heavy key cannot blow a partition
    /// past its share).
    pub fn plan(
        build_rows: usize,
        probe_rows: usize,
        ndv_hint: usize,
        device_budget: Option<usize>,
    ) -> PartitionedJoinConfig {
        let _ = probe_rows;
        let budget = device_budget.unwrap_or(usize::MAX);
        // A quarter of the budget for the active partition's working set:
        // partitions of both sides + table scratch + result slack.
        let share = (budget / 4).max(4096);
        let max_build_rows = (share / 16).max(64);
        let skew = (build_rows.max(1) / ndv_hint.max(1)).max(1);
        let wanted = (build_rows.max(1) * skew).div_ceil(max_build_rows);
        let bits = (wanted.next_power_of_two().trailing_zeros()).clamp(1, MAX_PARTITION_BITS);
        PartitionedJoinConfig { partition_bits: bits, device_budget, max_build_rows, max_passes: 3 }
    }
}

/// The result of a partitioned join: probe-order OID pairs (identical to
/// the in-memory [`join::hash_join`] output) plus the spill accounting.
pub struct PartitionedJoin {
    /// OIDs into the probe input, one per result tuple, in probe-row order.
    pub probe_oids: DevColumn<Oid>,
    /// OIDs into the build input, aligned with `probe_oids`.
    pub build_oids: DevColumn<Oid>,
    /// Spill-pool counters accumulated across all passes.
    pub stats: SpillStats,
}

/// Partitioned hybrid hash join of `probe` against unique-key `build`.
///
/// Both inputs are radix-partitioned by the same hash; partitions beyond
/// the device budget are spilled to host staging and restored one at a
/// time; each partition pair joins through the ordinary in-memory hash
/// join, and the per-partition results are remapped to global OIDs and
/// merged **in probe-row order** — the output is bit-identical to
/// [`join::hash_join`] on the unpartitioned inputs.
///
/// **Deliberate sync points:** partition sizing, the spill/restore
/// schedule and the final merge are host-side control flow; see the module
/// docs.
pub fn partitioned_pkfk_join(
    ctx: &OcelotContext,
    probe: &DevColumn<i32>,
    build: &DevColumn<i32>,
    cfg: &PartitionedJoinConfig,
) -> Result<PartitionedJoin> {
    let offloaded_before = ctx.memory().stats().bytes_offloaded;
    let mut pool = SpillPool::new(cfg.device_budget);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    join_pass(ctx, probe, None, build, None, 0, cfg, &mut pool, &mut pairs)?;

    // Spill accounting must agree across layers at join completion: every
    // spilled partition was offloaded exactly once through the Memory
    // Manager (so the byte counters mirror each other), and every spill was
    // paired with a restore (no partition is still parked on the host).
    debug_assert_eq!(
        ctx.memory().stats().bytes_offloaded - offloaded_before,
        pool.stats().spilled_bytes,
        "spilled_bytes must mirror MemoryStats::bytes_offloaded at join completion",
    );
    debug_assert_eq!(
        pool.stats().unspills,
        pool.stats().spills,
        "every spilled partition must be restored before the join completes",
    );

    // Merge: build keys are unique, so each probe row emits at most one
    // pair and probe-OID order reproduces the in-memory join's output.
    pairs.sort_unstable();
    let probe_ids: Vec<u32> = pairs.iter().map(|(p, _)| *p).collect();
    let build_ids: Vec<u32> = pairs.iter().map(|(_, b)| *b).collect();
    Ok(PartitionedJoin {
        probe_oids: ctx.upload_u32(&probe_ids, "pjoin_probe_oids")?,
        build_oids: ctx.upload_u32(&build_ids, "pjoin_build_oids")?,
        stats: pool.stats(),
    })
}

/// One partitioning pass: partition both sides, spill what exceeds the
/// budget, then join each partition pair (recursing on overflow).
#[allow(clippy::too_many_arguments)] // internal driver; the tuple is the pass state
fn join_pass(
    ctx: &OcelotContext,
    probe_keys: &DevColumn<i32>,
    probe_oids: Option<&DevColumn<Oid>>,
    build_keys: &DevColumn<i32>,
    build_oids: Option<&DevColumn<Oid>>,
    pass: usize,
    cfg: &PartitionedJoinConfig,
    pool: &mut SpillPool,
    pairs: &mut Vec<(u32, u32)>,
) -> Result<()> {
    let bits = if pass == 0 { cfg.partition_bits } else { cfg.partition_bits.min(4) };

    // Build side first, and cold build partitions are evicted *before* the
    // probe side is partitioned — the transient peak is one side's
    // partition copies, never both.
    let mut build_parts = partition_by_key(ctx, build_keys, build_oids, bits, pass, pool)?;
    for bp in build_parts.iter_mut().rev() {
        if !pool.over_budget(hash_table_bytes(bp.rows())) {
            break;
        }
        pool.spill(ctx.memory(), bp)?;
    }
    let mut probe_parts = partition_by_key(ctx, probe_keys, probe_oids, bits, pass, pool)?;

    // Hybrid split: a probe partition follows its build partner (cold pairs
    // stay together on the host); beyond that, evict pairs from the back —
    // the join stream reaches them last — until the resident set plus the
    // largest pending hash-table scratch fits the pool budget, so the front
    // partitions join straight from device memory.
    for (bp, pp) in build_parts.iter_mut().zip(probe_parts.iter_mut()) {
        if !bp.is_resident() && bp.rows() > 0 {
            pool.spill(ctx.memory(), pp)?;
        }
    }
    for (bp, pp) in build_parts.iter_mut().zip(probe_parts.iter_mut()).rev() {
        if !pool.over_budget(hash_table_bytes(bp.rows())) {
            break;
        }
        pool.spill(ctx.memory(), bp)?;
        pool.spill(ctx.memory(), pp)?;
    }

    for (mut bp, mut pp) in build_parts.into_iter().zip(probe_parts) {
        if bp.rows() == 0 || pp.rows() == 0 {
            pool.consume(&mut bp);
            pool.consume(&mut pp);
            continue;
        }
        pool.restore(ctx.memory(), &mut bp)?;
        pool.restore(ctx.memory(), &mut pp)?;

        if bp.rows() > cfg.max_build_rows && pass + 1 < cfg.max_passes {
            // Overflow: repartition this pair with the next pass's hash.
            pool.count_repartition();
            let (bk, bo) = bp.columns();
            let (pk, po) = pp.columns();
            let (bk, bo, pk, po) = (bk.clone(), bo.clone(), pk.clone(), po.clone());
            join_pass(ctx, &pk, Some(&po), &bk, Some(&bo), pass + 1, cfg, pool, pairs)?;
        } else {
            join_partition_pair(ctx, &bp, &pp, pairs)?;
        }
        pool.consume(&mut bp);
        pool.consume(&mut pp);
    }
    Ok(())
}

/// Joins one resident partition pair and appends globally remapped OID
/// pairs.
fn join_partition_pair(
    ctx: &OcelotContext,
    build: &Partition,
    probe: &Partition,
    pairs: &mut Vec<(u32, u32)>,
) -> Result<()> {
    let (build_keys, build_oids) = build.columns();
    let (probe_keys, probe_oids) = probe.columns();
    let table = OcelotHashTable::build(ctx, build_keys, build.rows())?;
    let result = join::hash_join(ctx, probe_keys, &table)?;
    let local_probe = result.probe_oids.read(ctx)?;
    let local_build = result.build_oids.read(ctx)?;
    let global_probe = probe_oids.read(ctx)?;
    let global_build = build_oids.read(ctx)?;
    pairs.reserve(local_probe.len());
    for (lp, lb) in local_probe.into_iter().zip(local_build) {
        pairs.push((global_probe[lp as usize], global_build[lb as usize]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;

    fn reference_join(probe: &[i32], build: &[i32]) -> Vec<(u32, u32)> {
        let index: std::collections::HashMap<i32, u32> =
            build.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        probe.iter().enumerate().filter_map(|(i, k)| index.get(k).map(|b| (i as u32, *b))).collect()
    }

    fn contexts() -> Vec<OcelotContext> {
        vec![OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()]
    }

    #[test]
    fn partitioned_join_matches_reference_on_all_devices() {
        let build: Vec<i32> = (0..700).collect();
        let probe: Vec<i32> = (0..9_000).map(|i| (i * 17 + 3) % 900).collect();
        let expected = reference_join(&probe, &build);
        for ctx in contexts() {
            let b = ctx.upload_i32(&build, "build").unwrap();
            let p = ctx.upload_i32(&probe, "probe").unwrap();
            let cfg = PartitionedJoinConfig {
                partition_bits: 3,
                device_budget: None,
                max_build_rows: usize::MAX,
                max_passes: 1,
            };
            let join = partitioned_pkfk_join(&ctx, &p, &b, &cfg).unwrap();
            let got: Vec<(u32, u32)> = join
                .probe_oids
                .read(&ctx)
                .unwrap()
                .into_iter()
                .zip(join.build_oids.read(&ctx).unwrap())
                .collect();
            assert_eq!(got, expected);
            assert_eq!(join.stats.spills, 0);
            assert!(join.stats.partitions > 0);
        }
    }

    #[test]
    fn forced_spill_still_matches_reference() {
        let build: Vec<i32> = (0..2_000).collect();
        let probe: Vec<i32> = (0..20_000).map(|i| (i * 13 + 7) % 2_500).collect();
        let expected = reference_join(&probe, &build);
        let ctx = OcelotContext::cpu();
        let b = ctx.upload_i32(&build, "build").unwrap();
        let p = ctx.upload_i32(&probe, "probe").unwrap();
        // A budget far below the input size forces cold partitions out.
        let cfg = PartitionedJoinConfig {
            partition_bits: 4,
            device_budget: Some(64 * 1024),
            max_build_rows: usize::MAX,
            max_passes: 1,
        };
        let join = partitioned_pkfk_join(&ctx, &p, &b, &cfg).unwrap();
        let got: Vec<(u32, u32)> = join
            .probe_oids
            .read(&ctx)
            .unwrap()
            .into_iter()
            .zip(join.build_oids.read(&ctx).unwrap())
            .collect();
        assert_eq!(got, expected);
        assert!(join.stats.spills > 0, "budget must force spills: {:?}", join.stats);
        assert_eq!(join.stats.unspills, join.stats.spills, "all spilled partitions restored");
        assert!(join.stats.spilled_bytes > 0);
    }

    #[test]
    fn recursive_repartition_on_overflow() {
        let build: Vec<i32> = (0..4_000).collect();
        let probe: Vec<i32> = (0..8_000).map(|i| (i * 29 + 11) % 4_000).collect();
        let expected = reference_join(&probe, &build);
        let ctx = OcelotContext::cpu();
        let b = ctx.upload_i32(&build, "build").unwrap();
        let p = ctx.upload_i32(&probe, "probe").unwrap();
        let cfg = PartitionedJoinConfig {
            partition_bits: 1,
            device_budget: None,
            max_build_rows: 600,
            max_passes: 3,
        };
        let join = partitioned_pkfk_join(&ctx, &p, &b, &cfg).unwrap();
        let got: Vec<(u32, u32)> = join
            .probe_oids
            .read(&ctx)
            .unwrap()
            .into_iter()
            .zip(join.build_oids.read(&ctx).unwrap())
            .collect();
        assert_eq!(got, expected);
        assert!(join.stats.repartitions > 0, "expected recursive passes: {:?}", join.stats);
    }

    #[test]
    fn spill_accounting_mirrors_memory_stats() {
        let ctx = OcelotContext::cpu();
        let keys: Vec<i32> = (0..4_096).collect();
        let col = ctx.upload_i32(&keys, "keys").unwrap();
        let offloaded_before = ctx.memory().stats().bytes_offloaded;
        let mut pool = SpillPool::new(None);
        let mut parts = partition_by_key(&ctx, &col, None, 2, 0, &mut pool).unwrap();
        let total_rows: usize = parts.iter().map(|p| p.rows()).sum();
        assert_eq!(total_rows, keys.len());
        // Spill every partition, then restore and verify content integrity.
        for p in parts.iter_mut() {
            pool.spill(ctx.memory(), p).unwrap();
            assert!(!p.is_resident());
        }
        let spilled = pool.stats().spilled_bytes;
        assert!(spilled > 0);
        assert_eq!(
            ctx.memory().stats().bytes_offloaded - offloaded_before,
            spilled,
            "spill accounting must mirror MemoryStats::bytes_offloaded"
        );
        let mut seen: Vec<i32> = Vec::new();
        for p in parts.iter_mut() {
            pool.restore(ctx.memory(), p).unwrap();
            assert!(p.is_resident());
            let (k, o) = p.columns();
            let k = k.read(&ctx).unwrap();
            let o = o.read(&ctx).unwrap();
            // Every key is tagged with its original row id.
            for (key, oid) in k.iter().zip(&o) {
                assert_eq!(*key, keys[*oid as usize]);
            }
            seen.extend(k);
        }
        seen.sort_unstable();
        assert_eq!(seen, keys, "partitions cover the input exactly");
        assert_eq!(pool.stats().unspills, pool.stats().spills);
        for p in parts.iter_mut() {
            pool.consume(p);
        }
        assert_eq!(pool.resident_bytes(), 0, "consumed partitions release accounting");
    }

    #[test]
    fn skewed_probe_keys_join_correctly() {
        // 90% of probe rows hit one build key.
        let build: Vec<i32> = (0..500).collect();
        let probe: Vec<i32> =
            (0..10_000).map(|i| if i % 10 == 0 { (i / 10) % 500 } else { 42 }).collect();
        let expected = reference_join(&probe, &build);
        let ctx = OcelotContext::gpu();
        let b = ctx.upload_i32(&build, "build").unwrap();
        let p = ctx.upload_i32(&probe, "probe").unwrap();
        let cfg =
            PartitionedJoinConfig::plan(build.len(), probe.len(), build.len(), Some(128 * 1024));
        let join = partitioned_pkfk_join(&ctx, &p, &b, &cfg).unwrap();
        let got: Vec<(u32, u32)> = join
            .probe_oids
            .read(&ctx)
            .unwrap()
            .into_iter()
            .zip(join.build_oids.read(&ctx).unwrap())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn config_plan_adds_bits_for_skew() {
        let uniform = PartitionedJoinConfig::plan(100_000, 100_000, 100_000, Some(1 << 20));
        let skewed = PartitionedJoinConfig::plan(100_000, 100_000, 1_000, Some(1 << 20));
        assert!(skewed.partition_bits >= uniform.partition_bits);
        assert!(uniform.partition_bits >= 1);
        assert!(skewed.partition_bits <= MAX_PARTITION_BITS);
    }

    #[test]
    fn empty_inputs_produce_empty_join() {
        let ctx = OcelotContext::cpu();
        let b = ctx.upload_i32(&[], "build").unwrap();
        let p = ctx.upload_i32(&[1, 2, 3], "probe").unwrap();
        let cfg = PartitionedJoinConfig::plan(0, 3, 0, None);
        let join = partitioned_pkfk_join(&ctx, &p, &b, &cfg).unwrap();
        assert_eq!(join.probe_oids.read(&ctx).unwrap(), Vec::<u32>::new());
    }
}
