//! Bitmaps — Ocelot's internal representation of selection results
//! (paper §4.1.1).
//!
//! Encoding selection results as bitmaps has two advantages the paper
//! exploits: the result size is independent of the selectivity (Figure 5b),
//! and complex predicates can be evaluated by combining per-predicate
//! bitmaps with cheap bit operations. Bitmaps never appear in the BAT
//! interface; they are materialised into OID lists only when a MonetDB-side
//! operator needs them (`ops::select::materialize_bitmap`).
//!
//! Layout: one `u32` word per 32 input rows, bit `i % 32` of word `i / 32`
//! set iff row `i` qualifies.
//!
//! **Invariant:** bits beyond the logical row count are always zero — every
//! producer (the selection kernels, [`Bitmap::from_bools`], [`combine`])
//! guarantees it. This is what lets popcounts and combines run over the full
//! capacity without knowing a deferred row count, keeping bitmap pipelines
//! sync-free.

use crate::context::{ColLen, DevColumn, DevScalar, OcelotContext};
use crate::primitives::reduce;
use ocelot_kernel::{
    Buffer, BufferAccess, Kernel, KernelAccesses, KernelCost, LaunchConfig, Result, WorkGroupCtx,
};
use std::sync::Arc;

/// A device-resident bitmap over `n` rows, where `n` may be host-known or
/// deferred (a device counter + capacity bound, like [`DevColumn`] lengths).
#[derive(Debug, Clone)]
pub struct Bitmap {
    /// Backing buffer (one word per 32 rows, zero-padded).
    pub buffer: Buffer,
    bits: ColLen,
}

impl Bitmap {
    /// Number of `u32` words needed to cover `n_bits` rows.
    pub fn words_for(n_bits: usize) -> usize {
        n_bits.div_ceil(32)
    }

    /// Allocates an all-zero bitmap for `n_bits` rows.
    pub fn zeroed(ctx: &OcelotContext, n_bits: usize) -> Result<Bitmap> {
        let buffer = ctx.alloc(Self::words_for(n_bits).max(1), "bitmap")?;
        Ok(Bitmap { buffer, bits: ColLen::Host(n_bits) })
    }

    /// Allocates a bitmap whose words are unspecified — for producers that
    /// overwrite every backing word (the selection and combine kernels).
    pub fn for_overwrite(ctx: &OcelotContext, bits: ColLen) -> Result<Bitmap> {
        let buffer = ctx.alloc_uninit(Self::words_for(bits.cap()).max(1), "bitmap")?;
        Ok(Bitmap { buffer, bits })
    }

    /// Builds a bitmap from host booleans (test and host-integration helper).
    pub fn from_bools(ctx: &OcelotContext, bits: &[bool]) -> Result<Bitmap> {
        let bitmap = Self::zeroed(ctx, bits.len())?;
        for (i, bit) in bits.iter().enumerate() {
            if *bit {
                let word = bitmap.buffer.get_u32(i / 32);
                bitmap.buffer.set_u32(i / 32, word | (1 << (i % 32)));
            }
        }
        ctx.queue().enqueue_write(&bitmap.buffer, &[])?;
        Ok(bitmap)
    }

    /// Reads the bitmap back as host booleans. **Sync point** (host
    /// boundary helper for tests and debugging).
    pub fn to_bools(&self, ctx: &OcelotContext) -> Result<Vec<bool>> {
        let n = self.len(ctx)?;
        ctx.sync()?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let word = self.buffer.get_u32(i / 32);
            out.push(word & (1 << (i % 32)) != 0);
        }
        Ok(out)
    }

    /// The row-count descriptor.
    pub fn col_len(&self) -> &ColLen {
        &self.bits
    }

    /// Host-known upper bound on the row count (exact when not deferred).
    pub fn cap_bits(&self) -> usize {
        self.bits.cap()
    }

    /// Resolves the logical row count (**sync point** when deferred).
    pub fn len(&self, ctx: &OcelotContext) -> Result<usize> {
        self.bits.resolve(ctx)
    }

    /// Number of backing words (covers the capacity bound).
    pub fn words(&self) -> usize {
        Self::words_for(self.bits.cap())
    }
}

/// How to combine two bitmaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitmapCombine {
    /// Logical conjunction of the predicates.
    And,
    /// Logical disjunction of the predicates.
    Or,
}

struct CombineKernel {
    left: Buffer,
    right: Buffer,
    output: Buffer,
    mode: BitmapCombine,
    /// Host-known logical row count of the output, when there is one —
    /// lets the race detector's bitmap-padding check run on completion.
    rows: Option<usize>,
}

impl Kernel for CombineKernel {
    fn name(&self) -> &str {
        match self.mode {
            BitmapCombine::And => "bitmap_and",
            BitmapCombine::Or => "bitmap_or",
        }
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let left = self.left.as_words();
        let right = self.right.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                if range.is_empty() {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of the
                // output exclusively to this item within this phase.
                let out = unsafe { self.output.chunk_mut(range.start, range.end) };
                let (l, r) = (&left[range.clone()], &right[range]);
                match self.mode {
                    BitmapCombine::And => {
                        for ((o, &a), &b) in out.iter_mut().zip(l).zip(r) {
                            *o = a & b;
                        }
                    }
                    BitmapCombine::Or => {
                        for ((o, &a), &b) in out.iter_mut().zip(l).zip(r) {
                            *o = a | b;
                        }
                    }
                }
            } else {
                // Strided/coalesced pattern: store through a one-word
                // tier-2 chunk per element — the strided assignment gives
                // each index to exactly one work-item, so the chunks are
                // pairwise disjoint.
                for idx in assigned {
                    let combined = match self.mode {
                        BitmapCombine::And => left[idx] & right[idx],
                        BitmapCombine::Or => left[idx] | right[idx],
                    };
                    // SAFETY: index `idx` is owned by this item alone
                    // within this phase (disjoint one-word chunks).
                    unsafe { self.output.chunk_mut(idx, idx + 1)[0] = combined };
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 8, (launch.n as u64) * 4, launch.n as u64, 0)
    }
    fn declared_accesses(&self, _launch: &LaunchConfig) -> Option<KernelAccesses> {
        let mut declared = KernelAccesses::of(vec![
            BufferAccess::slice_read(&self.left, 0..self.left.len()),
            BufferAccess::slice_read(&self.right, 0..self.right.len()),
            BufferAccess::slice_write(&self.output, 0..self.output.len()),
        ]);
        if let Some(rows) = self.rows {
            declared = declared.with_bitmap(&self.output, rows);
        }
        Some(declared)
    }
}

/// Combines two bitmaps of equal length with AND or OR. Zero-padding in both
/// inputs keeps the padding of the result zero, preserving the module
/// invariant without resolving deferred row counts.
pub fn combine(
    ctx: &OcelotContext,
    left: &Bitmap,
    right: &Bitmap,
    mode: BitmapCombine,
) -> Result<Bitmap> {
    // Strict logical-length compatibility (not just equal capacities): an OR
    // over bitmaps with different logical lengths would set bits beyond the
    // output's inherited length and break the zero-padding invariant.
    let compatible = match (left.col_len(), right.col_len()) {
        (ColLen::Host(a), ColLen::Host(b)) => a == b,
        (
            ColLen::Device { counter: ca, cap: cap_a },
            ColLen::Device { counter: cb, cap: cap_b },
        ) => ca.id() == cb.id() && cap_a == cap_b,
        _ => false,
    };
    assert!(compatible, "bitmap combine: length mismatch");
    // The kernel writes every backing word, so the bitmap can skip zeroing.
    let output = Bitmap::for_overwrite(ctx, left.col_len().clone())?;
    let words = left.words();
    if words == 0 {
        return Ok(output);
    }
    let mut wait = ctx.memory().wait_for_read(&left.buffer);
    wait.extend(ctx.memory().wait_for_read(&right.buffer));
    let event = ctx.queue().enqueue_kernel(
        Arc::new(CombineKernel {
            left: left.buffer.clone(),
            right: right.buffer.clone(),
            output: output.buffer.clone(),
            mode,
            rows: match output.col_len() {
                ColLen::Host(n) => Some(*n),
                ColLen::Device { .. } => None,
            },
        }),
        ctx.launch(words),
        &wait,
    )?;
    ctx.memory().record_producer(&output.buffer, event);
    Ok(output)
}

struct PopcountKernel {
    bitmap: Buffer,
    counts: Buffer,
    words: usize,
}

impl Kernel for PopcountKernel {
    fn name(&self) -> &str {
        "bitmap_popcount"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let bitmap = self.bitmap.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            let count: u32 = if let Some(range) = assigned.as_range() {
                let end = range.end.min(self.words);
                let start = range.start.min(end);
                bitmap[start..end].iter().map(|w| w.count_ones()).sum()
            } else {
                assigned.filter(|&idx| idx < self.words).map(|idx| bitmap[idx].count_ones()).sum()
            };
            self.counts.set_u32(item.global_id, count);
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 4, launch.total_items() as u64 * 4, launch.n as u64, 0)
    }
    fn declared_accesses(&self, launch: &LaunchConfig) -> Option<KernelAccesses> {
        Some(KernelAccesses::of(vec![
            BufferAccess::slice_read(&self.bitmap, 0..self.words),
            BufferAccess::cells_write(&self.counts, 0..launch.total_items()),
        ]))
    }
}

/// Counts the set bits of a bitmap (the selection's result cardinality) as a
/// deferred [`DevScalar`]. Never flushes: per-item popcounts are reduced by
/// a second kernel, and the total stays device-resident until `.get()`.
pub fn count_ones(ctx: &OcelotContext, bitmap: &Bitmap) -> Result<DevScalar<u32>> {
    let words = bitmap.words();
    if words == 0 {
        return DevScalar::constant(ctx, 0u32);
    }
    let launch = ctx.launch(words);
    let counts = ctx.alloc_uninit(launch.total_items(), "popcount_partials")?;
    let wait = ctx.memory().wait_for_read(&bitmap.buffer);
    let event = ctx.queue().enqueue_kernel(
        Arc::new(PopcountKernel { bitmap: bitmap.buffer.clone(), counts: counts.clone(), words }),
        launch.clone(),
        &wait,
    )?;
    ctx.memory().record_consumer(&bitmap.buffer, event);
    ctx.memory().record_producer(&counts, event);
    let counts_col = DevColumn::<u32>::new(counts, launch.total_items())?;
    reduce::sum_u32(ctx, &counts_col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;

    #[test]
    fn round_trip_bools() {
        let ctx = OcelotContext::cpu();
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let bitmap = Bitmap::from_bools(&ctx, &bits).unwrap();
        assert_eq!(bitmap.to_bools(&ctx).unwrap(), bits);
        assert_eq!(bitmap.words(), 4);
        assert_eq!(Bitmap::words_for(0), 0);
        assert_eq!(Bitmap::words_for(32), 1);
        assert_eq!(Bitmap::words_for(33), 2);
    }

    #[test]
    fn combine_and_or() {
        let ctx = OcelotContext::cpu();
        let a: Vec<bool> = (0..70).map(|i| i % 2 == 0).collect();
        let b: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let ba = Bitmap::from_bools(&ctx, &a).unwrap();
        let bb = Bitmap::from_bools(&ctx, &b).unwrap();
        let and = combine(&ctx, &ba, &bb, BitmapCombine::And).unwrap();
        let or = combine(&ctx, &ba, &bb, BitmapCombine::Or).unwrap();
        let expected_and: Vec<bool> = a.iter().zip(&b).map(|(x, y)| *x && *y).collect();
        let expected_or: Vec<bool> = a.iter().zip(&b).map(|(x, y)| *x || *y).collect();
        assert_eq!(and.to_bools(&ctx).unwrap(), expected_and);
        assert_eq!(or.to_bools(&ctx).unwrap(), expected_or);
    }

    #[test]
    fn popcount_on_all_devices() {
        let bits: Vec<bool> = (0..1_000).map(|i| (i * 7) % 11 < 4).collect();
        let expected = bits.iter().filter(|b| **b).count() as u32;
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let bitmap = Bitmap::from_bools(&ctx, &bits).unwrap();
            assert_eq!(count_ones(&ctx, &bitmap).unwrap().get(&ctx).unwrap(), expected);
        }
    }

    #[test]
    fn popcount_is_deferred() {
        let ctx = OcelotContext::cpu();
        let bits: Vec<bool> = (0..4_096).map(|i| i % 2 == 0).collect();
        let bitmap = Bitmap::from_bools(&ctx, &bits).unwrap();
        let flushes = ctx.queue().flush_count();
        let count = count_ones(&ctx, &bitmap).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes, "count_ones must not flush");
        assert_eq!(count.get(&ctx).unwrap(), 2_048);
    }

    #[test]
    fn empty_bitmap() {
        let ctx = OcelotContext::cpu();
        let bitmap = Bitmap::zeroed(&ctx, 0).unwrap();
        assert_eq!(count_ones(&ctx, &bitmap).unwrap().get(&ctx).unwrap(), 0);
        assert!(bitmap.to_bools(&ctx).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn combine_length_mismatch_panics() {
        let ctx = OcelotContext::cpu();
        let a = Bitmap::zeroed(&ctx, 10).unwrap();
        let b = Bitmap::zeroed(&ctx, 20).unwrap();
        let _ = combine(&ctx, &a, &b, BitmapCombine::And);
    }
}
