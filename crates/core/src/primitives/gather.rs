//! The parallel gather primitive (paper §4.1.2, following He et al.).
//!
//! `output[i] = values[indices[i]]` — the core of the projection / left
//! fetch join operator and of every "reorder a column by a permutation"
//! step (sorting, result materialisation).
//!
//! The index column may carry a *deferred* length (a selection that has not
//! been counted on the host): the kernel resolves the actual element count
//! from the device counter at flush time and the output column inherits the
//! same deferred length, so the pipeline stays sync-free.

use crate::context::{DevColumn, DevWord, LenSource, OcelotContext, Oid};
use ocelot_kernel::{
    Buffer, BufferAccess, Kernel, KernelAccesses, KernelCost, LaunchConfig, Result, WorkGroupCtx,
};
use std::sync::Arc;

/// The gather kernel: one logical invocation per output element.
struct GatherKernel {
    values: Buffer,
    indices: Buffer,
    output: Buffer,
    n: LenSource,
}

impl Kernel for GatherKernel {
    fn name(&self) -> &str {
        "gather"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        // A deferred count resolves here, at flush time; entries past `n`
        // hold garbage and must not be dereferenced as indices.
        let n = self.n.get();
        let values = self.values.as_words();
        let indices = self.indices.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                let end = range.end.min(n);
                let start = range.start.min(end);
                if start >= end {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of the
                // output exclusively to this item within this phase.
                let out = unsafe { self.output.chunk_mut(start, end) };
                for (o, &position) in out.iter_mut().zip(&indices[start..end]) {
                    *o = values[position as usize];
                }
            } else {
                // Strided/coalesced pattern: store through a one-word
                // tier-2 chunk per element — the strided assignment gives
                // each index to exactly one work-item, so the chunks are
                // pairwise disjoint.
                for idx in assigned {
                    if idx >= n {
                        continue;
                    }
                    let position = indices[idx] as usize;
                    // SAFETY: index `idx` is owned by this item alone
                    // within this phase (disjoint one-word chunks).
                    unsafe { self.output.chunk_mut(idx, idx + 1)[0] = values[position] };
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        // Two reads (index + value) and one write per element.
        KernelCost::new((launch.n as u64) * 8, (launch.n as u64) * 4, launch.n as u64, 0)
    }
    fn declared_accesses(&self, _launch: &LaunchConfig) -> Option<KernelAccesses> {
        Some(KernelAccesses::of(vec![
            BufferAccess::slice_read(&self.values, 0..self.values.len()),
            BufferAccess::slice_read(&self.indices, 0..self.indices.len()),
            BufferAccess::slice_write(&self.output, 0..self.output.len()),
        ]))
    }
}

/// Gathers `values[indices[i]]` for every `i`. The index column holds OIDs;
/// the output column carries the value type and inherits the index column's
/// length — including a deferred one, which keeps chained pipelines lazy.
pub fn gather<T: DevWord>(
    ctx: &OcelotContext,
    values: &DevColumn<T>,
    indices: &DevColumn<Oid>,
) -> Result<DevColumn<T>> {
    let cap = indices.cap();
    let output = ctx.alloc_uninit(cap.max(1), "gather_output")?;
    if cap == 0 {
        return DevColumn::new(output, 0);
    }
    let mut wait = ctx.wait_for(values);
    wait.extend(ctx.wait_for(indices));
    let event = ctx.queue().enqueue_kernel(
        Arc::new(GatherKernel {
            values: values.buffer.clone(),
            indices: indices.buffer.clone(),
            output: output.clone(),
            n: indices.len_source(),
        }),
        ctx.launch(cap),
        &wait,
    )?;
    ctx.memory().record_producer(&output, event);
    ctx.memory().record_consumer(&values.buffer, event);
    ctx.memory().record_consumer(&indices.buffer, event);
    DevColumn::with_len(output, indices.col_len().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;

    #[test]
    fn gathers_on_all_devices() {
        let values: Vec<i32> = (0..1000).map(|i| i * 3).collect();
        let indices: Vec<u32> = (0..500).map(|i| (i * 7) % 1000).collect();
        let expected: Vec<i32> = indices.iter().map(|&i| values[i as usize]).collect();
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let v = ctx.upload_i32(&values, "values").unwrap();
            let idx = ctx.upload_u32(&indices, "indices").unwrap();
            let out = gather(&ctx, &v, &idx).unwrap();
            assert_eq!(out.read(&ctx).unwrap(), expected);
        }
    }

    #[test]
    fn float_payloads_survive_bit_exact() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_f32(&[0.5, -1.25, 3.75], "values").unwrap();
        let idx = ctx.upload_u32(&[2, 0, 1, 2], "indices").unwrap();
        let out = gather(&ctx, &v, &idx).unwrap();
        assert_eq!(out.read(&ctx).unwrap(), vec![3.75, 0.5, -1.25, 3.75]);
    }

    #[test]
    fn gather_over_deferred_indices() {
        // Indices column with a device-resident count: only the first
        // `count` entries are valid (the rest are poison out-of-bounds
        // values the kernel must not dereference).
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let v = ctx.upload_i32(&[10, 20, 30, 40], "values").unwrap();
            let raw = ctx.upload_u32(&[3, 1, u32::MAX, u32::MAX], "indices").unwrap();
            let counter = ctx.alloc(1, "count").unwrap();
            counter.set_u32(0, 2);
            ctx.queue().enqueue_write(&counter, &[]).unwrap();
            let deferred = DevColumn::<Oid>::deferred(raw.buffer.clone(), counter, 4).unwrap();
            let out = gather(&ctx, &v, &deferred).unwrap();
            assert!(out.is_deferred());
            assert_eq!(out.read(&ctx).unwrap(), vec![40, 20]);
        }
    }

    #[test]
    fn empty_index_list() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_i32(&[1, 2, 3], "values").unwrap();
        let idx = ctx.upload_u32(&[], "indices").unwrap();
        let out = gather(&ctx, &v, &idx).unwrap();
        assert_eq!(out.host_len(), Some(0));
        assert!(out.read(&ctx).unwrap().is_empty());
    }
}
