//! The parallel gather primitive (paper §4.1.2, following He et al.).
//!
//! `output[i] = values[indices[i]]` — the core of the projection / left
//! fetch join operator and of every "reorder a column by a permutation"
//! step (sorting, result materialisation).

use crate::context::{DevColumn, OcelotContext};
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

/// The gather kernel: one logical invocation per output element.
struct GatherKernel {
    values: Buffer,
    indices: Buffer,
    output: Buffer,
}

impl Kernel for GatherKernel {
    fn name(&self) -> &str {
        "gather"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let values = self.values.as_words();
        let indices = self.indices.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            if let Some(range) = assigned.as_range() {
                if range.is_empty() {
                    continue;
                }
                // SAFETY: the contiguous pattern assigns `range` of the
                // output exclusively to this item within this phase.
                let out = unsafe { self.output.chunk_mut(range.start, range.end) };
                for (o, &position) in out.iter_mut().zip(&indices[range]) {
                    *o = values[position as usize];
                }
            } else {
                // Strided/coalesced pattern: indices are not a slice, but
                // the reads still avoid per-element atomic loads.
                let output = self.output.cells();
                for idx in assigned {
                    let position = indices[idx] as usize;
                    output[idx].store(values[position], std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        // Two reads (index + value) and one write per element.
        KernelCost::new((launch.n as u64) * 8, (launch.n as u64) * 4, launch.n as u64, 0)
    }
}

/// Gathers `values[indices[i]]` for every `i`. The index column holds OIDs
/// (`u32`); the value column is untyped 32-bit words, so the same call
/// serves integer, float and OID columns.
pub fn gather(ctx: &OcelotContext, values: &DevColumn, indices: &DevColumn) -> Result<DevColumn> {
    let n = indices.len;
    let output = ctx.alloc_uninit(n.max(1), "gather_output")?;
    if n == 0 {
        return Ok(DevColumn::new(output, 0));
    }
    let mut wait = ctx.memory().wait_for_read(&values.buffer);
    wait.extend(ctx.memory().wait_for_read(&indices.buffer));
    let event = ctx.queue().enqueue_kernel(
        Arc::new(GatherKernel {
            values: values.buffer.clone(),
            indices: indices.buffer.clone(),
            output: output.clone(),
        }),
        ctx.launch(n),
        &wait,
    )?;
    ctx.memory().record_producer(&output, event);
    ctx.memory().record_consumer(&values.buffer, event);
    ctx.memory().record_consumer(&indices.buffer, event);
    Ok(DevColumn::new(output, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;

    #[test]
    fn gathers_on_all_devices() {
        let values: Vec<i32> = (0..1000).map(|i| i * 3).collect();
        let indices: Vec<u32> = (0..500).map(|i| (i * 7) % 1000).collect();
        let expected: Vec<i32> = indices.iter().map(|&i| values[i as usize]).collect();
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let v = ctx.upload_i32(&values, "values").unwrap();
            let idx = ctx.upload_u32(&indices, "indices").unwrap();
            let out = gather(&ctx, &v, &idx).unwrap();
            assert_eq!(ctx.download_i32(&out).unwrap(), expected);
        }
    }

    #[test]
    fn float_payloads_survive_bit_exact() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_f32(&[0.5, -1.25, 3.75], "values").unwrap();
        let idx = ctx.upload_u32(&[2, 0, 1, 2], "indices").unwrap();
        let out = gather(&ctx, &v, &idx).unwrap();
        assert_eq!(ctx.download_f32(&out).unwrap(), vec![3.75, 0.5, -1.25, 3.75]);
    }

    #[test]
    fn empty_index_list() {
        let ctx = OcelotContext::cpu();
        let v = ctx.upload_i32(&[1, 2, 3], "values").unwrap();
        let idx = ctx.upload_u32(&[], "indices").unwrap();
        let out = gather(&ctx, &v, &idx).unwrap();
        assert_eq!(out.len, 0);
        assert!(ctx.download_i32(&out).unwrap().is_empty());
    }
}
