//! Data-parallel primitives the Ocelot operators are composed of.
//!
//! Every primitive is itself written against the kernel programming model,
//! so the operator layer never contains device-specific code:
//!
//! * [`prefix_sum`] — exclusive scans (the building block of every
//!   "unknown result size" operator, paper §4.1.2/§4.1.5),
//! * [`gather`] — the parallel gather used by projections (paper §4.1.2),
//! * [`reduce`] — hierarchical reductions for ungrouped aggregation
//!   (paper §4.1.7),
//! * [`bitmap`] — the bitmap representation of selection results and the
//!   bit-wise combination of predicate bitmaps (paper §4.1.1).

pub mod bitmap;
pub mod gather;
pub mod prefix_sum;
pub mod reduce;
