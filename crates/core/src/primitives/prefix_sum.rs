//! Exclusive prefix sums (scans).
//!
//! The scan is the workhorse behind every operator whose result size is not
//! known upfront: bitmap materialisation, the two-step join output scheme,
//! radix-sort offsets and sorted-input grouping all compute per-work-item
//! counts, scan them to obtain unique write offsets, and then write without
//! synchronisation (paper §4.1.2, §4.1.5, citing Sengupta et al.'s scan
//! primitives).
//!
//! The total of the scanned input is returned as a deferred
//! [`DevScalar<u32>`] — **no flush happens here**. Consumers that need the
//! total to size an output (bitmap materialisation, join compaction) keep it
//! on the device: they allocate at the capacity bound and attach the total
//! as the result column's deferred length, so a whole
//! select→scan→write pipeline synchronises only at its final read.
//!
//! The implementation is the classic three-phase scheme: (1) every work-item
//! reduces its assigned slice to a partial sum, (2) the per-item partials —
//! a tiny array of `num_groups × group_size` values — are scanned by a
//! single work-item, (3) every work-item rescans its slice, adding its
//! partial offset.
//!
//! Work-items always walk *contiguous* slices here (via
//! [`ocelot_kernel::WorkItem::chunk_bounds`]) independent of the device's
//! preferred access pattern: a scan is order-sensitive, so the strided
//! interleaving used for coalesced reads would compute prefixes in the wrong
//! element order.

use crate::context::{DevColumn, DevScalar, OcelotContext};
use ocelot_kernel::{Kernel, KernelCost, KernelError, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

/// Phase 1: per-work-item partial sums.
struct PartialSumKernel {
    input: ocelot_kernel::Buffer,
    partials: ocelot_kernel::Buffer,
    n: usize,
}

impl Kernel for PartialSumKernel {
    fn name(&self) -> &str {
        "scan_partial_sums"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let input = self.input.as_words();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            let sum = input[start..end].iter().fold(0u32, |acc, &v| acc.wrapping_add(v));
            self.partials.set_u32(item.global_id, sum);
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 4, launch.total_items() as u64 * 4, launch.n as u64, 0)
    }
}

/// Phase 2: scan the per-item partials (single work-item — the partial array
/// has only `total_items` entries).
struct ScanPartialsKernel {
    partials: ocelot_kernel::Buffer,
    total: ocelot_kernel::Buffer,
    count: usize,
}

impl Kernel for ScanPartialsKernel {
    fn name(&self) -> &str {
        "scan_partials"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        if group.group_id() != 0 {
            return;
        }
        // SAFETY: only group 0 touches the partials in this phase, and the
        // producing phase is ordered before it by the kernel's wait-list.
        let partials = unsafe { self.partials.chunk_mut(0, self.count) };
        let mut running: u32 = 0;
        for value in partials.iter_mut() {
            let next = running.wrapping_add(*value);
            *value = running;
            running = next;
        }
        self.total.set_u32(0, running);
    }
    fn cost(&self, _launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(self.count as u64 * 4, self.count as u64 * 4, self.count as u64, 0)
    }
}

/// Phase 3: every work-item rewalks its slice writing the exclusive prefix.
struct WritePrefixKernel {
    input: ocelot_kernel::Buffer,
    partials: ocelot_kernel::Buffer,
    output: ocelot_kernel::Buffer,
    n: usize,
}

impl Kernel for WritePrefixKernel {
    fn name(&self) -> &str {
        "scan_write_prefix"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        let input = self.input.as_words();
        for item in group.items() {
            let (start, end) = item.chunk_bounds(self.n);
            if start >= end {
                continue;
            }
            // SAFETY: chunk_bounds assigns `start..end` of the output
            // exclusively to this item within this phase.
            let out = unsafe { self.output.chunk_mut(start, end) };
            let values = &input[start..end];
            let mut running = self.partials.get_u32(item.global_id);
            // Block-prefix form with pairwise partial sums: the serial carry
            // chain is one tree reduction + one add per 8-element block
            // (instead of one add per element), and the eight outputs are
            // independent adds the CPU can issue in parallel.
            let mut out_blocks = out.chunks_exact_mut(8);
            let mut val_blocks = values.chunks_exact(8);
            for (o, v) in (&mut out_blocks).zip(&mut val_blocks) {
                let s01 = v[0].wrapping_add(v[1]);
                let s23 = v[2].wrapping_add(v[3]);
                let s45 = v[4].wrapping_add(v[5]);
                let s67 = v[6].wrapping_add(v[7]);
                let s0123 = s01.wrapping_add(s23);
                let mid = running.wrapping_add(s0123);
                o[0] = running;
                o[1] = running.wrapping_add(v[0]);
                o[2] = running.wrapping_add(s01);
                o[3] = running.wrapping_add(s01).wrapping_add(v[2]);
                o[4] = mid;
                o[5] = mid.wrapping_add(v[4]);
                o[6] = mid.wrapping_add(s45);
                o[7] = mid.wrapping_add(s45).wrapping_add(v[6]);
                running = mid.wrapping_add(s45).wrapping_add(s67);
            }
            for (o, &value) in out_blocks.into_remainder().iter_mut().zip(val_blocks.remainder()) {
                *o = running;
                running = running.wrapping_add(value);
            }
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::streaming(launch.n)
    }
}

/// Computes the exclusive prefix sum of a `u32` column. Returns the scanned
/// column and the total as a **deferred** [`DevScalar<u32>`] — nothing is
/// flushed; producers of known size stay entirely on the device.
///
/// The input's length must be host-known (scan inputs are per-item count
/// tables, whose size is fixed by the launch configuration).
pub fn exclusive_scan_u32(
    ctx: &OcelotContext,
    input: &DevColumn<u32>,
) -> Result<(DevColumn<u32>, DevScalar<u32>)> {
    let n = input.host_len().ok_or_else(|| {
        KernelError::Internal("exclusive_scan_u32: input length must be host-known".into())
    })?;
    let output = ctx.alloc_uninit(n.max(1), "scan_output")?;
    if n == 0 {
        return Ok((DevColumn::new(output, 0)?, DevScalar::constant(ctx, 0u32)?));
    }
    let launch = ctx.launch(n);
    let partials = ctx.alloc_uninit(launch.total_items(), "scan_partials")?;
    let total = ctx.alloc(1, "scan_total")?;

    let queue = ctx.queue();
    let wait = ctx.wait_for(input);
    let e1 = queue.enqueue_kernel(
        Arc::new(PartialSumKernel { input: input.buffer.clone(), partials: partials.clone(), n }),
        launch.clone(),
        &wait,
    )?;
    let e2 = queue.enqueue_kernel(
        Arc::new(ScanPartialsKernel {
            partials: partials.clone(),
            total: total.clone(),
            count: launch.total_items(),
        }),
        ctx.launch(launch.total_items()),
        &[e1],
    )?;
    let e3 = queue.enqueue_kernel(
        Arc::new(WritePrefixKernel {
            input: input.buffer.clone(),
            partials,
            output: output.clone(),
            n,
        }),
        launch,
        &[e2],
    )?;
    ctx.memory().record_producer(&output, e3);
    ctx.memory().record_producer(&total, e2);
    ctx.memory().record_consumer(&input.buffer, e3);
    Ok((DevColumn::new(output, n)?, DevScalar::new(total, Some(e2))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;

    fn scan_on(ctx: &OcelotContext, values: &[u32]) -> (Vec<u32>, u32) {
        let input = ctx.upload_u32(values, "input").unwrap();
        let (output, total) = exclusive_scan_u32(ctx, &input).unwrap();
        (output.read(ctx).unwrap(), total.get(ctx).unwrap())
    }

    fn reference_scan(values: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(values.len());
        let mut running = 0u32;
        for v in values {
            out.push(running);
            running = running.wrapping_add(*v);
        }
        (out, running)
    }

    #[test]
    fn matches_reference_on_all_devices() {
        let values: Vec<u32> = (0..5_000).map(|i| (i * 7 + 3) % 11).collect();
        let (expected, expected_total) = reference_scan(&values);
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let (got, total) = scan_on(&ctx, &values);
            assert_eq!(got, expected);
            assert_eq!(total, expected_total);
        }
    }

    #[test]
    fn scan_is_deferred_until_total_get() {
        let ctx = OcelotContext::cpu();
        let values: Vec<u32> = (0..10_000).map(|i| i % 5).collect();
        let input = ctx.upload_u32(&values, "input").unwrap();
        let flushes_before = ctx.queue().flush_count();
        let (_output, total) = exclusive_scan_u32(&ctx, &input).unwrap();
        assert_eq!(
            ctx.queue().flush_count(),
            flushes_before,
            "exclusive_scan_u32 must not flush the queue"
        );
        assert!(ctx.queue().pending_ops() > 0);
        assert_eq!(total.get(&ctx).unwrap(), values.iter().sum::<u32>());
        assert_eq!(ctx.queue().flush_count(), flushes_before + 1, "one flush, at .get()");
    }

    #[test]
    fn handles_small_and_empty_inputs() {
        let ctx = OcelotContext::cpu();
        assert_eq!(scan_on(&ctx, &[]), (vec![], 0));
        assert_eq!(scan_on(&ctx, &[5]), (vec![0], 5));
        assert_eq!(scan_on(&ctx, &[1, 1, 1]), (vec![0, 1, 2], 3));
    }

    #[test]
    fn all_zero_input() {
        let ctx = OcelotContext::cpu();
        let (out, total) = scan_on(&ctx, &[0; 100]);
        assert_eq!(out, vec![0; 100]);
        assert_eq!(total, 0);
    }

    #[test]
    fn input_not_multiple_of_items() {
        let ctx = OcelotContext::cpu();
        let values: Vec<u32> = (0..1_013).map(|i| i % 3).collect();
        let (expected, expected_total) = reference_scan(&values);
        let (got, total) = scan_on(&ctx, &values);
        assert_eq!(got, expected);
        assert_eq!(total, expected_total);
    }
}
