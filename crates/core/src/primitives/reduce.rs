//! Hierarchical parallel reductions for ungrouped aggregation
//! (paper §4.1.7, "implemented using a parallel binary reduction strategy").
//!
//! Phase 1: every work-item reduces its assigned slice into a private
//! accumulator and writes it to a partials buffer. Phase 2: a single
//! work-item reduces the partials (there are only `num_groups × group_size`
//! of them). The same two kernels serve SUM/MIN/MAX over `i32` and `f32` by
//! switching on a [`ReduceOp`] tag, exactly like an OpenCL kernel would
//! switch on a preprocessor constant.
//!
//! Every reduction returns a **deferred** [`DevScalar`]: the result stays in
//! a one-word device buffer until the caller's `.get()`, which is the
//! pipeline's only flush. Inputs with deferred lengths (e.g. a gather over a
//! not-yet-counted selection) are supported — the kernels resolve the actual
//! element count from the [`LenSource`] counter at flush time.

use crate::context::{DevColumn, DevScalar, DevWord, LenSource, OcelotContext};
use ocelot_kernel::{Buffer, Kernel, KernelCost, LaunchConfig, Result, WorkGroupCtx};
use std::sync::Arc;

/// Which reduction to perform and over which element type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of `f32` values.
    SumF32,
    /// Minimum of `f32` values.
    MinF32,
    /// Maximum of `f32` values.
    MaxF32,
    /// Sum of `i32` values (wrapping; bit-identical to unsigned wrapping
    /// sums, so it also serves `u32` counts).
    SumI32,
    /// Minimum of `i32` values.
    MinI32,
    /// Maximum of `i32` values.
    MaxI32,
}

impl ReduceOp {
    /// The identity element of the reduction, as a raw 32-bit word.
    fn identity_word(self) -> u32 {
        match self {
            ReduceOp::SumF32 => 0f32.to_bits(),
            ReduceOp::MinF32 => f32::INFINITY.to_bits(),
            ReduceOp::MaxF32 => f32::NEG_INFINITY.to_bits(),
            ReduceOp::SumI32 => 0,
            ReduceOp::MinI32 => i32::MAX as u32,
            ReduceOp::MaxI32 => i32::MIN as u32,
        }
    }

    /// Reduces a word slice onto `acc` with a monomorphised inner loop: the
    /// operation dispatch happens once per slice, not once per element, so
    /// the compiler can keep the accumulator in a register and vectorise.
    fn reduce_slice(self, acc: u32, words: &[u32]) -> u32 {
        match self {
            ReduceOp::SumF32 => {
                let mut sum = f32::from_bits(acc);
                for &w in words {
                    sum += f32::from_bits(w);
                }
                sum.to_bits()
            }
            ReduceOp::MinF32 => {
                let mut min = f32::from_bits(acc);
                for &w in words {
                    min = min.min(f32::from_bits(w));
                }
                min.to_bits()
            }
            ReduceOp::MaxF32 => {
                let mut max = f32::from_bits(acc);
                for &w in words {
                    max = max.max(f32::from_bits(w));
                }
                max.to_bits()
            }
            ReduceOp::SumI32 => {
                let mut sum = acc as i32;
                for &w in words {
                    sum = sum.wrapping_add(w as i32);
                }
                sum as u32
            }
            ReduceOp::MinI32 => {
                let mut min = acc as i32;
                for &w in words {
                    min = min.min(w as i32);
                }
                min as u32
            }
            ReduceOp::MaxI32 => {
                let mut max = acc as i32;
                for &w in words {
                    max = max.max(w as i32);
                }
                max as u32
            }
        }
    }

    /// Combines two raw words according to the operation.
    fn combine(self, a: u32, b: u32) -> u32 {
        match self {
            ReduceOp::SumF32 => (f32::from_bits(a) + f32::from_bits(b)).to_bits(),
            ReduceOp::MinF32 => f32::from_bits(a).min(f32::from_bits(b)).to_bits(),
            ReduceOp::MaxF32 => f32::from_bits(a).max(f32::from_bits(b)).to_bits(),
            ReduceOp::SumI32 => (a as i32).wrapping_add(b as i32) as u32,
            ReduceOp::MinI32 => (a as i32).min(b as i32) as u32,
            ReduceOp::MaxI32 => (a as i32).max(b as i32) as u32,
        }
    }
}

struct PartialReduceKernel {
    input: Buffer,
    partials: Buffer,
    op: ReduceOp,
    n: LenSource,
}

impl Kernel for PartialReduceKernel {
    fn name(&self) -> &str {
        "reduce_partials"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        // Deferred lengths resolve here, at flush time (in-order queue: the
        // producing kernel has already run).
        let n = self.n.get();
        let input = self.input.as_words();
        for item in group.items() {
            let assigned = item.assigned();
            let acc = if let Some(range) = assigned.as_range() {
                let end = range.end.min(n);
                let start = range.start.min(end);
                self.op.reduce_slice(self.op.identity_word(), &input[start..end])
            } else {
                let mut acc = self.op.identity_word();
                for idx in assigned {
                    if idx < n {
                        acc = self.op.combine(acc, input[idx]);
                    }
                }
                acc
            };
            self.partials.set_u32(item.global_id, acc);
        }
    }
    fn cost(&self, launch: &LaunchConfig) -> KernelCost {
        KernelCost::new((launch.n as u64) * 4, launch.total_items() as u64 * 4, launch.n as u64, 0)
    }
}

struct FinalReduceKernel {
    partials: Buffer,
    output: Buffer,
    count: usize,
    op: ReduceOp,
}

impl Kernel for FinalReduceKernel {
    fn name(&self) -> &str {
        "reduce_final"
    }
    fn run_group(&self, group: &mut WorkGroupCtx) {
        if group.group_id() != 0 {
            return;
        }
        let partials = self.partials.chunk(0, self.count);
        let acc = self.op.reduce_slice(self.op.identity_word(), partials);
        self.output.set_u32(0, acc);
    }
    fn cost(&self, _launch: &LaunchConfig) -> KernelCost {
        KernelCost::new(self.count as u64 * 4, 4, self.count as u64, 0)
    }
}

/// Reduces a column to a deferred one-word scalar. Empty columns yield the
/// operation's identity. Never flushes the queue.
pub fn reduce<T: DevWord>(
    ctx: &OcelotContext,
    input: &DevColumn<T>,
    op: ReduceOp,
) -> Result<DevScalar<T>> {
    if input.cap() == 0 {
        return DevScalar::constant(ctx, T::from_word(op.identity_word()));
    }
    let launch = ctx.launch(input.cap());
    let partials = ctx.alloc_uninit(launch.total_items(), "reduce_partials")?;
    let output = ctx.alloc(1, "reduce_output")?;
    let queue = ctx.queue();
    let wait = ctx.wait_for(input);
    let e1 = queue.enqueue_kernel(
        Arc::new(PartialReduceKernel {
            input: input.buffer.clone(),
            partials: partials.clone(),
            op,
            n: input.len_source(),
        }),
        launch.clone(),
        &wait,
    )?;
    let e2 = queue.enqueue_kernel(
        Arc::new(FinalReduceKernel {
            partials,
            output: output.clone(),
            count: launch.total_items(),
            op,
        }),
        ctx.launch(launch.total_items()),
        &[e1],
    )?;
    ctx.memory().record_consumer(&input.buffer, e2);
    ctx.memory().record_producer(&output, e2);
    Ok(DevScalar::new(output, Some(e2)))
}

/// Sum of a float column.
pub fn sum_f32(ctx: &OcelotContext, input: &DevColumn<f32>) -> Result<DevScalar<f32>> {
    reduce(ctx, input, ReduceOp::SumF32)
}

/// Minimum of a float column (`+∞` for an empty column).
pub fn min_f32(ctx: &OcelotContext, input: &DevColumn<f32>) -> Result<DevScalar<f32>> {
    reduce(ctx, input, ReduceOp::MinF32)
}

/// Maximum of a float column (`-∞` for an empty column).
pub fn max_f32(ctx: &OcelotContext, input: &DevColumn<f32>) -> Result<DevScalar<f32>> {
    reduce(ctx, input, ReduceOp::MaxF32)
}

/// Sum of an integer column (wrapping, like the four-byte engine type).
pub fn sum_i32(ctx: &OcelotContext, input: &DevColumn<i32>) -> Result<DevScalar<i32>> {
    reduce(ctx, input, ReduceOp::SumI32)
}

/// Minimum of an integer column (`i32::MAX` for an empty column).
pub fn min_i32(ctx: &OcelotContext, input: &DevColumn<i32>) -> Result<DevScalar<i32>> {
    reduce(ctx, input, ReduceOp::MinI32)
}

/// Maximum of an integer column (`i32::MIN` for an empty column).
pub fn max_i32(ctx: &OcelotContext, input: &DevColumn<i32>) -> Result<DevScalar<i32>> {
    reduce(ctx, input, ReduceOp::MaxI32)
}

/// Sum of an OID/count column. Unsigned and two's-complement wrapping sums
/// are bit-identical, so this reuses the `SumI32` kernel path.
pub fn sum_u32(ctx: &OcelotContext, input: &DevColumn<u32>) -> Result<DevScalar<u32>> {
    reduce(ctx, input, ReduceOp::SumI32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::OcelotContext;

    #[test]
    fn integer_reductions_match_reference_on_all_devices() {
        let values: Vec<i32> = (0..10_000).map(|i| ((i * 37 + 11) % 2001) - 1000).collect();
        for ctx in [OcelotContext::cpu_sequential(), OcelotContext::cpu(), OcelotContext::gpu()] {
            let col = ctx.upload_i32(&values, "v").unwrap();
            assert_eq!(sum_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), values.iter().sum::<i32>());
            assert_eq!(
                min_i32(&ctx, &col).unwrap().get(&ctx).unwrap(),
                *values.iter().min().unwrap()
            );
            assert_eq!(
                max_i32(&ctx, &col).unwrap().get(&ctx).unwrap(),
                *values.iter().max().unwrap()
            );
        }
    }

    #[test]
    fn float_reductions() {
        let ctx = OcelotContext::cpu();
        let values: Vec<f32> = (0..5_000).map(|i| ((i % 101) as f32) * 0.25).collect();
        let col = ctx.upload_f32(&values, "v").unwrap();
        let total = sum_f32(&ctx, &col).unwrap().get(&ctx).unwrap();
        let expected: f32 = values.iter().sum();
        assert!((total - expected).abs() / expected < 1e-3, "{total} vs {expected}");
        assert_eq!(min_f32(&ctx, &col).unwrap().get(&ctx).unwrap(), 0.0);
        assert_eq!(max_f32(&ctx, &col).unwrap().get(&ctx).unwrap(), 25.0);
    }

    #[test]
    fn reductions_are_deferred_until_get() {
        let ctx = OcelotContext::cpu();
        let values: Vec<i32> = (0..50_000).collect();
        let col = ctx.upload_i32(&values, "v").unwrap();
        let flushes = ctx.queue().flush_count();
        let total = sum_i32(&ctx, &col).unwrap();
        assert_eq!(ctx.queue().flush_count(), flushes, "reduce must not flush");
        assert_eq!(total.get(&ctx).unwrap(), values.iter().sum::<i32>());
        assert_eq!(ctx.queue().flush_count(), flushes + 1);
    }

    #[test]
    fn empty_inputs_return_identities() {
        let ctx = OcelotContext::cpu();
        let col = ctx.upload_i32(&[], "v").unwrap();
        assert_eq!(sum_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), 0);
        assert_eq!(min_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), i32::MAX);
        assert_eq!(max_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), i32::MIN);
        let fcol = ctx.upload_f32(&[], "v").unwrap();
        assert_eq!(min_f32(&ctx, &fcol).unwrap().get(&ctx).unwrap(), f32::INFINITY);
    }

    #[test]
    fn single_element() {
        let ctx = OcelotContext::gpu();
        let col = ctx.upload_i32(&[-7], "v").unwrap();
        assert_eq!(sum_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), -7);
        assert_eq!(min_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), -7);
        assert_eq!(max_i32(&ctx, &col).unwrap().get(&ctx).unwrap(), -7);
    }

    #[test]
    fn sum_u32_over_counts() {
        let ctx = OcelotContext::cpu();
        let values: Vec<u32> = (0..1_000).map(|i| i % 7).collect();
        let col = ctx.upload_u32(&values, "v").unwrap();
        assert_eq!(sum_u32(&ctx, &col).unwrap().get(&ctx).unwrap(), values.iter().sum::<u32>());
    }
}
