//! Typed fault payloads for the engine's unified recovery protocol.
//!
//! The Backend operator surface in `ocelot-engine` is deliberately
//! infallible (operators return values, not `Result`s — the paper's MAL
//! operators have no error channel either), so device faults travel from
//! the kernel runtime to the plan layer the same way
//! [`crate::cache::DeviceOom`] does: as **typed panic payloads** raised
//! with `std::panic::panic_any` and downcast by `PlanRun`'s
//! `catch_unwind`. This module defines the payloads for the fault classes
//! the PR 6 fault-injection layer introduces:
//!
//! * [`TransientFault`] — a retryable hiccup
//!   ([`ocelot_kernel::KernelError::TransientFault`]): the recovery
//!   protocol drops the failed node's outputs and retries it after a
//!   deterministic backoff step, sharing the restart budget with the
//!   OOM path.
//! * [`DeviceLostFault`] — sticky device loss
//!   ([`ocelot_kernel::KernelError::DeviceLost`]): no node retry can
//!   succeed, so the whole plan unwinds; the session/scheduler invalidates
//!   the device's cached columns and pooled buffers and fails the query
//!   over to a fallback backend.
//!
//! Payloads are plain `Copy` structs: catch sites match on the type, and
//! anything that is *not* one of these typed payloads (or `DeviceOom`)
//! keeps unwinding — a genuine bug must never be swallowed by recovery.

use ocelot_kernel::FaultSite;

/// Typed payload of a transient device fault travelling from an operator
/// to the plan layer's retry protocol (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFault {
    /// The site the fault fired at.
    pub site: FaultSite,
    /// The fault plan's global operation index at firing time.
    pub op: u64,
}

/// Typed payload of a device loss travelling from an operator to the
/// session/scheduler failover protocol (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceLostFault;
