//! Static plan verification — pre-execution analysis over [`Plan`] DAGs.
//!
//! The executor trusts the [`PlanBuilder`](crate::plan::PlanBuilder)'s SSA
//! construction, but plans also arrive from the MAL compiler, from the plan
//! cache and (in tests and tools) from raw node lists. This module checks a
//! plan *before* a single kernel is enqueued and reports every violation as
//! a typed [`PlanDiagnostic`] — it never panics and never executes anything.
//!
//! # What is verified
//!
//! | Check | Diagnostic | Contract |
//! |-------|-----------|----------|
//! | def-before-use | [`PlanDiagnostic::UseBeforeDef`] / [`PlanDiagnostic::UndefinedInput`] | every input register is written by an **earlier** node |
//! | single assignment | [`PlanDiagnostic::DoubleDefine`] | every register is written by exactly one node (SSA) |
//! | input arity | [`PlanDiagnostic::InputArity`] | operand count matches the operator signature |
//! | output arity | [`PlanDiagnostic::OutputArity`] | result count matches the operator signature |
//! | operand kinds | [`PlanDiagnostic::InputKind`] | column/scalar/grouping kinds agree with the signature table |
//! | register liveness | [`PlanDiagnostic::LastUseMismatch`] | the recorded last-use map equals the true dataflow last use — the executor frees registers and [`Plan::estimate_register_footprint`] sizes live sets from this map, so a stale entry either leaks device memory or frees a register that is still read |
//!
//! # Flush-boundary analysis
//!
//! [`verify`] additionally computes a conservative static bound on the
//! number of *effective* queue flushes the plan performs (a flush of an
//! empty queue does not count — see `ocelot_kernel::Queue::flush_count`).
//! Operators fall into three classes:
//!
//! * **Streaming** — enqueue kernels and return device handles without
//!   touching host values: binds, selections, maps, fetch, grouped
//!   aggregates over an existing grouping, and the deferred scalar sum.
//! * **Host-resolving** — internally resolve host values mid-plan (the
//!   "deliberate sync points" of the operator library): hash joins
//!   (monolithic and partitioned), semi/anti joins, grouping (its group
//!   count shapes the schema), sorts (host-side ping-pong schedule) and
//!   the OID-list union (host merge). Their internal flush count is
//!   data-dependent, so any plan containing one gets a
//!   [`FlushBound::DataDependent`] bound.
//! * **Boundary** — `sync` and `result` flush pending work exactly once
//!   and leave the queue empty.
//!
//! A plan built only from streaming and boundary operators gets a proven
//! [`FlushBound::AtMost`] bound: the number of boundary nodes that find
//! work pending. This statically proves the paper's Q6 one-flush property
//! (binds → selections → maps → sum → result ⇒ at most one flush) without
//! executing the plan. The bound models kernel-batch flushes on a
//! unified-memory device; on a simulated discrete device each `result`
//! node may add one transfer-only flush for the host copy-back.
//!
//! # Entry points
//!
//! [`verify`] is pure and always available; [`Session::verify_plan`]
//! (see `crate::session`) exposes it per session, and `Session::run` plus
//! `Scheduler` admission re-check every plan in debug builds.

use crate::plan::{Plan, PlanError, PlanNode, PlanOp, ValueKind, Var};
use std::collections::HashMap;
use std::fmt;

/// One verifier finding. Every variant names the node (by index in
/// [`Plan::nodes`] order) and operator it anchors to, so a rendered
/// diagnostic reads like a compiler error against the plan listing.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanDiagnostic {
    /// A node reads a register that only a **later** node writes — the
    /// node order is not a valid topological order of the dataflow.
    UseBeforeDef {
        /// Index of the offending node.
        node: usize,
        /// Operator name of the offending node.
        op: &'static str,
        /// The register read too early.
        var: Var,
        /// Index of the node that (later) defines the register.
        defined_at: usize,
    },
    /// A node reads a register no node in the plan ever writes.
    UndefinedInput {
        /// Index of the offending node.
        node: usize,
        /// Operator name of the offending node.
        op: &'static str,
        /// The dangling register.
        var: Var,
    },
    /// A register is written by two nodes — single assignment is violated,
    /// so "the producer of `var`" is ambiguous and last-use reclamation
    /// would free the first value while the second is still pending.
    DoubleDefine {
        /// Index of the second (offending) definition.
        node: usize,
        /// Operator name of the offending node.
        op: &'static str,
        /// The register defined twice.
        var: Var,
        /// Index of the first definition.
        first: usize,
    },
    /// A node's operand count does not match its operator signature.
    InputArity {
        /// Index of the offending node.
        node: usize,
        /// Operator name of the offending node.
        op: &'static str,
        /// Operands the node actually carries.
        found: usize,
        /// Human-readable operand count the signature requires.
        expected: &'static str,
    },
    /// A node's result count does not match its operator signature.
    OutputArity {
        /// Index of the offending node.
        node: usize,
        /// Operator name of the offending node.
        op: &'static str,
        /// Results the node actually carries.
        found: usize,
        /// Results the signature requires.
        expected: usize,
    },
    /// An operand holds a value of the wrong kind (e.g. a grouping fed to
    /// an element-wise map).
    InputKind {
        /// Index of the offending node.
        node: usize,
        /// Operator name of the offending node.
        op: &'static str,
        /// Position of the operand within the node's inputs.
        index: usize,
        /// The offending register.
        var: Var,
        /// The kind the signature requires.
        expected: ValueKind,
        /// The kind the register actually holds.
        found: ValueKind,
    },
    /// The plan's recorded last-use entry for a register disagrees with
    /// the true dataflow last use. The executor frees registers from this
    /// map and [`Plan::estimate_register_footprint`] sizes live sets from
    /// it, so a stale entry leaks device memory (recorded too late /
    /// missing) or frees a register that is still read (recorded too
    /// early).
    LastUseMismatch {
        /// The register with the inconsistent entry.
        var: Var,
        /// The entry the plan carries (`None` if absent).
        recorded: Option<usize>,
        /// The last node index that actually reads the register (`None`
        /// if nothing reads it).
        actual: Option<usize>,
    },
}

impl fmt::Display for PlanDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanDiagnostic::UseBeforeDef { node, op, var, defined_at } => write!(
                f,
                "node {node} ({op}): reads v{var} which is only defined by the later node \
                 {defined_at}"
            ),
            PlanDiagnostic::UndefinedInput { node, op, var } => {
                write!(f, "node {node} ({op}): reads v{var} which no node defines")
            }
            PlanDiagnostic::DoubleDefine { node, op, var, first } => write!(
                f,
                "node {node} ({op}): redefines v{var} already defined by node {first} \
                 (single assignment violated)"
            ),
            PlanDiagnostic::InputArity { node, op, found, expected } => {
                write!(f, "node {node} ({op}): {found} operand(s), signature requires {expected}")
            }
            PlanDiagnostic::OutputArity { node, op, found, expected } => write!(
                f,
                "node {node} ({op}): {found} result register(s), signature requires {expected}"
            ),
            PlanDiagnostic::InputKind { node, op, index, var, expected, found } => write!(
                f,
                "node {node} ({op}): operand {index} (v{var}) holds a {found}, expected a \
                 {expected}"
            ),
            PlanDiagnostic::LastUseMismatch { var, recorded, actual } => {
                let show = |value: &Option<usize>| match value {
                    Some(node) => format!("node {node}"),
                    None => "absent".to_string(),
                };
                write!(
                    f,
                    "liveness: v{var} last-use recorded as {} but the dataflow's last read is {}",
                    show(recorded),
                    show(actual)
                )
            }
        }
    }
}

/// Conservative static bound on the *effective* flushes a plan performs
/// (see the module docs for the operator classification and the
/// unified-memory scope of the bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushBound {
    /// The plan contains only streaming and boundary operators; it
    /// performs at most this many effective flushes.
    AtMost(usize),
    /// The plan contains host-resolving operators whose internal flush
    /// count depends on the data (hash-build retry loops, sort passes,
    /// partition schedules), so no static constant bounds it.
    DataDependent {
        /// Flushes attributable to `sync`/`result` boundary nodes.
        boundary: usize,
        /// Number of host-resolving nodes (each flushes at least once
        /// when work is pending, possibly more).
        host_resolving: usize,
    },
}

impl fmt::Display for FlushBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlushBound::AtMost(n) => write!(f, "at most {n} flush(es)"),
            FlushBound::DataDependent { boundary, host_resolving } => write!(
                f,
                "data-dependent ({host_resolving} host-resolving node(s) + {boundary} boundary \
                 flush(es))"
            ),
        }
    }
}

/// The outcome of [`verify`]: every diagnostic found plus the static
/// flush bound. Rendered with `Display` as one diagnostic per line.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Every violation found, in node order.
    pub diagnostics: Vec<PlanDiagnostic>,
    /// The static flush bound (meaningful when the plan is well-formed).
    pub flush_bound: FlushBound,
    /// Number of nodes inspected.
    pub nodes: usize,
}

impl VerifyReport {
    /// Whether the plan passed every check.
    pub fn is_ok(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            return write!(f, "plan ok: {} node(s), {}", self.nodes, self.flush_bound);
        }
        writeln!(f, "plan verification failed ({} finding(s)):", self.diagnostics.len())?;
        for diagnostic in &self.diagnostics {
            writeln!(f, "  {diagnostic}")?;
        }
        write!(f, "  flush bound: {}", self.flush_bound)
    }
}

/// Operand shape of one operator.
enum InputSig {
    /// Exactly these kinds, in operand order.
    Exact(&'static [ValueKind]),
    /// `[column]` or `[column, candidates]` — the optional candidate-list
    /// form every selection supports.
    Select,
    /// One or more key columns (`group_by`).
    Keys,
    /// Any number of registers of any kind (`sync`).
    AnyDefined,
    /// Zero or more columns/scalars — groupings are not materialisable
    /// (`result`).
    Results,
}

const COLUMN: ValueKind = ValueKind::Column;
const GROUP: ValueKind = ValueKind::Group;

/// How the operator interacts with the lazy queue (see module docs).
#[derive(PartialEq)]
enum FlushClass {
    Streaming,
    HostResolving,
    Boundary,
}

/// The operator signature table: operand shape, result kinds and flush
/// class. This is the verifier's single source of truth per operator;
/// `PlanBuilder::push_node` reuses the result kinds for raw-node plans.
fn signature(op: &PlanOp) -> (InputSig, &'static [ValueKind], FlushClass) {
    use FlushClass::{Boundary, HostResolving, Streaming};
    use InputSig::{AnyDefined, Exact, Keys, Results, Select};
    match op {
        PlanOp::Bind { .. } => (Exact(&[]), &[COLUMN], Streaming),
        PlanOp::SelectRangeI32 { .. }
        | PlanOp::SelectRangeF32 { .. }
        | PlanOp::SelectEqI32 { .. }
        | PlanOp::SelectNeI32 { .. } => (Select, &[COLUMN], Streaming),
        PlanOp::UnionOids => (Exact(&[COLUMN, COLUMN]), &[COLUMN], HostResolving),
        PlanOp::Fetch | PlanOp::MulF32 | PlanOp::AddF32 | PlanOp::SubF32 => {
            (Exact(&[COLUMN, COLUMN]), &[COLUMN], Streaming)
        }
        PlanOp::ConstMinusF32 { .. }
        | PlanOp::ConstPlusF32 { .. }
        | PlanOp::MulConstF32 { .. }
        | PlanOp::CastI32F32
        | PlanOp::ExtractYear => (Exact(&[COLUMN]), &[COLUMN], Streaming),
        PlanOp::PkFkJoin | PlanOp::PkFkJoinPartitioned { .. } => {
            (Exact(&[COLUMN, COLUMN]), &[COLUMN, COLUMN], HostResolving)
        }
        PlanOp::SemiJoin | PlanOp::AntiJoin => (Exact(&[COLUMN, COLUMN]), &[COLUMN], HostResolving),
        PlanOp::GroupBy => (Keys, &[GROUP], HostResolving),
        PlanOp::GroupReps => (Exact(&[GROUP]), &[COLUMN], Streaming),
        PlanOp::GroupedSumF32
        | PlanOp::GroupedMinF32
        | PlanOp::GroupedMaxF32
        | PlanOp::GroupedAvgF32 => (Exact(&[COLUMN, GROUP]), &[COLUMN], Streaming),
        PlanOp::GroupedCount => (Exact(&[GROUP]), &[COLUMN], Streaming),
        PlanOp::SortOrderI32 { .. } | PlanOp::SortOrderF32 { .. } => {
            (Exact(&[COLUMN]), &[COLUMN], HostResolving)
        }
        PlanOp::SumF32 => (Exact(&[COLUMN]), &[ValueKind::Scalar], Streaming),
        PlanOp::Sync => (AnyDefined, &[], Boundary),
        PlanOp::Result => (Results, &[], Boundary),
    }
}

/// Result kinds of an operator, for kind-assigning raw-node appends
/// (`PlanBuilder::push_node`).
pub(crate) fn output_kinds(op: &PlanOp) -> &'static [ValueKind] {
    signature(op).1
}

/// Verifies a plan (see module docs for the full check list) and computes
/// its static flush bound. Pure: reads the plan, executes nothing, never
/// panics — every violation becomes a [`PlanDiagnostic`].
pub fn verify(plan: &Plan) -> VerifyReport {
    let nodes = plan.nodes();
    let mut diagnostics = Vec::new();

    // Definition sites over the whole plan (for telling a use-before-def
    // apart from a genuinely dangling register), first-writer-wins.
    let mut first_def: HashMap<Var, usize> = HashMap::new();
    for (index, node) in nodes.iter().enumerate() {
        for out in &node.outputs {
            first_def.entry(*out).or_insert(index);
        }
    }

    // Forward walk: defined-so-far kinds, signature checks.
    let mut kinds: HashMap<Var, ValueKind> = HashMap::new();
    let mut defined_at: HashMap<Var, usize> = HashMap::new();
    for (index, node) in nodes.iter().enumerate() {
        let op = node.op.name();
        let (inputs_sig, outputs_sig, _) = signature(&node.op);

        // Expected operand kinds, or None when the arity itself is wrong.
        let expected: Option<Vec<ValueKind>> = match inputs_sig {
            InputSig::Exact(kinds) => {
                (node.inputs.len() == kinds.len()).then(|| kinds.to_vec()).or_else(|| {
                    diagnostics.push(PlanDiagnostic::InputArity {
                        node: index,
                        op,
                        found: node.inputs.len(),
                        expected: match kinds.len() {
                            0 => "0",
                            1 => "1",
                            _ => "2",
                        },
                    });
                    None
                })
            }
            InputSig::Select => matches!(node.inputs.len(), 1 | 2)
                .then(|| vec![COLUMN; node.inputs.len()])
                .or_else(|| {
                    diagnostics.push(PlanDiagnostic::InputArity {
                        node: index,
                        op,
                        found: node.inputs.len(),
                        expected: "1 or 2",
                    });
                    None
                }),
            InputSig::Keys => {
                (!node.inputs.is_empty()).then(|| vec![COLUMN; node.inputs.len()]).or_else(|| {
                    diagnostics.push(PlanDiagnostic::InputArity {
                        node: index,
                        op,
                        found: 0,
                        expected: "at least 1",
                    });
                    None
                })
            }
            // Kind checks for sync/result happen below, per operand.
            InputSig::AnyDefined | InputSig::Results => None,
        };

        for (position, var) in node.inputs.iter().enumerate() {
            match kinds.get(var) {
                None => match first_def.get(var) {
                    Some(later) => diagnostics.push(PlanDiagnostic::UseBeforeDef {
                        node: index,
                        op,
                        var: *var,
                        defined_at: *later,
                    }),
                    None => diagnostics.push(PlanDiagnostic::UndefinedInput {
                        node: index,
                        op,
                        var: *var,
                    }),
                },
                Some(found) => {
                    let want = match (&node.op, expected.as_ref()) {
                        // `result` materialises columns and scalars, never
                        // a grouping; a column stands in for "not a group"
                        // in the rendered diagnostic.
                        (PlanOp::Result, _) if *found == GROUP => Some(COLUMN),
                        (_, Some(expected)) => {
                            expected.get(position).copied().filter(|want| want != found)
                        }
                        _ => None,
                    };
                    if let Some(expected) = want {
                        diagnostics.push(PlanDiagnostic::InputKind {
                            node: index,
                            op,
                            index: position,
                            var: *var,
                            expected,
                            found: *found,
                        });
                    }
                }
            }
        }

        if node.outputs.len() != outputs_sig.len() {
            diagnostics.push(PlanDiagnostic::OutputArity {
                node: index,
                op,
                found: node.outputs.len(),
                expected: outputs_sig.len(),
            });
        }
        for (position, out) in node.outputs.iter().enumerate() {
            if let Some(first) = defined_at.get(out) {
                diagnostics.push(PlanDiagnostic::DoubleDefine {
                    node: index,
                    op,
                    var: *out,
                    first: *first,
                });
                continue;
            }
            defined_at.insert(*out, index);
            kinds.insert(*out, outputs_sig.get(position).copied().unwrap_or(COLUMN));
        }
    }

    // Liveness: the recorded last-use map must equal the true dataflow
    // last read, for every register that appears anywhere in the plan.
    let mut actual_last_use: HashMap<Var, usize> = HashMap::new();
    for (index, node) in nodes.iter().enumerate() {
        for var in &node.inputs {
            actual_last_use.insert(*var, index);
        }
    }
    let mut seen: Vec<Var> = first_def.keys().chain(actual_last_use.keys()).copied().collect();
    seen.sort_unstable();
    seen.dedup();
    for var in seen {
        let recorded = plan.last_use(var);
        let actual = actual_last_use.get(&var).copied();
        if recorded != actual {
            diagnostics.push(PlanDiagnostic::LastUseMismatch { var, recorded, actual });
        }
    }

    VerifyReport { diagnostics, flush_bound: flush_bound(plan), nodes: nodes.len() }
}

/// The flush-boundary pass (module docs): walks the nodes with a
/// pending-work flag, charging boundary nodes one flush when work is
/// pending and degrading to [`FlushBound::DataDependent`] on the first
/// host-resolving operator.
fn flush_bound(plan: &Plan) -> FlushBound {
    let mut pending = false;
    let mut boundary = 0usize;
    let mut host_resolving = 0usize;
    for node in plan.nodes() {
        match signature(&node.op).2 {
            FlushClass::Streaming => pending = true,
            FlushClass::HostResolving => {
                host_resolving += 1;
                // Host-resolving operators flush internally but also
                // enqueue follow-up kernels, so work stays pending.
                pending = true;
            }
            FlushClass::Boundary => {
                if pending {
                    boundary += 1;
                    pending = false;
                }
            }
        }
    }
    if host_resolving == 0 {
        FlushBound::AtMost(boundary)
    } else {
        FlushBound::DataDependent { boundary, host_resolving }
    }
}

/// Raw-node append support for [`crate::plan::PlanBuilder::push_node`]:
/// checks definitions and single assignment, returning the output kinds to
/// record. Kind/arity validation beyond that is the verifier's job.
pub(crate) fn admit_raw_node(
    node: &PlanNode,
    kinds: &HashMap<Var, ValueKind>,
) -> Result<&'static [ValueKind], PlanError> {
    for var in &node.inputs {
        if !kinds.contains_key(var) {
            return Err(PlanError::UndefinedVar { var: *var });
        }
    }
    for out in &node.outputs {
        if kinds.contains_key(out) {
            return Err(PlanError::DuplicateDefinition { var: *out });
        }
    }
    Ok(output_kinds(&node.op))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;

    fn q6_like() -> Plan {
        let mut p = PlanBuilder::new();
        let qty = p.bind("lineitem", "l_quantity");
        let price = p.bind("lineitem", "l_extendedprice");
        let disc = p.bind("lineitem", "l_discount");
        let sel = p.select_range_i32(qty, 0, 23, None).unwrap();
        let price_sel = p.fetch(price, sel).unwrap();
        let disc_sel = p.fetch(disc, sel).unwrap();
        let revenue = p.mul_f32(price_sel, disc_sel).unwrap();
        let total = p.sum_f32(revenue).unwrap();
        p.result(&[total]).unwrap();
        p.finish()
    }

    #[test]
    fn builder_plans_verify_clean() {
        let report = verify(&q6_like());
        assert!(report.is_ok(), "{report}");
    }

    #[test]
    fn q6_pipeline_is_statically_one_flush() {
        assert_eq!(verify(&q6_like()).flush_bound, FlushBound::AtMost(1));
    }

    #[test]
    fn sync_then_result_still_one_flush() {
        let mut p = PlanBuilder::new();
        let a = p.bind("t", "a");
        let total = p.sum_f32(a).unwrap();
        p.sync(&[total]).unwrap();
        p.result(&[total]).unwrap();
        assert_eq!(verify(&p.finish()).flush_bound, FlushBound::AtMost(1));
    }

    #[test]
    fn joins_degrade_the_bound_to_data_dependent() {
        let mut p = PlanBuilder::new();
        let fk = p.bind("orders", "o_custkey");
        let pk = p.bind("customer", "c_custkey");
        let (fk_oids, _) = p.pkfk_join(fk, pk).unwrap();
        p.result(&[fk_oids]).unwrap();
        assert_eq!(
            verify(&p.finish()).flush_bound,
            FlushBound::DataDependent { boundary: 1, host_resolving: 1 }
        );
    }

    #[test]
    fn use_before_def_and_dangling_are_distinguished() {
        let plan = Plan::from_nodes_unchecked(vec![
            PlanNode { op: PlanOp::CastI32F32, inputs: vec![1], outputs: vec![0] },
            PlanNode {
                op: PlanOp::Bind { table: "t".into(), column: "a".into() },
                inputs: vec![],
                outputs: vec![1],
            },
            PlanNode { op: PlanOp::ExtractYear, inputs: vec![7], outputs: vec![2] },
        ]);
        let report = verify(&plan);
        assert!(report.diagnostics.contains(&PlanDiagnostic::UseBeforeDef {
            node: 0,
            op: "cast_i32_f32",
            var: 1,
            defined_at: 1,
        }));
        assert!(report.diagnostics.contains(&PlanDiagnostic::UndefinedInput {
            node: 2,
            op: "extract_year",
            var: 7
        }));
    }

    #[test]
    fn double_definition_is_flagged() {
        let bind = |column: &str, out: Var| PlanNode {
            op: PlanOp::Bind { table: "t".into(), column: column.into() },
            inputs: vec![],
            outputs: vec![out],
        };
        let report = verify(&Plan::from_nodes_unchecked(vec![bind("a", 0), bind("b", 0)]));
        assert!(report.diagnostics.contains(&PlanDiagnostic::DoubleDefine {
            node: 1,
            op: "bind",
            var: 0,
            first: 0,
        }));
    }

    #[test]
    fn kind_and_arity_mismatches_are_flagged() {
        let mut p = PlanBuilder::new();
        let a = p.bind("t", "a");
        let g = p.group_by(&[a]).unwrap();
        p.result(&[a]).unwrap();
        let mut nodes = p.finish().nodes().to_vec();
        // A grouping fed to an element-wise multiply, plus a multiply with
        // a single operand.
        nodes.push(PlanNode { op: PlanOp::MulF32, inputs: vec![a, g], outputs: vec![9] });
        nodes.push(PlanNode { op: PlanOp::MulF32, inputs: vec![a], outputs: vec![10] });
        let report = verify(&Plan::from_nodes_unchecked(nodes));
        assert!(report.diagnostics.iter().any(|d| matches!(
            d,
            PlanDiagnostic::InputKind { op: "mul_f32", found: ValueKind::Group, .. }
        )));
        assert!(report
            .diagnostics
            .iter()
            .any(|d| matches!(d, PlanDiagnostic::InputArity { op: "mul_f32", found: 1, .. })));
    }

    #[test]
    fn stale_last_use_is_flagged() {
        let mut p = PlanBuilder::new();
        let a = p.bind("t", "a");
        let b = p.cast_i32_f32(a).unwrap();
        p.result(&[b]).unwrap();
        let nodes = p.finish().nodes().to_vec();
        // Register `a` is last read by node 1, but the map says node 2.
        let plan = Plan::from_parts_unchecked(nodes, [(a, 2), (b, 2)].into_iter().collect());
        let report = verify(&plan);
        assert!(report.diagnostics.contains(&PlanDiagnostic::LastUseMismatch {
            var: a,
            recorded: Some(2),
            actual: Some(1),
        }));
    }

    #[test]
    fn reports_render_one_line_per_diagnostic() {
        let plan = Plan::from_nodes_unchecked(vec![PlanNode {
            op: PlanOp::SumF32,
            inputs: vec![3],
            outputs: vec![0],
        }]);
        let rendered = verify(&plan).to_string();
        assert!(rendered.contains("verification failed"), "{rendered}");
        assert!(rendered.contains("v3"), "{rendered}");
    }
}
