//! The logical operator interface shared by all four evaluated
//! configurations.
//!
//! A [`Backend`] owns columns of an opaque handle type (`Backend::Column`):
//! host vectors for the MonetDB-style baselines, typed deferred device
//! columns (`DevColumn<i32>` / `DevColumn<f32>` / `DevColumn<Oid>`) for
//! Ocelot. Queries written against this trait therefore run unchanged on
//! every configuration, and data stays wherever the backend keeps it. For
//! Ocelot the `to_*` readbacks (and the eager scalar aggregates) are the
//! **single synchronisation boundary** — everything between them only
//! enqueues kernels, including operators whose result sizes are produced on
//! the device (selections, joins), so a whole pipeline flushes once, at the
//! read (the `ocelot.sync` contract of the paper, §3.4).
//!
//! Selections return OID candidate lists. Ocelot internally evaluates them
//! as bitmaps and materialises the OID list at the interface, exactly like
//! the paper's Ocelot does when a MonetDB operator consumes a selection
//! result.

use ocelot_storage::BatRef;
use ocelot_trace::{MetricsRegistry, TraceSink};
use std::sync::Arc;

/// A grouping produced by [`Backend::group_by`].
#[derive(Debug, Clone)]
pub struct GroupHandle<C> {
    /// Dense group id per input row.
    pub gids: C,
    /// Number of groups.
    pub num_groups: usize,
    /// Representative row OID per group (carries the grouping key values).
    pub representatives: C,
}

/// A point-in-time snapshot of a backend's monotone device-activity
/// counters. The plan profiler takes one marker before and one after each
/// node and differences them ([`ProfileMarker::delta`]) to attribute queue
/// work — kernels, transfers, flushes, spill traffic — to that node. Host
/// backends have no device activity: their marker stays all-zero, so every
/// delta is zero and the per-node report degrades gracefully to wall time
/// and row counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileMarker {
    /// Kernels launched.
    pub kernels: u64,
    /// Transfers performed.
    pub transfers: u64,
    /// Bytes moved host → device (0 on unified-memory devices).
    pub bytes_to_device: u64,
    /// Bytes moved device → host (0 on unified-memory devices).
    pub bytes_from_device: u64,
    /// Modeled device nanoseconds accumulated.
    pub modeled_ns: u64,
    /// Effective (non-empty) queue flushes.
    pub flushes: u64,
    /// Partition spills taken by partitioned joins.
    pub spills: u64,
    /// Device bytes freed by those spills.
    pub spilled_bytes: u64,
}

impl ProfileMarker {
    /// Counter-wise difference `self - earlier`. All counters are monotone,
    /// so a later marker minus an earlier one is the activity in between;
    /// saturating keeps a misordered pair from panicking in release builds.
    pub fn delta(&self, earlier: &ProfileMarker) -> ProfileMarker {
        ProfileMarker {
            kernels: self.kernels.saturating_sub(earlier.kernels),
            transfers: self.transfers.saturating_sub(earlier.transfers),
            bytes_to_device: self.bytes_to_device.saturating_sub(earlier.bytes_to_device),
            bytes_from_device: self.bytes_from_device.saturating_sub(earlier.bytes_from_device),
            modeled_ns: self.modeled_ns.saturating_sub(earlier.modeled_ns),
            flushes: self.flushes.saturating_sub(earlier.flushes),
            spills: self.spills.saturating_sub(earlier.spills),
            spilled_bytes: self.spilled_bytes.saturating_sub(earlier.spilled_bytes),
        }
    }

    /// Total bytes moved in either direction.
    pub fn transfer_bytes(&self) -> u64 {
        self.bytes_to_device + self.bytes_from_device
    }
}

/// The single set of logical operators every configuration implements.
pub trait Backend {
    /// Opaque column handle.
    type Column: Clone;

    /// Human-readable configuration name (`MS`, `MP`, `Ocelot CPU`, …).
    fn name(&self) -> &str;

    // ---- data movement ----

    /// Wraps a base-table BAT as a backend column (Ocelot routes this
    /// through the Memory Manager's device cache).
    fn bat(&self, bat: &BatRef) -> Self::Column;
    /// Lifts host integers into a backend column.
    fn lift_i32(&self, values: Vec<i32>) -> Self::Column;
    /// Lifts host floats into a backend column.
    fn lift_f32(&self, values: Vec<f32>) -> Self::Column;
    /// Lifts host OIDs into a backend column.
    fn lift_oids(&self, values: Vec<u32>) -> Self::Column;
    /// Reads a column back as integers (a `sync` boundary for Ocelot).
    fn to_i32(&self, col: &Self::Column) -> Vec<i32>;
    /// Reads a column back as floats.
    fn to_f32(&self, col: &Self::Column) -> Vec<f32>;
    /// Reads a column back as OIDs.
    fn to_oids(&self, col: &Self::Column) -> Vec<u32>;
    /// Number of values in a column.
    fn len(&self, col: &Self::Column) -> usize;
    /// Whether a column is empty.
    fn is_empty(&self, col: &Self::Column) -> bool {
        self.len(col) == 0
    }

    // ---- selection (candidate lists of OIDs) ----

    /// `low <= col <= high` over integers, optionally restricted to
    /// candidates.
    fn select_range_i32(
        &self,
        col: &Self::Column,
        low: i32,
        high: i32,
        cands: Option<&Self::Column>,
    ) -> Self::Column;
    /// `low <= col <= high` over floats.
    fn select_range_f32(
        &self,
        col: &Self::Column,
        low: f32,
        high: f32,
        cands: Option<&Self::Column>,
    ) -> Self::Column;
    /// Equality selection over integers (also dictionary-coded strings).
    fn select_eq_i32(
        &self,
        col: &Self::Column,
        needle: i32,
        cands: Option<&Self::Column>,
    ) -> Self::Column;
    /// Inequality selection over integers.
    fn select_ne_i32(
        &self,
        col: &Self::Column,
        needle: i32,
        cands: Option<&Self::Column>,
    ) -> Self::Column;
    /// Union of two sorted candidate lists (`IN (a, b)` style predicates).
    fn union_oids(&self, a: &Self::Column, b: &Self::Column) -> Self::Column;

    // ---- projection / fetch join ----

    /// `col[oid]` for every OID — the left fetch join.
    fn fetch(&self, col: &Self::Column, oids: &Self::Column) -> Self::Column;

    // ---- arithmetic maps ----

    /// Element-wise `a * b` over floats.
    fn mul_f32(&self, a: &Self::Column, b: &Self::Column) -> Self::Column;
    /// Element-wise `a + b` over floats.
    fn add_f32(&self, a: &Self::Column, b: &Self::Column) -> Self::Column;
    /// Element-wise `a - b` over floats.
    fn sub_f32(&self, a: &Self::Column, b: &Self::Column) -> Self::Column;
    /// Element-wise `c - a`.
    fn const_minus_f32(&self, constant: f32, a: &Self::Column) -> Self::Column;
    /// Element-wise `c + a`.
    fn const_plus_f32(&self, constant: f32, a: &Self::Column) -> Self::Column;
    /// Element-wise `a * c`.
    fn mul_const_f32(&self, a: &Self::Column, constant: f32) -> Self::Column;
    /// Casts integers to floats.
    fn cast_i32_f32(&self, a: &Self::Column) -> Self::Column;
    /// Extracts the calendar year from a day-number date column.
    fn extract_year(&self, a: &Self::Column) -> Self::Column;

    // ---- joins ----

    /// Hash equi-join of a foreign-key column against a (unique) primary-key
    /// column. Returns aligned `(fk_oids, pk_oids)`; FK rows without a
    /// partner are dropped.
    fn pkfk_join(&self, fk: &Self::Column, pk: &Self::Column) -> (Self::Column, Self::Column);
    /// Partitioned hybrid hash FK/PK join: semantically identical to
    /// [`Backend::pkfk_join`] — same pairs, same probe-row order — but free
    /// to radix-partition both inputs and spill cold partitions to host
    /// staging so the working set fits the device budget. `ndv_hint` is the
    /// estimated distinct build-key count (skew-aware partition sizing).
    /// The default delegates to the in-memory join: partitioning is an
    /// execution strategy, not a semantics change.
    fn pkfk_join_partitioned(
        &self,
        fk: &Self::Column,
        pk: &Self::Column,
        ndv_hint: usize,
    ) -> (Self::Column, Self::Column) {
        let _ = ndv_hint;
        self.pkfk_join(fk, pk)
    }
    /// Semi join (`EXISTS`): OIDs of left rows with at least one match.
    fn semi_join(&self, left: &Self::Column, right: &Self::Column) -> Self::Column;
    /// Anti join (`NOT EXISTS`): OIDs of left rows without a match.
    fn anti_join(&self, left: &Self::Column, right: &Self::Column) -> Self::Column;

    // ---- grouping ----

    /// Multi-column group-by producing dense group ids.
    fn group_by(&self, keys: &[&Self::Column]) -> GroupHandle<Self::Column>;

    // ---- grouped aggregation (float results, the engine's 4-byte model) ----

    /// Per-group sums.
    fn grouped_sum_f32(
        &self,
        values: &Self::Column,
        groups: &GroupHandle<Self::Column>,
    ) -> Self::Column;
    /// Per-group counts (as floats).
    fn grouped_count(&self, groups: &GroupHandle<Self::Column>) -> Self::Column;
    /// Per-group minima.
    fn grouped_min_f32(
        &self,
        values: &Self::Column,
        groups: &GroupHandle<Self::Column>,
    ) -> Self::Column;
    /// Per-group maxima.
    fn grouped_max_f32(
        &self,
        values: &Self::Column,
        groups: &GroupHandle<Self::Column>,
    ) -> Self::Column;
    /// Per-group averages.
    fn grouped_avg_f32(
        &self,
        values: &Self::Column,
        groups: &GroupHandle<Self::Column>,
    ) -> Self::Column;

    // ---- ungrouped aggregation ----

    /// Sum of a float column as a **column-resident one-element result**:
    /// the deferred form of [`Backend::sum_f32`]. For Ocelot the value stays
    /// in a one-word device buffer (a `DevScalar`) until a `to_*` read, so
    /// MAL plans that aggregate and only later materialise stay sync-free.
    /// The default implementation falls back to the eager host sum.
    fn sum_scalar_f32(&self, values: &Self::Column) -> Self::Column {
        self.lift_f32(vec![self.sum_f32(values)])
    }

    /// The `ocelot.sync` ownership boundary: flush outstanding device work
    /// so every previously produced column is materialised. A no-op for the
    /// host backends, whose operators are eager.
    fn sync(&self) {}

    /// The **release + evict** step of the OOM-restart protocol
    /// (`ocelot_core::cache` module docs): called by the plan executor when
    /// a node failed with out-of-device-memory, before the node is
    /// restarted. Implementations flush pending work and evict whatever
    /// unpinned device state they can; the return value says whether the
    /// pass made progress (the executor only retries when it did). Host
    /// backends have no device memory to reclaim.
    fn reclaim_memory(&self, requested_bytes: usize) -> bool {
        let _ = requested_bytes;
        false
    }

    /// The **invalidation** step of the device-loss failover protocol
    /// (`ocelot_engine::plan` module docs): called once a plan run has
    /// unwound with `PlanError::DeviceLost`, before the query is re-run on
    /// a fallback backend. Implementations drop every piece of
    /// device-resident state they cache — for Ocelot that is the shared
    /// column cache's entries and the buffer pool's retained buffers, both
    /// stranded on the lost device. Host backends cache nothing.
    fn on_device_lost(&self) {}

    /// Sum of a float column (**sync boundary** for Ocelot — prefer
    /// [`Backend::sum_scalar_f32`] mid-plan).
    fn sum_f32(&self, values: &Self::Column) -> f32;
    /// Minimum of a float column (`+∞` when empty).
    fn min_f32(&self, values: &Self::Column) -> f32;
    /// Maximum of a float column (`-∞` when empty).
    fn max_f32(&self, values: &Self::Column) -> f32;
    /// Minimum of an integer column (`i32::MAX` when empty).
    fn min_i32(&self, values: &Self::Column) -> i32;
    /// Average of a float column (`0` when empty).
    fn avg_f32(&self, values: &Self::Column) -> f32;
    /// Row count.
    fn count(&self, values: &Self::Column) -> usize {
        self.len(values)
    }

    // ---- sorting ----

    /// The permutation of OIDs that sorts an integer column (ascending or
    /// descending).
    fn sort_order_i32(&self, col: &Self::Column, descending: bool) -> Self::Column;
    /// The permutation of OIDs that sorts a float column.
    fn sort_order_f32(&self, col: &Self::Column, descending: bool) -> Self::Column;

    // ---- observability ----

    /// A snapshot of this backend's monotone device-activity counters (see
    /// [`ProfileMarker`]). Host backends keep the all-zero default.
    fn profile_marker(&self) -> ProfileMarker {
        ProfileMarker::default()
    }

    /// Attaches a trace sink to every event emitter this backend owns
    /// (queue, device, Memory Manager, column cache for Ocelot). Host
    /// backends own no emitters; the default is a no-op.
    fn attach_tracer(&self, sink: &Arc<TraceSink>) {
        let _ = sink;
    }

    /// Detaches any tracer attached via [`Backend::attach_tracer`].
    fn detach_tracer(&self) {}

    /// Projects this backend's counters (flush totals, fault stats, cache
    /// and memory stats, spill stats, …) into a [`MetricsRegistry`] under
    /// backend-specific prefixes. Host backends export nothing by default.
    fn register_metrics(&self, registry: &mut MetricsRegistry) {
        let _ = registry;
    }

    // ---- timing ----

    /// Starts (or restarts) the configuration's timer. For Ocelot this also
    /// flushes outstanding device work so the measurement starts clean.
    fn begin_timing(&self);
    /// Nanoseconds elapsed since [`Backend::begin_timing`]: wall-clock for
    /// CPU configurations, modeled device time for the simulated GPU.
    fn elapsed_ns(&self) -> u64;
}
