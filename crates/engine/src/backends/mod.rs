//! The four evaluated configurations behind the [`crate::Backend`] trait.

pub mod monet_par;
pub mod monet_seq;
pub mod ocelot;

pub use monet_par::MonetParBackend;
pub use monet_seq::MonetSeqBackend;
pub use ocelot::OcelotBackend;

use ocelot_storage::Oid;
use std::sync::Arc;

/// Host-side column representation shared by the two MonetDB-style
/// baselines: a typed, reference-counted vector.
#[derive(Debug, Clone)]
pub enum HostColumn {
    /// 32-bit integers (also dates and dictionary codes).
    I32(Arc<Vec<i32>>),
    /// 32-bit floats.
    F32(Arc<Vec<f32>>),
    /// Tuple identifiers.
    Oid(Arc<Vec<Oid>>),
}

impl HostColumn {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            HostColumn::I32(v) => v.len(),
            HostColumn::F32(v) => v.len(),
            HostColumn::Oid(v) => v.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Integer view (panics if this is not an integer column).
    pub fn as_i32(&self) -> &[i32] {
        match self {
            HostColumn::I32(v) => v,
            other => panic!("expected an i32 column, found {other:?}"),
        }
    }

    /// Float view (panics if this is not a float column).
    pub fn as_f32(&self) -> &[f32] {
        match self {
            HostColumn::F32(v) => v,
            other => panic!("expected an f32 column, found {other:?}"),
        }
    }

    /// OID view (panics if this is not an OID column).
    pub fn as_oids(&self) -> &[Oid] {
        match self {
            HostColumn::Oid(v) => v,
            other => panic!("expected an OID column, found {other:?}"),
        }
    }
}

/// Partition bits the host baselines use for a Grace-style partitioned
/// FK/PK join: one partition per ~64k build rows (cache-sized hash tables),
/// with the `rows / ndv` skew factor inflating the count the same way the
/// device path does. Zero bits means "monolithic join is already fine".
pub(crate) fn grace_bits(build_rows: usize, ndv_hint: usize) -> u32 {
    const TARGET_ROWS: usize = 1 << 16;
    let skew = (build_rows.max(1) / ndv_hint.max(1)).max(1);
    let wanted = (build_rows.max(1) * skew).div_ceil(TARGET_ROWS);
    wanted.next_power_of_two().trailing_zeros().min(8)
}

/// Splits a key column into `2^bits` partitions of `(keys, original_rows)`
/// by a multiplicative hash — rows with equal keys land in the same
/// partition on both join sides.
pub(crate) fn grace_partition(keys: &[i32], bits: u32) -> Vec<(Vec<i32>, Vec<Oid>)> {
    let parts = 1usize << bits;
    let mut out: Vec<(Vec<i32>, Vec<Oid>)> = vec![(Vec::new(), Vec::new()); parts];
    for (row, &key) in keys.iter().enumerate() {
        let p = ((key as u32).wrapping_mul(0x9E37_79B1) >> (32 - bits)) as usize;
        out[p].0.push(key);
        out[p].1.push(row as Oid);
    }
    out
}

/// Merges per-partition join pairs back into the global probe-row order the
/// monolithic join produces (build keys are unique, so probe-OID order is
/// total).
pub(crate) fn grace_merge(mut pairs: Vec<(Oid, Oid)>) -> (Vec<Oid>, Vec<Oid>) {
    pairs.sort_unstable();
    (pairs.iter().map(|(f, _)| *f).collect(), pairs.iter().map(|(_, p)| *p).collect())
}

/// Converts a BAT into the host column representation used by the baselines.
pub(crate) fn host_column_from_bat(bat: &ocelot_storage::BatRef) -> HostColumn {
    if let Some(values) = bat.as_i32() {
        HostColumn::I32(Arc::new(values.to_vec()))
    } else if let Some(values) = bat.as_f32() {
        HostColumn::F32(Arc::new(values.to_vec()))
    } else if let Some(values) = bat.as_oid() {
        HostColumn::Oid(Arc::new(values.to_vec()))
    } else {
        unreachable!("BATs always expose one of the three typed views")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_column_views() {
        let ints = HostColumn::I32(Arc::new(vec![1, 2]));
        assert_eq!(ints.len(), 2);
        assert_eq!(ints.as_i32(), &[1, 2]);
        let floats = HostColumn::F32(Arc::new(vec![0.5]));
        assert_eq!(floats.as_f32(), &[0.5]);
        let oids = HostColumn::Oid(Arc::new(vec![7, 8, 9]));
        assert_eq!(oids.as_oids(), &[7, 8, 9]);
        assert!(!oids.is_empty());
    }

    #[test]
    #[should_panic(expected = "expected an i32 column")]
    fn wrong_view_panics() {
        HostColumn::F32(Arc::new(vec![0.5])).as_i32();
    }

    #[test]
    fn bat_conversion_preserves_type() {
        use ocelot_storage::Bat;
        let ints = host_column_from_bat(&Bat::from_i32("a", vec![3]).into_ref());
        assert_eq!(ints.as_i32(), &[3]);
        let floats = host_column_from_bat(&Bat::from_f32("b", vec![1.5]).into_ref());
        assert_eq!(floats.as_f32(), &[1.5]);
        let oids = host_column_from_bat(&Bat::from_oids("c", vec![9]).into_ref());
        assert_eq!(oids.as_oids(), &[9]);
    }
}
