//! The "MP" configuration: parallel MonetDB-style execution (mitosis
//! partitioning across all cores), backed by `ocelot_monet::parallel`.

use crate::backend::{Backend, GroupHandle};
use crate::backends::{host_column_from_bat, HostColumn};
use ocelot_monet::parallel as par;
use ocelot_monet::sequential as seq;
use ocelot_storage::BatRef;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Parallel MonetDB baseline (the paper's `MP` series).
pub struct MonetParBackend {
    threads: usize,
    timer: Mutex<Instant>,
}

impl Default for MonetParBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MonetParBackend {
    /// Creates the backend with the machine's available parallelism.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::with_threads(threads)
    }

    /// Creates the backend with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        MonetParBackend { threads: threads.max(1), timer: Mutex::new(Instant::now()) }
    }

    /// The degree of parallelism used by every operator.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Backend for MonetParBackend {
    type Column = HostColumn;

    fn name(&self) -> &str {
        "MP (parallel MonetDB)"
    }

    fn bat(&self, bat: &BatRef) -> HostColumn {
        host_column_from_bat(bat)
    }
    fn lift_i32(&self, values: Vec<i32>) -> HostColumn {
        HostColumn::I32(Arc::new(values))
    }
    fn lift_f32(&self, values: Vec<f32>) -> HostColumn {
        HostColumn::F32(Arc::new(values))
    }
    fn lift_oids(&self, values: Vec<u32>) -> HostColumn {
        HostColumn::Oid(Arc::new(values))
    }
    fn to_i32(&self, col: &HostColumn) -> Vec<i32> {
        col.as_i32().to_vec()
    }
    fn to_f32(&self, col: &HostColumn) -> Vec<f32> {
        col.as_f32().to_vec()
    }
    fn to_oids(&self, col: &HostColumn) -> Vec<u32> {
        col.as_oids().to_vec()
    }
    fn len(&self, col: &HostColumn) -> usize {
        col.len()
    }

    fn select_range_i32(
        &self,
        col: &HostColumn,
        low: i32,
        high: i32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => par::par_select_range_i32(col.as_i32(), low, high, self.threads),
            Some(cands) => par::par_select_range_i32_cand(
                col.as_i32(),
                cands.as_oids(),
                low,
                high,
                self.threads,
            ),
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn select_range_f32(
        &self,
        col: &HostColumn,
        low: f32,
        high: f32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => par::par_select_range_f32(col.as_f32(), low, high, self.threads),
            Some(cands) => par::par_select_range_f32_cand(
                col.as_f32(),
                cands.as_oids(),
                low,
                high,
                self.threads,
            ),
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn select_eq_i32(
        &self,
        col: &HostColumn,
        needle: i32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => par::par_select_eq_i32(col.as_i32(), needle, self.threads),
            Some(cands) => {
                par::par_select_eq_i32_cand(col.as_i32(), cands.as_oids(), needle, self.threads)
            }
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn select_ne_i32(
        &self,
        col: &HostColumn,
        needle: i32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let all;
        let cands = match cands {
            Some(cands) => cands.as_oids(),
            None => {
                all = (0..col.len() as u32).collect::<Vec<u32>>();
                &all
            }
        };
        HostColumn::Oid(Arc::new(seq::select_ne_i32_cand(col.as_i32(), cands, needle)))
    }

    fn union_oids(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::Oid(Arc::new(seq::union_oids(a.as_oids(), b.as_oids())))
    }

    fn fetch(&self, col: &HostColumn, oids: &HostColumn) -> HostColumn {
        let ids = oids.as_oids();
        match col {
            HostColumn::I32(v) => {
                HostColumn::I32(Arc::new(par::par_fetch_i32(v, ids, self.threads)))
            }
            HostColumn::F32(v) => {
                HostColumn::F32(Arc::new(par::par_fetch_f32(v, ids, self.threads)))
            }
            HostColumn::Oid(v) => {
                HostColumn::Oid(Arc::new(par::par_fetch_oid(v, ids, self.threads)))
            }
        }
    }

    fn mul_f32(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_mul_f32(a.as_f32(), b.as_f32(), self.threads)))
    }
    fn add_f32(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_add_f32(a.as_f32(), b.as_f32(), self.threads)))
    }
    fn sub_f32(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_sub_f32(a.as_f32(), b.as_f32(), self.threads)))
    }
    fn const_minus_f32(&self, constant: f32, a: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_const_minus_f32(constant, a.as_f32(), self.threads)))
    }
    fn const_plus_f32(&self, constant: f32, a: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_const_plus_f32(constant, a.as_f32(), self.threads)))
    }
    fn mul_const_f32(&self, a: &HostColumn, constant: f32) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_mul_f32(
            a.as_f32(),
            &vec![constant; a.len()],
            self.threads,
        )))
    }
    fn cast_i32_f32(&self, a: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_cast_i32_f32(a.as_i32(), self.threads)))
    }
    fn extract_year(&self, a: &HostColumn) -> HostColumn {
        HostColumn::I32(Arc::new(par::par_extract_year(a.as_i32(), self.threads)))
    }

    fn pkfk_join(&self, fk: &HostColumn, pk: &HostColumn) -> (HostColumn, HostColumn) {
        let table = ocelot_monet::MonetHashTable::build(pk.as_i32());
        let (fk_oids, pk_oids) = par::par_pkfk_join_i32(fk.as_i32(), &table, self.threads);
        (HostColumn::Oid(Arc::new(fk_oids)), HostColumn::Oid(Arc::new(pk_oids)))
    }
    fn pkfk_join_partitioned(
        &self,
        fk: &HostColumn,
        pk: &HostColumn,
        ndv_hint: usize,
    ) -> (HostColumn, HostColumn) {
        let (fk, pk) = (fk.as_i32(), pk.as_i32());
        let bits = crate::backends::grace_bits(pk.len(), ndv_hint);
        if bits == 0 {
            let table = ocelot_monet::MonetHashTable::build(pk);
            let (fk_oids, pk_oids) = par::par_pkfk_join_i32(fk, &table, self.threads);
            return (HostColumn::Oid(Arc::new(fk_oids)), HostColumn::Oid(Arc::new(pk_oids)));
        }
        let pk_parts = crate::backends::grace_partition(pk, bits);
        let fk_parts = crate::backends::grace_partition(fk, bits);
        // Mitosis over partitions: each worker joins a contiguous slice of
        // partition pairs, then the per-worker pair lists merge.
        let parts = pk_parts.len();
        let workers = self.threads.min(parts).max(1);
        let per_worker = parts.div_ceil(workers);
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for chunk in 0..workers {
                let start = chunk * per_worker;
                let end = (start + per_worker).min(parts);
                let pk_parts = &pk_parts;
                let fk_parts = &fk_parts;
                handles.push(scope.spawn(move || {
                    let mut local = Vec::new();
                    for p in start..end {
                        let (pk_keys, pk_rows) = &pk_parts[p];
                        let (fk_keys, fk_rows) = &fk_parts[p];
                        if pk_keys.is_empty() || fk_keys.is_empty() {
                            continue;
                        }
                        let table = ocelot_monet::MonetHashTable::build(pk_keys);
                        let (local_fk, local_pk) = seq::pkfk_join_i32(fk_keys, &table);
                        for (lf, lp) in local_fk.into_iter().zip(local_pk) {
                            local.push((fk_rows[lf as usize], pk_rows[lp as usize]));
                        }
                    }
                    local
                }));
            }
            for handle in handles {
                pairs.extend(handle.join().expect("partition worker panicked"));
            }
        });
        let (fk_oids, pk_oids) = crate::backends::grace_merge(pairs);
        (HostColumn::Oid(Arc::new(fk_oids)), HostColumn::Oid(Arc::new(pk_oids)))
    }

    fn semi_join(&self, left: &HostColumn, right: &HostColumn) -> HostColumn {
        HostColumn::Oid(Arc::new(par::par_semi_join_i32(
            left.as_i32(),
            right.as_i32(),
            self.threads,
        )))
    }
    fn anti_join(&self, left: &HostColumn, right: &HostColumn) -> HostColumn {
        HostColumn::Oid(Arc::new(par::par_anti_join_i32(
            left.as_i32(),
            right.as_i32(),
            self.threads,
        )))
    }

    fn group_by(&self, keys: &[&HostColumn]) -> GroupHandle<HostColumn> {
        let columns: Vec<&[i32]> = keys.iter().map(|k| k.as_i32()).collect();
        let result = par::par_group_by_columns(&columns, self.threads);
        GroupHandle {
            gids: HostColumn::Oid(Arc::new(result.gids)),
            num_groups: result.num_groups,
            representatives: HostColumn::Oid(Arc::new(result.representatives)),
        }
    }

    fn grouped_sum_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_grouped_sum_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
            self.threads,
        )))
    }
    fn grouped_count(&self, groups: &GroupHandle<HostColumn>) -> HostColumn {
        let counts = par::par_grouped_count(groups.gids.as_oids(), groups.num_groups, self.threads);
        HostColumn::F32(Arc::new(counts.into_iter().map(|c| c as f32).collect()))
    }
    fn grouped_min_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_grouped_min_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
            self.threads,
        )))
    }
    fn grouped_max_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_grouped_max_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
            self.threads,
        )))
    }
    fn grouped_avg_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(par::par_grouped_avg_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
            self.threads,
        )))
    }

    fn sum_f32(&self, values: &HostColumn) -> f32 {
        par::par_sum_f32(values.as_f32(), self.threads)
    }
    fn min_f32(&self, values: &HostColumn) -> f32 {
        par::par_min_f32(values.as_f32(), self.threads).unwrap_or(f32::INFINITY)
    }
    fn max_f32(&self, values: &HostColumn) -> f32 {
        par::par_max_f32(values.as_f32(), self.threads).unwrap_or(f32::NEG_INFINITY)
    }
    fn min_i32(&self, values: &HostColumn) -> i32 {
        par::par_min_i32(values.as_i32(), self.threads).unwrap_or(i32::MAX)
    }
    fn avg_f32(&self, values: &HostColumn) -> f32 {
        par::par_avg_f32(values.as_f32(), self.threads).unwrap_or(0.0)
    }

    fn sort_order_i32(&self, col: &HostColumn, descending: bool) -> HostColumn {
        let (_, mut order) = par::par_sort_i32(col.as_i32(), self.threads);
        if descending {
            order.reverse();
        }
        HostColumn::Oid(Arc::new(order))
    }
    fn sort_order_f32(&self, col: &HostColumn, descending: bool) -> HostColumn {
        let (_, mut order) = par::par_sort_f32(col.as_f32(), self.threads);
        if descending {
            order.reverse();
        }
        HostColumn::Oid(Arc::new(order))
    }

    fn begin_timing(&self) {
        *self.timer.lock() = Instant::now();
    }
    fn elapsed_ns(&self) -> u64 {
        self.timer.lock().elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::MonetSeqBackend;

    #[test]
    fn matches_sequential_backend_on_a_mini_pipeline() {
        let seq_backend = MonetSeqBackend::new();
        let par_backend = MonetParBackend::with_threads(4);
        let values: Vec<i32> = (0..5_000).map(|i| (i * 31 + 7) % 500).collect();
        let payload: Vec<f32> = (0..5_000).map(|i| i as f32 * 0.5).collect();

        let run = |b: &dyn Fn() -> (Vec<u32>, f32)| b();
        let seq_result = run(&|| {
            let v = seq_backend.lift_i32(values.clone());
            let p = seq_backend.lift_f32(payload.clone());
            let sel = seq_backend.select_range_i32(&v, 100, 200, None);
            let proj = seq_backend.fetch(&p, &sel);
            (seq_backend.to_oids(&sel), seq_backend.sum_f32(&proj))
        });
        let par_result = run(&|| {
            let v = par_backend.lift_i32(values.clone());
            let p = par_backend.lift_f32(payload.clone());
            let sel = par_backend.select_range_i32(&v, 100, 200, None);
            let proj = par_backend.fetch(&p, &sel);
            (par_backend.to_oids(&sel), par_backend.sum_f32(&proj))
        });
        assert_eq!(seq_result.0, par_result.0);
        assert!((seq_result.1 - par_result.1).abs() < 1.0);
    }

    #[test]
    fn grouped_aggregation_matches_sequential() {
        let seq_backend = MonetSeqBackend::new();
        let par_backend = MonetParBackend::with_threads(3);
        let keys: Vec<i32> = (0..3_000).map(|i| i % 13).collect();
        let values: Vec<f32> = (0..3_000).map(|i| (i % 7) as f32).collect();

        let kseq = seq_backend.lift_i32(keys.clone());
        let vseq = seq_backend.lift_f32(values.clone());
        let gseq = seq_backend.group_by(&[&kseq]);
        let mut seq_pairs: Vec<(i32, f32)> = seq_backend
            .to_i32(&seq_backend.fetch(&kseq, &gseq.representatives))
            .into_iter()
            .zip(seq_backend.to_f32(&seq_backend.grouped_sum_f32(&vseq, &gseq)))
            .collect();

        let kpar = par_backend.lift_i32(keys);
        let vpar = par_backend.lift_f32(values);
        let gpar = par_backend.group_by(&[&kpar]);
        let mut par_pairs: Vec<(i32, f32)> = par_backend
            .to_i32(&par_backend.fetch(&kpar, &gpar.representatives))
            .into_iter()
            .zip(par_backend.to_f32(&par_backend.grouped_sum_f32(&vpar, &gpar)))
            .collect();

        seq_pairs.sort_by_key(|(k, _)| *k);
        par_pairs.sort_by_key(|(k, _)| *k);
        assert_eq!(seq_pairs.len(), par_pairs.len());
        for ((ka, va), (kb, vb)) in seq_pairs.iter().zip(par_pairs.iter()) {
            assert_eq!(ka, kb);
            assert!((va - vb).abs() < 1e-2);
        }
    }

    #[test]
    fn timing_reports_wall_clock() {
        let backend = MonetParBackend::with_threads(2);
        backend.begin_timing();
        let col = backend.lift_i32((0..100_000).collect());
        let _ = backend.select_range_i32(&col, 0, 50_000, None);
        assert!(backend.elapsed_ns() > 0);
        assert_eq!(backend.threads(), 2);
    }
}
