//! The "MS" configuration: sequential MonetDB-style execution on a single
//! CPU core, backed by the hand-tuned operators in `ocelot-monet`.

use crate::backend::{Backend, GroupHandle};
use crate::backends::{host_column_from_bat, HostColumn};
use ocelot_monet::sequential as seq;
use ocelot_storage::BatRef;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Sequential MonetDB baseline (the paper's `MS` series).
pub struct MonetSeqBackend {
    timer: Mutex<Instant>,
}

impl Default for MonetSeqBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl MonetSeqBackend {
    /// Creates the backend.
    pub fn new() -> Self {
        MonetSeqBackend { timer: Mutex::new(Instant::now()) }
    }
}

impl Backend for MonetSeqBackend {
    type Column = HostColumn;

    fn name(&self) -> &str {
        "MS (sequential MonetDB)"
    }

    fn bat(&self, bat: &BatRef) -> HostColumn {
        host_column_from_bat(bat)
    }
    fn lift_i32(&self, values: Vec<i32>) -> HostColumn {
        HostColumn::I32(Arc::new(values))
    }
    fn lift_f32(&self, values: Vec<f32>) -> HostColumn {
        HostColumn::F32(Arc::new(values))
    }
    fn lift_oids(&self, values: Vec<u32>) -> HostColumn {
        HostColumn::Oid(Arc::new(values))
    }
    fn to_i32(&self, col: &HostColumn) -> Vec<i32> {
        col.as_i32().to_vec()
    }
    fn to_f32(&self, col: &HostColumn) -> Vec<f32> {
        col.as_f32().to_vec()
    }
    fn to_oids(&self, col: &HostColumn) -> Vec<u32> {
        col.as_oids().to_vec()
    }
    fn len(&self, col: &HostColumn) -> usize {
        col.len()
    }

    fn select_range_i32(
        &self,
        col: &HostColumn,
        low: i32,
        high: i32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => seq::select_range_i32(col.as_i32(), low, high),
            Some(cands) => seq::select_range_i32_cand(col.as_i32(), cands.as_oids(), low, high),
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn select_range_f32(
        &self,
        col: &HostColumn,
        low: f32,
        high: f32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => seq::select_range_f32(col.as_f32(), low, high),
            Some(cands) => seq::select_range_f32_cand(col.as_f32(), cands.as_oids(), low, high),
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn select_eq_i32(
        &self,
        col: &HostColumn,
        needle: i32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => seq::select_eq_i32(col.as_i32(), needle),
            Some(cands) => seq::select_eq_i32_cand(col.as_i32(), cands.as_oids(), needle),
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn select_ne_i32(
        &self,
        col: &HostColumn,
        needle: i32,
        cands: Option<&HostColumn>,
    ) -> HostColumn {
        let oids = match cands {
            None => {
                let all: Vec<u32> = (0..col.len() as u32).collect();
                seq::select_ne_i32_cand(col.as_i32(), &all, needle)
            }
            Some(cands) => seq::select_ne_i32_cand(col.as_i32(), cands.as_oids(), needle),
        };
        HostColumn::Oid(Arc::new(oids))
    }

    fn union_oids(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::Oid(Arc::new(seq::union_oids(a.as_oids(), b.as_oids())))
    }

    fn fetch(&self, col: &HostColumn, oids: &HostColumn) -> HostColumn {
        let ids = oids.as_oids();
        match col {
            HostColumn::I32(v) => HostColumn::I32(Arc::new(seq::fetch_i32(v, ids))),
            HostColumn::F32(v) => HostColumn::F32(Arc::new(seq::fetch_f32(v, ids))),
            HostColumn::Oid(v) => HostColumn::Oid(Arc::new(seq::fetch_oid(v, ids))),
        }
    }

    fn mul_f32(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(seq::mul_f32(a.as_f32(), b.as_f32())))
    }
    fn add_f32(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(seq::add_f32(a.as_f32(), b.as_f32())))
    }
    fn sub_f32(&self, a: &HostColumn, b: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(seq::sub_f32(a.as_f32(), b.as_f32())))
    }
    fn const_minus_f32(&self, constant: f32, a: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(seq::const_minus_f32(constant, a.as_f32())))
    }
    fn const_plus_f32(&self, constant: f32, a: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(seq::const_plus_f32(constant, a.as_f32())))
    }
    fn mul_const_f32(&self, a: &HostColumn, constant: f32) -> HostColumn {
        HostColumn::F32(Arc::new(seq::mul_const_f32(a.as_f32(), constant)))
    }
    fn cast_i32_f32(&self, a: &HostColumn) -> HostColumn {
        HostColumn::F32(Arc::new(seq::cast_i32_f32(a.as_i32())))
    }
    fn extract_year(&self, a: &HostColumn) -> HostColumn {
        HostColumn::I32(Arc::new(seq::extract_year(a.as_i32())))
    }

    fn pkfk_join(&self, fk: &HostColumn, pk: &HostColumn) -> (HostColumn, HostColumn) {
        let table = ocelot_monet::MonetHashTable::build(pk.as_i32());
        let (fk_oids, pk_oids) = seq::pkfk_join_i32(fk.as_i32(), &table);
        (HostColumn::Oid(Arc::new(fk_oids)), HostColumn::Oid(Arc::new(pk_oids)))
    }
    fn pkfk_join_partitioned(
        &self,
        fk: &HostColumn,
        pk: &HostColumn,
        ndv_hint: usize,
    ) -> (HostColumn, HostColumn) {
        let (fk, pk) = (fk.as_i32(), pk.as_i32());
        let bits = crate::backends::grace_bits(pk.len(), ndv_hint);
        if bits == 0 {
            let table = ocelot_monet::MonetHashTable::build(pk);
            let (fk_oids, pk_oids) = seq::pkfk_join_i32(fk, &table);
            return (HostColumn::Oid(Arc::new(fk_oids)), HostColumn::Oid(Arc::new(pk_oids)));
        }
        let pk_parts = crate::backends::grace_partition(pk, bits);
        let fk_parts = crate::backends::grace_partition(fk, bits);
        let mut pairs = Vec::new();
        for ((pk_keys, pk_rows), (fk_keys, fk_rows)) in pk_parts.iter().zip(&fk_parts) {
            if pk_keys.is_empty() || fk_keys.is_empty() {
                continue;
            }
            let table = ocelot_monet::MonetHashTable::build(pk_keys);
            let (local_fk, local_pk) = seq::pkfk_join_i32(fk_keys, &table);
            for (lf, lp) in local_fk.into_iter().zip(local_pk) {
                pairs.push((fk_rows[lf as usize], pk_rows[lp as usize]));
            }
        }
        let (fk_oids, pk_oids) = crate::backends::grace_merge(pairs);
        (HostColumn::Oid(Arc::new(fk_oids)), HostColumn::Oid(Arc::new(pk_oids)))
    }

    fn semi_join(&self, left: &HostColumn, right: &HostColumn) -> HostColumn {
        HostColumn::Oid(Arc::new(seq::semi_join_i32(left.as_i32(), right.as_i32())))
    }
    fn anti_join(&self, left: &HostColumn, right: &HostColumn) -> HostColumn {
        HostColumn::Oid(Arc::new(seq::anti_join_i32(left.as_i32(), right.as_i32())))
    }

    fn group_by(&self, keys: &[&HostColumn]) -> GroupHandle<HostColumn> {
        let columns: Vec<&[i32]> = keys.iter().map(|k| k.as_i32()).collect();
        let result = seq::group_by_columns(&columns);
        GroupHandle {
            gids: HostColumn::Oid(Arc::new(result.gids)),
            num_groups: result.num_groups,
            representatives: HostColumn::Oid(Arc::new(result.representatives)),
        }
    }

    fn grouped_sum_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(seq::grouped_sum_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
        )))
    }
    fn grouped_count(&self, groups: &GroupHandle<HostColumn>) -> HostColumn {
        let counts = seq::grouped_count(groups.gids.as_oids(), groups.num_groups);
        HostColumn::F32(Arc::new(counts.into_iter().map(|c| c as f32).collect()))
    }
    fn grouped_min_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(seq::grouped_min_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
        )))
    }
    fn grouped_max_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(seq::grouped_max_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
        )))
    }
    fn grouped_avg_f32(&self, values: &HostColumn, groups: &GroupHandle<HostColumn>) -> HostColumn {
        HostColumn::F32(Arc::new(seq::grouped_avg_f32(
            values.as_f32(),
            groups.gids.as_oids(),
            groups.num_groups,
        )))
    }

    fn sum_f32(&self, values: &HostColumn) -> f32 {
        seq::sum_f32(values.as_f32())
    }
    fn min_f32(&self, values: &HostColumn) -> f32 {
        seq::min_f32(values.as_f32()).unwrap_or(f32::INFINITY)
    }
    fn max_f32(&self, values: &HostColumn) -> f32 {
        seq::max_f32(values.as_f32()).unwrap_or(f32::NEG_INFINITY)
    }
    fn min_i32(&self, values: &HostColumn) -> i32 {
        seq::min_i32(values.as_i32()).unwrap_or(i32::MAX)
    }
    fn avg_f32(&self, values: &HostColumn) -> f32 {
        seq::avg_f32(values.as_f32()).unwrap_or(0.0)
    }

    fn sort_order_i32(&self, col: &HostColumn, descending: bool) -> HostColumn {
        let (_, order) =
            if descending { seq::sort_i32_desc(col.as_i32()) } else { seq::sort_i32(col.as_i32()) };
        HostColumn::Oid(Arc::new(order))
    }
    fn sort_order_f32(&self, col: &HostColumn, descending: bool) -> HostColumn {
        let (_, order) =
            if descending { seq::sort_f32_desc(col.as_f32()) } else { seq::sort_f32(col.as_f32()) };
        HostColumn::Oid(Arc::new(order))
    }

    fn begin_timing(&self) {
        *self.timer.lock() = Instant::now();
    }
    fn elapsed_ns(&self) -> u64 {
        self.timer.lock().elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocelot_storage::Bat;

    #[test]
    fn end_to_end_mini_query() {
        // SELECT sum(b) FROM t WHERE 2 <= a AND a <= 4 GROUP BY c
        let backend = MonetSeqBackend::new();
        let a = backend.bat(&Bat::from_i32("a", vec![1, 2, 3, 4, 5, 3]).into_ref());
        let b =
            backend.bat(&Bat::from_f32("b", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0]).into_ref());
        let c = backend.bat(&Bat::from_i32("c", vec![1, 1, 2, 2, 1, 2]).into_ref());

        backend.begin_timing();
        let sel = backend.select_range_i32(&a, 2, 4, None);
        assert_eq!(backend.to_oids(&sel), vec![1, 2, 3, 5]);
        let b_sel = backend.fetch(&b, &sel);
        let c_sel = backend.fetch(&c, &sel);
        let groups = backend.group_by(&[&c_sel]);
        assert_eq!(groups.num_groups, 2);
        let sums = backend.to_f32(&backend.grouped_sum_f32(&b_sel, &groups));
        let keys = backend.to_i32(&backend.fetch(&c_sel, &groups.representatives));
        let mut pairs: Vec<(i32, f32)> = keys.into_iter().zip(sums).collect();
        pairs.sort_by_key(|(k, _)| *k);
        assert_eq!(pairs, vec![(1, 20.0), (2, 130.0)]);
        assert!(backend.elapsed_ns() > 0);
    }

    #[test]
    fn sort_orders() {
        let backend = MonetSeqBackend::new();
        let col = backend.lift_i32(vec![3, 1, 2]);
        assert_eq!(backend.to_oids(&backend.sort_order_i32(&col, false)), vec![1, 2, 0]);
        assert_eq!(backend.to_oids(&backend.sort_order_i32(&col, true)), vec![0, 2, 1]);
        let f = backend.lift_f32(vec![0.5, -1.0, 2.0]);
        assert_eq!(backend.to_oids(&backend.sort_order_f32(&f, true)), vec![2, 0, 1]);
    }

    #[test]
    fn joins_and_calc() {
        let backend = MonetSeqBackend::new();
        let fk = backend.lift_i32(vec![10, 20, 10, 30]);
        let pk = backend.lift_i32(vec![10, 20]);
        let (fk_oids, pk_oids) = backend.pkfk_join(&fk, &pk);
        assert_eq!(backend.to_oids(&fk_oids), vec![0, 1, 2]);
        assert_eq!(backend.to_oids(&pk_oids), vec![0, 1, 0]);
        assert_eq!(backend.to_oids(&backend.semi_join(&fk, &pk)), vec![0, 1, 2]);
        assert_eq!(backend.to_oids(&backend.anti_join(&fk, &pk)), vec![3]);

        let x = backend.lift_f32(vec![1.0, 2.0]);
        let y = backend.lift_f32(vec![3.0, 4.0]);
        assert_eq!(backend.to_f32(&backend.mul_f32(&x, &y)), vec![3.0, 8.0]);
        assert_eq!(backend.sum_f32(&x), 3.0);
        assert_eq!(backend.count(&x), 2);
    }
}
