//! The Ocelot configurations: the hardware-oblivious operator set from
//! `ocelot-core` running on any kernel-model device ("Ocelot CPU" when the
//! context uses the multi-core CPU driver, "Ocelot GPU" on the simulated
//! discrete GPU).
//!
//! [`OcelotColumn`] maps `Backend::Column` onto the typed deferred columns
//! of `ocelot-core`: each variant carries a `DevColumn<T>` whose logical
//! length may still live on the device (selection results, join outputs).
//! Every operator below only *enqueues* kernels; the `to_*` readbacks (and
//! the eager scalar aggregates) are the single sync boundary, so a chained
//! query pipeline performs exactly one queue flush — at the read.

use crate::backend::{Backend, GroupHandle, ProfileMarker};
use ocelot_core::ops::{
    aggregate, calc, groupby, hash_table::OcelotHashTable, join, project, select, sort_radix,
};
use ocelot_core::primitives::gather;
use ocelot_core::{
    partitioned_pkfk_join, Bitmap, DevColumn, DevWord, DeviceLostFault, DeviceOom, OcelotContext,
    Oid, PartitionedJoinConfig, SharedDevice, SpillStats, TransientFault,
};
use ocelot_kernel::{DeviceKind, GpuConfig, KernelError};
use ocelot_storage::BatRef;
use ocelot_trace::{MetricsRegistry, TraceSink};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Unwraps a kernel result. The recoverable failures — out-of-device-memory,
/// transient launch/transfer faults, device loss — unwind as **typed
/// payloads** so the plan executor's unified recovery protocol can catch
/// and classify them (restart after reclaim, retry after backoff, unwind
/// the plan for failover; see `ocelot_engine::plan`); every other kernel
/// error is a real bug and panics with its message, which the protocol
/// never swallows.
fn raise<T>(what: &str, error: KernelError) -> T {
    match error {
        KernelError::OutOfDeviceMemory { requested, available } => {
            std::panic::panic_any(DeviceOom { requested, available })
        }
        KernelError::TransientFault { site, op } => {
            std::panic::panic_any(TransientFault { site, op })
        }
        KernelError::DeviceLost => std::panic::panic_any(DeviceLostFault),
        other => panic!("{what}: {other}"),
    }
}

/// A typed device column handle: the `Backend::Column` of the Ocelot
/// configurations.
#[derive(Debug, Clone)]
pub enum OcelotColumn {
    /// 32-bit integers (also dates and dictionary codes).
    I32(DevColumn<i32>),
    /// 32-bit floats.
    F32(DevColumn<f32>),
    /// Tuple identifiers.
    Oid(DevColumn<Oid>),
}

impl OcelotColumn {
    /// The column as an integer view (device words are untyped; the view is
    /// a zero-cost reinterpretation, as in OpenCL kernel argument binding).
    fn as_i32(&self) -> DevColumn<i32> {
        match self {
            OcelotColumn::I32(c) => c.clone(),
            OcelotColumn::F32(c) => c.reinterpret(),
            OcelotColumn::Oid(c) => c.reinterpret(),
        }
    }

    /// The column as a float view.
    fn as_f32(&self) -> DevColumn<f32> {
        match self {
            OcelotColumn::F32(c) => c.clone(),
            OcelotColumn::I32(c) => c.reinterpret(),
            OcelotColumn::Oid(c) => c.reinterpret(),
        }
    }

    /// The column as an OID view.
    fn as_oid(&self) -> DevColumn<Oid> {
        match self {
            OcelotColumn::Oid(c) => c.clone(),
            OcelotColumn::I32(c) => c.reinterpret(),
            OcelotColumn::F32(c) => c.reinterpret(),
        }
    }
}

/// The Ocelot backend (paper's "CPU" and "GPU" series, depending on the
/// device the context was created with).
pub struct OcelotBackend {
    ctx: OcelotContext,
    label: String,
    timer: Mutex<(Instant, u64)>,
    /// Default sizing hint for hash tables built by group-by and joins.
    distinct_hint: usize,
    /// Number of reclaim passes run for the OOM-restart protocol — one per
    /// node restart the plan executor performed on this backend.
    reclaims: AtomicU64,
    /// Accumulated partition/spill counters from every partitioned join this
    /// backend ran (the out-of-core observability surface).
    spill_stats: Mutex<SpillStats>,
}

impl OcelotBackend {
    /// Ocelot on the multi-core CPU driver.
    pub fn cpu() -> Self {
        Self::with_context(OcelotContext::cpu(), "Ocelot CPU")
    }

    /// Ocelot on the sequential CPU driver.
    pub fn cpu_sequential() -> Self {
        Self::with_context(OcelotContext::cpu_sequential(), "Ocelot CPU (sequential)")
    }

    /// Ocelot on the simulated discrete GPU with default parameters.
    pub fn gpu() -> Self {
        Self::with_context(OcelotContext::gpu(), "Ocelot GPU")
    }

    /// Ocelot on a simulated GPU with an explicit configuration (used by the
    /// memory-pressure benchmarks).
    pub fn gpu_with(config: GpuConfig) -> Self {
        Self::with_context(OcelotContext::gpu_with(config), "Ocelot GPU")
    }

    /// Ocelot as a *session* on a shared device: the context gets its own
    /// command queue (per-session flush accounting) but recycles result
    /// buffers through the device's shared pool — the construction behind
    /// `ocelot_engine::Session::ocelot`.
    pub fn on_shared(shared: &SharedDevice) -> Self {
        let label = match shared.device().info().kind {
            DeviceKind::CpuSequential => "Ocelot CPU (sequential)",
            DeviceKind::CpuMulticore => "Ocelot CPU",
            DeviceKind::DiscreteGpu => "Ocelot GPU",
        };
        Self::with_context(shared.context(), label)
    }

    /// Wraps an existing context.
    pub fn with_context(ctx: OcelotContext, label: &str) -> Self {
        OcelotBackend {
            ctx,
            label: label.to_string(),
            timer: Mutex::new((Instant::now(), 0)),
            distinct_hint: 1024,
            reclaims: AtomicU64::new(0),
            spill_stats: Mutex::new(SpillStats::default()),
        }
    }

    /// The underlying Ocelot context (device, queue, Memory Manager).
    pub fn context(&self) -> &OcelotContext {
        &self.ctx
    }

    /// How many OOM-restart reclaim passes this backend has run (one per
    /// restarted plan node) — observability for the pressure suites.
    pub fn reclaim_count(&self) -> u64 {
        self.reclaims.load(Ordering::Relaxed)
    }

    /// Accumulated partition/spill counters across every partitioned join
    /// this backend executed (zero until the out-of-core path runs).
    pub fn spill_stats(&self) -> SpillStats {
        *self.spill_stats.lock()
    }

    /// Binds a base column through the device's shared [`ColumnCache`]
    /// when this context has one (session contexts do): later binds of the
    /// same column — from *any* session of the device — perform no
    /// transfer, and the returned column carries a `Pinned` guard that
    /// protects the entry from eviction while any plan register still
    /// holds it. Stand-alone contexts fall back to the Memory Manager's
    /// private BAT registry.
    fn cached_column<T: DevWord>(&self, bat: &BatRef) -> DevColumn<T> {
        match self.ctx.column_cache() {
            Some(cache) => cache
                .column_for_bat(&self.ctx, bat)
                .unwrap_or_else(|e| raise("cached column bind failed", e)),
            None => project::device_column_for_bat(&self.ctx, bat)
                .unwrap_or_else(|e| raise("device upload failed", e)),
        }
    }

    fn upload_bat(&self, bat: &BatRef) -> OcelotColumn {
        if bat.as_f32().is_some() {
            OcelotColumn::F32(self.cached_column(bat))
        } else if bat.as_oid().is_some() {
            OcelotColumn::Oid(self.cached_column(bat))
        } else {
            OcelotColumn::I32(self.cached_column(bat))
        }
    }

    /// Selection helper: evaluates a predicate bitmap over either the full
    /// column or the candidate subset, returning an OID candidate list whose
    /// length stays on the device — candidate chains never synchronise.
    fn select_with<F>(
        &self,
        col: &OcelotColumn,
        cands: Option<&OcelotColumn>,
        pred: F,
    ) -> OcelotColumn
    where
        F: Fn(&OcelotContext, &OcelotColumn) -> ocelot_kernel::Result<Bitmap>,
    {
        match cands {
            None => {
                let bitmap = pred(&self.ctx, col).unwrap_or_else(|e| raise("selection failed", e));
                let oids = select::materialize_bitmap(&self.ctx, &bitmap)
                    .unwrap_or_else(|e| raise("materialize failed", e));
                OcelotColumn::Oid(oids)
            }
            Some(cands) => {
                // Evaluate the predicate on the candidate rows' values, then
                // map the qualifying positions back to the original OIDs.
                let values = self.fetch(col, cands);
                let bitmap =
                    pred(&self.ctx, &values).unwrap_or_else(|e| raise("selection failed", e));
                let positions = select::materialize_bitmap(&self.ctx, &bitmap)
                    .unwrap_or_else(|e| raise("materialize failed", e));
                let oids = gather::gather(&self.ctx, &cands.as_oid(), &positions)
                    .unwrap_or_else(|e| raise("candidate remap failed", e));
                OcelotColumn::Oid(oids)
            }
        }
    }
}

impl Backend for OcelotBackend {
    type Column = OcelotColumn;

    fn name(&self) -> &str {
        &self.label
    }

    fn bat(&self, bat: &BatRef) -> OcelotColumn {
        self.upload_bat(bat)
    }
    fn lift_i32(&self, values: Vec<i32>) -> OcelotColumn {
        OcelotColumn::I32(
            self.ctx
                .upload_i32(&values, "lifted_i32")
                .unwrap_or_else(|e| raise("upload failed", e)),
        )
    }
    fn lift_f32(&self, values: Vec<f32>) -> OcelotColumn {
        OcelotColumn::F32(
            self.ctx
                .upload_f32(&values, "lifted_f32")
                .unwrap_or_else(|e| raise("upload failed", e)),
        )
    }
    fn lift_oids(&self, values: Vec<u32>) -> OcelotColumn {
        OcelotColumn::Oid(
            self.ctx
                .upload_u32(&values, "lifted_oids")
                .unwrap_or_else(|e| raise("upload failed", e)),
        )
    }
    fn to_i32(&self, col: &OcelotColumn) -> Vec<i32> {
        col.as_i32().read(&self.ctx).unwrap_or_else(|e| raise("read failed", e))
    }
    fn to_f32(&self, col: &OcelotColumn) -> Vec<f32> {
        col.as_f32().read(&self.ctx).unwrap_or_else(|e| raise("read failed", e))
    }
    fn to_oids(&self, col: &OcelotColumn) -> Vec<u32> {
        col.as_oid().read(&self.ctx).unwrap_or_else(|e| raise("read failed", e))
    }
    fn len(&self, col: &OcelotColumn) -> usize {
        // Resolves a deferred length (sync boundary, like `to_*`).
        col.as_oid().len(&self.ctx).unwrap_or_else(|e| raise("length resolve failed", e))
    }

    fn select_range_i32(
        &self,
        col: &OcelotColumn,
        low: i32,
        high: i32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| {
            select::select_range_i32(ctx, &values.as_i32(), low, high)
        })
    }
    fn select_range_f32(
        &self,
        col: &OcelotColumn,
        low: f32,
        high: f32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| {
            select::select_range_f32(ctx, &values.as_f32(), low, high)
        })
    }
    fn select_eq_i32(
        &self,
        col: &OcelotColumn,
        needle: i32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| {
            select::select_eq_i32(ctx, &values.as_i32(), needle)
        })
    }
    fn select_ne_i32(
        &self,
        col: &OcelotColumn,
        needle: i32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| {
            select::select_ne_i32(ctx, &values.as_i32(), needle)
        })
    }

    fn union_oids(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        // Candidate lists are sorted; the union is a small host-side merge
        // (the paper's union operator similarly runs on materialised OID
        // lists when feeding MonetDB operators).
        let left = self.to_oids(a);
        let right = self.to_oids(b);
        let merged = ocelot_monet::sequential::union_oids(&left, &right);
        self.lift_oids(merged)
    }

    fn fetch(&self, col: &OcelotColumn, oids: &OcelotColumn) -> OcelotColumn {
        let idx = oids.as_oid();
        match col {
            OcelotColumn::I32(c) => OcelotColumn::I32(
                project::fetch_join(&self.ctx, c, &idx)
                    .unwrap_or_else(|e| raise("fetch join failed", e)),
            ),
            OcelotColumn::F32(c) => OcelotColumn::F32(
                project::fetch_join(&self.ctx, c, &idx)
                    .unwrap_or_else(|e| raise("fetch join failed", e)),
            ),
            OcelotColumn::Oid(c) => OcelotColumn::Oid(
                project::fetch_join(&self.ctx, c, &idx)
                    .unwrap_or_else(|e| raise("fetch join failed", e)),
            ),
        }
    }

    fn mul_f32(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::F32(
            calc::mul_f32(&self.ctx, &a.as_f32(), &b.as_f32())
                .unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn add_f32(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::F32(
            calc::add_f32(&self.ctx, &a.as_f32(), &b.as_f32())
                .unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn sub_f32(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::F32(
            calc::sub_f32(&self.ctx, &a.as_f32(), &b.as_f32())
                .unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn const_minus_f32(&self, constant: f32, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::F32(
            calc::const_minus_f32(&self.ctx, constant, &a.as_f32())
                .unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn const_plus_f32(&self, constant: f32, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::F32(
            calc::const_plus_f32(&self.ctx, constant, &a.as_f32())
                .unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn mul_const_f32(&self, a: &OcelotColumn, constant: f32) -> OcelotColumn {
        OcelotColumn::F32(
            calc::mul_const_f32(&self.ctx, &a.as_f32(), constant)
                .unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn cast_i32_f32(&self, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::F32(
            calc::cast_i32_f32(&self.ctx, &a.as_i32()).unwrap_or_else(|e| raise("calc failed", e)),
        )
    }
    fn extract_year(&self, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn::I32(
            calc::extract_year(&self.ctx, &a.as_i32()).unwrap_or_else(|e| raise("calc failed", e)),
        )
    }

    fn pkfk_join(&self, fk: &OcelotColumn, pk: &OcelotColumn) -> (OcelotColumn, OcelotColumn) {
        let pk_col = pk.as_i32();
        let table = OcelotHashTable::build(&self.ctx, &pk_col, pk_col.cap().max(1))
            .unwrap_or_else(|e| raise("hash table build failed", e));
        let result = join::hash_join(&self.ctx, &fk.as_i32(), &table)
            .unwrap_or_else(|e| raise("hash join failed", e));
        (OcelotColumn::Oid(result.probe_oids), OcelotColumn::Oid(result.build_oids))
    }
    fn pkfk_join_partitioned(
        &self,
        fk: &OcelotColumn,
        pk: &OcelotColumn,
        ndv_hint: usize,
    ) -> (OcelotColumn, OcelotColumn) {
        let fk_col = fk.as_i32();
        let pk_col = pk.as_i32();
        // Resolving the input sizes here is a deliberate sync point: the
        // out-of-core path trades the lazy pipeline for host-side partition
        // scheduling (see `ocelot_core::partition`).
        let probe_rows =
            fk_col.len(&self.ctx).unwrap_or_else(|e| raise("length resolve failed", e));
        let build_rows =
            pk_col.len(&self.ctx).unwrap_or_else(|e| raise("length resolve failed", e));
        // The spill pool's working-set cap is the device headroom *now*,
        // not the configured budget: by the time a plan reaches its join,
        // the device already holds the plan's pinned base columns and live
        // intermediates, and the join only gets what is left. Half of the
        // remaining headroom keeps slack for the per-pair hash-table
        // scratch that allocates outside the pool's accounting.
        let budget = (self.ctx.memory().budget() != usize::MAX)
            .then(|| (self.ctx.memory().headroom() / 2).max(64 * 1024));
        let cfg = PartitionedJoinConfig::plan(build_rows, probe_rows, ndv_hint.max(1), budget);
        let result = partitioned_pkfk_join(&self.ctx, &fk_col, &pk_col, &cfg)
            .unwrap_or_else(|e| raise("partitioned join failed", e));
        self.spill_stats.lock().merge(&result.stats);
        (OcelotColumn::Oid(result.probe_oids), OcelotColumn::Oid(result.build_oids))
    }

    fn semi_join(&self, left: &OcelotColumn, right: &OcelotColumn) -> OcelotColumn {
        let right_col = right.as_i32();
        let table = OcelotHashTable::build(&self.ctx, &right_col, right_col.cap().max(1))
            .unwrap_or_else(|e| raise("hash table build failed", e));
        OcelotColumn::Oid(
            join::semi_join(&self.ctx, &left.as_i32(), &table)
                .unwrap_or_else(|e| raise("semi join failed", e)),
        )
    }
    fn anti_join(&self, left: &OcelotColumn, right: &OcelotColumn) -> OcelotColumn {
        let right_col = right.as_i32();
        let table = OcelotHashTable::build(&self.ctx, &right_col, right_col.cap().max(1))
            .unwrap_or_else(|e| raise("hash table build failed", e));
        OcelotColumn::Oid(
            join::anti_join(&self.ctx, &left.as_i32(), &table)
                .unwrap_or_else(|e| raise("anti join failed", e)),
        )
    }

    fn group_by(&self, keys: &[&OcelotColumn]) -> GroupHandle<OcelotColumn> {
        let word_columns: Vec<DevColumn<Oid>> = keys.iter().map(|k| k.as_oid()).collect();
        let columns: Vec<&DevColumn<Oid>> = word_columns.iter().collect();
        let hint =
            self.distinct_hint.min(keys.first().map(|k| k.as_oid().cap()).unwrap_or(1).max(1));
        let result = groupby::group_by_columns(&self.ctx, &columns, hint)
            .unwrap_or_else(|e| raise("group by failed", e));
        GroupHandle {
            gids: OcelotColumn::Oid(result.gids),
            num_groups: result.num_groups,
            representatives: OcelotColumn::Oid(result.representatives),
        }
    }

    fn grouped_sum_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn::F32(
            aggregate::grouped_sum_f32(
                &self.ctx,
                &values.as_f32(),
                &groups.gids.as_oid(),
                groups.num_groups,
            )
            .unwrap_or_else(|e| raise("grouped sum failed", e)),
        )
    }
    fn grouped_count(&self, groups: &GroupHandle<OcelotColumn>) -> OcelotColumn {
        OcelotColumn::F32(
            aggregate::grouped_count(&self.ctx, &groups.gids.as_oid(), groups.num_groups)
                .unwrap_or_else(|e| raise("grouped count failed", e)),
        )
    }
    fn grouped_min_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn::F32(
            aggregate::grouped_min_f32(
                &self.ctx,
                &values.as_f32(),
                &groups.gids.as_oid(),
                groups.num_groups,
            )
            .unwrap_or_else(|e| raise("grouped min failed", e)),
        )
    }
    fn grouped_max_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn::F32(
            aggregate::grouped_max_f32(
                &self.ctx,
                &values.as_f32(),
                &groups.gids.as_oid(),
                groups.num_groups,
            )
            .unwrap_or_else(|e| raise("grouped max failed", e)),
        )
    }
    fn grouped_avg_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn::F32(
            aggregate::grouped_avg_f32(
                &self.ctx,
                &values.as_f32(),
                &groups.gids.as_oid(),
                groups.num_groups,
            )
            .unwrap_or_else(|e| raise("grouped avg failed", e)),
        )
    }

    fn sum_scalar_f32(&self, values: &OcelotColumn) -> OcelotColumn {
        // The deferred path: the one-word result buffer becomes a one-element
        // device column — no flush until someone reads it.
        let scalar = aggregate::sum_f32(&self.ctx, &values.as_f32())
            .unwrap_or_else(|e| raise("sum failed", e));
        OcelotColumn::F32(
            DevColumn::new(scalar.buffer().clone(), 1)
                .unwrap_or_else(|e| raise("scalar buffer holds one word", e)),
        )
    }

    fn sync(&self) {
        self.ctx.sync().unwrap_or_else(|e| raise("sync failed", e));
    }

    fn reclaim_memory(&self, requested_bytes: usize) -> bool {
        self.reclaims.fetch_add(1, Ordering::Relaxed);
        self.ctx.reclaim_device_memory(requested_bytes)
    }

    fn on_device_lost(&self) {
        // Everything device-resident is stranded: drop the shared column
        // cache's entries (any session of the device would otherwise keep
        // handing out columns on the dead device) and the pool's retained
        // buffers. Both repopulate lazily on the fallback device. Compiled
        // plans are invalidated through the plan slot's epoch — a plan
        // cached for the lost device must never be served again (the
        // serving layer recompiles on its next lookup).
        if let Some(cache) = self.ctx.column_cache() {
            cache.purge_lost_device();
        }
        if let Some(plans) = self.ctx.plan_slot() {
            plans.invalidate();
        }
        self.ctx.memory().pool().clear();
    }

    fn sum_f32(&self, values: &OcelotColumn) -> f32 {
        let scalar = aggregate::sum_f32(&self.ctx, &values.as_f32())
            .unwrap_or_else(|e| raise("sum failed", e));
        scalar.get(&self.ctx).unwrap_or_else(|e| raise("sum readback failed", e))
    }
    fn min_f32(&self, values: &OcelotColumn) -> f32 {
        let scalar = aggregate::min_f32(&self.ctx, &values.as_f32())
            .unwrap_or_else(|e| raise("min failed", e));
        scalar.get(&self.ctx).unwrap_or_else(|e| raise("min readback failed", e))
    }
    fn max_f32(&self, values: &OcelotColumn) -> f32 {
        let scalar = aggregate::max_f32(&self.ctx, &values.as_f32())
            .unwrap_or_else(|e| raise("max failed", e));
        scalar.get(&self.ctx).unwrap_or_else(|e| raise("max readback failed", e))
    }
    fn min_i32(&self, values: &OcelotColumn) -> i32 {
        let scalar = aggregate::min_i32(&self.ctx, &values.as_i32())
            .unwrap_or_else(|e| raise("min failed", e));
        scalar.get(&self.ctx).unwrap_or_else(|e| raise("min readback failed", e))
    }
    fn avg_f32(&self, values: &OcelotColumn) -> f32 {
        let scalar = aggregate::avg_f32(&self.ctx, &values.as_f32())
            .unwrap_or_else(|e| raise("avg failed", e));
        scalar.get(&self.ctx).unwrap_or_else(|e| raise("avg readback failed", e))
    }

    fn sort_order_i32(&self, col: &OcelotColumn, descending: bool) -> OcelotColumn {
        let result = sort_radix::sort_i32(&self.ctx, &col.as_i32())
            .unwrap_or_else(|e| raise("sort failed", e));
        if descending {
            // Reversal is a host boundary op (ORDER BY ... DESC feeds the
            // result set); ascending orders stay device-resident.
            let mut order =
                result.order.read(&self.ctx).unwrap_or_else(|e| raise("read failed", e));
            order.reverse();
            self.lift_oids(order)
        } else {
            OcelotColumn::Oid(result.order)
        }
    }
    fn sort_order_f32(&self, col: &OcelotColumn, descending: bool) -> OcelotColumn {
        let result = sort_radix::sort_f32(&self.ctx, &col.as_f32())
            .unwrap_or_else(|e| raise("sort failed", e));
        if descending {
            let mut order =
                result.order.read(&self.ctx).unwrap_or_else(|e| raise("read failed", e));
            order.reverse();
            self.lift_oids(order)
        } else {
            OcelotColumn::Oid(result.order)
        }
    }

    fn profile_marker(&self) -> ProfileMarker {
        let stats = self.ctx.queue().total_stats();
        let spill = *self.spill_stats.lock();
        ProfileMarker {
            kernels: stats.kernels as u64,
            transfers: stats.transfers as u64,
            bytes_to_device: stats.bytes_to_device,
            bytes_from_device: stats.bytes_from_device,
            modeled_ns: stats.modeled_ns,
            flushes: self.ctx.queue().flush_count(),
            spills: spill.spills,
            spilled_bytes: spill.spilled_bytes,
        }
    }

    fn attach_tracer(&self, sink: &Arc<TraceSink>) {
        self.ctx.attach_tracer(sink);
    }

    fn detach_tracer(&self) {
        self.ctx.detach_tracer();
    }

    fn register_metrics(&self, registry: &mut MetricsRegistry) {
        self.ctx.queue().total_stats().register_metrics("ocelot.queue", registry);
        registry.set_counter("ocelot.queue.flushes", self.ctx.queue().flush_count());
        self.ctx.memory().stats().register_metrics("ocelot.memory", registry);
        self.ctx.memory().pool().stats().register_metrics("ocelot.pool", registry);
        self.spill_stats().register_metrics("ocelot.spill", registry);
        registry.set_counter("ocelot.reclaims", self.reclaim_count());
        if let Some(cache) = self.ctx.column_cache() {
            cache.stats().register_metrics("ocelot.cache", registry);
        }
        if let Some(faults) = self.ctx.device().fault_stats() {
            faults.register_metrics("ocelot.faults", registry);
        }
    }

    fn begin_timing(&self) {
        // Drain outstanding work so it is not attributed to the measurement.
        self.ctx.sync().unwrap_or_else(|e| raise("sync failed", e));
        let stats = self.ctx.queue().total_stats();
        *self.timer.lock() = (Instant::now(), stats.modeled_ns);
    }

    fn elapsed_ns(&self) -> u64 {
        self.ctx.sync().unwrap_or_else(|e| raise("sync failed", e));
        let (started, modeled_at_start) = *self.timer.lock();
        if self.ctx.device().is_unified() {
            started.elapsed().as_nanos() as u64
        } else {
            self.ctx.queue().total_stats().modeled_ns - modeled_at_start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::MonetSeqBackend;
    use ocelot_storage::Bat;

    fn mini_pipeline<B: Backend>(backend: &B) -> (Vec<u32>, Vec<(i32, f32)>) {
        let a = backend.bat(&Bat::from_i32("a", (0..2_000).map(|i| i % 100).collect()).into_ref());
        let b = backend
            .bat(&Bat::from_f32("b", (0..2_000).map(|i| i as f32 * 0.5).collect()).into_ref());
        let c = backend.bat(&Bat::from_i32("c", (0..2_000).map(|i| i % 7).collect()).into_ref());

        let sel = backend.select_range_i32(&a, 10, 39, None);
        let b_sel = backend.fetch(&b, &sel);
        let c_sel = backend.fetch(&c, &sel);
        let groups = backend.group_by(&[&c_sel]);
        let sums = backend.to_f32(&backend.grouped_sum_f32(&b_sel, &groups));
        let keys = backend.to_i32(&backend.fetch(&c_sel, &groups.representatives));
        let mut pairs: Vec<(i32, f32)> = keys.into_iter().zip(sums).collect();
        pairs.sort_by_key(|(k, _)| *k);
        (backend.to_oids(&sel), pairs)
    }

    #[test]
    fn ocelot_matches_monet_reference_on_cpu_and_gpu() {
        let reference = mini_pipeline(&MonetSeqBackend::new());
        for backend in [OcelotBackend::cpu(), OcelotBackend::gpu(), OcelotBackend::cpu_sequential()]
        {
            let result = mini_pipeline(&backend);
            assert_eq!(result.0, reference.0, "{}", backend.name());
            assert_eq!(result.1.len(), reference.1.len());
            for ((ka, va), (kb, vb)) in result.1.iter().zip(reference.1.iter()) {
                assert_eq!(ka, kb);
                assert!((va - vb).abs() < 1.0, "{} vs {}", va, vb);
            }
        }
    }

    #[test]
    fn candidate_selection_composes() {
        let backend = OcelotBackend::cpu();
        let reference = MonetSeqBackend::new();
        let values: Vec<i32> = (0..3_000).map(|i| i % 50).collect();
        let other: Vec<i32> = (0..3_000).map(|i| i % 11).collect();

        let oc_v = backend.lift_i32(values.clone());
        let oc_o = backend.lift_i32(other.clone());
        let first = backend.select_range_i32(&oc_v, 5, 30, None);
        let second = backend.select_eq_i32(&oc_o, 3, Some(&first));

        let ms_v = reference.lift_i32(values);
        let ms_o = reference.lift_i32(other);
        let ms_first = reference.select_range_i32(&ms_v, 5, 30, None);
        let ms_second = reference.select_eq_i32(&ms_o, 3, Some(&ms_first));

        assert_eq!(backend.to_oids(&second), reference.to_oids(&ms_second));
    }

    #[test]
    fn chained_candidate_pipeline_flushes_once() {
        // select → candidate select → fetch → multiply → sum, driven through
        // the Backend interface: exactly one queue flush, at the sum.
        let backend = OcelotBackend::cpu();
        let values: Vec<i32> = (0..20_000).map(|i| i % 50).collect();
        let payload: Vec<f32> = (0..20_000).map(|i| i as f32 * 0.25).collect();
        let v = backend.lift_i32(values.clone());
        let p = backend.lift_f32(payload.clone());
        let flushes = backend.context().queue().flush_count();
        let sel = backend.select_range_i32(&v, 5, 30, None);
        let narrowed = backend.select_range_i32(&v, 10, 20, Some(&sel));
        let fetched = backend.fetch(&p, &narrowed);
        let doubled = backend.mul_const_f32(&fetched, 2.0);
        assert_eq!(
            backend.context().queue().flush_count(),
            flushes,
            "pipeline must not flush before the read"
        );
        let total = backend.sum_f32(&doubled);
        assert_eq!(backend.context().queue().flush_count(), flushes + 1);
        let expected: f32 = values
            .iter()
            .zip(&payload)
            .filter(|(v, _)| (10..=20).contains(*v))
            .map(|(_, p)| p * 2.0)
            .sum();
        assert!((total - expected).abs() / expected.abs().max(1.0) < 1e-3, "{total} vs {expected}");
    }

    #[test]
    fn gpu_timing_reports_modeled_time() {
        let backend = OcelotBackend::gpu();
        backend.begin_timing();
        let col = backend.lift_i32((0..100_000).collect());
        let _ = backend.select_range_i32(&col, 0, 50_000, None);
        let elapsed = backend.elapsed_ns();
        assert!(elapsed > 0, "modeled time must be accounted");
    }

    #[test]
    fn joins_match_reference() {
        let backend = OcelotBackend::cpu();
        let reference = MonetSeqBackend::new();
        let fk: Vec<i32> = (0..2_000).map(|i| i % 150).collect();
        let pk: Vec<i32> = (0..150).collect();

        let (of, op) =
            backend.pkfk_join(&backend.lift_i32(fk.clone()), &backend.lift_i32(pk.clone()));
        let (mf, mp) = reference.pkfk_join(&reference.lift_i32(fk), &reference.lift_i32(pk));
        assert_eq!(backend.to_oids(&of), reference.to_oids(&mf));
        assert_eq!(backend.to_oids(&op), reference.to_oids(&mp));
    }
}
