//! The Ocelot configurations: the hardware-oblivious operator set from
//! `ocelot-core` running on any kernel-model device ("Ocelot CPU" when the
//! context uses the multi-core CPU driver, "Ocelot GPU" on the simulated
//! discrete GPU).

use crate::backend::{Backend, GroupHandle};
use ocelot_core::ops::{
    aggregate, calc, groupby, hash_table::OcelotHashTable, join, project, select, sort_radix,
};
use ocelot_core::primitives::gather;
use ocelot_core::{DevColumn, OcelotContext};
use ocelot_kernel::GpuConfig;
use ocelot_storage::BatRef;
use parking_lot::Mutex;
use std::time::Instant;

/// Which 32-bit interpretation a column carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    I32,
    F32,
    Oid,
}

/// A device column plus its logical type.
#[derive(Debug, Clone)]
pub struct OcelotColumn {
    col: DevColumn,
    kind: ColKind,
}

/// The Ocelot backend (paper's "CPU" and "GPU" series, depending on the
/// device the context was created with).
pub struct OcelotBackend {
    ctx: OcelotContext,
    label: String,
    timer: Mutex<(Instant, u64)>,
    /// Default sizing hint for hash tables built by group-by and joins.
    distinct_hint: usize,
}

impl OcelotBackend {
    /// Ocelot on the multi-core CPU driver.
    pub fn cpu() -> Self {
        Self::with_context(OcelotContext::cpu(), "Ocelot CPU")
    }

    /// Ocelot on the sequential CPU driver.
    pub fn cpu_sequential() -> Self {
        Self::with_context(OcelotContext::cpu_sequential(), "Ocelot CPU (sequential)")
    }

    /// Ocelot on the simulated discrete GPU with default parameters.
    pub fn gpu() -> Self {
        Self::with_context(OcelotContext::gpu(), "Ocelot GPU")
    }

    /// Ocelot on a simulated GPU with an explicit configuration (used by the
    /// memory-pressure benchmarks).
    pub fn gpu_with(config: GpuConfig) -> Self {
        Self::with_context(OcelotContext::gpu_with(config), "Ocelot GPU")
    }

    /// Wraps an existing context.
    pub fn with_context(ctx: OcelotContext, label: &str) -> Self {
        OcelotBackend {
            ctx,
            label: label.to_string(),
            timer: Mutex::new((Instant::now(), 0)),
            distinct_hint: 1024,
        }
    }

    /// The underlying Ocelot context (device, queue, Memory Manager).
    pub fn context(&self) -> &OcelotContext {
        &self.ctx
    }

    fn upload_bat(&self, bat: &BatRef) -> OcelotColumn {
        let kind = if bat.as_f32().is_some() {
            ColKind::F32
        } else if bat.as_oid().is_some() {
            ColKind::Oid
        } else {
            ColKind::I32
        };
        let col = project::device_column_for_bat(&self.ctx, bat).expect("device upload failed");
        OcelotColumn { col, kind }
    }

    /// Selection helper: evaluates a predicate bitmap over either the full
    /// column or the candidate subset, returning an OID candidate list.
    fn select_with<F>(
        &self,
        col: &OcelotColumn,
        cands: Option<&OcelotColumn>,
        pred: F,
    ) -> OcelotColumn
    where
        F: Fn(&OcelotContext, &DevColumn) -> ocelot_kernel::Result<ocelot_core::Bitmap>,
    {
        match cands {
            None => {
                let bitmap = pred(&self.ctx, &col.col).expect("selection failed");
                let oids =
                    select::materialize_bitmap(&self.ctx, &bitmap).expect("materialize failed");
                OcelotColumn { col: oids, kind: ColKind::Oid }
            }
            Some(cands) => {
                // Evaluate the predicate on the candidate rows' values, then
                // map the qualifying positions back to the original OIDs.
                let values = gather::gather(&self.ctx, &col.col, &cands.col)
                    .expect("candidate gather failed");
                let bitmap = pred(&self.ctx, &values).expect("selection failed");
                let positions =
                    select::materialize_bitmap(&self.ctx, &bitmap).expect("materialize failed");
                let oids = gather::gather(&self.ctx, &cands.col, &positions)
                    .expect("candidate remap failed");
                OcelotColumn { col: oids, kind: ColKind::Oid }
            }
        }
    }
}

impl Backend for OcelotBackend {
    type Column = OcelotColumn;

    fn name(&self) -> &str {
        &self.label
    }

    fn bat(&self, bat: &BatRef) -> OcelotColumn {
        self.upload_bat(bat)
    }
    fn lift_i32(&self, values: Vec<i32>) -> OcelotColumn {
        let col = self.ctx.upload_i32(&values, "lifted_i32").expect("upload failed");
        OcelotColumn { col, kind: ColKind::I32 }
    }
    fn lift_f32(&self, values: Vec<f32>) -> OcelotColumn {
        let col = self.ctx.upload_f32(&values, "lifted_f32").expect("upload failed");
        OcelotColumn { col, kind: ColKind::F32 }
    }
    fn lift_oids(&self, values: Vec<u32>) -> OcelotColumn {
        let col = self.ctx.upload_u32(&values, "lifted_oids").expect("upload failed");
        OcelotColumn { col, kind: ColKind::Oid }
    }
    fn to_i32(&self, col: &OcelotColumn) -> Vec<i32> {
        self.ctx.download_i32(&col.col).expect("download failed")
    }
    fn to_f32(&self, col: &OcelotColumn) -> Vec<f32> {
        self.ctx.download_f32(&col.col).expect("download failed")
    }
    fn to_oids(&self, col: &OcelotColumn) -> Vec<u32> {
        self.ctx.download_u32(&col.col).expect("download failed")
    }
    fn len(&self, col: &OcelotColumn) -> usize {
        col.col.len
    }

    fn select_range_i32(
        &self,
        col: &OcelotColumn,
        low: i32,
        high: i32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| select::select_range_i32(ctx, values, low, high))
    }
    fn select_range_f32(
        &self,
        col: &OcelotColumn,
        low: f32,
        high: f32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| select::select_range_f32(ctx, values, low, high))
    }
    fn select_eq_i32(
        &self,
        col: &OcelotColumn,
        needle: i32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| select::select_eq_i32(ctx, values, needle))
    }
    fn select_ne_i32(
        &self,
        col: &OcelotColumn,
        needle: i32,
        cands: Option<&OcelotColumn>,
    ) -> OcelotColumn {
        self.select_with(col, cands, |ctx, values| select::select_ne_i32(ctx, values, needle))
    }

    fn union_oids(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        // Candidate lists are sorted; the union is a small host-side merge
        // (the paper's union operator similarly runs on materialised OID
        // lists when feeding MonetDB operators).
        let left = self.to_oids(a);
        let right = self.to_oids(b);
        let merged = ocelot_monet::sequential::union_oids(&left, &right);
        self.lift_oids(merged)
    }

    fn fetch(&self, col: &OcelotColumn, oids: &OcelotColumn) -> OcelotColumn {
        let out = project::fetch_join(&self.ctx, &col.col, &oids.col).expect("fetch join failed");
        OcelotColumn { col: out, kind: col.kind }
    }

    fn mul_f32(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::mul_f32(&self.ctx, &a.col, &b.col).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn add_f32(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::add_f32(&self.ctx, &a.col, &b.col).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn sub_f32(&self, a: &OcelotColumn, b: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::sub_f32(&self.ctx, &a.col, &b.col).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn const_minus_f32(&self, constant: f32, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::const_minus_f32(&self.ctx, constant, &a.col).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn const_plus_f32(&self, constant: f32, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::const_plus_f32(&self.ctx, constant, &a.col).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn mul_const_f32(&self, a: &OcelotColumn, constant: f32) -> OcelotColumn {
        OcelotColumn {
            col: calc::mul_const_f32(&self.ctx, &a.col, constant).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn cast_i32_f32(&self, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::cast_i32_f32(&self.ctx, &a.col).expect("calc failed"),
            kind: ColKind::F32,
        }
    }
    fn extract_year(&self, a: &OcelotColumn) -> OcelotColumn {
        OcelotColumn {
            col: calc::extract_year(&self.ctx, &a.col).expect("calc failed"),
            kind: ColKind::I32,
        }
    }

    fn pkfk_join(&self, fk: &OcelotColumn, pk: &OcelotColumn) -> (OcelotColumn, OcelotColumn) {
        let table = OcelotHashTable::build(&self.ctx, &pk.col, pk.col.len.max(1))
            .expect("hash table build failed");
        let result = join::hash_join(&self.ctx, &fk.col, &table).expect("hash join failed");
        (
            OcelotColumn { col: result.probe_oids, kind: ColKind::Oid },
            OcelotColumn { col: result.build_oids, kind: ColKind::Oid },
        )
    }
    fn semi_join(&self, left: &OcelotColumn, right: &OcelotColumn) -> OcelotColumn {
        let table = OcelotHashTable::build(&self.ctx, &right.col, right.col.len.max(1))
            .expect("hash table build failed");
        OcelotColumn {
            col: join::semi_join(&self.ctx, &left.col, &table).expect("semi join failed"),
            kind: ColKind::Oid,
        }
    }
    fn anti_join(&self, left: &OcelotColumn, right: &OcelotColumn) -> OcelotColumn {
        let table = OcelotHashTable::build(&self.ctx, &right.col, right.col.len.max(1))
            .expect("hash table build failed");
        OcelotColumn {
            col: join::anti_join(&self.ctx, &left.col, &table).expect("anti join failed"),
            kind: ColKind::Oid,
        }
    }

    fn group_by(&self, keys: &[&OcelotColumn]) -> GroupHandle<OcelotColumn> {
        let columns: Vec<&DevColumn> = keys.iter().map(|k| &k.col).collect();
        let hint = self.distinct_hint.min(keys.first().map(|k| k.col.len).unwrap_or(1).max(1));
        let result = groupby::group_by_columns(&self.ctx, &columns, hint).expect("group by failed");
        GroupHandle {
            gids: OcelotColumn { col: result.gids, kind: ColKind::Oid },
            num_groups: result.num_groups,
            representatives: OcelotColumn { col: result.representatives, kind: ColKind::Oid },
        }
    }

    fn grouped_sum_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn {
            col: aggregate::grouped_sum_f32(
                &self.ctx,
                &values.col,
                &groups.gids.col,
                groups.num_groups,
            )
            .expect("grouped sum failed"),
            kind: ColKind::F32,
        }
    }
    fn grouped_count(&self, groups: &GroupHandle<OcelotColumn>) -> OcelotColumn {
        OcelotColumn {
            col: aggregate::grouped_count(&self.ctx, &groups.gids.col, groups.num_groups)
                .expect("grouped count failed"),
            kind: ColKind::F32,
        }
    }
    fn grouped_min_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn {
            col: aggregate::grouped_min_f32(
                &self.ctx,
                &values.col,
                &groups.gids.col,
                groups.num_groups,
            )
            .expect("grouped min failed"),
            kind: ColKind::F32,
        }
    }
    fn grouped_max_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn {
            col: aggregate::grouped_max_f32(
                &self.ctx,
                &values.col,
                &groups.gids.col,
                groups.num_groups,
            )
            .expect("grouped max failed"),
            kind: ColKind::F32,
        }
    }
    fn grouped_avg_f32(
        &self,
        values: &OcelotColumn,
        groups: &GroupHandle<OcelotColumn>,
    ) -> OcelotColumn {
        OcelotColumn {
            col: aggregate::grouped_avg_f32(
                &self.ctx,
                &values.col,
                &groups.gids.col,
                groups.num_groups,
            )
            .expect("grouped avg failed"),
            kind: ColKind::F32,
        }
    }

    fn sum_f32(&self, values: &OcelotColumn) -> f32 {
        aggregate::sum_f32(&self.ctx, &values.col).expect("sum failed")
    }
    fn min_f32(&self, values: &OcelotColumn) -> f32 {
        aggregate::min_f32(&self.ctx, &values.col).expect("min failed")
    }
    fn max_f32(&self, values: &OcelotColumn) -> f32 {
        aggregate::max_f32(&self.ctx, &values.col).expect("max failed")
    }
    fn min_i32(&self, values: &OcelotColumn) -> i32 {
        aggregate::min_i32(&self.ctx, &values.col).expect("min failed")
    }
    fn avg_f32(&self, values: &OcelotColumn) -> f32 {
        aggregate::avg_f32(&self.ctx, &values.col).expect("avg failed").unwrap_or(0.0)
    }

    fn sort_order_i32(&self, col: &OcelotColumn, descending: bool) -> OcelotColumn {
        let result = sort_radix::sort_i32(&self.ctx, &col.col).expect("sort failed");
        let mut order = self.ctx.download_u32(&result.order).expect("download failed");
        if descending {
            order.reverse();
        }
        self.lift_oids(order)
    }
    fn sort_order_f32(&self, col: &OcelotColumn, descending: bool) -> OcelotColumn {
        let result = sort_radix::sort_f32(&self.ctx, &col.col).expect("sort failed");
        let mut order = self.ctx.download_u32(&result.order).expect("download failed");
        if descending {
            order.reverse();
        }
        self.lift_oids(order)
    }

    fn begin_timing(&self) {
        // Drain outstanding work so it is not attributed to the measurement.
        self.ctx.sync().expect("sync failed");
        let stats = self.ctx.queue().total_stats();
        *self.timer.lock() = (Instant::now(), stats.modeled_ns);
    }

    fn elapsed_ns(&self) -> u64 {
        self.ctx.sync().expect("sync failed");
        let (started, modeled_at_start) = *self.timer.lock();
        if self.ctx.device().is_unified() {
            started.elapsed().as_nanos() as u64
        } else {
            self.ctx.queue().total_stats().modeled_ns - modeled_at_start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::MonetSeqBackend;
    use ocelot_storage::Bat;

    fn mini_pipeline<B: Backend>(backend: &B) -> (Vec<u32>, Vec<(i32, f32)>) {
        let a = backend.bat(&Bat::from_i32("a", (0..2_000).map(|i| i % 100).collect()).into_ref());
        let b = backend
            .bat(&Bat::from_f32("b", (0..2_000).map(|i| i as f32 * 0.5).collect()).into_ref());
        let c = backend.bat(&Bat::from_i32("c", (0..2_000).map(|i| i % 7).collect()).into_ref());

        let sel = backend.select_range_i32(&a, 10, 39, None);
        let b_sel = backend.fetch(&b, &sel);
        let c_sel = backend.fetch(&c, &sel);
        let groups = backend.group_by(&[&c_sel]);
        let sums = backend.to_f32(&backend.grouped_sum_f32(&b_sel, &groups));
        let keys = backend.to_i32(&backend.fetch(&c_sel, &groups.representatives));
        let mut pairs: Vec<(i32, f32)> = keys.into_iter().zip(sums).collect();
        pairs.sort_by_key(|(k, _)| *k);
        (backend.to_oids(&sel), pairs)
    }

    #[test]
    fn ocelot_matches_monet_reference_on_cpu_and_gpu() {
        let reference = mini_pipeline(&MonetSeqBackend::new());
        for backend in [OcelotBackend::cpu(), OcelotBackend::gpu(), OcelotBackend::cpu_sequential()]
        {
            let result = mini_pipeline(&backend);
            assert_eq!(result.0, reference.0, "{}", backend.name());
            assert_eq!(result.1.len(), reference.1.len());
            for ((ka, va), (kb, vb)) in result.1.iter().zip(reference.1.iter()) {
                assert_eq!(ka, kb);
                assert!((va - vb).abs() < 1.0, "{} vs {}", va, vb);
            }
        }
    }

    #[test]
    fn candidate_selection_composes() {
        let backend = OcelotBackend::cpu();
        let reference = MonetSeqBackend::new();
        let values: Vec<i32> = (0..3_000).map(|i| i % 50).collect();
        let other: Vec<i32> = (0..3_000).map(|i| i % 11).collect();

        let oc_v = backend.lift_i32(values.clone());
        let oc_o = backend.lift_i32(other.clone());
        let first = backend.select_range_i32(&oc_v, 5, 30, None);
        let second = backend.select_eq_i32(&oc_o, 3, Some(&first));

        let ms_v = reference.lift_i32(values);
        let ms_o = reference.lift_i32(other);
        let ms_first = reference.select_range_i32(&ms_v, 5, 30, None);
        let ms_second = reference.select_eq_i32(&ms_o, 3, Some(&ms_first));

        assert_eq!(backend.to_oids(&second), reference.to_oids(&ms_second));
    }

    #[test]
    fn gpu_timing_reports_modeled_time() {
        let backend = OcelotBackend::gpu();
        backend.begin_timing();
        let col = backend.lift_i32((0..100_000).collect());
        let _ = backend.select_range_i32(&col, 0, 50_000, None);
        let elapsed = backend.elapsed_ns();
        assert!(elapsed > 0, "modeled time must be accounted");
    }

    #[test]
    fn joins_match_reference() {
        let backend = OcelotBackend::cpu();
        let reference = MonetSeqBackend::new();
        let fk: Vec<i32> = (0..2_000).map(|i| i % 150).collect();
        let pk: Vec<i32> = (0..150).collect();

        let (of, op) =
            backend.pkfk_join(&backend.lift_i32(fk.clone()), &backend.lift_i32(pk.clone()));
        let (mf, mp) = reference.pkfk_join(&reference.lift_i32(fk), &reference.lift_i32(pk));
        assert_eq!(backend.to_oids(&of), reference.to_oids(&mf));
        assert_eq!(backend.to_oids(&op), reference.to_oids(&mp));
    }
}
