//! # ocelot-engine — the query layer
//!
//! The paper evaluates four configurations that all execute *the same
//! logical plans*: sequential MonetDB (MS), parallel MonetDB (MP), Ocelot on
//! the CPU and Ocelot on the GPU (§5.1). This crate provides the layer that
//! makes that possible in the reproduction:
//!
//! * [`backend::Backend`] — a single logical operator interface
//!   (selection, projection, arithmetic maps, joins, grouping, aggregation,
//!   sorting). TPC-H queries in `ocelot-tpch` are written once against this
//!   trait, mirroring how Ocelot's operators are drop-in replacements behind
//!   MonetDB's operator interface.
//! * [`backends`] — the four implementations: [`backends::MonetSeqBackend`]
//!   (MS), [`backends::MonetParBackend`] (MP), and [`backends::OcelotBackend`]
//!   over any `ocelot-core` device (Ocelot CPU / Ocelot GPU).
//! * [`mal`] — a miniature MAL-like program representation and the Ocelot
//!   query rewriter that reroutes plan instructions from the
//!   `algebra`/`batcalc` modules to their `ocelot` counterparts and inserts
//!   explicit `sync` instructions at ownership boundaries (paper §3.4).
//!   Since PR 3 MAL programs are **compiled** ([`mal::compile`]) into the
//!   engine's operator DAG instead of being interpreted statement by
//!   statement.
//! * [`plan`] — the compiled form: a kind-checked DAG of [`plan::PlanNode`]s
//!   with declared inputs/outputs, executed by a resumable register machine
//!   ([`plan::PlanRun`]) that frees registers at their last use.
//! * [`query`] — the **logical** layer above all of that (PR 5): a typed
//!   relational algebra ([`query::Query`] — scan / filter / map / join /
//!   group / sort / limit over an expression tree), a rule-based rewriter
//!   (constant folding, predicate pushdown, selectivity-ordered predicate
//!   application, projection pruning) and an optimizing lowering pass that
//!   compiles the logical tree onto [`plan::PlanBuilder`] — so the
//!   *engine* picks physical operators (selection kinds, candidate
//!   chaining, join build sides), not the query author.
//!   [`query::Query::explain`] renders every decision.
//! * [`session`] — one client's execution context. Ocelot sessions are
//!   created from an `ocelot_core::SharedDevice`: private command queue,
//!   result buffers recycled through the device's shared pool.
//! * [`scheduler`] — admits several sessions' plans together and
//!   interleaves their node execution under a deterministic FIFO +
//!   round-robin contract (see the module docs), so host-resolve points of
//!   one query overlap with the enqueue work of another while per-plan
//!   flush bounds hold unchanged. The serving policy
//!   ([`scheduler::ServeScheduler`]) layers per-tenant deficit-round-robin
//!   fair queueing, two priority lanes and bounded-queue backpressure
//!   (typed [`plan::PlanError::Overloaded`] rejection) on top.
//! * [`serve`] — the parameterized compiled-plan cache: queries authored
//!   once per *shape* with [`query::param`] placeholders, compiled once
//!   (rewrite + statistics + lowering), then re-bound per request from
//!   the device-wide [`serve::PlanCache`] — invalidated on device loss
//!   and versioned by catalog generation.
//!
//! Timing is part of the interface: [`backend::Backend::begin_timing`] /
//! [`backend::Backend::elapsed_ns`] report wall-clock time for the CPU
//! configurations and modeled device time for the simulated GPU, which is
//! what the benchmark harness records for every figure.

pub mod analyze;
pub mod backend;
pub mod backends;
pub mod mal;
pub mod plan;
pub mod query;
pub mod scheduler;
pub mod serve;
pub mod session;

pub use analyze::{verify, FlushBound, PlanDiagnostic, VerifyReport};
pub use backend::{Backend, GroupHandle, ProfileMarker};
pub use backends::{MonetParBackend, MonetSeqBackend, OcelotBackend};
pub use ocelot_trace::{
    MetricsRegistry, NodeAction, SchedAction, TraceEvent, TraceEventKind, TraceSink,
};
pub use plan::{
    NodeProfile, Plan, PlanBuilder, PlanError, PlanNode, PlanOp, PlanProfile, QueryValue,
    RecoveryEvent, RecoveryStats,
};
pub use query::{
    col, lit, litf, param, AggSpec, Expr, ParamValue, Query, QueryBuildError, RewriteConfig,
};
pub use scheduler::{
    Lane, QueryJob, Scheduler, ServeJob, ServeOutcome, ServeScheduler, ServeStats,
};
pub use serve::{PlanCache, PlanCacheStats};
pub use session::Session;
