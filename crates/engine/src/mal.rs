//! A miniature MAL layer: plan representation, the Ocelot query rewriter and
//! a plan interpreter.
//!
//! MonetDB compiles SQL into MAL (MonetDB Assembly Language) programs whose
//! instructions name the module implementing them (`algebra.select`,
//! `batcalc.*`, `aggr.sum`, …). Ocelot advertises its operators under an
//! `ocelot` module and the *query rewriter* reroutes instructions to those
//! implementations and inserts explicit `ocelot.sync` instructions wherever
//! ownership of a BAT passes back to MonetDB (paper §3.1, §3.4).
//!
//! The reproduction keeps this layer intentionally small — enough to show
//! the architecture end-to-end: a [`MalPlan`] built from a handful of
//! instruction kinds, [`rewrite_for_ocelot`] performing the module rewrite
//! and sync insertion, and [`execute`] interpreting a plan against any
//! [`Backend`]. The TPC-H workload itself is written directly against the
//! `Backend` trait (see `ocelot-tpch`), which is equivalent in effect: the
//! same logical plan runs on every configuration.

use crate::backend::Backend;
use ocelot_storage::Catalog;
use std::collections::HashMap;

/// A virtual register holding an intermediate column.
pub type Var = usize;

/// The module an instruction is routed to. MonetDB modules (`algebra`,
/// `batcalc`, `aggr`) are replaced by `ocelot` during rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Module {
    /// MonetDB's relational algebra module.
    Algebra,
    /// MonetDB's column arithmetic module.
    Batcalc,
    /// MonetDB's aggregation module.
    Aggr,
    /// The BAT/storage module (binds base columns; never rewritten).
    Bat,
    /// Ocelot's drop-in operator module.
    Ocelot,
}

/// One MAL instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum MalInstr {
    /// `out := bat.bind(table, column)`
    Bind { module: Module, table: String, column: String, out: Var },
    /// `out := <module>.select(input, low, high)` (inclusive integer range).
    SelectRangeI32 { module: Module, input: Var, low: i32, high: i32, out: Var },
    /// `out := <module>.projection(oids, values)` (left fetch join).
    Fetch { module: Module, values: Var, oids: Var, out: Var },
    /// `out := <module>.mul(a, b)` over floats.
    MulF32 { module: Module, a: Var, b: Var, out: Var },
    /// `out := <module>.sum(values)` (scalar float result).
    SumF32 { module: Module, values: Var, out: Var },
    /// `ocelot.sync(vars)` — waits for the producers of `vars` and hands
    /// ownership back to MonetDB. Inserted by the rewriter.
    Sync { vars: Vec<Var> },
    /// Marks `vars` as the plan's result set.
    Result { vars: Vec<Var> },
}

impl MalInstr {
    /// The module executing this instruction, if it has one.
    pub fn module(&self) -> Option<Module> {
        match self {
            MalInstr::Bind { module, .. }
            | MalInstr::SelectRangeI32 { module, .. }
            | MalInstr::Fetch { module, .. }
            | MalInstr::MulF32 { module, .. }
            | MalInstr::SumF32 { module, .. } => Some(*module),
            MalInstr::Sync { .. } | MalInstr::Result { .. } => None,
        }
    }

    fn with_module(mut self, new_module: Module) -> MalInstr {
        match &mut self {
            MalInstr::Bind { module, .. }
            | MalInstr::SelectRangeI32 { module, .. }
            | MalInstr::Fetch { module, .. }
            | MalInstr::MulF32 { module, .. }
            | MalInstr::SumF32 { module, .. } => *module = new_module,
            MalInstr::Sync { .. } | MalInstr::Result { .. } => {}
        }
        self
    }
}

/// A straight-line MAL program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MalPlan {
    /// The instructions in execution order.
    pub instructions: Vec<MalInstr>,
}

impl MalPlan {
    /// Creates an empty plan.
    pub fn new() -> MalPlan {
        MalPlan::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: MalInstr) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

/// The Ocelot query rewriter: reroutes every `algebra`/`batcalc`/`aggr`
/// instruction to the `ocelot` module and inserts an `ocelot.sync` on the
/// result variables immediately before the `result` instruction — the point
/// where ownership returns to MonetDB (paper §3.4).
pub fn rewrite_for_ocelot(plan: &MalPlan) -> MalPlan {
    let mut rewritten = MalPlan::new();
    for instruction in &plan.instructions {
        match instruction {
            MalInstr::Result { vars } => {
                rewritten.push(MalInstr::Sync { vars: vars.clone() });
                rewritten.push(instruction.clone());
            }
            other => {
                let instr = match other.module() {
                    Some(Module::Algebra) | Some(Module::Batcalc) | Some(Module::Aggr) => {
                        other.clone().with_module(Module::Ocelot)
                    }
                    _ => other.clone(),
                };
                rewritten.push(instr);
            }
        }
    }
    rewritten
}

/// A value produced by plan execution.
#[derive(Debug, Clone, PartialEq)]
pub enum MalValue {
    /// A float scalar (from ungrouped aggregation).
    Scalar(f32),
    /// A materialised integer column.
    IntColumn(Vec<i32>),
    /// A materialised float column.
    FloatColumn(Vec<f32>),
    /// A materialised OID column.
    OidColumn(Vec<u32>),
}

/// Executes a plan against a backend and returns the materialised result
/// variables in the order the `result` instruction lists them.
///
/// Every instruction stays deferred on backends with lazy columns:
/// reductions go through [`Backend::sum_scalar_f32`], so their results live
/// in one-element device columns, and the events threading the pipeline
/// only resolve at the `ocelot.sync` instruction (routed to
/// [`Backend::sync`]) or at result materialisation — the ownership
/// hand-back boundaries of the paper (§3.4).
pub fn execute<B: Backend>(
    plan: &MalPlan,
    backend: &B,
    catalog: &Catalog,
) -> Result<Vec<MalValue>, String> {
    /// A register value. Scalar aggregates live in one-element columns
    /// (device-resident on lazy backends); carrying the kind in the value
    /// makes reassignment impossible to desynchronise.
    enum Slot<C> {
        Column(C),
        ScalarColumn(C),
    }
    let mut registers: HashMap<Var, Slot<B::Column>> = HashMap::new();
    let mut results = Vec::new();

    let column =
        |registers: &HashMap<Var, Slot<B::Column>>, var: Var| -> Result<B::Column, String> {
            match registers.get(&var) {
                Some(Slot::Column(c)) => Ok(c.clone()),
                Some(Slot::ScalarColumn(_)) => {
                    Err(format!("variable {var} holds a scalar, expected a column"))
                }
                None => Err(format!("variable {var} is undefined")),
            }
        };

    for instruction in &plan.instructions {
        match instruction {
            MalInstr::Bind { table, column: col_name, out, .. } => {
                let bat = catalog
                    .column(table, col_name)
                    .ok_or_else(|| format!("unknown column {table}.{col_name}"))?;
                registers.insert(*out, Slot::Column(backend.bat(bat)));
            }
            MalInstr::SelectRangeI32 { input, low, high, out, .. } => {
                let input = column(&registers, *input)?;
                registers.insert(
                    *out,
                    Slot::Column(backend.select_range_i32(&input, *low, *high, None)),
                );
            }
            MalInstr::Fetch { values, oids, out, .. } => {
                let values = column(&registers, *values)?;
                let oids = column(&registers, *oids)?;
                registers.insert(*out, Slot::Column(backend.fetch(&values, &oids)));
            }
            MalInstr::MulF32 { a, b, out, .. } => {
                let a = column(&registers, *a)?;
                let b = column(&registers, *b)?;
                registers.insert(*out, Slot::Column(backend.mul_f32(&a, &b)));
            }
            MalInstr::SumF32 { values, out, .. } => {
                let values = column(&registers, *values)?;
                // Deferred: the sum stays a one-element device column until
                // the sync/result boundary.
                registers.insert(*out, Slot::ScalarColumn(backend.sum_scalar_f32(&values)));
            }
            MalInstr::Sync { vars } => {
                // The ownership hand-back: every event feeding `vars` (and
                // anything else scheduled) completes here.
                for var in vars {
                    if !registers.contains_key(var) {
                        return Err(format!("sync variable {var} is undefined"));
                    }
                }
                backend.sync();
            }
            MalInstr::Result { vars } => {
                for var in vars {
                    let value = match registers.get(var) {
                        Some(Slot::ScalarColumn(c)) => {
                            let scalars = backend.to_f32(c);
                            MalValue::Scalar(scalars.first().copied().unwrap_or(0.0))
                        }
                        Some(Slot::Column(c)) => MalValue::FloatColumn(backend.to_f32(c)),
                        None => return Err(format!("result variable {var} is undefined")),
                    };
                    results.push(value);
                }
            }
        }
    }
    Ok(results)
}

/// Builds the example plan used throughout the paper's Figure 3:
/// `SELECT sum(b * b) FROM t WHERE a BETWEEN low AND high`.
pub fn example_plan(table: &str, a: &str, b: &str, low: i32, high: i32) -> MalPlan {
    let mut plan = MalPlan::new();
    plan.push(MalInstr::Bind {
        module: Module::Bat,
        table: table.into(),
        column: a.into(),
        out: 0,
    })
    .push(MalInstr::Bind { module: Module::Bat, table: table.into(), column: b.into(), out: 1 })
    .push(MalInstr::SelectRangeI32 { module: Module::Algebra, input: 0, low, high, out: 2 })
    .push(MalInstr::Fetch { module: Module::Algebra, values: 1, oids: 2, out: 3 })
    .push(MalInstr::MulF32 { module: Module::Batcalc, a: 3, b: 3, out: 4 })
    .push(MalInstr::SumF32 { module: Module::Aggr, values: 4, out: 5 })
    .push(MalInstr::Result { vars: vec![5] });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{MonetSeqBackend, OcelotBackend};
    use ocelot_storage::{Bat, Catalog, Table};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", (0..1_000).map(|i| i % 50).collect()).into_ref())
            .with_column(
                "b",
                Bat::from_f32("b", (0..1_000).map(|i| i as f32 * 0.1).collect()).into_ref(),
            );
        catalog.add_table(table);
        catalog
    }

    #[test]
    fn rewriter_reroutes_modules_and_inserts_sync() {
        let plan = example_plan("t", "a", "b", 10, 20);
        let rewritten = rewrite_for_ocelot(&plan);
        assert_eq!(rewritten.len(), plan.len() + 1, "one sync instruction inserted");
        // Every algebra/batcalc/aggr instruction is now an ocelot instruction.
        for instruction in &rewritten.instructions {
            if let Some(module) = instruction.module() {
                assert!(
                    module == Module::Ocelot || module == Module::Bat,
                    "unexpected module {module:?} after rewriting"
                );
            }
        }
        // The sync is placed directly before the result.
        let n = rewritten.instructions.len();
        assert!(matches!(rewritten.instructions[n - 2], MalInstr::Sync { .. }));
        assert!(matches!(rewritten.instructions[n - 1], MalInstr::Result { .. }));
        // Bind instructions keep their module.
        assert_eq!(rewritten.instructions[0].module(), Some(Module::Bat));
    }

    #[test]
    fn rewritten_plan_produces_identical_results() {
        let catalog = catalog();
        let plan = example_plan("t", "a", "b", 10, 20);
        let reference = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap();

        let rewritten = rewrite_for_ocelot(&plan);
        for backend in [OcelotBackend::cpu(), OcelotBackend::gpu()] {
            let result = execute(&rewritten, &backend, &catalog).unwrap();
            assert_eq!(result.len(), 1);
            match (&reference[0], &result[0]) {
                (MalValue::Scalar(a), MalValue::Scalar(b)) => {
                    assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "{a} vs {b}");
                }
                other => panic!("unexpected result shapes: {other:?}"),
            }
        }
    }

    #[test]
    fn ocelot_plan_is_lazy_until_sync() {
        let catalog = catalog();
        let plan = rewrite_for_ocelot(&example_plan("t", "a", "b", 10, 20));
        let backend = OcelotBackend::cpu();
        let before = backend.context().queue().flush_count();
        let result = execute(&plan, &backend, &catalog).unwrap();
        let after = backend.context().queue().flush_count();
        assert_eq!(after, before + 1, "the whole plan flushes once, at ocelot.sync");
        assert!(matches!(result[0], MalValue::Scalar(_)));
    }

    #[test]
    fn execution_errors_are_reported() {
        let catalog = catalog();
        let mut plan = MalPlan::new();
        plan.push(MalInstr::Bind {
            module: Module::Bat,
            table: "missing".into(),
            column: "a".into(),
            out: 0,
        });
        let err = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap_err();
        assert!(err.contains("unknown column"));

        let mut plan = MalPlan::new();
        plan.push(MalInstr::SumF32 { module: Module::Aggr, values: 42, out: 0 });
        let err = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap_err();
        assert!(err.contains("undefined"));
    }

    #[test]
    fn scalar_results_cannot_feed_column_instructions() {
        let catalog = catalog();
        let mut plan = MalPlan::new();
        plan.push(MalInstr::Bind {
            module: Module::Bat,
            table: "t".into(),
            column: "b".into(),
            out: 0,
        })
        .push(MalInstr::SumF32 { module: Module::Aggr, values: 0, out: 1 })
        .push(MalInstr::MulF32 { module: Module::Batcalc, a: 1, b: 0, out: 2 })
        .push(MalInstr::Result { vars: vec![2] });
        let err = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap_err();
        assert!(err.contains("holds a scalar"), "{err}");
    }

    #[test]
    fn reassigned_scalar_vars_report_as_columns() {
        let catalog = catalog();
        let mut plan = MalPlan::new();
        plan.push(MalInstr::Bind {
            module: Module::Bat,
            table: "t".into(),
            column: "b".into(),
            out: 0,
        })
        .push(MalInstr::SumF32 { module: Module::Aggr, values: 0, out: 1 })
        // Variable 1 is overwritten by a column instruction; the result must
        // be the full column, not a one-element scalar.
        .push(MalInstr::MulF32 { module: Module::Batcalc, a: 0, b: 0, out: 1 })
        .push(MalInstr::Result { vars: vec![1] });
        let result = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap();
        match &result[0] {
            MalValue::FloatColumn(col) => assert_eq!(col.len(), 1_000),
            other => panic!("expected a column, got {other:?}"),
        }
    }

    #[test]
    fn plan_builders() {
        let mut plan = MalPlan::new();
        assert!(plan.is_empty());
        plan.push(MalInstr::Result { vars: vec![] });
        assert_eq!(plan.len(), 1);
    }
}
