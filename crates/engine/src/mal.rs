//! A miniature MAL layer: program representation, the Ocelot query rewriter
//! and a **compiler** into the engine's operator DAG.
//!
//! MonetDB compiles SQL into MAL (MonetDB Assembly Language) programs whose
//! instructions name the module implementing them (`algebra.select`,
//! `batcalc.*`, `aggr.sum`, …). Ocelot advertises its operators under an
//! `ocelot` module and the *query rewriter* reroutes instructions to those
//! implementations and inserts explicit `ocelot.sync` instructions wherever
//! ownership of a BAT passes back to MonetDB (paper §3.1, §3.4).
//!
//! Since PR 3 this layer no longer interprets programs statement by
//! statement. [`compile`] lowers a [`MalPlan`] into a
//! [`Plan`](crate::plan::Plan) — the explicit operator DAG the
//! [`crate::scheduler`] admits and interleaves — checking variable
//! definitions and operand kinds in the process (MAL's mutable registers
//! become SSA registers of the DAG). [`execute`] remains as the one-shot
//! convenience: compile, then run to completion on a backend.

use crate::backend::Backend;
use crate::plan::{Plan, PlanBuilder, PlanError};
use ocelot_storage::Catalog;
use std::collections::HashMap;

pub use crate::plan::QueryValue as MalValue;
pub use crate::plan::Var;

/// The module an instruction is routed to. MonetDB modules (`algebra`,
/// `batcalc`, `aggr`) are replaced by `ocelot` during rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Module {
    /// MonetDB's relational algebra module.
    Algebra,
    /// MonetDB's column arithmetic module.
    Batcalc,
    /// MonetDB's aggregation module.
    Aggr,
    /// The BAT/storage module (binds base columns; never rewritten).
    Bat,
    /// Ocelot's drop-in operator module.
    Ocelot,
}

/// One MAL instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum MalInstr {
    /// `out := bat.bind(table, column)`
    Bind { module: Module, table: String, column: String, out: Var },
    /// `out := <module>.select(input, low, high)` (inclusive integer range).
    SelectRangeI32 { module: Module, input: Var, low: i32, high: i32, out: Var },
    /// `out := <module>.projection(oids, values)` (left fetch join).
    Fetch { module: Module, values: Var, oids: Var, out: Var },
    /// `out := <module>.mul(a, b)` over floats.
    MulF32 { module: Module, a: Var, b: Var, out: Var },
    /// `out := <module>.sum(values)` (scalar float result).
    SumF32 { module: Module, values: Var, out: Var },
    /// `ocelot.sync(vars)` — waits for the producers of `vars` and hands
    /// ownership back to MonetDB. Inserted by the rewriter.
    Sync { vars: Vec<Var> },
    /// Marks `vars` as the plan's result set.
    Result { vars: Vec<Var> },
}

impl MalInstr {
    /// The module executing this instruction, if it has one.
    pub fn module(&self) -> Option<Module> {
        match self {
            MalInstr::Bind { module, .. }
            | MalInstr::SelectRangeI32 { module, .. }
            | MalInstr::Fetch { module, .. }
            | MalInstr::MulF32 { module, .. }
            | MalInstr::SumF32 { module, .. } => Some(*module),
            MalInstr::Sync { .. } | MalInstr::Result { .. } => None,
        }
    }

    fn with_module(mut self, new_module: Module) -> MalInstr {
        match &mut self {
            MalInstr::Bind { module, .. }
            | MalInstr::SelectRangeI32 { module, .. }
            | MalInstr::Fetch { module, .. }
            | MalInstr::MulF32 { module, .. }
            | MalInstr::SumF32 { module, .. } => *module = new_module,
            MalInstr::Sync { .. } | MalInstr::Result { .. } => {}
        }
        self
    }
}

/// A straight-line MAL program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MalPlan {
    /// The instructions in execution order.
    pub instructions: Vec<MalInstr>,
}

impl MalPlan {
    /// Creates an empty plan.
    pub fn new() -> MalPlan {
        MalPlan::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: MalInstr) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

/// The Ocelot query rewriter: reroutes every `algebra`/`batcalc`/`aggr`
/// instruction to the `ocelot` module and inserts an `ocelot.sync` on the
/// result variables immediately before the `result` instruction — the point
/// where ownership returns to MonetDB (paper §3.4).
pub fn rewrite_for_ocelot(plan: &MalPlan) -> MalPlan {
    let mut rewritten = MalPlan::new();
    for instruction in &plan.instructions {
        match instruction {
            MalInstr::Result { vars } => {
                rewritten.push(MalInstr::Sync { vars: vars.clone() });
                rewritten.push(instruction.clone());
            }
            other => {
                let instr = match other.module() {
                    Some(Module::Algebra) | Some(Module::Batcalc) | Some(Module::Aggr) => {
                        other.clone().with_module(Module::Ocelot)
                    }
                    _ => other.clone(),
                };
                rewritten.push(instr);
            }
        }
    }
    rewritten
}

/// Compiles a MAL program into the engine's operator DAG.
///
/// MAL registers are mutable (a variable may be reassigned); the DAG's are
/// SSA. The compiler tracks the *current* definition of every MAL variable
/// and rewires later reads to it, so reassignment compiles away. Undefined
/// variables and kind misuse (a scalar feeding a column instruction) are
/// rejected here — before anything executes.
pub fn compile(plan: &MalPlan) -> Result<Plan, PlanError> {
    let mut builder = PlanBuilder::new();
    // Current DAG register of each MAL variable.
    let mut defs: HashMap<Var, Var> = HashMap::new();
    let read = |defs: &HashMap<Var, Var>, var: Var| -> Result<Var, PlanError> {
        defs.get(&var).copied().ok_or(PlanError::UndefinedVar { var })
    };
    for instruction in &plan.instructions {
        match instruction {
            MalInstr::Bind { table, column, out, .. } => {
                let reg = builder.bind(table, column);
                defs.insert(*out, reg);
            }
            MalInstr::SelectRangeI32 { input, low, high, out, .. } => {
                let input = read(&defs, *input)?;
                let reg = builder.select_range_i32(input, *low, *high, None)?;
                defs.insert(*out, reg);
            }
            MalInstr::Fetch { values, oids, out, .. } => {
                let values = read(&defs, *values)?;
                let oids = read(&defs, *oids)?;
                let reg = builder.fetch(values, oids)?;
                defs.insert(*out, reg);
            }
            MalInstr::MulF32 { a, b, out, .. } => {
                let a = read(&defs, *a)?;
                let b = read(&defs, *b)?;
                let reg = builder.mul_f32(a, b)?;
                defs.insert(*out, reg);
            }
            MalInstr::SumF32 { values, out, .. } => {
                let values = read(&defs, *values)?;
                // Deferred: the sum stays a one-element device column until
                // the sync/result boundary.
                let reg = builder.sum_f32(values)?;
                defs.insert(*out, reg);
            }
            MalInstr::Sync { vars } => {
                let regs: Vec<Var> =
                    vars.iter().map(|v| read(&defs, *v)).collect::<Result<_, _>>()?;
                builder.sync(&regs)?;
            }
            MalInstr::Result { vars } => {
                let regs: Vec<Var> =
                    vars.iter().map(|v| read(&defs, *v)).collect::<Result<_, _>>()?;
                builder.result(&regs)?;
            }
        }
    }
    Ok(builder.finish())
}

/// Compiles and executes a MAL program against a backend, returning the
/// materialised result variables in the order the `result` instruction
/// lists them.
///
/// Every instruction stays deferred on backends with lazy columns:
/// reductions go through [`Backend::sum_scalar_f32`], so their results live
/// in one-element device columns, and the events threading the pipeline
/// only resolve at the `ocelot.sync` instruction (routed to
/// [`Backend::sync`]) or at result materialisation — the ownership
/// hand-back boundaries of the paper (§3.4).
pub fn execute<B: Backend>(
    plan: &MalPlan,
    backend: &B,
    catalog: &Catalog,
) -> Result<Vec<MalValue>, PlanError> {
    let compiled = compile(plan)?;
    crate::plan::execute_plan(&compiled, backend, catalog)
}

/// Builds the example plan used throughout the paper's Figure 3:
/// `SELECT sum(b * b) FROM t WHERE a BETWEEN low AND high`.
pub fn example_plan(table: &str, a: &str, b: &str, low: i32, high: i32) -> MalPlan {
    let mut plan = MalPlan::new();
    plan.push(MalInstr::Bind {
        module: Module::Bat,
        table: table.into(),
        column: a.into(),
        out: 0,
    })
    .push(MalInstr::Bind { module: Module::Bat, table: table.into(), column: b.into(), out: 1 })
    .push(MalInstr::SelectRangeI32 { module: Module::Algebra, input: 0, low, high, out: 2 })
    .push(MalInstr::Fetch { module: Module::Algebra, values: 1, oids: 2, out: 3 })
    .push(MalInstr::MulF32 { module: Module::Batcalc, a: 3, b: 3, out: 4 })
    .push(MalInstr::SumF32 { module: Module::Aggr, values: 4, out: 5 })
    .push(MalInstr::Result { vars: vec![5] });
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{MonetSeqBackend, OcelotBackend};
    use crate::plan::PlanError;
    use ocelot_storage::{Bat, Catalog, Table};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", (0..1_000).map(|i| i % 50).collect()).into_ref())
            .with_column(
                "b",
                Bat::from_f32("b", (0..1_000).map(|i| i as f32 * 0.1).collect()).into_ref(),
            );
        catalog.add_table(table);
        catalog
    }

    #[test]
    fn rewriter_reroutes_modules_and_inserts_sync() {
        let plan = example_plan("t", "a", "b", 10, 20);
        let rewritten = rewrite_for_ocelot(&plan);
        assert_eq!(rewritten.len(), plan.len() + 1, "one sync instruction inserted");
        // Every algebra/batcalc/aggr instruction is now an ocelot instruction.
        for instruction in &rewritten.instructions {
            if let Some(module) = instruction.module() {
                assert!(
                    module == Module::Ocelot || module == Module::Bat,
                    "unexpected module {module:?} after rewriting"
                );
            }
        }
        // The sync is placed directly before the result.
        let n = rewritten.instructions.len();
        assert!(matches!(rewritten.instructions[n - 2], MalInstr::Sync { .. }));
        assert!(matches!(rewritten.instructions[n - 1], MalInstr::Result { .. }));
        // Bind instructions keep their module.
        assert_eq!(rewritten.instructions[0].module(), Some(Module::Bat));
    }

    #[test]
    fn rewritten_plan_produces_identical_results() {
        let catalog = catalog();
        let plan = example_plan("t", "a", "b", 10, 20);
        let reference = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap();

        let rewritten = rewrite_for_ocelot(&plan);
        for backend in [OcelotBackend::cpu(), OcelotBackend::gpu()] {
            let result = execute(&rewritten, &backend, &catalog).unwrap();
            assert_eq!(result.len(), 1);
            match (&reference[0], &result[0]) {
                (MalValue::Scalar(a), MalValue::Scalar(b)) => {
                    assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "{a} vs {b}");
                }
                other => panic!("unexpected result shapes: {other:?}"),
            }
        }
    }

    #[test]
    fn ocelot_plan_is_lazy_until_sync() {
        let catalog = catalog();
        let plan = rewrite_for_ocelot(&example_plan("t", "a", "b", 10, 20));
        let backend = OcelotBackend::cpu();
        let before = backend.context().queue().flush_count();
        let result = execute(&plan, &backend, &catalog).unwrap();
        let after = backend.context().queue().flush_count();
        assert_eq!(after, before + 1, "the whole plan flushes once, at ocelot.sync");
        assert!(matches!(result[0], MalValue::Scalar(_)));
    }

    #[test]
    fn execution_errors_are_reported() {
        let catalog = catalog();
        let mut plan = MalPlan::new();
        plan.push(MalInstr::Bind {
            module: Module::Bat,
            table: "missing".into(),
            column: "a".into(),
            out: 0,
        });
        // Unknown columns are a catalog property: compilation succeeds, the
        // run reports the error.
        assert!(compile(&plan).is_ok());
        let err = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap_err();
        assert!(err.to_string().contains("unknown column"));

        let mut plan = MalPlan::new();
        plan.push(MalInstr::SumF32 { module: Module::Aggr, values: 42, out: 0 });
        // Undefined variables are a plan property: the *compiler* rejects
        // them, nothing executes.
        let err = compile(&plan).unwrap_err();
        assert_eq!(err, PlanError::UndefinedVar { var: 42 });
        let err = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap_err();
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn scalar_results_cannot_feed_column_instructions() {
        let catalog = catalog();
        let mut plan = MalPlan::new();
        plan.push(MalInstr::Bind {
            module: Module::Bat,
            table: "t".into(),
            column: "b".into(),
            out: 0,
        })
        .push(MalInstr::SumF32 { module: Module::Aggr, values: 0, out: 1 })
        .push(MalInstr::MulF32 { module: Module::Batcalc, a: 1, b: 0, out: 2 })
        .push(MalInstr::Result { vars: vec![2] });
        // Caught at compile time — kind checking happens before execution.
        let err = compile(&plan).unwrap_err();
        assert!(err.to_string().contains("holds a scalar"), "{err}");
        let err = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap_err();
        assert!(err.to_string().contains("holds a scalar"), "{err}");
    }

    #[test]
    fn compiled_plans_declare_their_dataflow() {
        let plan = compile(&example_plan("t", "a", "b", 10, 20)).unwrap();
        assert_eq!(plan.len(), 7, "one DAG node per MAL instruction");
        let deps = plan.dependencies();
        // bind, bind → no deps; the final result depends on the sum node.
        assert!(deps[0].is_empty() && deps[1].is_empty());
        assert_eq!(deps[6], vec![5]);
        // MAL reassignment compiles to SSA: registers never repeat.
        let mut seen = std::collections::HashSet::new();
        for node in plan.nodes() {
            for out in &node.outputs {
                assert!(seen.insert(*out), "output register {out} reassigned");
            }
        }
    }

    #[test]
    fn reassigned_scalar_vars_report_as_columns() {
        let catalog = catalog();
        let mut plan = MalPlan::new();
        plan.push(MalInstr::Bind {
            module: Module::Bat,
            table: "t".into(),
            column: "b".into(),
            out: 0,
        })
        .push(MalInstr::SumF32 { module: Module::Aggr, values: 0, out: 1 })
        // Variable 1 is overwritten by a column instruction; the result must
        // be the full column, not a one-element scalar.
        .push(MalInstr::MulF32 { module: Module::Batcalc, a: 0, b: 0, out: 1 })
        .push(MalInstr::Result { vars: vec![1] });
        let result = execute(&plan, &MonetSeqBackend::new(), &catalog).unwrap();
        match &result[0] {
            MalValue::FloatColumn(col) => assert_eq!(col.len(), 1_000),
            other => panic!("expected a column, got {other:?}"),
        }
    }

    #[test]
    fn plan_builders() {
        let mut plan = MalPlan::new();
        assert!(plan.is_empty());
        plan.push(MalInstr::Result { vars: vec![] });
        assert_eq!(plan.len(), 1);
    }
}
