//! Compiled query plans: an explicit operator DAG executed node by node.
//!
//! PR 2 made single-query pipelines sync-free; this module is the structural
//! half of running *many* of them: instead of interpreting a MAL program
//! statement by statement, the engine **compiles** queries into a [`Plan`] —
//! a list of [`PlanNode`]s, each declaring the virtual registers it reads
//! ([`PlanNode::inputs`]) and writes ([`PlanNode::outputs`]). The node order
//! is a topological order of the dataflow DAG (producers strictly precede
//! consumers; [`Plan::dependencies`] exposes the edges), which is what lets
//! the [`crate::scheduler`] interleave the node execution of several
//! admitted plans: between any two nodes of one plan it may run nodes of
//! another, and the deferred `DevScalar`/`DevColumn` values flowing along
//! the edges guarantee that nothing observable happens until a node actually
//! resolves a host value.
//!
//! Three stages, three failure domains:
//!
//! * **Build** ([`PlanBuilder`]) — every operator method checks its operand
//!   kinds ([`ValueKind`]: column / scalar / grouping), so malformed
//!   dataflow (a scalar feeding an element-wise map, a grouping used as a
//!   column) is rejected *before* anything executes.
//! * **Execute** ([`PlanRun`]) — a resumable register machine over any
//!   [`Backend`]. [`PlanRun::step`] runs exactly one node; callers that
//!   don't need stepping use [`PlanRun::run_to_completion`]. Registers are
//!   freed at their last use (computed at build time), so a finished
//!   subtree's device buffers return to the recycle pool while the plan is
//!   still running — and, with a shared pool, to *other sessions*.
//! * **Materialise** — `Result` nodes read their registers back through the
//!   backend (`to_i32`/`to_f32`/`to_oids` — the sync boundary on Ocelot)
//!   into typed host [`QueryValue`]s.
//!
//! # Recovery-protocol lifecycle contract
//!
//! Device faults reach the executor as **typed panic payloads** (the
//! `Backend` operator surface is infallible; see `ocelot_core::recovery`),
//! and [`PlanRun::step`] runs one **unified recovery protocol** over all of
//! them — one restart budget ([`PlanRun`]'s `RESTART_LIMIT`), several
//! triggers. Every fault class has exactly one handler and one observable
//! counter ([`RecoveryStats`]); the ordered [`RecoveryEvent`] trace records
//! each decision, and the same fault schedule always produces the same
//! trace (recovery is deterministic).
//!
//! | fault class (payload) | handler | observable counter |
//! |---|---|---|
//! | `DeviceOom` — allocation failed | drop the attempt's outputs, **reclaim** (release + evict via [`Backend::reclaim_memory`]), re-run the node; give up when reclaim stops progressing or the shared budget is spent → [`PlanError::OutOfDeviceMemory`] | [`RecoveryStats::oom_restarts`] |
//! | `TransientFault` — a launch/transfer hiccup | drop the attempt's outputs, sleep a **deterministic backoff** step (immediate first retry, then exponential, capped), re-run the node; budget spent → [`PlanError::Faulted`] | [`RecoveryStats::retries`], [`RecoveryStats::backoff_steps`] |
//! | `DeviceLostFault` — sticky device loss | no node retry can succeed: unwind the **whole plan** as [`PlanError::DeviceLost`]; the session/scheduler invalidates the device's cached state and fails the query over to a fallback backend | [`RecoveryStats::failovers`] (session/scheduler level) |
//! | any other panic | **not recovery's business** — resume unwinding unchanged | — |
//!
//! A plan that exhausts the budget surfaces a *typed* error in its result
//! slot; under the scheduler the failing plan is quarantined
//! ([`RecoveryStats::quarantines`]) while every other admitted plan
//! proceeds. The per-node restart slate (outputs dropped, results
//! truncated) is shared by the OOM and transient paths, which is what makes
//! the protocol "one protocol, two triggers": PR 4's OOM restart is now
//! just the reclaim-gated trigger of this loop.

use crate::backend::{Backend, GroupHandle, ProfileMarker};
use crate::query::Query;
use ocelot_core::{DeviceLostFault, DeviceOom, TransientFault};
use ocelot_kernel::FaultSite;
use ocelot_storage::Catalog;
use ocelot_trace::{MetricsRegistry, NodeAction, TraceEventKind, TraceHandle};
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

/// A virtual register holding an intermediate value.
pub type Var = usize;

/// What a register holds, as tracked (and enforced) at build time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// A column of values.
    Column,
    /// A one-element scalar aggregate (device-resident on Ocelot).
    Scalar,
    /// A grouping (dense group ids + representatives).
    Group,
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueKind::Column => write!(f, "column"),
            ValueKind::Scalar => write!(f, "scalar"),
            ValueKind::Group => write!(f, "grouping"),
        }
    }
}

/// Why a plan could not be built or executed.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A `bind` referenced a column the catalog does not know.
    UnknownColumn {
        /// Table name as given to `bind`.
        table: String,
        /// Column name as given to `bind`.
        column: String,
    },
    /// An operator read a register no prior node wrote.
    UndefinedVar {
        /// The register in question.
        var: Var,
    },
    /// An operator read a register of the wrong kind.
    KindMismatch {
        /// The register in question.
        var: Var,
        /// The kind the operator needs.
        expected: ValueKind,
        /// The kind the register actually holds.
        found: ValueKind,
    },
    /// A raw node tried to define a register an earlier node already
    /// defined (single assignment violated — see
    /// [`PlanBuilder::push_node`]).
    DuplicateDefinition {
        /// The register in question.
        var: Var,
    },
    /// `group_by` was called with no key columns.
    EmptyGroupBy,
    /// A node ran out of device memory and the OOM-restart protocol could
    /// not recover: reclaim passes (release + evict) stopped making
    /// progress, or the restart limit was reached. The working set pinned
    /// by the plan itself simply does not fit the device (or its
    /// configured budget).
    OutOfDeviceMemory {
        /// Bytes the failing allocation asked for.
        requested: usize,
        /// Bytes available when the last restart attempt gave up.
        available: usize,
    },
    /// A node kept failing with transient device faults and the shared
    /// restart budget ran out: every retry (after its deterministic
    /// backoff step) hit another fault. Under the scheduler a plan failing
    /// this way is quarantined while the rest of the stream proceeds.
    Faulted {
        /// The site the last fault fired at.
        site: FaultSite,
        /// The device's fault-plan operation index of the last fault.
        op: u64,
        /// Node execution attempts made before giving up.
        attempts: u64,
    },
    /// The device executing the plan was lost (sticky: every further
    /// launch, transfer and allocation fails), so no node retry can
    /// succeed and the whole plan unwinds. Sessions with a fallback
    /// backend recover by invalidating the device's cached state and
    /// re-running the query there (see `Session::with_fallback`).
    DeviceLost,
    /// The serving scheduler's bounded admission queue was full when the
    /// query arrived, so it was rejected without executing (backpressure —
    /// see `crate::scheduler::ServeScheduler`). The client should retry
    /// later or shed load; admitted queries are unaffected.
    Overloaded {
        /// Queries already queued for the tenant's lane at arrival.
        queued: usize,
        /// The configured per-tenant queue capacity.
        capacity: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownColumn { table, column } => {
                write!(f, "unknown column {table}.{column}")
            }
            PlanError::UndefinedVar { var } => write!(f, "variable {var} is undefined"),
            PlanError::KindMismatch { var, expected, found } => {
                write!(f, "variable {var} holds a {found}, expected a {expected}")
            }
            PlanError::DuplicateDefinition { var } => {
                write!(f, "variable {var} is defined more than once")
            }
            PlanError::EmptyGroupBy => write!(f, "group_by needs at least one key column"),
            PlanError::OutOfDeviceMemory { requested, available } => write!(
                f,
                "out of device memory: {requested} bytes requested, {available} available \
                 after eviction and node restarts"
            ),
            PlanError::Faulted { site, op, attempts } => write!(
                f,
                "node faulted past the retry budget: transient {site} fault at device \
                 operation {op} after {attempts} attempts"
            ),
            PlanError::DeviceLost => write!(f, "device lost while executing the plan"),
            PlanError::Overloaded { queued, capacity } => write!(
                f,
                "admission queue overloaded: {queued} queries already queued at capacity \
                 {capacity} — retry later or shed load"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The operator of one plan node. Operand registers live in
/// [`PlanNode::inputs`] / [`PlanNode::outputs`]; the op carries only the
/// literal parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// Binds a base-table column (input arity 0).
    Bind {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// `low <= col <= high` over integers. Inputs: `[col]` or
    /// `[col, candidates]`.
    SelectRangeI32 {
        /// Inclusive lower bound.
        low: i32,
        /// Inclusive upper bound.
        high: i32,
    },
    /// `low <= col <= high` over floats. Inputs: `[col]` or
    /// `[col, candidates]`.
    SelectRangeF32 {
        /// Inclusive lower bound.
        low: f32,
        /// Inclusive upper bound.
        high: f32,
    },
    /// Equality selection. Inputs: `[col]` or `[col, candidates]`.
    SelectEqI32 {
        /// Value to match.
        needle: i32,
    },
    /// Inequality selection. Inputs: `[col]` or `[col, candidates]`.
    SelectNeI32 {
        /// Value to exclude.
        needle: i32,
    },
    /// Union of two sorted OID candidate lists. Inputs: `[a, b]`.
    UnionOids,
    /// Left fetch join `values[oid]`. Inputs: `[values, oids]`.
    Fetch,
    /// Element-wise `a * b`. Inputs: `[a, b]`.
    MulF32,
    /// Element-wise `a + b`. Inputs: `[a, b]`.
    AddF32,
    /// Element-wise `a - b`. Inputs: `[a, b]`.
    SubF32,
    /// Element-wise `c - a`. Inputs: `[a]`.
    ConstMinusF32 {
        /// The constant `c`.
        constant: f32,
    },
    /// Element-wise `c + a`. Inputs: `[a]`.
    ConstPlusF32 {
        /// The constant `c`.
        constant: f32,
    },
    /// Element-wise `a * c`. Inputs: `[a]`.
    MulConstF32 {
        /// The constant `c`.
        constant: f32,
    },
    /// Integer-to-float cast. Inputs: `[a]`.
    CastI32F32,
    /// Calendar year of a day-number date column. Inputs: `[a]`.
    ExtractYear,
    /// FK/PK hash join. Inputs: `[fk, pk]`; outputs: `[fk_oids, pk_oids]`.
    PkFkJoin,
    /// Partitioned hybrid hash FK/PK join — the out-of-core form of
    /// [`PlanOp::PkFkJoin`], chosen by lowering when the monolithic hash
    /// table would overflow the device budget. Same inputs and outputs.
    PkFkJoinPartitioned {
        /// Estimated distinct build-key count (skew-aware partition sizing).
        ndv_hint: usize,
    },
    /// Semi join (`EXISTS`). Inputs: `[left, right]`.
    SemiJoin,
    /// Anti join (`NOT EXISTS`). Inputs: `[left, right]`.
    AntiJoin,
    /// Multi-column grouping. Inputs: the key columns; output: a grouping.
    GroupBy,
    /// Representative row OIDs of a grouping. Inputs: `[group]`.
    GroupReps,
    /// Per-group sums. Inputs: `[values, group]`.
    GroupedSumF32,
    /// Per-group minima. Inputs: `[values, group]`.
    GroupedMinF32,
    /// Per-group maxima. Inputs: `[values, group]`.
    GroupedMaxF32,
    /// Per-group averages. Inputs: `[values, group]`.
    GroupedAvgF32,
    /// Per-group counts (as floats). Inputs: `[group]`.
    GroupedCount,
    /// Sort permutation of an integer column. Inputs: `[col]`.
    SortOrderI32 {
        /// Descending order when set.
        descending: bool,
    },
    /// Sort permutation of a float column. Inputs: `[col]`.
    SortOrderF32 {
        /// Descending order when set.
        descending: bool,
    },
    /// Ungrouped sum as a deferred one-element scalar. Inputs: `[values]`.
    SumF32,
    /// The `ocelot.sync` ownership boundary: flushes outstanding device
    /// work. Inputs: the registers whose producers must have completed.
    Sync,
    /// Materialises its input registers as the plan's (next) results.
    Result,
}

impl PlanOp {
    /// Short operator name (for errors and displays).
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::Bind { .. } => "bind",
            PlanOp::SelectRangeI32 { .. } => "select_range_i32",
            PlanOp::SelectRangeF32 { .. } => "select_range_f32",
            PlanOp::SelectEqI32 { .. } => "select_eq_i32",
            PlanOp::SelectNeI32 { .. } => "select_ne_i32",
            PlanOp::UnionOids => "union_oids",
            PlanOp::Fetch => "fetch",
            PlanOp::MulF32 => "mul_f32",
            PlanOp::AddF32 => "add_f32",
            PlanOp::SubF32 => "sub_f32",
            PlanOp::ConstMinusF32 { .. } => "const_minus_f32",
            PlanOp::ConstPlusF32 { .. } => "const_plus_f32",
            PlanOp::MulConstF32 { .. } => "mul_const_f32",
            PlanOp::CastI32F32 => "cast_i32_f32",
            PlanOp::ExtractYear => "extract_year",
            PlanOp::PkFkJoin => "pkfk_join",
            PlanOp::PkFkJoinPartitioned { .. } => "pkfk_join_partitioned",
            PlanOp::SemiJoin => "semi_join",
            PlanOp::AntiJoin => "anti_join",
            PlanOp::GroupBy => "group_by",
            PlanOp::GroupReps => "group_reps",
            PlanOp::GroupedSumF32 => "grouped_sum_f32",
            PlanOp::GroupedMinF32 => "grouped_min_f32",
            PlanOp::GroupedMaxF32 => "grouped_max_f32",
            PlanOp::GroupedAvgF32 => "grouped_avg_f32",
            PlanOp::GroupedCount => "grouped_count",
            PlanOp::SortOrderI32 { .. } => "sort_order_i32",
            PlanOp::SortOrderF32 { .. } => "sort_order_f32",
            PlanOp::SumF32 => "sum_f32",
            PlanOp::Sync => "sync",
            PlanOp::Result => "result",
        }
    }
}

impl fmt::Display for PlanOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOp::Bind { table, column } => write!(f, "bind {table}.{column}"),
            PlanOp::SelectRangeI32 { low, high } => {
                write!(f, "select_range_i32 [{low}, {high}]")
            }
            PlanOp::SelectRangeF32 { low, high } => {
                write!(f, "select_range_f32 [{low:?}, {high:?}]")
            }
            PlanOp::SelectEqI32 { needle } => write!(f, "select_eq_i32 {needle}"),
            PlanOp::SelectNeI32 { needle } => write!(f, "select_ne_i32 {needle}"),
            PlanOp::ConstMinusF32 { constant } => write!(f, "const_minus_f32 {constant:?}"),
            PlanOp::ConstPlusF32 { constant } => write!(f, "const_plus_f32 {constant:?}"),
            PlanOp::MulConstF32 { constant } => write!(f, "mul_const_f32 {constant:?}"),
            PlanOp::SortOrderI32 { descending } => {
                write!(f, "sort_order_i32 {}", if *descending { "desc" } else { "asc" })
            }
            PlanOp::SortOrderF32 { descending } => {
                write!(f, "sort_order_f32 {}", if *descending { "desc" } else { "asc" })
            }
            PlanOp::PkFkJoinPartitioned { ndv_hint } => {
                write!(f, "pkfk_join_partitioned ndv~{ndv_hint}")
            }
            other => write!(f, "{}", other.name()),
        }
    }
}

/// One node of the operator DAG: an operator plus the registers it reads
/// and writes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The operator.
    pub op: PlanOp,
    /// Registers this node reads, in operand order.
    pub inputs: Vec<Var>,
    /// Registers this node writes, in operand order.
    pub outputs: Vec<Var>,
}

impl fmt::Display for PlanNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.op)?;
        if !self.inputs.is_empty() {
            write!(f, " (")?;
            for (index, var) in self.inputs.iter().enumerate() {
                write!(f, "{}v{var}", if index > 0 { ", " } else { "" })?;
            }
            write!(f, ")")?;
        }
        if !self.outputs.is_empty() {
            write!(f, " ->")?;
            for var in &self.outputs {
                write!(f, " v{var}")?;
            }
        }
        Ok(())
    }
}

/// A compiled, kind-checked operator DAG (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    nodes: Vec<PlanNode>,
    /// Node index of each register's last read — the executor frees the
    /// register after that node, returning its buffers to the pool.
    last_use: HashMap<Var, usize>,
    /// The logical [`Query`] this plan was lowered from, when it came
    /// through the query layer. Device-loss failover re-lowers this source
    /// onto the fallback backend instead of reusing the physical plan
    /// verbatim; hand-built plans (no source) are re-run as-is — physical
    /// plans are backend-agnostic, so both paths are correct.
    source: Option<Arc<Query>>,
}

impl Plan {
    /// The nodes in execution (topological) order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Assembles a plan from raw nodes **without any checking**, computing
    /// the last-use map honestly from the node inputs. Ill-formed node
    /// lists are accepted deliberately: this is the entry point for
    /// feeding negative cases to [`crate::analyze::verify`]. Executing an
    /// unverified plan built this way is undefined (the executor trusts
    /// plan invariants).
    pub fn from_nodes_unchecked(nodes: Vec<PlanNode>) -> Plan {
        let mut last_use = HashMap::new();
        for (index, node) in nodes.iter().enumerate() {
            for var in &node.inputs {
                last_use.insert(*var, index);
            }
        }
        Plan { nodes, last_use, source: None }
    }

    /// Like [`Plan::from_nodes_unchecked`], but with an explicit —
    /// possibly inconsistent — last-use map, for exercising the
    /// verifier's liveness check.
    pub fn from_parts_unchecked(nodes: Vec<PlanNode>, last_use: HashMap<Var, usize>) -> Plan {
        Plan { nodes, last_use, source: None }
    }

    /// Attaches the logical query this plan was lowered from (called by
    /// `Query::lower_with`; see [`Plan::source`]).
    pub fn with_source(mut self, query: Arc<Query>) -> Plan {
        self.source = Some(query);
        self
    }

    /// The logical source query, when the plan was compiled through the
    /// query layer.
    pub fn source(&self) -> Option<&Arc<Query>> {
        self.source.as_ref()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The dataflow edges: for every node, the indices of the nodes that
    /// produce its inputs. Always references earlier indices (the node
    /// order is topological).
    pub fn dependencies(&self) -> Vec<Vec<usize>> {
        let mut producer: HashMap<Var, usize> = HashMap::new();
        let mut deps = Vec::with_capacity(self.nodes.len());
        for (index, node) in self.nodes.iter().enumerate() {
            let mut mine: Vec<usize> =
                node.inputs.iter().filter_map(|var| producer.get(var).copied()).collect();
            mine.sort_unstable();
            mine.dedup();
            deps.push(mine);
            for out in &node.outputs {
                producer.insert(*out, index);
            }
        }
        deps
    }

    /// Node index after which `var` is dead (its last read).
    pub fn last_use(&self, var: Var) -> Option<usize> {
        self.last_use.get(&var).copied()
    }

    /// Estimated peak device footprint of the plan's *registers*, in bytes.
    ///
    /// The estimate walks the dataflow DAG (the same edges
    /// [`Plan::dependencies`] exposes) in execution order, simulating the
    /// executor's register lifetimes: `bind` outputs are sized exactly
    /// from the catalog (base columns are the dominant pinned working
    /// set), every derived register inherits the largest input it was
    /// computed from (selections and joins can only shrink, maps preserve
    /// cardinality), scalars are one word, and registers die at their
    /// build-time last use — exactly when the executor frees them. The
    /// peak of the live-set byte sum is the estimate. It deliberately
    /// ignores operator scratch — see [`Plan::estimate_device_footprint`]
    /// for the admission-grade estimate that includes it.
    pub fn estimate_register_footprint(&self, catalog: &Catalog) -> usize {
        self.walk_footprint(catalog, false)
    }

    /// Estimated peak device footprint of running this plan alone, in
    /// bytes — the scheduler's cost model for memory-aware admission.
    ///
    /// Extends [`Plan::estimate_register_footprint`] with per-operator
    /// **scratch models** charged while the producing node runs: hash
    /// builds (joins, grouping) allocate a power-of-two slot table of
    /// ~1.4× the build cardinality plus per-probe flag space, and the
    /// radix sort allocates four ping-pong staging buffers plus its
    /// per-work-item digit histogram (≈2 MiB on the simulated discrete
    /// GPU — the dominant fixed cost that made the register-only estimate
    /// under-count sort-heavy plans). Still an estimate, not a bound:
    /// admission budgets should keep slack.
    pub fn estimate_device_footprint(&self, catalog: &Catalog) -> usize {
        self.walk_footprint(catalog, true)
    }

    /// The simulated discrete GPU's radix-sort digit histogram:
    /// 256 radixes × ~2048 work-items × 4 bytes.
    const RADIX_HISTOGRAM_BYTES: usize = 256 * 2048 * 4;

    /// Transient device bytes the node's operator allocates beyond its
    /// input/output registers (hash-table slots, sort staging). Mirrors the
    /// sizing rules in `ocelot_core::ops::{hash_table, sort_radix}`.
    fn scratch_bytes(node: &PlanNode, sizes: &HashMap<Var, usize>) -> usize {
        let input_bytes =
            |index: usize| node.inputs.get(index).and_then(|v| sizes.get(v)).copied().unwrap_or(0);
        let hash_table = |build_bytes: usize, probe_bytes: usize| {
            let build_rows = build_bytes / 4;
            let capacity =
                (((build_rows.max(1) as f64) * 1.4).ceil() as usize).next_power_of_two().max(16);
            // Key slots + occupancy flags (both `capacity` words) plus the
            // per-probe failed/flag word.
            (2 * capacity) * 4 + probe_bytes
        };
        match &node.op {
            PlanOp::SortOrderI32 { .. } | PlanOp::SortOrderF32 { .. } => {
                // Four ping-pong staging buffers (keys/oids × 2) plus the
                // per-work-item digit histogram.
                4 * input_bytes(0) + Plan::RADIX_HISTOGRAM_BYTES
            }
            PlanOp::PkFkJoin | PlanOp::SemiJoin | PlanOp::AntiJoin => {
                hash_table(input_bytes(1), input_bytes(0))
            }
            PlanOp::PkFkJoinPartitioned { .. } => {
                // Partition copies of both sides (keys + carried OIDs) plus
                // one per-partition hash table — the partitioned join never
                // materialises the monolithic table, so its scratch is the
                // copies plus a table a partition-count factor smaller.
                2 * (input_bytes(0) + input_bytes(1))
                    + hash_table(input_bytes(1) / 2, input_bytes(0) / 2)
            }
            PlanOp::GroupBy => {
                // Grouping hashes every input row.
                hash_table(input_bytes(0), input_bytes(0))
            }
            _ => 0,
        }
    }

    fn walk_footprint(&self, catalog: &Catalog, include_scratch: bool) -> usize {
        let mut sizes: HashMap<Var, usize> = HashMap::new();
        let mut live = 0usize;
        let mut peak = 0usize;
        for (index, node) in self.nodes.iter().enumerate() {
            if include_scratch {
                peak = peak.max(live + Plan::scratch_bytes(node, &sizes));
            }
            let out_bytes = match &node.op {
                PlanOp::Bind { table, column } => {
                    catalog.column(table, column).map(|bat| bat.len() * 4).unwrap_or(0)
                }
                PlanOp::SumF32 => 4,
                _ => {
                    node.inputs.iter().filter_map(|var| sizes.get(var).copied()).max().unwrap_or(0)
                }
            };
            for out in &node.outputs {
                sizes.insert(*out, out_bytes);
                live += out_bytes;
            }
            peak = peak.max(live);
            for var in node.inputs.iter().chain(&node.outputs) {
                let dead = match self.last_use(*var) {
                    Some(last) => last == index && node.inputs.contains(var),
                    None => node.outputs.contains(var),
                };
                if dead {
                    if let Some(bytes) = sizes.remove(var) {
                        live = live.saturating_sub(bytes);
                    }
                }
            }
        }
        peak
    }
}

/// Builds a [`Plan`], checking operand kinds as nodes are appended.
///
/// Registers are assigned by the builder (SSA style — every output is a
/// fresh register), so plans produced here never alias or reassign.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    nodes: Vec<PlanNode>,
    kinds: HashMap<Var, ValueKind>,
    next_var: Var,
    /// Registers already bound per `table.column`, so re-binding the same
    /// base column returns the existing register instead of a duplicate
    /// node. A duplicate bind would create two registers over one cached
    /// column and defeat the column cache's single-pin accounting within
    /// a plan.
    bound: HashMap<(String, String), Var>,
}

impl PlanBuilder {
    /// Creates an empty builder.
    pub fn new() -> PlanBuilder {
        PlanBuilder::default()
    }

    fn fresh(&mut self, kind: ValueKind) -> Var {
        let var = self.next_var;
        self.next_var += 1;
        self.kinds.insert(var, kind);
        var
    }

    fn expect(&self, var: Var, expected: ValueKind) -> Result<(), PlanError> {
        match self.kinds.get(&var) {
            None => Err(PlanError::UndefinedVar { var }),
            Some(found) if *found != expected => {
                Err(PlanError::KindMismatch { var, expected, found: *found })
            }
            Some(_) => Ok(()),
        }
    }

    fn columns(&self, vars: &[Var]) -> Result<(), PlanError> {
        vars.iter().try_for_each(|var| self.expect(*var, ValueKind::Column))
    }

    fn push(&mut self, op: PlanOp, inputs: Vec<Var>, kind: ValueKind) -> Var {
        let out = self.fresh(kind);
        self.nodes.push(PlanNode { op, inputs, outputs: vec![out] });
        out
    }

    /// Binds a base-table column. The catalog is only consulted at
    /// execution time, so an unknown column surfaces from the run, not
    /// here. Binding the same `table.column` twice returns the first
    /// bind's register (one bind node, one cache pin per plan).
    pub fn bind(&mut self, table: &str, column: &str) -> Var {
        let key = (table.to_string(), column.to_string());
        if let Some(var) = self.bound.get(&key) {
            return *var;
        }
        let var = self.push(
            PlanOp::Bind { table: table.to_string(), column: column.to_string() },
            Vec::new(),
            ValueKind::Column,
        );
        self.bound.insert(key, var);
        var
    }

    fn select(&mut self, op: PlanOp, input: Var, cands: Option<Var>) -> Result<Var, PlanError> {
        self.expect(input, ValueKind::Column)?;
        let mut inputs = vec![input];
        if let Some(cands) = cands {
            self.expect(cands, ValueKind::Column)?;
            inputs.push(cands);
        }
        let out = self.fresh(ValueKind::Column);
        self.nodes.push(PlanNode { op, inputs, outputs: vec![out] });
        Ok(out)
    }

    /// Integer range selection, optionally over a candidate list.
    pub fn select_range_i32(
        &mut self,
        input: Var,
        low: i32,
        high: i32,
        cands: Option<Var>,
    ) -> Result<Var, PlanError> {
        self.select(PlanOp::SelectRangeI32 { low, high }, input, cands)
    }

    /// Float range selection, optionally over a candidate list.
    pub fn select_range_f32(
        &mut self,
        input: Var,
        low: f32,
        high: f32,
        cands: Option<Var>,
    ) -> Result<Var, PlanError> {
        self.select(PlanOp::SelectRangeF32 { low, high }, input, cands)
    }

    /// Equality selection, optionally over a candidate list.
    pub fn select_eq_i32(
        &mut self,
        input: Var,
        needle: i32,
        cands: Option<Var>,
    ) -> Result<Var, PlanError> {
        self.select(PlanOp::SelectEqI32 { needle }, input, cands)
    }

    /// Inequality selection, optionally over a candidate list.
    pub fn select_ne_i32(
        &mut self,
        input: Var,
        needle: i32,
        cands: Option<Var>,
    ) -> Result<Var, PlanError> {
        self.select(PlanOp::SelectNeI32 { needle }, input, cands)
    }

    /// Union of two sorted OID candidate lists.
    pub fn union_oids(&mut self, a: Var, b: Var) -> Result<Var, PlanError> {
        self.columns(&[a, b])?;
        Ok(self.push(PlanOp::UnionOids, vec![a, b], ValueKind::Column))
    }

    /// Left fetch join `values[oid]`.
    pub fn fetch(&mut self, values: Var, oids: Var) -> Result<Var, PlanError> {
        self.columns(&[values, oids])?;
        Ok(self.push(PlanOp::Fetch, vec![values, oids], ValueKind::Column))
    }

    fn binary(&mut self, op: PlanOp, a: Var, b: Var) -> Result<Var, PlanError> {
        self.columns(&[a, b])?;
        Ok(self.push(op, vec![a, b], ValueKind::Column))
    }

    fn unary(&mut self, op: PlanOp, a: Var) -> Result<Var, PlanError> {
        self.expect(a, ValueKind::Column)?;
        Ok(self.push(op, vec![a], ValueKind::Column))
    }

    /// Element-wise `a * b`.
    pub fn mul_f32(&mut self, a: Var, b: Var) -> Result<Var, PlanError> {
        self.binary(PlanOp::MulF32, a, b)
    }

    /// Element-wise `a + b`.
    pub fn add_f32(&mut self, a: Var, b: Var) -> Result<Var, PlanError> {
        self.binary(PlanOp::AddF32, a, b)
    }

    /// Element-wise `a - b`.
    pub fn sub_f32(&mut self, a: Var, b: Var) -> Result<Var, PlanError> {
        self.binary(PlanOp::SubF32, a, b)
    }

    /// Element-wise `c - a`.
    pub fn const_minus_f32(&mut self, constant: f32, a: Var) -> Result<Var, PlanError> {
        self.unary(PlanOp::ConstMinusF32 { constant }, a)
    }

    /// Element-wise `c + a`.
    pub fn const_plus_f32(&mut self, constant: f32, a: Var) -> Result<Var, PlanError> {
        self.unary(PlanOp::ConstPlusF32 { constant }, a)
    }

    /// Element-wise `a * c`.
    pub fn mul_const_f32(&mut self, a: Var, constant: f32) -> Result<Var, PlanError> {
        self.unary(PlanOp::MulConstF32 { constant }, a)
    }

    /// Integer-to-float cast.
    pub fn cast_i32_f32(&mut self, a: Var) -> Result<Var, PlanError> {
        self.unary(PlanOp::CastI32F32, a)
    }

    /// Calendar year of a day-number date column.
    pub fn extract_year(&mut self, a: Var) -> Result<Var, PlanError> {
        self.unary(PlanOp::ExtractYear, a)
    }

    /// FK/PK hash join; returns the aligned `(fk_oids, pk_oids)` registers.
    pub fn pkfk_join(&mut self, fk: Var, pk: Var) -> Result<(Var, Var), PlanError> {
        self.columns(&[fk, pk])?;
        let fk_oids = self.fresh(ValueKind::Column);
        let pk_oids = self.fresh(ValueKind::Column);
        self.nodes.push(PlanNode {
            op: PlanOp::PkFkJoin,
            inputs: vec![fk, pk],
            outputs: vec![fk_oids, pk_oids],
        });
        Ok((fk_oids, pk_oids))
    }

    /// Partitioned hybrid hash FK/PK join — the out-of-core form of
    /// [`PlanBuilder::pkfk_join`]. `ndv_hint` is the estimated distinct
    /// build-key count, which sizes the partitions skew-aware.
    pub fn pkfk_join_partitioned(
        &mut self,
        fk: Var,
        pk: Var,
        ndv_hint: usize,
    ) -> Result<(Var, Var), PlanError> {
        self.columns(&[fk, pk])?;
        let fk_oids = self.fresh(ValueKind::Column);
        let pk_oids = self.fresh(ValueKind::Column);
        self.nodes.push(PlanNode {
            op: PlanOp::PkFkJoinPartitioned { ndv_hint },
            inputs: vec![fk, pk],
            outputs: vec![fk_oids, pk_oids],
        });
        Ok((fk_oids, pk_oids))
    }

    /// Semi join (`EXISTS`).
    pub fn semi_join(&mut self, left: Var, right: Var) -> Result<Var, PlanError> {
        self.binary(PlanOp::SemiJoin, left, right)
    }

    /// Anti join (`NOT EXISTS`).
    pub fn anti_join(&mut self, left: Var, right: Var) -> Result<Var, PlanError> {
        self.binary(PlanOp::AntiJoin, left, right)
    }

    /// Multi-column grouping.
    pub fn group_by(&mut self, keys: &[Var]) -> Result<Var, PlanError> {
        if keys.is_empty() {
            return Err(PlanError::EmptyGroupBy);
        }
        self.columns(keys)?;
        Ok(self.push(PlanOp::GroupBy, keys.to_vec(), ValueKind::Group))
    }

    /// Representative row OIDs of a grouping (they carry the key values).
    pub fn group_reps(&mut self, group: Var) -> Result<Var, PlanError> {
        self.expect(group, ValueKind::Group)?;
        Ok(self.push(PlanOp::GroupReps, vec![group], ValueKind::Column))
    }

    fn grouped(&mut self, op: PlanOp, values: Var, group: Var) -> Result<Var, PlanError> {
        self.expect(values, ValueKind::Column)?;
        self.expect(group, ValueKind::Group)?;
        Ok(self.push(op, vec![values, group], ValueKind::Column))
    }

    /// Per-group sums.
    pub fn grouped_sum_f32(&mut self, values: Var, group: Var) -> Result<Var, PlanError> {
        self.grouped(PlanOp::GroupedSumF32, values, group)
    }

    /// Per-group minima.
    pub fn grouped_min_f32(&mut self, values: Var, group: Var) -> Result<Var, PlanError> {
        self.grouped(PlanOp::GroupedMinF32, values, group)
    }

    /// Per-group maxima.
    pub fn grouped_max_f32(&mut self, values: Var, group: Var) -> Result<Var, PlanError> {
        self.grouped(PlanOp::GroupedMaxF32, values, group)
    }

    /// Per-group averages.
    pub fn grouped_avg_f32(&mut self, values: Var, group: Var) -> Result<Var, PlanError> {
        self.grouped(PlanOp::GroupedAvgF32, values, group)
    }

    /// Per-group counts (as floats).
    pub fn grouped_count(&mut self, group: Var) -> Result<Var, PlanError> {
        self.expect(group, ValueKind::Group)?;
        Ok(self.push(PlanOp::GroupedCount, vec![group], ValueKind::Column))
    }

    /// Sort permutation of an integer column.
    pub fn sort_order_i32(&mut self, col: Var, descending: bool) -> Result<Var, PlanError> {
        self.unary(PlanOp::SortOrderI32 { descending }, col)
    }

    /// Sort permutation of a float column.
    pub fn sort_order_f32(&mut self, col: Var, descending: bool) -> Result<Var, PlanError> {
        self.unary(PlanOp::SortOrderF32 { descending }, col)
    }

    /// Ungrouped sum as a deferred one-element scalar.
    pub fn sum_f32(&mut self, values: Var) -> Result<Var, PlanError> {
        self.expect(values, ValueKind::Column)?;
        Ok(self.push(PlanOp::SumF32, vec![values], ValueKind::Scalar))
    }

    /// Inserts an explicit `sync` boundary on `vars`.
    pub fn sync(&mut self, vars: &[Var]) -> Result<(), PlanError> {
        for var in vars {
            if !self.kinds.contains_key(var) {
                return Err(PlanError::UndefinedVar { var: *var });
            }
        }
        self.nodes.push(PlanNode { op: PlanOp::Sync, inputs: vars.to_vec(), outputs: Vec::new() });
        Ok(())
    }

    /// Declares `vars` as (the next) plan results, in order. Results must be
    /// columns or scalars.
    pub fn result(&mut self, vars: &[Var]) -> Result<(), PlanError> {
        for var in vars {
            match self.kinds.get(var) {
                None => return Err(PlanError::UndefinedVar { var: *var }),
                Some(ValueKind::Group) => {
                    return Err(PlanError::KindMismatch {
                        var: *var,
                        expected: ValueKind::Column,
                        found: ValueKind::Group,
                    })
                }
                Some(_) => {}
            }
        }
        self.nodes.push(PlanNode {
            op: PlanOp::Result,
            inputs: vars.to_vec(),
            outputs: Vec::new(),
        });
        Ok(())
    }

    /// Appends a raw node, checking definitions: every input must already
    /// be defined and every output must be fresh — a repeated output is
    /// rejected with [`PlanError::DuplicateDefinition`] (the SSA methods
    /// above cannot produce one, but raw appends — plan tools, compilers
    /// building nodes directly — can). Output registers take the
    /// operator's signature kinds and advance the builder's register
    /// counter past them. Kind and arity validation beyond the definition
    /// discipline is [`crate::analyze::verify`]'s job.
    pub fn push_node(
        &mut self,
        op: PlanOp,
        inputs: Vec<Var>,
        outputs: Vec<Var>,
    ) -> Result<(), PlanError> {
        let node = PlanNode { op, inputs, outputs };
        let kinds = crate::analyze::admit_raw_node(&node, &self.kinds)?;
        for (position, out) in node.outputs.iter().enumerate() {
            self.kinds.insert(*out, kinds.get(position).copied().unwrap_or(ValueKind::Column));
            self.next_var = self.next_var.max(*out + 1);
        }
        self.nodes.push(node);
        Ok(())
    }

    /// Finalises the plan, computing last-use positions for register
    /// reclamation.
    pub fn finish(self) -> Plan {
        let mut last_use = HashMap::new();
        for (index, node) in self.nodes.iter().enumerate() {
            for var in &node.inputs {
                last_use.insert(*var, index);
            }
        }
        Plan { nodes: self.nodes, last_use, source: None }
    }
}

/// A materialised result value (host-side), typed by what the register held.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryValue {
    /// A float scalar (from ungrouped aggregation).
    Scalar(f32),
    /// A materialised integer column.
    IntColumn(Vec<i32>),
    /// A materialised float column.
    FloatColumn(Vec<f32>),
    /// A materialised OID column.
    OidColumn(Vec<u32>),
}

/// Runtime element type of a column register, used to materialise results
/// with the right readback (`to_i32` / `to_f32` / `to_oids`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    I32,
    F32,
    Oid,
}

enum Slot<C> {
    Column(C, ColKind),
    Scalar(C),
    Group(GroupHandle<C>),
}

/// Outcome of one [`PlanRun::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// One node executed; more remain.
    Progressed,
    /// Every node has executed.
    Done,
}

/// Counters of the unified recovery protocol (see the module docs for the
/// fault class → handler → counter contract). Surfaced per run by
/// [`PlanRun::recovery_stats`], aggregated per session
/// (`Session::recovery_stats`) and per scheduled stream
/// (`Scheduler::run_with_fallback`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Node retries after a transient fault.
    pub retries: u64,
    /// Deterministic backoff steps slept before those retries (the first
    /// retry of a node is immediate, so this lags `retries`).
    pub backoff_steps: u64,
    /// Node restarts after an out-of-device-memory fault (reclaim + re-run).
    pub oom_restarts: u64,
    /// Whole-query failovers onto a fallback backend after device loss.
    pub failovers: u64,
    /// Plans that exhausted the retry budget and were surfaced as typed
    /// [`PlanError::Faulted`] errors while the rest of the stream proceeded.
    pub quarantines: u64,
}

impl RecoveryStats {
    /// Projects these counters into a [`MetricsRegistry`] under
    /// `<prefix>.retries`, `<prefix>.backoff_steps`, `<prefix>.oom_restarts`,
    /// `<prefix>.failovers` and `<prefix>.quarantines`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.retries"), self.retries);
        registry.set_counter(&format!("{prefix}.backoff_steps"), self.backoff_steps);
        registry.set_counter(&format!("{prefix}.oom_restarts"), self.oom_restarts);
        registry.set_counter(&format!("{prefix}.failovers"), self.failovers);
        registry.set_counter(&format!("{prefix}.quarantines"), self.quarantines);
    }

    /// Adds another set of counters into this one.
    pub fn absorb(&mut self, other: &RecoveryStats) {
        self.retries += other.retries;
        self.backoff_steps += other.backoff_steps;
        self.oom_restarts += other.oom_restarts;
        self.failovers += other.failovers;
        self.quarantines += other.quarantines;
    }

    /// Total recovery actions taken.
    pub fn total(&self) -> u64 {
        self.retries + self.oom_restarts + self.failovers + self.quarantines
    }
}

/// One observable decision of the recovery protocol, in the order it was
/// taken. The trace is deterministic: the same plan under the same fault
/// schedule records the same events (the property the recovery-determinism
/// tests pin).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A node was retried after a transient fault.
    TransientRetry {
        /// Node index within the plan.
        node: usize,
        /// The site the fault fired at.
        site: FaultSite,
        /// The device's fault-plan operation index at firing time.
        op: u64,
        /// 1-based attempt count for this node (attempt 1 failed → retry).
        attempt: u64,
        /// Backoff slept before the retry (0 for the immediate first retry).
        backoff_ns: u64,
    },
    /// A node was restarted after an OOM, following a reclaim pass.
    OomRestart {
        /// Node index within the plan.
        node: usize,
        /// Bytes the failing allocation asked for.
        requested: usize,
    },
    /// The device was lost; the plan unwound as [`PlanError::DeviceLost`].
    DeviceLost {
        /// Node index the loss surfaced at.
        node: usize,
    },
    /// The query failed over onto a fallback backend (session level).
    Failover {
        /// Name of the backend the query was re-run on.
        to: String,
    },
}

/// The EXPLAIN ANALYZE record of one executed plan node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeProfile {
    /// Node index within the plan (matches the `explain()` listing).
    pub index: usize,
    /// Rendered operator (with its literal parameters).
    pub op: String,
    /// Wall-clock nanoseconds from the node's first attempt to its
    /// successful completion, recovery loop included.
    pub host_ns: u64,
    /// Output rows the node produced (group count for groupings, 1 for
    /// scalars, 0 for `sync`/`result` nodes).
    pub rows: u64,
    /// Execution attempts (1 = clean first run).
    pub attempts: u64,
    /// OOM restarts the node took (reclaim + re-run).
    pub restarts: u64,
    /// Transient-fault retries the node took.
    pub retries: u64,
    /// Device activity attributed to this node: the backend's counter
    /// delta across the node (kernels, transfers, flushes, spill bytes).
    pub marker: ProfileMarker,
}

/// The EXPLAIN ANALYZE profile of one completed [`PlanRun`].
///
/// **Conservation invariant (epsilon = 0):** `total_host_ns` is the sum of
/// the per-step wall times, each step splits exactly into its node's
/// `host_ns` plus a remainder booked into `overhead_ns` (register
/// reclamation, bookkeeping), so
/// `total_host_ns == nodes_host_ns() + overhead_ns` holds *exactly* — the
/// attribution is a partition of the measured total, not a re-measurement.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanProfile {
    /// Configuration name the plan ran on.
    pub backend: String,
    /// Per-node records, in execution order.
    pub nodes: Vec<NodeProfile>,
    /// Total wall-clock nanoseconds across every executed step.
    pub total_host_ns: u64,
    /// Wall time not attributed to any node (see the conservation
    /// invariant above).
    pub overhead_ns: u64,
    /// Recovery counters of the profiled run.
    pub recovery: RecoveryStats,
}

impl PlanProfile {
    /// Sum of the per-node wall times.
    pub fn nodes_host_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.host_ns).sum()
    }

    /// Sum of the per-node output rows.
    pub fn total_rows(&self) -> u64 {
        self.nodes.iter().map(|n| n.rows).sum()
    }

    /// Counter-wise sum of every node's attributed device activity.
    pub fn total_marker(&self) -> ProfileMarker {
        let mut total = ProfileMarker::default();
        for node in &self.nodes {
            total.kernels += node.marker.kernels;
            total.transfers += node.marker.transfers;
            total.bytes_to_device += node.marker.bytes_to_device;
            total.bytes_from_device += node.marker.bytes_from_device;
            total.modeled_ns += node.marker.modeled_ns;
            total.flushes += node.marker.flushes;
            total.spills += node.marker.spills;
            total.spilled_bytes += node.marker.spilled_bytes;
        }
        total
    }

    /// Renders the annotated plan listing — the `explain()` physical-plan
    /// tree, each node carrying its measured time, rows, kernel/transfer
    /// counts and (when recovery or spilling fired) the restart/retry/spill
    /// attribution.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = format!(
            "=== explain analyze: {} ({} nodes, total {:.3} ms = nodes {:.3} ms + overhead {:.3} ms) ===\n",
            self.backend,
            self.nodes.len(),
            ms(self.total_host_ns),
            ms(self.nodes_host_ns()),
            ms(self.overhead_ns),
        );
        for node in &self.nodes {
            out.push_str(&format!("  {:3}: {}\n", node.index, node.op));
            out.push_str(&format!(
                "       time {:.3} ms, rows {}, kernels {}, transfers {} ({} B), flushes {}\n",
                ms(node.host_ns),
                node.rows,
                node.marker.kernels,
                node.marker.transfers,
                node.marker.transfer_bytes(),
                node.marker.flushes,
            ));
            if node.restarts > 0 || node.retries > 0 || node.marker.spills > 0 {
                out.push_str(&format!(
                    "       recovery: {} restart(s), {} retr{}, {} spill(s) ({} B offloaded)\n",
                    node.restarts,
                    node.retries,
                    if node.retries == 1 { "y" } else { "ies" },
                    node.marker.spills,
                    node.marker.spilled_bytes,
                ));
            }
        }
        out
    }
}

/// Accumulating profile state of a [`PlanRun`] with profiling enabled.
struct ProfileState {
    nodes: Vec<NodeProfile>,
    total_ns: u64,
    overhead_ns: u64,
}

/// A resumable execution of one [`Plan`] against one [`Backend`].
///
/// The run owns the plan's live registers; values are dropped at their last
/// use so their device buffers recycle while later nodes still execute.
pub struct PlanRun<'a, B: Backend> {
    plan: &'a Plan,
    backend: &'a B,
    catalog: &'a Catalog,
    registers: HashMap<Var, Slot<B::Column>>,
    results: Vec<QueryValue>,
    pc: usize,
    restarts: u64,
    stats: RecoveryStats,
    trace: Vec<RecoveryEvent>,
    /// Node lifecycle event emitter (armed by [`PlanRun::trace_handle`]).
    node_trace: TraceHandle,
    /// EXPLAIN ANALYZE state, when enabled.
    profile: Option<ProfileState>,
}

/// Typed fault payloads (`DeviceOom`, `TransientFault`, `DeviceLostFault`)
/// raised under [`PlanRun::step`]'s `catch_unwind` are recovery control
/// flow, not bugs: the protocol either recovers them or converts them to
/// typed [`PlanError`]s, so the default panic hook must not spam a "thread
/// panicked" line for every one. The hook silences exactly those payload
/// *types*, unconditionally — Result-typed paths above the catch site make
/// the old scoped-depth bookkeeping unnecessary, and an untyped or foreign
/// payload still reaches the previous hook unchanged (a genuine bug is
/// never muted). Installed once, process-wide.
fn silence_recovery_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<DeviceOom>()
                || payload.is::<TransientFault>()
                || payload.is::<DeviceLostFault>()
            {
                return;
            }
            previous(info);
        }));
    });
}

impl<'a, B: Backend> PlanRun<'a, B> {
    /// Prepares a run; nothing executes until [`PlanRun::step`].
    pub fn new(plan: &'a Plan, backend: &'a B, catalog: &'a Catalog) -> PlanRun<'a, B> {
        silence_recovery_panics();
        PlanRun {
            plan,
            backend,
            catalog,
            registers: HashMap::new(),
            results: Vec::new(),
            pc: 0,
            restarts: 0,
            stats: RecoveryStats::default(),
            trace: Vec::new(),
            node_trace: TraceHandle::new(),
            profile: None,
        }
    }

    /// Turns on EXPLAIN ANALYZE for this run: every node records wall time,
    /// output rows, attempts and its device-activity delta
    /// ([`NodeProfile`]). Profiling syncs the backend after every node so
    /// queue counters attribute to the node that enqueued the work — an
    /// **observer effect**: a lazy pipeline that would flush once now
    /// flushes per node. Timings are honest, flush counts are not the
    /// unprofiled run's.
    pub fn enable_profiling(&mut self) {
        self.profile = Some(ProfileState { nodes: Vec::new(), total_ns: 0, overhead_ns: 0 });
    }

    /// The run's node-lifecycle trace attachment point: with a sink
    /// attached, every node start/complete (and each recovery restart or
    /// retry) emits a [`TraceEventKind::Node`] event.
    pub fn trace_handle(&self) -> &TraceHandle {
        &self.node_trace
    }

    /// The EXPLAIN ANALYZE profile accumulated so far, consuming the
    /// profiling state. `None` unless [`PlanRun::enable_profiling`] was
    /// called.
    pub fn take_profile(&mut self) -> Option<PlanProfile> {
        self.profile.take().map(|state| PlanProfile {
            backend: self.backend.name().to_string(),
            nodes: state.nodes,
            total_host_ns: state.total_ns,
            overhead_ns: state.overhead_ns,
            recovery: self.stats,
        })
    }

    /// Number of nodes executed so far.
    pub fn completed_nodes(&self) -> usize {
        self.pc
    }

    /// Number of node restarts the OOM-restart protocol performed.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Counters of every recovery action this run took.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The ordered recovery decisions this run took (deterministic for a
    /// given plan and fault schedule).
    pub fn recovery_trace(&self) -> &[RecoveryEvent] {
        &self.trace
    }

    /// Whether every node has executed.
    pub fn is_done(&self) -> bool {
        self.pc >= self.plan.len()
    }

    /// The materialised results so far (complete once [`PlanRun::is_done`]).
    pub fn into_results(self) -> Vec<QueryValue> {
        self.results
    }

    fn column(&self, var: Var) -> Result<(B::Column, ColKind), PlanError> {
        match self.registers.get(&var) {
            Some(Slot::Column(c, kind)) => Ok((c.clone(), *kind)),
            Some(Slot::Scalar(_)) => Err(PlanError::KindMismatch {
                var,
                expected: ValueKind::Column,
                found: ValueKind::Scalar,
            }),
            Some(Slot::Group(_)) => Err(PlanError::KindMismatch {
                var,
                expected: ValueKind::Column,
                found: ValueKind::Group,
            }),
            None => Err(PlanError::UndefinedVar { var }),
        }
    }

    fn group(&self, var: Var) -> Result<&GroupHandle<B::Column>, PlanError> {
        match self.registers.get(&var) {
            Some(Slot::Group(g)) => Ok(g),
            Some(_) => Err(PlanError::KindMismatch {
                var,
                expected: ValueKind::Group,
                found: ValueKind::Column,
            }),
            None => Err(PlanError::UndefinedVar { var }),
        }
    }

    fn cands(&self, node: &PlanNode) -> Result<Option<B::Column>, PlanError> {
        match node.inputs.get(1) {
            Some(var) => Ok(Some(self.column(*var)?.0)),
            None => Ok(None),
        }
    }

    /// Restart attempts per node before a recoverable fault becomes a plan
    /// error — the **shared budget** of the unified recovery protocol: OOM
    /// restarts and transient retries of one node draw from the same
    /// count. A multi-allocation node can legitimately need several
    /// progressive restarts (each attempt reaches further once the
    /// previous attempt's pending work is flushed out); the limit only
    /// bounds the degenerate cases where reclaim keeps reporting trivial
    /// progress or a "transient" fault never stops firing.
    const RESTART_LIMIT: usize = 6;

    /// Deterministic backoff before the n-th retry of a node: the first
    /// retry is immediate, later ones sleep an exponentially growing step
    /// (1 µs, 2 µs, …) capped at 64 µs. The *schedule* is a pure function
    /// of the attempt count, so recovery traces are reproducible; the cap
    /// keeps worst-case added latency per node under half a millisecond.
    fn backoff(attempt: usize) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = (attempt - 2).min(6) as u32;
        Duration::from_micros(1 << exp).min(Duration::from_micros(64))
    }

    /// Drops everything a failed node attempt produced, so the re-run (or
    /// the unwinding plan) starts from a clean slate — the shared restart
    /// step of every recovery trigger.
    fn discard_attempt(&mut self, node: &PlanNode, results_before: usize) {
        for out in &node.outputs {
            self.registers.remove(out);
        }
        self.results.truncate(results_before);
    }

    /// Executes exactly one node. Errors leave the run unable to proceed —
    /// except for the typed fault payloads the **unified recovery
    /// protocol** handles (see the module docs for the full lifecycle
    /// contract): out-of-device-memory restarts the node after a reclaim
    /// pass ([`Backend::reclaim_memory`]), a transient fault retries it
    /// after a deterministic backoff step, and both draw from one shared
    /// restart budget before surfacing as [`PlanError::OutOfDeviceMemory`]
    /// / [`PlanError::Faulted`]. Device loss is not retryable: the run
    /// unwinds immediately as [`PlanError::DeviceLost`] for the session or
    /// scheduler to fail over.
    pub fn step(&mut self) -> Result<StepOutcome, PlanError> {
        if self.pc >= self.plan.len() {
            return Ok(StepOutcome::Done);
        }
        // Copy the plan reference out of `self` ('a outlives this call), so
        // the node borrow coexists with the `&mut self` execution below.
        let plan = self.plan;
        let node = &plan.nodes()[self.pc];
        let results_before = self.results.len();
        let profiling = self.profile.is_some();
        // One timestamp serves both the profile and the trace; taken only
        // when either observer is live, so the unobserved path stays free
        // of clock reads.
        let step_start = (profiling || self.node_trace.armed()).then(Instant::now);
        let marker_before = profiling.then(|| self.backend.profile_marker());
        let pc = self.pc as u64;
        self.node_trace.emit(|| TraceEventKind::Node {
            pc,
            op: node.op.name().to_string(),
            action: NodeAction::Start,
            rows: 0,
            host_ns: 0,
        });
        let mut attempts = 0usize;
        let mut node_restarts = 0u64;
        let mut node_retries = 0u64;
        let rows;
        loop {
            let caught = panic::catch_unwind(AssertUnwindSafe(|| {
                self.exec_node(node)?;
                if profiling {
                    // Flush the node's enqueued work so the backend's
                    // counters (and the row resolve below) attribute to
                    // *this* node — the profiler's documented observer
                    // effect. Faults raised here re-enter the recovery loop
                    // like any node fault.
                    self.backend.sync();
                    return Ok(self.profiled_rows(node));
                }
                Ok(0)
            }));
            let payload = match caught {
                Ok(result) => {
                    rows = result?;
                    break;
                }
                Err(payload) => payload,
            };
            let payload = match payload.downcast::<DeviceOom>() {
                Ok(oom) => {
                    self.discard_attempt(node, results_before);
                    attempts += 1;
                    let progressed = self.backend.reclaim_memory(oom.requested);
                    if attempts > Self::RESTART_LIMIT || !progressed {
                        return Err(PlanError::OutOfDeviceMemory {
                            requested: oom.requested,
                            available: oom.available,
                        });
                    }
                    self.restarts += 1;
                    self.stats.oom_restarts += 1;
                    node_restarts += 1;
                    self.trace.push(RecoveryEvent::OomRestart {
                        node: self.pc,
                        requested: oom.requested,
                    });
                    self.node_trace.emit(|| TraceEventKind::Node {
                        pc,
                        op: node.op.name().to_string(),
                        action: NodeAction::Restart,
                        rows: 0,
                        host_ns: 0,
                    });
                    continue;
                }
                Err(other) => other,
            };
            let payload = match payload.downcast::<TransientFault>() {
                Ok(fault) => {
                    self.discard_attempt(node, results_before);
                    attempts += 1;
                    if attempts > Self::RESTART_LIMIT {
                        return Err(PlanError::Faulted {
                            site: fault.site,
                            op: fault.op,
                            attempts: attempts as u64,
                        });
                    }
                    let backoff = Self::backoff(attempts);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                        self.stats.backoff_steps += 1;
                    }
                    self.stats.retries += 1;
                    node_retries += 1;
                    self.trace.push(RecoveryEvent::TransientRetry {
                        node: self.pc,
                        site: fault.site,
                        op: fault.op,
                        attempt: attempts as u64,
                        backoff_ns: backoff.as_nanos() as u64,
                    });
                    self.node_trace.emit(|| TraceEventKind::Node {
                        pc,
                        op: node.op.name().to_string(),
                        action: NodeAction::Retry,
                        rows: 0,
                        host_ns: 0,
                    });
                    continue;
                }
                Err(other) => other,
            };
            match payload.downcast::<DeviceLostFault>() {
                Ok(_) => {
                    self.discard_attempt(node, results_before);
                    self.trace.push(RecoveryEvent::DeviceLost { node: self.pc });
                    return Err(PlanError::DeviceLost);
                }
                Err(other) => panic::resume_unwind(other),
            }
        }
        let node_ns = step_start.map(|start| start.elapsed().as_nanos() as u64).unwrap_or(0);
        self.node_trace.emit(|| TraceEventKind::Node {
            pc,
            op: node.op.name().to_string(),
            action: NodeAction::Complete,
            rows,
            host_ns: node_ns,
        });
        if let Some(before) = marker_before {
            let marker = self.backend.profile_marker().delta(&before);
            let record = NodeProfile {
                index: self.pc,
                op: node.op.to_string(),
                host_ns: node_ns,
                rows,
                attempts: attempts as u64 + 1,
                restarts: node_restarts,
                retries: node_retries,
                marker,
            };
            if let Some(profile) = self.profile.as_mut() {
                profile.nodes.push(record);
            }
        }
        // Register reclamation: values read for the last time by this node
        // are dead, and outputs no later node ever reads (a discarded join
        // side, say) are dead on arrival — dropping either returns its
        // buffers to the recycle pool once pending queue operations
        // complete.
        for var in &node.inputs {
            if self.plan.last_use(*var) == Some(self.pc) {
                self.registers.remove(var);
            }
        }
        for var in &node.outputs {
            if self.plan.last_use(*var).is_none() {
                self.registers.remove(var);
            }
        }
        if let (Some(profile), Some(start)) = (self.profile.as_mut(), step_start) {
            // Partition the step's wall time: the node's share was measured
            // above, the remainder (reclamation, bookkeeping) books into
            // `overhead_ns` — this is what makes the conservation invariant
            // exact (see [`PlanProfile`]).
            let step_ns = start.elapsed().as_nanos() as u64;
            profile.total_ns += step_ns;
            profile.overhead_ns += step_ns.saturating_sub(node_ns);
        }
        self.pc += 1;
        if self.pc >= self.plan.len() {
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Progressed)
        }
    }

    /// Output cardinality of a just-executed node, for EXPLAIN ANALYZE: the
    /// first output register's length (a resolved read — the profiling sync
    /// has already drained the queue), group count for groupings, 1 for
    /// scalars, 0 for output-less nodes (`sync`, `result`).
    fn profiled_rows(&self, node: &PlanNode) -> u64 {
        match node.outputs.first().and_then(|var| self.registers.get(var)) {
            Some(Slot::Column(c, _)) => self.backend.len(c) as u64,
            Some(Slot::Scalar(_)) => 1,
            Some(Slot::Group(g)) => g.num_groups as u64,
            None => 0,
        }
    }

    /// Runs one node's operator against the backend (no register
    /// reclamation, no program-counter advance — [`PlanRun::step`] owns
    /// those, so a restarted node re-executes this body alone).
    fn exec_node(&mut self, node: &PlanNode) -> Result<(), PlanError> {
        let b = self.backend;
        let set = |run: &mut Self, slot: Slot<B::Column>| {
            run.registers.insert(node.outputs[0], slot);
        };
        match &node.op {
            PlanOp::Bind { table, column } => {
                let bat = self.catalog.column(table, column).ok_or_else(|| {
                    PlanError::UnknownColumn { table: table.clone(), column: column.clone() }
                })?;
                let kind = if bat.as_f32().is_some() {
                    ColKind::F32
                } else if bat.as_oid().is_some() {
                    ColKind::Oid
                } else {
                    ColKind::I32
                };
                let col = b.bat(bat);
                set(self, Slot::Column(col, kind));
            }
            PlanOp::SelectRangeI32 { low, high } => {
                let (col, _) = self.column(node.inputs[0])?;
                let cands = self.cands(node)?;
                let out = b.select_range_i32(&col, *low, *high, cands.as_ref());
                set(self, Slot::Column(out, ColKind::Oid));
            }
            PlanOp::SelectRangeF32 { low, high } => {
                let (col, _) = self.column(node.inputs[0])?;
                let cands = self.cands(node)?;
                let out = b.select_range_f32(&col, *low, *high, cands.as_ref());
                set(self, Slot::Column(out, ColKind::Oid));
            }
            PlanOp::SelectEqI32 { needle } => {
                let (col, _) = self.column(node.inputs[0])?;
                let cands = self.cands(node)?;
                let out = b.select_eq_i32(&col, *needle, cands.as_ref());
                set(self, Slot::Column(out, ColKind::Oid));
            }
            PlanOp::SelectNeI32 { needle } => {
                let (col, _) = self.column(node.inputs[0])?;
                let cands = self.cands(node)?;
                let out = b.select_ne_i32(&col, *needle, cands.as_ref());
                set(self, Slot::Column(out, ColKind::Oid));
            }
            PlanOp::UnionOids => {
                let (a, _) = self.column(node.inputs[0])?;
                let (c, _) = self.column(node.inputs[1])?;
                set(self, Slot::Column(b.union_oids(&a, &c), ColKind::Oid));
            }
            PlanOp::Fetch => {
                let (values, kind) = self.column(node.inputs[0])?;
                let (oids, _) = self.column(node.inputs[1])?;
                set(self, Slot::Column(b.fetch(&values, &oids), kind));
            }
            PlanOp::MulF32 | PlanOp::AddF32 | PlanOp::SubF32 => {
                let (x, _) = self.column(node.inputs[0])?;
                let (y, _) = self.column(node.inputs[1])?;
                let out = match node.op {
                    PlanOp::MulF32 => b.mul_f32(&x, &y),
                    PlanOp::AddF32 => b.add_f32(&x, &y),
                    _ => b.sub_f32(&x, &y),
                };
                set(self, Slot::Column(out, ColKind::F32));
            }
            PlanOp::ConstMinusF32 { constant } => {
                let (a, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.const_minus_f32(*constant, &a), ColKind::F32));
            }
            PlanOp::ConstPlusF32 { constant } => {
                let (a, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.const_plus_f32(*constant, &a), ColKind::F32));
            }
            PlanOp::MulConstF32 { constant } => {
                let (a, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.mul_const_f32(&a, *constant), ColKind::F32));
            }
            PlanOp::CastI32F32 => {
                let (a, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.cast_i32_f32(&a), ColKind::F32));
            }
            PlanOp::ExtractYear => {
                let (a, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.extract_year(&a), ColKind::I32));
            }
            PlanOp::PkFkJoin => {
                let (fk, _) = self.column(node.inputs[0])?;
                let (pk, _) = self.column(node.inputs[1])?;
                let (fk_oids, pk_oids) = b.pkfk_join(&fk, &pk);
                self.registers.insert(node.outputs[0], Slot::Column(fk_oids, ColKind::Oid));
                self.registers.insert(node.outputs[1], Slot::Column(pk_oids, ColKind::Oid));
            }
            PlanOp::PkFkJoinPartitioned { ndv_hint } => {
                let (fk, _) = self.column(node.inputs[0])?;
                let (pk, _) = self.column(node.inputs[1])?;
                let (fk_oids, pk_oids) = b.pkfk_join_partitioned(&fk, &pk, *ndv_hint);
                self.registers.insert(node.outputs[0], Slot::Column(fk_oids, ColKind::Oid));
                self.registers.insert(node.outputs[1], Slot::Column(pk_oids, ColKind::Oid));
            }
            PlanOp::SemiJoin => {
                let (l, _) = self.column(node.inputs[0])?;
                let (r, _) = self.column(node.inputs[1])?;
                set(self, Slot::Column(b.semi_join(&l, &r), ColKind::Oid));
            }
            PlanOp::AntiJoin => {
                let (l, _) = self.column(node.inputs[0])?;
                let (r, _) = self.column(node.inputs[1])?;
                set(self, Slot::Column(b.anti_join(&l, &r), ColKind::Oid));
            }
            PlanOp::GroupBy => {
                let keys: Vec<B::Column> = node
                    .inputs
                    .iter()
                    .map(|var| self.column(*var).map(|(c, _)| c))
                    .collect::<Result<_, _>>()?;
                let refs: Vec<&B::Column> = keys.iter().collect();
                set(self, Slot::Group(b.group_by(&refs)));
            }
            PlanOp::GroupReps => {
                let reps = self.group(node.inputs[0])?.representatives.clone();
                set(self, Slot::Column(reps, ColKind::Oid));
            }
            PlanOp::GroupedSumF32
            | PlanOp::GroupedMinF32
            | PlanOp::GroupedMaxF32
            | PlanOp::GroupedAvgF32 => {
                let (values, _) = self.column(node.inputs[0])?;
                let group = self.group(node.inputs[1])?;
                let out = match node.op {
                    PlanOp::GroupedSumF32 => b.grouped_sum_f32(&values, group),
                    PlanOp::GroupedMinF32 => b.grouped_min_f32(&values, group),
                    PlanOp::GroupedMaxF32 => b.grouped_max_f32(&values, group),
                    _ => b.grouped_avg_f32(&values, group),
                };
                let out_slot = Slot::Column(out, ColKind::F32);
                self.registers.insert(node.outputs[0], out_slot);
            }
            PlanOp::GroupedCount => {
                let group = self.group(node.inputs[0])?;
                let out = Slot::Column(b.grouped_count(group), ColKind::F32);
                self.registers.insert(node.outputs[0], out);
            }
            PlanOp::SortOrderI32 { descending } => {
                let (col, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.sort_order_i32(&col, *descending), ColKind::Oid));
            }
            PlanOp::SortOrderF32 { descending } => {
                let (col, _) = self.column(node.inputs[0])?;
                set(self, Slot::Column(b.sort_order_f32(&col, *descending), ColKind::Oid));
            }
            PlanOp::SumF32 => {
                let (values, _) = self.column(node.inputs[0])?;
                set(self, Slot::Scalar(b.sum_scalar_f32(&values)));
            }
            PlanOp::Sync => {
                for var in &node.inputs {
                    if !self.registers.contains_key(var) {
                        return Err(PlanError::UndefinedVar { var: *var });
                    }
                }
                b.sync();
            }
            PlanOp::Result => {
                for var in &node.inputs {
                    let value = match self.registers.get(var) {
                        Some(Slot::Scalar(c)) => {
                            let scalars = b.to_f32(c);
                            QueryValue::Scalar(scalars.first().copied().unwrap_or(0.0))
                        }
                        Some(Slot::Column(c, ColKind::I32)) => QueryValue::IntColumn(b.to_i32(c)),
                        Some(Slot::Column(c, ColKind::F32)) => QueryValue::FloatColumn(b.to_f32(c)),
                        Some(Slot::Column(c, ColKind::Oid)) => QueryValue::OidColumn(b.to_oids(c)),
                        Some(Slot::Group(_)) => {
                            return Err(PlanError::KindMismatch {
                                var: *var,
                                expected: ValueKind::Column,
                                found: ValueKind::Group,
                            })
                        }
                        None => return Err(PlanError::UndefinedVar { var: *var }),
                    };
                    self.results.push(value);
                }
            }
        }
        Ok(())
    }

    /// Runs every remaining node.
    pub fn run_to_completion(&mut self) -> Result<(), PlanError> {
        while !matches!(self.step()?, StepOutcome::Done) {}
        Ok(())
    }
}

/// Convenience: builds a run, executes it fully and returns the
/// materialised results.
pub fn execute_plan<B: Backend>(
    plan: &Plan,
    backend: &B,
    catalog: &Catalog,
) -> Result<Vec<QueryValue>, PlanError> {
    let mut run = PlanRun::new(plan, backend, catalog);
    run.run_to_completion()?;
    Ok(run.into_results())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{MonetSeqBackend, OcelotBackend};
    use ocelot_storage::{Bat, Catalog, Table};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("k", Bat::from_i32("k", (0..2_000).map(|i| i % 40).collect()).into_ref())
            .with_column(
                "v",
                Bat::from_f32("v", (0..2_000).map(|i| i as f32 * 0.5).collect()).into_ref(),
            )
            .with_column("g", Bat::from_i32("g", (0..2_000).map(|i| i % 5).collect()).into_ref())
            .with_column("id", Bat::from_i32("id", (0..2_000).collect()).with_key(true).into_ref());
        catalog.add_table(table);
        catalog
    }

    /// select k in [5, 20] → group v by g → per-group sums + reps.
    fn grouped_plan() -> Plan {
        let mut p = PlanBuilder::new();
        let k = p.bind("t", "k");
        let sel = p.select_range_i32(k, 5, 20, None).unwrap();
        let v = p.bind("t", "v");
        let v_sel = p.fetch(v, sel).unwrap();
        let g = p.bind("t", "g");
        let g_sel = p.fetch(g, sel).unwrap();
        let group = p.group_by(&[g_sel]).unwrap();
        let sums = p.grouped_sum_f32(v_sel, group).unwrap();
        let reps = p.group_reps(group).unwrap();
        let keys = p.fetch(g_sel, reps).unwrap();
        p.result(&[keys, sums]).unwrap();
        p.finish()
    }

    #[test]
    fn builder_rejects_kind_misuse() {
        let mut p = PlanBuilder::new();
        let v = p.bind("t", "v");
        let total = p.sum_f32(v).unwrap();
        let err = p.mul_f32(total, v).unwrap_err();
        assert_eq!(
            err,
            PlanError::KindMismatch {
                var: total,
                expected: ValueKind::Column,
                found: ValueKind::Scalar
            }
        );
        assert!(err.to_string().contains("holds a scalar"));

        let err = p.group_reps(v).unwrap_err();
        assert!(matches!(err, PlanError::KindMismatch { .. }));

        let err = p.fetch(v, 4_242).unwrap_err();
        assert_eq!(err, PlanError::UndefinedVar { var: 4_242 });
        assert!(err.to_string().contains("undefined"));

        assert_eq!(p.group_by(&[]).unwrap_err(), PlanError::EmptyGroupBy);
    }

    #[test]
    fn dependencies_reflect_the_dataflow_dag() {
        let plan = grouped_plan();
        let deps = plan.dependencies();
        assert_eq!(deps.len(), plan.len());
        // Binds have no dependencies; every other node depends only on
        // earlier nodes (topological order).
        for (index, node) in plan.nodes().iter().enumerate() {
            if matches!(node.op, PlanOp::Bind { .. }) {
                assert!(deps[index].is_empty());
            }
            for dep in &deps[index] {
                assert!(*dep < index, "node {index} depends on later node {dep}");
            }
        }
        // The result node depends on the two materialised columns.
        let last = deps.last().unwrap();
        assert_eq!(last.len(), 2);
    }

    #[test]
    fn registers_are_freed_at_last_use() {
        let plan = grouped_plan();
        let catalog = catalog();
        let backend = MonetSeqBackend::new();
        let mut run = PlanRun::new(&plan, &backend, &catalog);
        run.run_to_completion().unwrap();
        assert!(run.is_done());
        assert!(
            run.registers.is_empty(),
            "every register is dead after the result node materialises"
        );
    }

    #[test]
    fn discarded_outputs_are_freed_as_soon_as_they_are_produced() {
        // Q3's shape: one side of a join is never consumed. The register
        // must not survive past the producing node (it would otherwise pin
        // its buffers for the rest of the plan).
        let mut p = PlanBuilder::new();
        let fk = p.bind("t", "k");
        let pk = p.bind("t", "id");
        let (positions, discarded) = p.pkfk_join(fk, pk).unwrap();
        let v = p.bind("t", "v");
        let fetched = p.fetch(v, positions).unwrap();
        p.result(&[fetched]).unwrap();
        let plan = p.finish();
        assert_eq!(plan.last_use(discarded), None);

        let catalog = catalog();
        let backend = MonetSeqBackend::new();
        let mut run = PlanRun::new(&plan, &backend, &catalog);
        while !run.is_done() {
            run.step().unwrap();
            assert!(
                !run.registers.contains_key(&discarded),
                "discarded join side must never be retained (after node {})",
                run.completed_nodes()
            );
        }
        assert!(run.registers.is_empty());
    }

    #[test]
    fn stepping_matches_run_to_completion() {
        let plan = grouped_plan();
        let catalog = catalog();
        let backend = MonetSeqBackend::new();
        let mut stepped = PlanRun::new(&plan, &backend, &catalog);
        let mut steps = 0;
        while !matches!(stepped.step().unwrap(), StepOutcome::Done) {
            steps += 1;
        }
        assert_eq!(steps + 1, plan.len());
        let direct = execute_plan(&plan, &backend, &catalog).unwrap();
        assert_eq!(stepped.into_results(), direct);
    }

    #[test]
    fn plan_execution_agrees_across_backends() {
        let plan = grouped_plan();
        let catalog = catalog();
        let reference = execute_plan(&plan, &MonetSeqBackend::new(), &catalog).unwrap();
        assert_eq!(reference.len(), 2);
        for backend in [OcelotBackend::cpu(), OcelotBackend::gpu()] {
            let result = execute_plan(&plan, &backend, &catalog).unwrap();
            match (&reference[1], &result[1]) {
                (QueryValue::FloatColumn(a), QueryValue::FloatColumn(b)) => {
                    assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        assert!((x - y).abs() < 1.0, "{x} vs {y}");
                    }
                }
                other => panic!("unexpected result shapes: {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_columns_surface_at_execution() {
        let mut p = PlanBuilder::new();
        let missing = p.bind("nope", "nothing");
        p.result(&[missing]).unwrap();
        let plan = p.finish();
        let err = execute_plan(&plan, &MonetSeqBackend::new(), &catalog()).unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownColumn { table: "nope".into(), column: "nothing".into() }
        );
        assert!(err.to_string().contains("unknown column"));
    }

    /// What a failing [`OomBackend`] attempt unwinds with — one variant
    /// per fault class of the unified recovery protocol, plus a plain
    /// panic to prove unrelated unwinds are never swallowed.
    #[derive(Clone, Copy)]
    enum FailMode {
        Oom,
        Transient,
        DeviceLost,
        PlainPanic,
    }

    /// A backend whose `bat` fails a configured number of times before
    /// succeeding — the deterministic harness for the unified recovery
    /// protocol (OOM restarts, transient retries, device-loss unwinds).
    struct OomBackend {
        inner: MonetSeqBackend,
        failures_left: std::sync::atomic::AtomicUsize,
        reclaims: std::sync::atomic::AtomicUsize,
        reclaim_succeeds: bool,
        mode: FailMode,
    }

    impl OomBackend {
        fn failing(times: usize, reclaim_succeeds: bool) -> OomBackend {
            OomBackend {
                inner: MonetSeqBackend::new(),
                failures_left: std::sync::atomic::AtomicUsize::new(times),
                reclaims: std::sync::atomic::AtomicUsize::new(0),
                reclaim_succeeds,
                mode: FailMode::Oom,
            }
        }

        fn with_mode(mut self, mode: FailMode) -> OomBackend {
            self.mode = mode;
            self
        }
    }

    impl Backend for OomBackend {
        type Column = <MonetSeqBackend as Backend>::Column;
        fn name(&self) -> &str {
            "OOM harness"
        }
        fn bat(&self, bat: &ocelot_storage::BatRef) -> Self::Column {
            use std::sync::atomic::Ordering;
            let left = self.failures_left.load(Ordering::Relaxed);
            if left > 0 {
                self.failures_left.store(left - 1, Ordering::Relaxed);
                match self.mode {
                    FailMode::PlainPanic => std::panic::panic_any("unrelated panic"),
                    FailMode::Transient => std::panic::panic_any(TransientFault {
                        site: FaultSite::KernelLaunch,
                        op: left as u64,
                    }),
                    FailMode::DeviceLost => std::panic::panic_any(DeviceLostFault),
                    FailMode::Oom => {
                        std::panic::panic_any(DeviceOom { requested: 4096, available: 0 })
                    }
                }
            }
            self.inner.bat(bat)
        }
        fn reclaim_memory(&self, _requested: usize) -> bool {
            self.reclaims.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.reclaim_succeeds
        }
        fn lift_i32(&self, v: Vec<i32>) -> Self::Column {
            self.inner.lift_i32(v)
        }
        fn lift_f32(&self, v: Vec<f32>) -> Self::Column {
            self.inner.lift_f32(v)
        }
        fn lift_oids(&self, v: Vec<u32>) -> Self::Column {
            self.inner.lift_oids(v)
        }
        fn to_i32(&self, c: &Self::Column) -> Vec<i32> {
            self.inner.to_i32(c)
        }
        fn to_f32(&self, c: &Self::Column) -> Vec<f32> {
            self.inner.to_f32(c)
        }
        fn to_oids(&self, c: &Self::Column) -> Vec<u32> {
            self.inner.to_oids(c)
        }
        fn len(&self, c: &Self::Column) -> usize {
            self.inner.len(c)
        }
        fn select_range_i32(
            &self,
            c: &Self::Column,
            lo: i32,
            hi: i32,
            cands: Option<&Self::Column>,
        ) -> Self::Column {
            self.inner.select_range_i32(c, lo, hi, cands)
        }
        fn select_range_f32(
            &self,
            c: &Self::Column,
            lo: f32,
            hi: f32,
            cands: Option<&Self::Column>,
        ) -> Self::Column {
            self.inner.select_range_f32(c, lo, hi, cands)
        }
        fn select_eq_i32(
            &self,
            c: &Self::Column,
            n: i32,
            cands: Option<&Self::Column>,
        ) -> Self::Column {
            self.inner.select_eq_i32(c, n, cands)
        }
        fn select_ne_i32(
            &self,
            c: &Self::Column,
            n: i32,
            cands: Option<&Self::Column>,
        ) -> Self::Column {
            self.inner.select_ne_i32(c, n, cands)
        }
        fn union_oids(&self, a: &Self::Column, b: &Self::Column) -> Self::Column {
            self.inner.union_oids(a, b)
        }
        fn fetch(&self, c: &Self::Column, o: &Self::Column) -> Self::Column {
            self.inner.fetch(c, o)
        }
        fn mul_f32(&self, a: &Self::Column, b: &Self::Column) -> Self::Column {
            self.inner.mul_f32(a, b)
        }
        fn add_f32(&self, a: &Self::Column, b: &Self::Column) -> Self::Column {
            self.inner.add_f32(a, b)
        }
        fn sub_f32(&self, a: &Self::Column, b: &Self::Column) -> Self::Column {
            self.inner.sub_f32(a, b)
        }
        fn const_minus_f32(&self, k: f32, a: &Self::Column) -> Self::Column {
            self.inner.const_minus_f32(k, a)
        }
        fn const_plus_f32(&self, k: f32, a: &Self::Column) -> Self::Column {
            self.inner.const_plus_f32(k, a)
        }
        fn mul_const_f32(&self, a: &Self::Column, k: f32) -> Self::Column {
            self.inner.mul_const_f32(a, k)
        }
        fn cast_i32_f32(&self, a: &Self::Column) -> Self::Column {
            self.inner.cast_i32_f32(a)
        }
        fn extract_year(&self, a: &Self::Column) -> Self::Column {
            self.inner.extract_year(a)
        }
        fn pkfk_join(&self, fk: &Self::Column, pk: &Self::Column) -> (Self::Column, Self::Column) {
            self.inner.pkfk_join(fk, pk)
        }
        fn semi_join(&self, l: &Self::Column, r: &Self::Column) -> Self::Column {
            self.inner.semi_join(l, r)
        }
        fn anti_join(&self, l: &Self::Column, r: &Self::Column) -> Self::Column {
            self.inner.anti_join(l, r)
        }
        fn group_by(&self, keys: &[&Self::Column]) -> GroupHandle<Self::Column> {
            self.inner.group_by(keys)
        }
        fn grouped_sum_f32(&self, v: &Self::Column, g: &GroupHandle<Self::Column>) -> Self::Column {
            self.inner.grouped_sum_f32(v, g)
        }
        fn grouped_count(&self, g: &GroupHandle<Self::Column>) -> Self::Column {
            self.inner.grouped_count(g)
        }
        fn grouped_min_f32(&self, v: &Self::Column, g: &GroupHandle<Self::Column>) -> Self::Column {
            self.inner.grouped_min_f32(v, g)
        }
        fn grouped_max_f32(&self, v: &Self::Column, g: &GroupHandle<Self::Column>) -> Self::Column {
            self.inner.grouped_max_f32(v, g)
        }
        fn grouped_avg_f32(&self, v: &Self::Column, g: &GroupHandle<Self::Column>) -> Self::Column {
            self.inner.grouped_avg_f32(v, g)
        }
        fn sum_f32(&self, v: &Self::Column) -> f32 {
            self.inner.sum_f32(v)
        }
        fn min_f32(&self, v: &Self::Column) -> f32 {
            self.inner.min_f32(v)
        }
        fn max_f32(&self, v: &Self::Column) -> f32 {
            self.inner.max_f32(v)
        }
        fn min_i32(&self, v: &Self::Column) -> i32 {
            self.inner.min_i32(v)
        }
        fn avg_f32(&self, v: &Self::Column) -> f32 {
            self.inner.avg_f32(v)
        }
        fn sort_order_i32(&self, c: &Self::Column, d: bool) -> Self::Column {
            self.inner.sort_order_i32(c, d)
        }
        fn sort_order_f32(&self, c: &Self::Column, d: bool) -> Self::Column {
            self.inner.sort_order_f32(c, d)
        }
        fn begin_timing(&self) {
            self.inner.begin_timing()
        }
        fn elapsed_ns(&self) -> u64 {
            self.inner.elapsed_ns()
        }
    }

    #[test]
    fn oom_nodes_are_restarted_after_reclaim() {
        // The node's first two attempts fail with a device OOM; the restart
        // protocol must reclaim, re-run it, and deliver the correct result.
        let plan = grouped_plan();
        let catalog = catalog();
        let reference = execute_plan(&plan, &MonetSeqBackend::new(), &catalog).unwrap();

        let backend = OomBackend::failing(2, true);
        let mut run = PlanRun::new(&plan, &backend, &catalog);
        run.run_to_completion().unwrap();
        assert_eq!(run.restarts(), 2, "one restart per failed attempt");
        assert_eq!(
            backend.reclaims.load(std::sync::atomic::Ordering::Relaxed),
            2,
            "every restart runs a reclaim pass first"
        );
        assert_eq!(run.into_results(), reference, "restarted run produces identical results");
    }

    #[test]
    fn oom_without_reclaim_progress_fails_structurally() {
        let plan = grouped_plan();
        let catalog = catalog();
        let backend = OomBackend::failing(1, false);
        let err = PlanRun::new(&plan, &backend, &catalog).run_to_completion().unwrap_err();
        assert_eq!(err, PlanError::OutOfDeviceMemory { requested: 4096, available: 0 });
        assert!(err.to_string().contains("out of device memory"));
    }

    #[test]
    fn oom_restarts_give_up_after_the_limit() {
        let plan = grouped_plan();
        let catalog = catalog();
        // More failures than the restart limit: reclaim keeps "succeeding"
        // but the node keeps failing — the run must not loop forever.
        let backend = OomBackend::failing(100, true);
        let err = PlanRun::new(&plan, &backend, &catalog).run_to_completion().unwrap_err();
        assert!(matches!(err, PlanError::OutOfDeviceMemory { .. }));
    }

    #[test]
    fn non_oom_panics_are_not_swallowed() {
        // Only typed fault payloads enter the recovery protocol; any other
        // panic must unwind through step() to the caller unchanged.
        let plan = grouped_plan();
        let catalog = catalog();
        let backend = OomBackend::failing(1, true).with_mode(FailMode::PlainPanic);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            PlanRun::new(&plan, &backend, &catalog).run_to_completion().unwrap();
        }));
        let payload = caught.unwrap_err();
        assert_eq!(*payload.downcast_ref::<&str>().unwrap(), "unrelated panic");
        assert_eq!(
            backend.reclaims.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "no reclaim pass for a non-OOM panic"
        );
    }

    #[test]
    fn transient_faults_retry_with_deterministic_backoff() {
        // Two transient failures, then success: the node is retried twice
        // (first retry immediate, second after one backoff step) and the
        // run delivers the same results as a fault-free reference.
        let plan = grouped_plan();
        let catalog = catalog();
        let reference = execute_plan(&plan, &MonetSeqBackend::new(), &catalog).unwrap();

        let trace_of = |times: usize| {
            let backend = OomBackend::failing(times, true).with_mode(FailMode::Transient);
            let mut run = PlanRun::new(&plan, &backend, &catalog);
            run.run_to_completion().unwrap();
            let stats = run.recovery_stats();
            let trace = run.recovery_trace().to_vec();
            assert_eq!(run.into_results(), reference, "retried run produces identical results");
            (stats, trace)
        };

        let (stats, trace) = trace_of(2);
        assert_eq!(stats.retries, 2);
        assert_eq!(stats.backoff_steps, 1, "the first retry is immediate");
        assert_eq!(stats.oom_restarts, 0, "transient faults never run reclaim");
        assert!(matches!(
            trace[0],
            RecoveryEvent::TransientRetry { attempt: 1, backoff_ns: 0, .. }
        ));
        assert!(matches!(
            trace[1],
            RecoveryEvent::TransientRetry { attempt: 2, backoff_ns: 1_000, .. }
        ));

        // Determinism: the same fault schedule reproduces the same trace.
        let (_, again) = trace_of(2);
        assert_eq!(trace, again, "same schedule, same recovery trace");
    }

    #[test]
    fn transient_faults_exhaust_into_a_typed_faulted_error() {
        let plan = grouped_plan();
        let catalog = catalog();
        let backend = OomBackend::failing(100, true).with_mode(FailMode::Transient);
        let err = PlanRun::new(&plan, &backend, &catalog).run_to_completion().unwrap_err();
        match err {
            PlanError::Faulted { site, attempts, .. } => {
                assert_eq!(site, FaultSite::KernelLaunch);
                assert_eq!(attempts as usize, PlanRun::<MonetSeqBackend>::RESTART_LIMIT + 1);
            }
            other => panic!("expected Faulted, got {other:?}"),
        }
        assert!(err.to_string().contains("retry budget"));
        assert_eq!(
            backend.reclaims.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "the transient path never reclaims"
        );
    }

    #[test]
    fn oom_and_transient_draw_from_one_shared_budget() {
        // RESTART_LIMIT bounds the *combined* attempts of one node. With
        // more transient failures than the limit the node fails even
        // though each individual fault class would be under its own limit
        // in a split-budget design; the typed error carries the total
        // attempt count.
        let plan = grouped_plan();
        let catalog = catalog();
        let limit = PlanRun::<MonetSeqBackend>::RESTART_LIMIT;
        let backend = OomBackend::failing(limit + 1, true).with_mode(FailMode::Transient);
        let err = PlanRun::new(&plan, &backend, &catalog).run_to_completion().unwrap_err();
        assert!(matches!(err, PlanError::Faulted { .. }));

        // Exactly at the limit the node still recovers.
        let backend = OomBackend::failing(limit, true).with_mode(FailMode::Transient);
        let mut run = PlanRun::new(&plan, &backend, &catalog);
        run.run_to_completion().unwrap();
        assert_eq!(run.recovery_stats().retries as usize, limit);
    }

    #[test]
    fn device_loss_unwinds_the_whole_plan() {
        let plan = grouped_plan();
        let catalog = catalog();
        let backend = OomBackend::failing(1, true).with_mode(FailMode::DeviceLost);
        let mut run = PlanRun::new(&plan, &backend, &catalog);
        let err = run.run_to_completion().unwrap_err();
        assert_eq!(err, PlanError::DeviceLost);
        assert!(err.to_string().contains("device lost"));
        assert_eq!(
            backend.reclaims.load(std::sync::atomic::Ordering::Relaxed),
            0,
            "device loss is not retryable: no reclaim, no retry"
        );
        assert!(matches!(run.recovery_trace(), [RecoveryEvent::DeviceLost { node: 0 }]));
    }

    #[test]
    fn footprint_estimate_tracks_register_lifetimes() {
        let catalog = catalog();
        // Two 2 000-row i32/f32 columns live at once (8 000 bytes each),
        // plus derived registers: the estimate must at least cover the
        // bound base columns and stay finite/plausible.
        let plan = grouped_plan();
        let footprint = plan.estimate_device_footprint(&catalog);
        assert!(footprint >= 2 * 2_000 * 4, "covers concurrently live base columns: {footprint}");
        assert!(footprint < 20 * 2_000 * 4, "does not blow up: {footprint}");

        // A plan that binds and immediately reduces one column peaks lower
        // than one holding three columns live simultaneously.
        let mut small = PlanBuilder::new();
        let v = small.bind("t", "v");
        let total = small.sum_f32(v).unwrap();
        small.result(&[total]).unwrap();
        let small = small.finish();

        let mut wide = PlanBuilder::new();
        let a = wide.bind("t", "v");
        let b = wide.bind("t", "k");
        let c = wide.bind("t", "g");
        wide.result(&[a, b, c]).unwrap();
        let wide = wide.finish();

        assert!(
            small.estimate_device_footprint(&catalog) < wide.estimate_device_footprint(&catalog),
            "register pressure orders plans"
        );
    }

    #[test]
    fn duplicate_binds_share_one_register_and_node() {
        // Re-binding the same table.column must not mint a second register:
        // two registers over one cached base column would double-pin it in
        // the device column cache's per-plan accounting.
        let mut p = PlanBuilder::new();
        let a = p.bind("t", "v");
        let b = p.bind("t", "v");
        assert_eq!(a, b, "same column binds to the same register");
        let other = p.bind("t", "k");
        assert_ne!(a, other);
        let total = p.sum_f32(a).unwrap();
        p.result(&[total]).unwrap();
        let plan = p.finish();
        let binds = plan.nodes().iter().filter(|n| matches!(n.op, PlanOp::Bind { .. })).count();
        assert_eq!(binds, 2, "one bind node per distinct column");
        // The deduped plan still executes correctly.
        let values = execute_plan(&plan, &MonetSeqBackend::new(), &catalog()).unwrap();
        assert!(matches!(values[0], QueryValue::Scalar(_)));
    }

    #[test]
    fn sort_heavy_plans_charge_scratch_beyond_register_lifetimes() {
        // The admission estimate must include operator scratch: the radix
        // sort's staging buffers and its (GPU) digit histogram dwarf the
        // registers of a small sort plan.
        let catalog = catalog();
        let mut p = PlanBuilder::new();
        let v = p.bind("t", "v");
        let order = p.sort_order_f32(v, true).unwrap();
        let sorted = p.fetch(v, order).unwrap();
        p.result(&[sorted]).unwrap();
        let plan = p.finish();

        let registers = plan.estimate_register_footprint(&catalog);
        let device = plan.estimate_device_footprint(&catalog);
        assert!(
            device > registers,
            "scratch-aware estimate ({device}) must strictly exceed the register-lifetime \
             bound ({registers}) for a sort-heavy plan"
        );
        // The histogram alone dominates: 256 radixes x 2048 work-items x 4B.
        assert!(device >= registers + 256 * 2048 * 4, "covers the radix histogram: {device}");

        // Hash joins charge build-side scratch too.
        let mut j = PlanBuilder::new();
        let fk = j.bind("t", "k");
        let pk = j.bind("t", "id");
        let (pos, _) = j.pkfk_join(fk, pk).unwrap();
        let out = j.fetch(fk, pos).unwrap();
        j.result(&[out]).unwrap();
        let join_plan = j.finish();
        assert!(
            join_plan.estimate_device_footprint(&catalog)
                > join_plan.estimate_register_footprint(&catalog),
            "hash build space counts toward admission"
        );
    }

    #[test]
    fn int_columns_materialise_as_ints() {
        let mut p = PlanBuilder::new();
        let k = p.bind("t", "k");
        let g = p.bind("t", "g");
        p.result(&[k, g]).unwrap();
        let plan = p.finish();
        let values = execute_plan(&plan, &MonetSeqBackend::new(), &catalog()).unwrap();
        assert!(matches!(values[0], QueryValue::IntColumn(_)));
        assert!(matches!(values[1], QueryValue::IntColumn(_)));
    }
}
