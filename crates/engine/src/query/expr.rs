//! The logical expression tree of the query algebra.
//!
//! An [`Expr`] is a *logical* value or predicate over named columns —
//! nothing in it names a physical operator. The lowering pass decides how
//! an expression executes: a comparison against a literal becomes a
//! range/equality **selection** (with candidate-list chaining), a
//! column-vs-column comparison becomes a cast + subtraction + positivity
//! selection, `IN` becomes a union of equality selections, and arithmetic
//! becomes the backend's element-wise map kernels.
//!
//! Expressions are built with [`col`], [`lit`]/[`litf`] and the fluent
//! comparison/boolean methods, plus the std `+ - *` operators:
//!
//! ```
//! use ocelot_engine::query::{col, lit};
//! let revenue = col("l_extendedprice") * (lit(1.0f32) - col("l_discount"));
//! let window = col("l_shipdate").between(8766, 9131).and(col("l_discount").ge(0.05f32));
//! ```
//!
//! [`Expr::fold`] is the constant-folding rewrite: literal arithmetic is
//! evaluated at plan-build time (`1 + 2 → 3`, with int→float promotion when
//! the sides mix), so the lowered plan never computes a constant on the
//! device.

use std::fmt;

/// A comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl CmpOp {
    /// SQL-ish rendering.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
        }
    }
}

/// A logical scalar expression over named columns (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference, by name.
    Col(String),
    /// An integer literal (also dictionary codes and day-number dates).
    LitI32(i32),
    /// A float literal.
    LitF32(f32),
    /// `a + b`.
    Add(Box<Expr>, Box<Expr>),
    /// `a - b`.
    Sub(Box<Expr>, Box<Expr>),
    /// `a * b`.
    Mul(Box<Expr>, Box<Expr>),
    /// `a <op> b` (a predicate).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `a AND b`.
    And(Box<Expr>, Box<Expr>),
    /// `a OR b`.
    Or(Box<Expr>, Box<Expr>),
    /// `lo <= a <= b` (inclusive on both ends).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `a IN (v1, v2, …)` over integer codes.
    InList(Box<Expr>, Vec<i32>),
    /// Calendar year of a day-number date expression.
    Year(Box<Expr>),
    /// A query parameter placeholder, `$id`. Parameterized queries are
    /// built once per *shape* with `Param` slots where literals would go
    /// and executed with [`crate::query::Query::bind`], which substitutes
    /// the run's literals positionally. A query still holding parameters
    /// cannot be lowered — lowering reports the first unbound slot.
    Param(u32),
}

/// A column reference.
pub fn col(name: &str) -> Expr {
    Expr::Col(name.to_string())
}

/// An integer or float literal (via the `From` conversions).
pub fn lit(value: impl Into<Expr>) -> Expr {
    value.into()
}

/// A float literal.
pub fn litf(value: f32) -> Expr {
    Expr::LitF32(value)
}

/// A parameter placeholder, `$id` (see [`Expr::Param`]). Slots are
/// numbered densely from zero; the same slot may appear at several sites
/// (each occurrence receives the same bound value).
pub fn param(id: u32) -> Expr {
    Expr::Param(id)
}

impl From<i32> for Expr {
    fn from(value: i32) -> Expr {
        Expr::LitI32(value)
    }
}

impl From<f32> for Expr {
    fn from(value: f32) -> Expr {
        Expr::LitF32(value)
    }
}

impl Expr {
    fn cmp(self, op: CmpOp, rhs: impl Into<Expr>) -> Expr {
        Expr::Cmp(op, Box::new(self), Box::new(rhs.into()))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Le, rhs)
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Ge, rhs)
    }

    /// `self = rhs`. (Shadows `PartialEq::eq` on purpose — inherent
    /// methods win, and `==` still goes through `PartialEq`.)
    pub fn eq(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Eq, rhs)
    }

    /// `self <> rhs`.
    pub fn ne(self, rhs: impl Into<Expr>) -> Expr {
        self.cmp(CmpOp::Ne, rhs)
    }

    /// `lo <= self <= hi`, inclusive on both ends.
    pub fn between(self, lo: impl Into<Expr>, hi: impl Into<Expr>) -> Expr {
        Expr::Between(Box::new(self), Box::new(lo.into()), Box::new(hi.into()))
    }

    /// `self IN (values…)` over integer codes.
    pub fn in_list(self, values: &[i32]) -> Expr {
        Expr::InList(Box::new(self), values.to_vec())
    }

    /// `self AND rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self OR rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// Calendar year of a day-number date expression.
    pub fn year(self) -> Expr {
        Expr::Year(Box::new(self))
    }

    /// Every column name the expression references, in first-use order.
    pub fn columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Col(name) => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            Expr::LitI32(_) | Expr::LitF32(_) | Expr::Param(_) => {}
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Between(a, lo, hi) => {
                a.collect_columns(out);
                lo.collect_columns(out);
                hi.collect_columns(out);
            }
            Expr::InList(a, _) | Expr::Year(a) => a.collect_columns(out),
        }
    }

    /// Splits a conjunction into its conjuncts (an `AND`-free expression is
    /// its own single conjunct).
    pub fn conjuncts(&self) -> Vec<Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other.clone()],
        }
    }

    /// Constant folding: evaluates literal subtrees at build time. Returns
    /// the folded expression and whether anything changed.
    pub fn fold(&self) -> (Expr, bool) {
        match self {
            Expr::Col(_) | Expr::LitI32(_) | Expr::LitF32(_) | Expr::Param(_) => {
                (self.clone(), false)
            }
            Expr::Add(a, b) => Expr::fold_arith(a, b, Expr::Add, |x, y| x + y, |x, y| x + y),
            Expr::Sub(a, b) => Expr::fold_arith(a, b, Expr::Sub, |x, y| x - y, |x, y| x - y),
            Expr::Mul(a, b) => Expr::fold_arith(a, b, Expr::Mul, |x, y| x * y, |x, y| x * y),
            Expr::Cmp(op, a, b) => {
                let ((a, ca), (b, cb)) = (a.fold(), b.fold());
                (Expr::Cmp(*op, Box::new(a), Box::new(b)), ca || cb)
            }
            Expr::And(a, b) => {
                let ((a, ca), (b, cb)) = (a.fold(), b.fold());
                (Expr::And(Box::new(a), Box::new(b)), ca || cb)
            }
            Expr::Or(a, b) => {
                let ((a, ca), (b, cb)) = (a.fold(), b.fold());
                (Expr::Or(Box::new(a), Box::new(b)), ca || cb)
            }
            Expr::Between(a, lo, hi) => {
                let ((a, ca), (lo, cl), (hi, ch)) = (a.fold(), lo.fold(), hi.fold());
                (Expr::Between(Box::new(a), Box::new(lo), Box::new(hi)), ca || cl || ch)
            }
            Expr::InList(a, values) => {
                let (a, changed) = a.fold();
                (Expr::InList(Box::new(a), values.clone()), changed)
            }
            Expr::Year(a) => {
                let (a, changed) = a.fold();
                (Expr::Year(Box::new(a)), changed)
            }
        }
    }

    fn fold_arith(
        a: &Expr,
        b: &Expr,
        rebuild: fn(Box<Expr>, Box<Expr>) -> Expr,
        int: fn(i32, i32) -> i32,
        float: fn(f32, f32) -> f32,
    ) -> (Expr, bool) {
        let ((a, ca), (b, cb)) = (a.fold(), b.fold());
        match (&a, &b) {
            (Expr::LitI32(x), Expr::LitI32(y)) => (Expr::LitI32(int(*x, *y)), true),
            (Expr::LitF32(x), Expr::LitF32(y)) => (Expr::LitF32(float(*x, *y)), true),
            (Expr::LitI32(x), Expr::LitF32(y)) => (Expr::LitF32(float(*x as f32, *y)), true),
            (Expr::LitF32(x), Expr::LitI32(y)) => (Expr::LitF32(float(*x, *y as f32)), true),
            _ => (rebuild(Box::new(a), Box::new(b)), ca || cb),
        }
    }

    /// Whether the expression is a bare literal.
    pub fn as_lit_i32(&self) -> Option<i32> {
        match self {
            Expr::LitI32(v) => Some(*v),
            _ => None,
        }
    }

    /// The literal value as a float, if the expression is a literal.
    pub fn as_lit_f32(&self) -> Option<f32> {
        match self {
            Expr::LitI32(v) => Some(*v as f32),
            Expr::LitF32(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether any [`Expr::Param`] slot remains in the expression.
    pub fn has_params(&self) -> bool {
        let mut ids = Vec::new();
        self.collect_params(&mut ids);
        !ids.is_empty()
    }

    /// Every parameter slot the expression mentions, in first-use order
    /// (each id once, even when a slot occurs at several sites).
    pub fn params(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    pub(crate) fn collect_params(&self, out: &mut Vec<u32>) {
        match self {
            Expr::Param(id) => {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
            Expr::Col(_) | Expr::LitI32(_) | Expr::LitF32(_) => {}
            Expr::Add(a, b)
            | Expr::Sub(a, b)
            | Expr::Mul(a, b)
            | Expr::Cmp(_, a, b)
            | Expr::And(a, b)
            | Expr::Or(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            Expr::Between(a, lo, hi) => {
                a.collect_params(out);
                lo.collect_params(out);
                hi.collect_params(out);
            }
            Expr::InList(a, _) | Expr::Year(a) => a.collect_params(out),
        }
    }

    /// Replaces every parameter slot for which `value(id)` returns a
    /// literal with that literal. Slots `value` maps to `None` stay in
    /// place (the caller reports them as unbound).
    pub(crate) fn substitute(&self, value: &impl Fn(u32) -> Option<Expr>) -> Expr {
        match self {
            Expr::Param(id) => value(*id).unwrap_or_else(|| self.clone()),
            Expr::Col(_) | Expr::LitI32(_) | Expr::LitF32(_) => self.clone(),
            Expr::Add(a, b) => {
                Expr::Add(Box::new(a.substitute(value)), Box::new(b.substitute(value)))
            }
            Expr::Sub(a, b) => {
                Expr::Sub(Box::new(a.substitute(value)), Box::new(b.substitute(value)))
            }
            Expr::Mul(a, b) => {
                Expr::Mul(Box::new(a.substitute(value)), Box::new(b.substitute(value)))
            }
            Expr::Cmp(op, a, b) => {
                Expr::Cmp(*op, Box::new(a.substitute(value)), Box::new(b.substitute(value)))
            }
            Expr::And(a, b) => {
                Expr::And(Box::new(a.substitute(value)), Box::new(b.substitute(value)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.substitute(value)), Box::new(b.substitute(value)))
            }
            Expr::Between(a, lo, hi) => Expr::Between(
                Box::new(a.substitute(value)),
                Box::new(lo.substitute(value)),
                Box::new(hi.substitute(value)),
            ),
            Expr::InList(a, values) => Expr::InList(Box::new(a.substitute(value)), values.clone()),
            Expr::Year(a) => Expr::Year(Box::new(a.substitute(value))),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Sub(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(name) => write!(f, "{name}"),
            Expr::LitI32(v) => write!(f, "{v}"),
            Expr::LitF32(v) => write!(f, "{v:?}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Between(a, lo, hi) => write!(f, "{a} BETWEEN {lo} AND {hi}"),
            Expr::InList(a, values) => {
                write!(f, "{a} IN (")?;
                for (index, value) in values.iter().enumerate() {
                    if index > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{value}")?;
                }
                write!(f, ")")
            }
            Expr::Year(a) => write!(f, "YEAR({a})"),
            Expr::Param(id) => write!(f, "${id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_the_expected_tree() {
        let e = col("a").between(1, 9).and(col("b").eq(3).or(col("c").lt(0.5f32)));
        assert_eq!(e.columns(), vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(e.conjuncts().len(), 2);
        assert_eq!(e.to_string(), "(a BETWEEN 1 AND 9 AND (b = 3 OR c < 0.5))");
    }

    #[test]
    fn constant_folding_evaluates_literal_subtrees() {
        let (folded, changed) = (lit(2) + lit(3) * lit(4)).fold();
        assert!(changed);
        assert_eq!(folded, Expr::LitI32(14));

        // Mixed int/float promotes to float.
        let (folded, changed) = (lit(1) - lit(0.25f32)).fold();
        assert!(changed);
        assert_eq!(folded, Expr::LitF32(0.75));

        // Folding reaches inside predicates without touching columns.
        let (folded, changed) = col("x").between(lit(10) + lit(5), lit(20)).fold();
        assert!(changed);
        assert_eq!(folded, col("x").between(15, 20));

        let (folded, changed) = (col("a") * col("b")).fold();
        assert!(!changed);
        assert_eq!(folded, col("a") * col("b"));
    }

    #[test]
    fn params_render_collect_and_substitute() {
        let e = col("a").between(param(0), param(1)).and(col("b").le(param(0)));
        assert_eq!(e.to_string(), "(a BETWEEN $0 AND $1 AND b <= $0)");
        assert!(e.has_params());
        assert_eq!(e.params(), vec![0, 1]);

        let bound = e.substitute(&|id| Some(Expr::LitI32(id as i32 + 10)));
        assert!(!bound.has_params());
        assert_eq!(bound, col("a").between(10, 11).and(col("b").le(10)));

        // Unmapped slots stay in place for the caller to report.
        let partial = e.substitute(&|id| (id == 0).then_some(Expr::LitI32(7)));
        assert_eq!(partial.params(), vec![1]);

        // Folding and column collection treat params as opaque leaves.
        let (folded, changed) = (param(2) * col("x")).fold();
        assert!(!changed);
        assert_eq!(folded, param(2) * col("x"));
        assert_eq!(e.columns(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = col("a").eq(1).and(col("b").eq(2)).and(col("c").eq(3).and(col("d").eq(4)));
        assert_eq!(e.conjuncts().len(), 4);
    }
}
