//! The lowering pass: compiles a rewritten [`Logical`] tree onto the
//! physical [`PlanBuilder`].
//!
//! The lowerer owns every physical decision (module docs in
//! [`super`]): selection operator choice with candidate-list chaining,
//! column-vs-column comparisons as cast + delta + band selection, `IN`/`OR`
//! as unions of selections, the hash-join build side, which join sides get
//! position lists at all, and the materialisation order around groupings
//! and sorts. Each decision appends a note rendered by
//! [`super::Query::explain`].
//!
//! Internally a lowered relation ([`Rel`]) tracks, per source table, an OID
//! column aligned to the relation's rows (`None` while the relation is
//! still the table's identity), plus a cache of materialised columns.
//! Reading a base column is `bind` (+ `fetch` through the table's OIDs);
//! computed columns are remembered by name. While a relation is a single
//! base table with no computed columns, predicates lower as **candidate
//! selections** on the base columns (the MonetDB-style chain the paper's
//! operators are built for); after joins they lower as **positional
//! selections** over materialised columns, and the whole relation is
//! re-aligned through the resulting position list.

use super::rewrite::{available_columns, classify, selectivity, Atom, ColTy, Pred, Stats};
use super::{AggFunc, AggSpec, JoinKind, Logical, QueryBuildError, RewriteConfig};
use crate::plan::{Plan, PlanBuilder, Var};
use crate::query::expr::{CmpOp, Expr};
use ocelot_storage::Catalog;
use std::collections::{HashMap, HashSet};

/// The result of lowering: the physical plan plus the decision notes.
pub(crate) struct Lowered {
    /// The compiled physical plan.
    pub plan: Plan,
    /// One note per physical decision, for `explain`.
    pub notes: Vec<String>,
}

/// A materialised column of a lowered relation.
#[derive(Clone)]
struct RelCol {
    var: Var,
    ty: ColTy,
    /// Whether the column is a plain fetch of base data (droppable and
    /// lazily re-fetchable) as opposed to a computed value that must be
    /// carried through re-alignments.
    refetchable: bool,
}

/// A lowered relation (see module docs).
struct Rel {
    /// Per source table: OIDs into base rows, aligned to the relation's
    /// rows (`None` = the relation *is* the full table).
    tables: Vec<(String, Option<Var>)>,
    /// Materialised columns aligned to the relation's rows.
    cols: HashMap<String, RelCol>,
    /// Columns whose values are unique per relation row.
    unique: HashSet<String>,
    /// Estimated row count.
    rows: f64,
    /// Whether the relation is the output of a grouping (no base tables;
    /// every column lives in `cols`).
    grouped: bool,
    /// Set when the relation is a single ungrouped scalar aggregate.
    scalar: Option<(String, Var)>,
}

struct Lower<'a> {
    catalog: &'a Catalog,
    stats: &'a Stats<'a>,
    cfg: &'a RewriteConfig,
    p: PlanBuilder,
    notes: Vec<String>,
}

/// Lowers a rewritten logical tree into a physical plan (entry point; see
/// module docs). `stats` is the same memoised instance the rewrite used,
/// so no column is scanned twice per compile.
pub(crate) fn lower(
    root: &Logical,
    outputs: &[String],
    stats: &Stats,
    cfg: &RewriteConfig,
) -> Result<Lowered, QueryBuildError> {
    let catalog = stats.catalog();
    let mut lower = Lower { catalog, stats, cfg, p: PlanBuilder::new(), notes: Vec::new() };
    // Strip root-most Limits (applied at the host boundary by Query::run).
    let mut node = root;
    while let Logical::Limit { input, count } = node {
        lower.notes.push(format!(
            "limit {count}: applied at the host materialisation boundary (no device top-k)"
        ));
        node = input;
    }
    let mut needed: HashSet<String> = outputs.iter().cloned().collect();
    if !cfg.prune {
        needed.extend(available_columns(node, catalog));
    }
    let mut rel = lower.node(node, &needed)?;
    let mut vars = Vec::with_capacity(outputs.len());
    for name in outputs {
        if let Some((scalar_name, var)) = &rel.scalar {
            if scalar_name == name {
                vars.push(*var);
                continue;
            }
        }
        let (var, _) = lower.materialize(&mut rel, name)?;
        vars.push(var);
    }
    lower.p.result(&vars)?;
    Ok(Lowered { plan: lower.p.finish(), notes: lower.notes })
}

/// Estimated device working set of a monolithic hash join: both key
/// columns plus the hash table the build side would allocate (the same
/// sizing model as `Plan::scratch_bytes`, so planner and footprint
/// estimator agree on what fits).
fn join_working_set_bytes(build_rows: f64, probe_rows: f64) -> usize {
    let build_rows = build_rows.max(1.0) as usize;
    let capacity = (((build_rows as f64) * 1.4).ceil() as usize).next_power_of_two().max(16);
    2 * capacity * 4 + probe_rows.max(0.0) as usize * 4 + build_rows * 4
}

impl<'a> Lower<'a> {
    // ---- column access -------------------------------------------------

    /// The element type of a column in `rel` (cache, then base tables).
    fn ty_of(&self, rel: &Rel, name: &str) -> Option<ColTy> {
        if let Some(col) = rel.cols.get(name) {
            return Some(col.ty);
        }
        rel.tables.iter().find_map(|(table, _)| {
            let bat = self.catalog.column(table, name)?;
            Some(if bat.as_f32().is_some() { ColTy::F32 } else { ColTy::I32 })
        })
    }

    /// Materialises `name` as a column aligned to `rel`'s rows.
    fn materialize(&mut self, rel: &mut Rel, name: &str) -> Result<(Var, ColTy), QueryBuildError> {
        if let Some(col) = rel.cols.get(name) {
            return Ok((col.var, col.ty));
        }
        for (table, oids) in &rel.tables {
            if let Some(bat) = self.catalog.column(table, name) {
                let ty = if bat.as_f32().is_some() { ColTy::F32 } else { ColTy::I32 };
                let base = self.p.bind(table, name);
                let var = match oids {
                    Some(oids) => self.p.fetch(base, *oids)?,
                    None => base,
                };
                rel.cols.insert(name.to_string(), RelCol { var, ty, refetchable: true });
                return Ok((var, ty));
            }
        }
        Err(QueryBuildError::UnknownColumn { name: name.to_string() })
    }

    /// Materialises `name` as an f32 column (casting integers).
    fn materialize_f32(&mut self, rel: &mut Rel, name: &str) -> Result<Var, QueryBuildError> {
        let (var, ty) = self.materialize(rel, name)?;
        Ok(match ty {
            ColTy::F32 => var,
            ColTy::I32 => self.p.cast_i32_f32(var)?,
        })
    }

    // ---- expressions ---------------------------------------------------

    /// Lowers a value expression over `rel` into the backend's element-wise
    /// map kernels.
    fn value_expr(&mut self, rel: &mut Rel, expr: &Expr) -> Result<(Var, ColTy), QueryBuildError> {
        match expr {
            Expr::Col(name) => self.materialize(rel, name),
            Expr::Year(inner) => {
                let (var, ty) = self.value_expr(rel, inner)?;
                if ty != ColTy::I32 {
                    return Err(QueryBuildError::Unsupported(format!(
                        "YEAR over a non-integer expression: {inner}"
                    )));
                }
                Ok((self.p.extract_year(var)?, ColTy::I32))
            }
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                let var = self.arith(rel, expr, a, b)?;
                Ok((var, ColTy::F32))
            }
            Expr::LitI32(_) | Expr::LitF32(_) => Err(QueryBuildError::Unsupported(format!(
                "bare literal {expr} as a column (constant columns are not supported)"
            ))),
            other => Err(QueryBuildError::Unsupported(format!(
                "predicate {other} used as a value expression"
            ))),
        }
    }

    fn arith(
        &mut self,
        rel: &mut Rel,
        whole: &Expr,
        a: &Expr,
        b: &Expr,
    ) -> Result<Var, QueryBuildError> {
        let value_f32 =
            |this: &mut Self, rel: &mut Rel, e: &Expr| -> Result<Var, QueryBuildError> {
                match e {
                    Expr::Col(name) => this.materialize_f32(rel, name),
                    _ => {
                        let (var, ty) = this.value_expr(rel, e)?;
                        Ok(match ty {
                            ColTy::F32 => var,
                            ColTy::I32 => this.p.cast_i32_f32(var)?,
                        })
                    }
                }
            };
        match whole {
            Expr::Add(..) => match (a.as_lit_f32(), b.as_lit_f32()) {
                (Some(c), None) => {
                    let vb = value_f32(self, rel, b)?;
                    Ok(self.p.const_plus_f32(c, vb)?)
                }
                (None, Some(c)) => {
                    let va = value_f32(self, rel, a)?;
                    Ok(self.p.const_plus_f32(c, va)?)
                }
                (None, None) => {
                    let va = value_f32(self, rel, a)?;
                    let vb = value_f32(self, rel, b)?;
                    Ok(self.p.add_f32(va, vb)?)
                }
                (Some(_), Some(_)) => unreachable!("folded by the rewrite"),
            },
            Expr::Sub(..) => match (a.as_lit_f32(), b.as_lit_f32()) {
                (Some(c), None) => {
                    let vb = value_f32(self, rel, b)?;
                    Ok(self.p.const_minus_f32(c, vb)?)
                }
                (None, Some(c)) => {
                    let va = value_f32(self, rel, a)?;
                    Ok(self.p.const_plus_f32(-c, va)?)
                }
                (None, None) => {
                    let va = value_f32(self, rel, a)?;
                    let vb = value_f32(self, rel, b)?;
                    Ok(self.p.sub_f32(va, vb)?)
                }
                (Some(_), Some(_)) => unreachable!("folded by the rewrite"),
            },
            Expr::Mul(..) => match (a.as_lit_f32(), b.as_lit_f32()) {
                (Some(c), None) => {
                    let vb = value_f32(self, rel, b)?;
                    Ok(self.p.mul_const_f32(vb, c)?)
                }
                (None, Some(c)) => {
                    let va = value_f32(self, rel, a)?;
                    Ok(self.p.mul_const_f32(va, c)?)
                }
                (None, None) => {
                    let va = value_f32(self, rel, a)?;
                    let vb = value_f32(self, rel, b)?;
                    Ok(self.p.mul_f32(va, vb)?)
                }
                (Some(_), Some(_)) => unreachable!("folded by the rewrite"),
            },
            _ => unreachable!("arith called on non-arithmetic"),
        }
    }

    // ---- relations -----------------------------------------------------

    /// Re-aligns `rel` through a position list into its current rows:
    /// table OIDs compose, computed columns are fetched, refetchable
    /// columns are dropped (they re-materialise lazily).
    fn remap(&mut self, rel: &mut Rel, pos: Var) -> Result<(), QueryBuildError> {
        for (_, oids) in rel.tables.iter_mut() {
            *oids = Some(match oids {
                Some(o) => self.p.fetch(*o, pos)?,
                // The relation was the table's identity: positions into its
                // rows *are* row OIDs.
                None => pos,
            });
        }
        // Sorted so the emitted fetch nodes are deterministic: the plan
        // cache promises a hit is node-for-node equal to a cold compile,
        // and HashMap iteration order differs per instance.
        let mut cols: Vec<(String, RelCol)> = std::mem::take(&mut rel.cols).into_iter().collect();
        cols.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, col) in cols {
            if col.refetchable && !rel.grouped {
                continue; // re-materialises through the new table OIDs
            }
            let var = self.p.fetch(col.var, pos)?;
            rel.cols.insert(name, RelCol { var, ..col });
        }
        Ok(())
    }

    /// Drops source tables no `needed` column lives in (their position
    /// lists are never built — the projection-pruning effect on joins).
    fn trim_tables(&mut self, rel: &mut Rel, needed: &HashSet<String>) {
        if !self.cfg.prune {
            return;
        }
        let catalog = self.catalog;
        // Only *computed* columns satisfy a future need — refetchable
        // cached fetches are dropped at the next re-alignment, so their
        // base table must stay reachable.
        let computed: HashSet<&String> =
            rel.cols.iter().filter(|(_, c)| !c.refetchable).map(|(name, _)| name).collect();
        let before = rel.tables.len();
        rel.tables.retain(|(table, _)| {
            needed.iter().any(|c| !computed.contains(c) && catalog.column(table, c).is_some())
        });
        if rel.tables.len() < before {
            self.notes.push(format!(
                "projection pruning: dropped {} join-side position list(s) no output needs",
                before - rel.tables.len()
            ));
        }
    }

    // ---- node lowering -------------------------------------------------

    fn node(&mut self, node: &Logical, needed: &HashSet<String>) -> Result<Rel, QueryBuildError> {
        match node {
            Logical::Scan { table } => self.scan(table, needed),
            Logical::Filter { input, predicate } => {
                let mut sub = needed.clone();
                sub.extend(predicate.columns());
                let mut rel = self.node(input, &sub)?;
                self.apply_filter(&mut rel, predicate)?;
                Ok(rel)
            }
            Logical::Map { input, name, expr } => {
                let mut sub: HashSet<String> =
                    needed.iter().filter(|c| *c != name).cloned().collect();
                sub.extend(expr.columns());
                let mut rel = self.node(input, &sub)?;
                let (var, ty) = self.value_expr(&mut rel, expr)?;
                rel.cols.insert(name.clone(), RelCol { var, ty, refetchable: false });
                Ok(rel)
            }
            Logical::Join { left, right, kind, left_key, right_key } => {
                self.join(left, right, *kind, left_key, right_key, needed)
            }
            Logical::GroupBy { input, keys, aggs } => self.group(input, keys, aggs),
            Logical::Sort { input, key, descending } => {
                let mut sub = needed.clone();
                sub.insert(key.clone());
                let mut rel = self.node(input, &sub)?;
                if rel.scalar.is_some() {
                    return Err(QueryBuildError::Unsupported(
                        "sorting a scalar aggregate".to_string(),
                    ));
                }
                let (kvar, ty) = self.materialize(&mut rel, key)?;
                let perm = match ty {
                    ColTy::I32 => self.p.sort_order_i32(kvar, *descending)?,
                    ColTy::F32 => self.p.sort_order_f32(kvar, *descending)?,
                };
                self.notes.push(format!(
                    "sort by {key}: radix sort permutation ({}), outputs gathered through it",
                    if *descending { "descending" } else { "ascending" }
                ));
                self.remap(&mut rel, perm)?;
                Ok(rel)
            }
            Logical::Limit { .. } => Err(QueryBuildError::Unsupported(
                "LIMIT below other operators (only the outermost LIMIT is supported)".to_string(),
            )),
        }
    }

    fn scan(&mut self, table: &str, needed: &HashSet<String>) -> Result<Rel, QueryBuildError> {
        let Some(t) = self.catalog.table(table) else {
            return Err(QueryBuildError::UnknownColumn { name: format!("{table}.*") });
        };
        let unique: HashSet<String> =
            t.columns().filter(|(_, bat)| bat.is_key()).map(|(name, _)| name.to_string()).collect();
        let rows = t.row_count() as f64;
        let mut rel = Rel {
            tables: vec![(table.to_string(), None)],
            cols: HashMap::new(),
            unique,
            rows,
            grouped: false,
            scalar: None,
        };
        if !self.cfg.prune {
            // Naive lowering: materialise (bind) every column of the table,
            // whether or not the query reads it — the "SELECT *" baseline
            // projection pruning removes.
            let names: Vec<String> = t.column_names().iter().map(|s| s.to_string()).collect();
            self.notes.push(format!(
                "naive scan {table}: binds all {} columns (projection pruning off)",
                names.len()
            ));
            for name in names {
                self.materialize(&mut rel, &name)?;
            }
        } else {
            let bound: Vec<&String> = needed.iter().filter(|c| t.column(c).is_some()).collect();
            self.notes.push(format!(
                "scan {table}: {} of {} columns bound lazily on first use",
                bound.len(),
                t.column_count()
            ));
        }
        Ok(rel)
    }

    // ---- filters -------------------------------------------------------

    fn apply_filter(&mut self, rel: &mut Rel, predicate: &Expr) -> Result<(), QueryBuildError> {
        for conjunct in predicate.conjuncts() {
            let ty_of = |name: &str| self.ty_of(rel, name);
            let pred = classify(&conjunct, &ty_of)?;
            self.apply_pred(rel, &pred)?;
        }
        Ok(())
    }

    /// Whether the relation still supports base-column candidate chaining.
    fn candidate_mode(&self, rel: &Rel, pred: &Pred) -> bool {
        if rel.grouped || rel.tables.len() != 1 {
            return false;
        }
        if rel.cols.values().any(|c| !c.refetchable) {
            return false;
        }
        let table = &rel.tables[0].0;
        pred.atoms()
            .iter()
            .all(|a| a.columns().iter().all(|c| self.catalog.column(table, c).is_some()))
    }

    fn apply_pred(&mut self, rel: &mut Rel, pred: &Pred) -> Result<(), QueryBuildError> {
        let sel = if rel.grouped {
            0.5
        } else {
            selectivity(
                pred,
                &rel.tables.first().map(|(t, _)| t.clone()).unwrap_or_default(),
                self.stats,
            )
        };
        if self.candidate_mode(rel, pred) {
            let cands = rel.tables[0].1;
            let out = self.select_union(rel, pred, cands, true)?;
            self.notes.push(format!(
                "select `{}` on {}: candidate-chained base-column selection (est sel ≈{sel:.3})",
                pred.describe(),
                rel.tables[0].0,
            ));
            rel.tables[0].1 = Some(out);
            // Cached fetches are stale for the narrowed rows; they
            // re-materialise lazily through the new candidate list.
            rel.cols.clear();
        } else {
            let pos = self.select_union(rel, pred, None, false)?;
            self.notes.push(format!(
                "select `{}`: positional re-selection over materialised columns \
                 (relation spans {} table(s))",
                pred.describe(),
                rel.tables.len(),
            ));
            self.remap(rel, pos)?;
        }
        rel.rows = (rel.rows * sel).max(1.0);
        Ok(())
    }

    /// Lowers a predicate's atoms as selections, unioning a disjunction's
    /// candidate lists. `base` = candidate chaining over base columns;
    /// otherwise positional selection over materialised columns.
    fn select_union(
        &mut self,
        rel: &mut Rel,
        pred: &Pred,
        cands: Option<Var>,
        base: bool,
    ) -> Result<Var, QueryBuildError> {
        let mut result: Option<Var> = None;
        for atom in pred.atoms() {
            let selected = self.select_atom(rel, atom, cands, base)?;
            result = Some(match result {
                None => selected,
                Some(prev) => {
                    let unioned = self.p.union_oids(prev, selected)?;
                    self.notes.push(format!(
                        "OR/IN union: combined candidate lists for `{}`",
                        atom.describe()
                    ));
                    unioned
                }
            });
        }
        result.ok_or_else(|| QueryBuildError::Unsupported("empty predicate".to_string()))
    }

    /// One atom as one (or, for `IN`/`<>` deltas, a few unioned)
    /// selection(s).
    fn select_atom(
        &mut self,
        rel: &mut Rel,
        atom: &Atom,
        cands: Option<Var>,
        base: bool,
    ) -> Result<Var, QueryBuildError> {
        let col_var =
            |this: &mut Self, rel: &mut Rel, name: &str| -> Result<Var, QueryBuildError> {
                if base {
                    // Candidate chaining runs on the *base* column (OIDs are
                    // row ids of the table).
                    let table = rel.tables[0].0.clone();
                    Ok(this.p.bind(&table, name))
                } else {
                    Ok(this.materialize(rel, name)?.0)
                }
            };
        match atom {
            Atom::RangeI32 { col, lo, hi } => {
                let v = col_var(self, rel, col)?;
                Ok(self.p.select_range_i32(v, *lo, *hi, cands)?)
            }
            Atom::RangeF32 { col, lo, hi } => {
                let v = col_var(self, rel, col)?;
                Ok(self.p.select_range_f32(v, *lo, *hi, cands)?)
            }
            Atom::EqI32 { col, value } => {
                let v = col_var(self, rel, col)?;
                Ok(self.p.select_eq_i32(v, *value, cands)?)
            }
            Atom::NeI32 { col, value } => {
                let v = col_var(self, rel, col)?;
                Ok(self.p.select_ne_i32(v, *value, cands)?)
            }
            Atom::InI32 { col, values } => {
                let v = col_var(self, rel, col)?;
                let mut result: Option<Var> = None;
                for value in values {
                    let selected = self.p.select_eq_i32(v, *value, cands)?;
                    result = Some(match result {
                        None => selected,
                        Some(prev) => self.p.union_oids(prev, selected)?,
                    });
                }
                self.notes
                    .push(format!("IN on {col}: {} equality selections unioned", values.len()));
                result
                    .ok_or_else(|| QueryBuildError::Unsupported(format!("empty IN list on {col}")))
            }
            Atom::ColCmp { op, left, right } => {
                // left ⋈ right over integer columns: cast both sides,
                // subtract, and band-select the delta. Day-number deltas
                // (and anything < 2^24) are exact in f32.
                let lv = col_var(self, rel, left)?;
                let rv = col_var(self, rel, right)?;
                let lf = self.p.cast_i32_f32(lv)?;
                let rf = self.p.cast_i32_f32(rv)?;
                self.notes.push(format!(
                    "column comparison {left} {} {right}: cast + delta + band selection",
                    op.symbol()
                ));
                match op {
                    CmpOp::Lt => {
                        let delta = self.p.sub_f32(rf, lf)?;
                        Ok(self.p.select_range_f32(delta, 0.5, f32::MAX, cands)?)
                    }
                    CmpOp::Le => {
                        let delta = self.p.sub_f32(rf, lf)?;
                        Ok(self.p.select_range_f32(delta, -0.5, f32::MAX, cands)?)
                    }
                    CmpOp::Gt => {
                        let delta = self.p.sub_f32(lf, rf)?;
                        Ok(self.p.select_range_f32(delta, 0.5, f32::MAX, cands)?)
                    }
                    CmpOp::Ge => {
                        let delta = self.p.sub_f32(lf, rf)?;
                        Ok(self.p.select_range_f32(delta, -0.5, f32::MAX, cands)?)
                    }
                    CmpOp::Eq => {
                        let delta = self.p.sub_f32(lf, rf)?;
                        Ok(self.p.select_range_f32(delta, -0.25, 0.25, cands)?)
                    }
                    CmpOp::Ne => {
                        let delta = self.p.sub_f32(lf, rf)?;
                        let below = self.p.select_range_f32(delta, f32::MIN, -0.5, cands)?;
                        let above = self.p.select_range_f32(delta, 0.5, f32::MAX, cands)?;
                        Ok(self.p.union_oids(below, above)?)
                    }
                }
            }
        }
    }

    // ---- joins ---------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn join(
        &mut self,
        left: &Logical,
        right: &Logical,
        kind: JoinKind,
        left_key: &str,
        right_key: &str,
        needed: &HashSet<String>,
    ) -> Result<Rel, QueryBuildError> {
        let left_avail = available_columns(left, self.catalog);
        let right_avail = available_columns(right, self.catalog);
        let mut left_needed: HashSet<String> = needed.intersection(&left_avail).cloned().collect();
        left_needed.insert(left_key.to_string());
        let mut right_needed: HashSet<String> = match kind {
            JoinKind::Inner => needed.intersection(&right_avail).cloned().collect(),
            JoinKind::Semi | JoinKind::Anti => HashSet::new(),
        };
        right_needed.insert(right_key.to_string());
        if !self.cfg.prune {
            left_needed = left_avail;
            right_needed = right_avail;
        }
        let mut lrel = self.node(left, &left_needed)?;
        let mut rrel = self.node(right, &right_needed)?;

        let (lk, lty) = self.materialize(&mut lrel, left_key)?;
        let (rk, rty) = self.materialize(&mut rrel, right_key)?;
        if lty != ColTy::I32 || rty != ColTy::I32 {
            return Err(QueryBuildError::Unsupported(format!(
                "join keys {left_key} = {right_key} must both be integer columns"
            )));
        }

        match kind {
            JoinKind::Semi | JoinKind::Anti => {
                let pos = match kind {
                    JoinKind::Semi => self.p.semi_join(lk, rk)?,
                    _ => self.p.anti_join(lk, rk)?,
                };
                self.notes.push(format!(
                    "{} {left_key} = {right_key}: hash build on the right (est {:.0} rows), \
                     probe keeps left rows",
                    if kind == JoinKind::Semi { "semi join" } else { "anti join" },
                    rrel.rows
                ));
                self.trim_tables(&mut lrel, needed);
                self.remap(&mut lrel, pos)?;
                lrel.rows = (lrel.rows * 0.5).max(1.0);
                Ok(lrel)
            }
            JoinKind::Inner => {
                let l_unique = lrel.unique.contains(left_key);
                let r_unique = rrel.unique.contains(right_key);
                let build_right = match (l_unique, r_unique) {
                    (false, true) => true,
                    (true, false) => false,
                    (true, true) => {
                        let build_right = rrel.rows <= lrel.rows;
                        self.notes.push(format!(
                            "join {left_key} = {right_key}: both keys unique — build side by \
                             estimated cardinality: {} (est {:.0} vs {:.0} rows)",
                            if build_right { "right" } else { "left" },
                            rrel.rows,
                            lrel.rows
                        ));
                        build_right
                    }
                    (false, false) => {
                        return Err(QueryBuildError::NoUniqueJoinKey {
                            left_key: left_key.to_string(),
                            right_key: right_key.to_string(),
                        })
                    }
                };
                // Out-of-core choice: when the monolithic join's working set
                // would claim more than a quarter of the device budget,
                // lower the partitioned hybrid hash join — planned spilling
                // replaces the OOM-restart protocol as this join's way of
                // surviving memory pressure (the restart path stays as the
                // backstop for estimation misses). The working set is sized
                // for the *base* cardinalities, not the post-filter
                // estimates: selectivity guesses are the least reliable
                // statistic, and an under-provisioned monolithic join faults
                // at runtime, while an over-provisioned partitioned join
                // merely spills a little. The quarter share mirrors the
                // execution-side `SpillPool` sizing — the join lives on the
                // device alongside the plan's pinned base columns and the
                // other operators' scratch.
                let (build_rows_est, probe_rows_est) = if build_right {
                    (
                        self.base_rows_of_key(&rrel, right_key),
                        self.base_rows_of_key(&lrel, left_key),
                    )
                } else {
                    (
                        self.base_rows_of_key(&lrel, left_key),
                        self.base_rows_of_key(&rrel, right_key),
                    )
                };
                let ndv_hint = if build_right {
                    self.base_ndv_of_key(&rrel, right_key)
                } else {
                    self.base_ndv_of_key(&lrel, left_key)
                };
                let partitioned = match self.cfg.device_budget {
                    Some(budget) => {
                        join_working_set_bytes(build_rows_est, probe_rows_est) * 4 > budget
                    }
                    None => false,
                };
                let (lpos, rpos) = if build_right {
                    if partitioned {
                        self.notes.push(format!(
                            "pkfk join {left_key} = {right_key}: PARTITIONED hybrid hash — \
                             base working set {} B exceeds a quarter of the device budget; \
                             build on right (est {:.0} rows, ndv~{ndv_hint}), spill-capable",
                            join_working_set_bytes(build_rows_est, probe_rows_est),
                            rrel.rows
                        ));
                        self.p.pkfk_join_partitioned(lk, rk, ndv_hint)?
                    } else {
                        self.notes.push(format!(
                            "pkfk join {left_key} = {right_key}: build on right (unique \
                             {right_key}, est {:.0} rows), probe left (est {:.0} rows)",
                            rrel.rows, lrel.rows
                        ));
                        self.p.pkfk_join(lk, rk)?
                    }
                } else if partitioned {
                    self.notes.push(format!(
                        "pkfk join {left_key} = {right_key}: PARTITIONED hybrid hash — base \
                         working set {} B exceeds a quarter of the device budget; build on left \
                         (est {:.0} rows, ndv~{ndv_hint}), spill-capable",
                        join_working_set_bytes(build_rows_est, probe_rows_est),
                        lrel.rows
                    ));
                    let (rpos, lpos) = self.p.pkfk_join_partitioned(rk, lk, ndv_hint)?;
                    (lpos, rpos)
                } else {
                    self.notes.push(format!(
                        "pkfk join {left_key} = {right_key}: build on left (unique \
                         {left_key}, est {:.0} rows), probe right (est {:.0} rows)",
                        lrel.rows, rrel.rows
                    ));
                    let (rpos, lpos) = self.p.pkfk_join(rk, lk)?;
                    (lpos, rpos)
                };
                // Probe-side rows survive at most once each; estimate the
                // match rate from the build side's restriction.
                let (probe_rows, build_rel_rows, build_table_rows) = if build_right {
                    let base = self.base_rows_of_key(&rrel, right_key);
                    (lrel.rows, rrel.rows, base)
                } else {
                    let base = self.base_rows_of_key(&lrel, left_key);
                    (rrel.rows, lrel.rows, base)
                };
                let match_rate = (build_rel_rows / build_table_rows.max(1.0)).min(1.0);
                let rows = (probe_rows * match_rate).max(1.0);
                // Trim before re-aligning so pruned sides never get a
                // position-list fetch emitted at all.
                self.trim_tables(&mut lrel, needed);
                self.trim_tables(&mut rrel, needed);
                self.remap(&mut lrel, lpos)?;
                self.remap(&mut rrel, rpos)?;
                let mut rel = Rel {
                    tables: Vec::new(),
                    cols: HashMap::new(),
                    // Probe-side uniqueness survives (each probe row joins
                    // at most one build row); build-side rows can fan out,
                    // unless both keys were unique.
                    unique: if build_right {
                        let mut u = lrel.unique.clone();
                        if l_unique && r_unique {
                            u.extend(rrel.unique.iter().cloned());
                        }
                        u
                    } else {
                        let mut u = rrel.unique.clone();
                        if l_unique && r_unique {
                            u.extend(lrel.unique.iter().cloned());
                        }
                        u
                    },
                    rows,
                    grouped: false,
                    scalar: None,
                };
                rel.tables.extend(lrel.tables);
                rel.tables.extend(rrel.tables);
                for (name, col) in lrel.cols.into_iter().chain(rrel.cols) {
                    rel.cols.insert(name, col);
                }
                self.trim_tables(&mut rel, needed);
                Ok(rel)
            }
        }
    }

    /// Distinct-count estimate behind a key column (partition sizing for
    /// the out-of-core join); falls back to the relation's row estimate
    /// for computed keys.
    fn base_ndv_of_key(&self, rel: &Rel, key: &str) -> usize {
        for (table, _) in &rel.tables {
            if self.catalog.column(table, key).is_some() {
                return self.stats.column(table, key).ndv.max(1);
            }
        }
        rel.rows.max(1.0) as usize
    }

    /// Base-table row count behind a key column (for match-rate estimates);
    /// falls back to the relation's own estimate for computed keys.
    fn base_rows_of_key(&self, rel: &Rel, key: &str) -> f64 {
        for (table, _) in &rel.tables {
            if self.catalog.column(table, key).is_some() {
                return self.stats.column(table, key).rows as f64;
            }
        }
        rel.rows
    }

    // ---- grouping ------------------------------------------------------

    fn group(
        &mut self,
        input: &Logical,
        keys: &[String],
        aggs: &[AggSpec],
    ) -> Result<Rel, QueryBuildError> {
        let mut needed: HashSet<String> = keys.iter().cloned().collect();
        for agg in aggs {
            if let Some(input) = &agg.input {
                needed.insert(input.clone());
            }
        }
        if !self.cfg.prune {
            needed.extend(available_columns(input, self.catalog));
        }
        let mut rel = self.node(input, &needed)?;

        if keys.is_empty() {
            // Ungrouped (scalar) aggregation: the one-word deferred sum.
            let [agg] = aggs else {
                return Err(QueryBuildError::Unsupported(
                    "ungrouped aggregation supports exactly one SUM".to_string(),
                ));
            };
            if agg.func != AggFunc::Sum {
                return Err(QueryBuildError::Unsupported(format!(
                    "ungrouped {}(…) (only SUM lowers to the deferred scalar reduction)",
                    agg.func.name()
                )));
            }
            let input_name = agg.input.as_deref().ok_or_else(|| {
                QueryBuildError::Unsupported("SUM without an input column".to_string())
            })?;
            let values = self.materialize_f32(&mut rel, input_name)?;
            let scalar = self.p.sum_f32(values)?;
            self.notes
                .push(format!("ungrouped sum({input_name}): deferred one-word scalar reduction"));
            return Ok(Rel {
                tables: Vec::new(),
                cols: HashMap::new(),
                unique: HashSet::new(),
                rows: 1.0,
                grouped: true,
                scalar: Some((agg.output.clone(), scalar)),
            });
        }

        let mut key_vars = Vec::with_capacity(keys.len());
        for key in keys {
            let (var, ty) = self.materialize(&mut rel, key)?;
            if ty != ColTy::I32 {
                return Err(QueryBuildError::Unsupported(format!(
                    "grouping key {key} must be an integer column (group float values \
                     through an integer code instead)"
                )));
            }
            key_vars.push(var);
        }
        let group = self.p.group_by(&key_vars)?;
        let reps = self.p.group_reps(group)?;
        self.notes.push(format!(
            "group by [{}]: hash grouping, keys carried by representative fetches",
            keys.join(", ")
        ));

        let mut out = Rel {
            tables: Vec::new(),
            cols: HashMap::new(),
            unique: if keys.len() == 1 { keys.iter().cloned().collect() } else { HashSet::new() },
            rows: rel.rows.sqrt().max(1.0), // coarse group-count guess
            grouped: true,
            scalar: None,
        };
        for (key, var) in keys.iter().zip(&key_vars) {
            let fetched = self.p.fetch(*var, reps)?;
            out.cols
                .insert(key.clone(), RelCol { var: fetched, ty: ColTy::I32, refetchable: false });
        }
        for agg in aggs {
            let (var, ty) = match agg.func {
                AggFunc::Count => (self.p.grouped_count(group)?, ColTy::F32),
                AggFunc::First => {
                    let name = agg.input.as_deref().ok_or_else(|| {
                        QueryBuildError::Unsupported("FIRST without an input column".to_string())
                    })?;
                    let (value, ty) = self.materialize(&mut rel, name)?;
                    (self.p.fetch(value, reps)?, ty)
                }
                AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max => {
                    let name = agg.input.as_deref().ok_or_else(|| {
                        QueryBuildError::Unsupported(format!(
                            "{}(…) without an input column",
                            agg.func.name()
                        ))
                    })?;
                    let values = self.materialize_f32(&mut rel, name)?;
                    let var = match agg.func {
                        AggFunc::Sum => self.p.grouped_sum_f32(values, group)?,
                        AggFunc::Avg => self.p.grouped_avg_f32(values, group)?,
                        AggFunc::Min => self.p.grouped_min_f32(values, group)?,
                        _ => self.p.grouped_max_f32(values, group)?,
                    };
                    (var, ColTy::F32)
                }
            };
            out.cols.insert(agg.output.clone(), RelCol { var, ty, refetchable: false });
        }
        Ok(out)
    }
}
