//! # `engine::query` — the logical query algebra and its optimizing lowering
//!
//! The paper's central claim is that the *engine*, not the query author,
//! picks physical operators for the hardware. Below this module, a
//! [`crate::plan::Plan`] is already physical: every node names a concrete
//! operator (`select_range_i32`, `pkfk_join`, …) and the node order fixes
//! the execution strategy. This module adds the logical half:
//!
//! * **[`Query`]** — a typed logical algebra: [`Logical::Scan`] /
//!   [`Logical::Filter`] / [`Logical::Map`] / [`Logical::Join`] (inner
//!   PK-FK, semi, anti) / [`Logical::GroupBy`] + aggregates /
//!   [`Logical::Sort`] / [`Logical::Limit`], with an expression tree
//!   ([`Expr`]) for predicates and arithmetic, built through a fluent DSL:
//!   `Query::scan("lineitem").filter(col("l_shipdate").between(d1, d2))…`.
//! * **Rewrite pass** ([`rewrite`]) — rule-based logical optimizations:
//!   constant folding (incl. `YEAR(date) ⋈ literal` → day-number ranges),
//!   conjunct splitting, predicate pushdown below joins and maps,
//!   selectivity-ordered predicate application using catalog column
//!   statistics, and projection pruning so unused columns are never bound
//!   (and therefore never uploaded to the device).
//! * **Lowering pass** ([`lower`]) — compiles the optimized logical tree
//!   onto the existing [`crate::plan::PlanBuilder`], emitting the same
//!   kind-checked physical [`crate::plan::Plan`] the session / scheduler /
//!   column-cache stack already executes. Nothing below `engine::plan`
//!   changes.
//!
//! ## The logical / physical boundary
//!
//! The logical tree says **what**: relations, predicates, computed columns,
//! groupings. The lowerer owns every **how** decision:
//!
//! * which *selection operator* evaluates a predicate — range vs equality
//!   vs inequality select, `IN`/`OR` as a union of selections
//!   (bitmap-combine), all chained through candidate lists when the
//!   relation is still a single base table, or as positional re-selections
//!   over materialised columns after a join;
//! * how a *column-vs-column* comparison runs — int→float casts, a
//!   subtraction and a positivity/band selection (exact for day-number
//!   deltas and any |value| < 2²⁴);
//! * the *join build side* — the unique-key side builds the hash table;
//!   when both keys are unique the smaller (estimated) side builds;
//! * which *join sides survive* — position lists for tables no downstream
//!   operator reads are never materialised;
//! * where `LIMIT` runs — there is no device top-k operator, so `Limit` is
//!   applied at the host materialisation boundary.
//!
//! Every decision is recorded as a note and rendered by
//! [`Query::explain`], together with the logical tree before and after the
//! rewrite rules and the full physical node listing.
//!
//! ## Adding a rewrite rule
//!
//! Rules live in [`rewrite`] as `fn(Logical, &mut Vec<String>) -> Logical`
//! (pure tree-to-tree, annotating what they did). Add the function, wire it
//! into `rewrite::apply` behind a [`RewriteConfig`] flag (so benchmarks can
//! ablate it), and make its effect observable: a note that
//! [`Query::explain`] renders plus a structural change a test can assert
//! (node counts, filter order, bind counts).

mod expr;
pub(crate) mod lower;
pub(crate) mod rewrite;

pub use expr::{col, lit, litf, param, CmpOp, Expr};
pub use rewrite::RewriteConfig;

use crate::backend::Backend;
use crate::plan::{Plan, PlanError, QueryValue};
use crate::session::Session;
use ocelot_storage::Catalog;
use std::fmt;
use std::sync::Arc;

/// The join variants of the logical algebra.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Inner PK-FK equi join: output rows pair every left row with its
    /// (unique-side) match; both sides' columns remain available.
    Inner,
    /// Semi join (`EXISTS`): keeps left rows with at least one match; only
    /// left columns remain available.
    Semi,
    /// Anti join (`NOT EXISTS`): keeps left rows without a match.
    Anti,
}

impl JoinKind {
    fn name(&self) -> &'static str {
        match self {
            JoinKind::Inner => "join",
            JoinKind::Semi => "semi join",
            JoinKind::Anti => "anti join",
        }
    }
}

/// An aggregate function in a [`Logical::GroupBy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Per-group sum (float result).
    Sum,
    /// Per-group average.
    Avg,
    /// Per-group minimum.
    Min,
    /// Per-group maximum.
    Max,
    /// Per-group row count.
    Count,
    /// Any one value of the group — valid when the column is functionally
    /// dependent on the grouping keys (lowered as a representative fetch).
    First,
}

impl AggFunc {
    fn name(&self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Count => "count",
            AggFunc::First => "first",
        }
    }
}

/// One named aggregate of a grouping.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// The input column ([`None`] for [`AggFunc::Count`]).
    pub input: Option<String>,
    /// The name of the output column.
    pub output: String,
}

impl AggSpec {
    /// `SUM(input) AS output`.
    pub fn sum(input: &str, output: &str) -> AggSpec {
        AggSpec { func: AggFunc::Sum, input: Some(input.to_string()), output: output.to_string() }
    }

    /// `AVG(input) AS output`.
    pub fn avg(input: &str, output: &str) -> AggSpec {
        AggSpec { func: AggFunc::Avg, input: Some(input.to_string()), output: output.to_string() }
    }

    /// `MIN(input) AS output`.
    pub fn min(input: &str, output: &str) -> AggSpec {
        AggSpec { func: AggFunc::Min, input: Some(input.to_string()), output: output.to_string() }
    }

    /// `MAX(input) AS output`.
    pub fn max(input: &str, output: &str) -> AggSpec {
        AggSpec { func: AggFunc::Max, input: Some(input.to_string()), output: output.to_string() }
    }

    /// `COUNT(*) AS output`.
    pub fn count(output: &str) -> AggSpec {
        AggSpec { func: AggFunc::Count, input: None, output: output.to_string() }
    }

    /// Any one value of `input` per group (see [`AggFunc::First`]).
    pub fn first(input: &str) -> AggSpec {
        AggSpec { func: AggFunc::First, input: Some(input.to_string()), output: input.to_string() }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.input {
            Some(input) => write!(f, "{}({input}) as {}", self.func.name(), self.output),
            None => write!(f, "{}(*) as {}", self.func.name(), self.output),
        }
    }
}

/// A node of the logical operator tree (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum Logical {
    /// A base-table scan.
    Scan {
        /// The table name.
        table: String,
    },
    /// Row selection by a predicate.
    Filter {
        /// The input relation.
        input: Box<Logical>,
        /// The predicate (may be a conjunction; the rewriter splits it).
        predicate: Expr,
    },
    /// A computed column appended to the relation.
    Map {
        /// The input relation.
        input: Box<Logical>,
        /// The new column's name.
        name: String,
        /// Its defining expression.
        expr: Expr,
    },
    /// An equi join of two relations on named key columns.
    Join {
        /// The left (probe-preferred) relation.
        left: Box<Logical>,
        /// The right relation.
        right: Box<Logical>,
        /// Inner / semi / anti.
        kind: JoinKind,
        /// Left key column name.
        left_key: String,
        /// Right key column name.
        right_key: String,
    },
    /// Grouping with aggregates. Empty `keys` is the ungrouped (scalar)
    /// aggregation.
    GroupBy {
        /// The input relation.
        input: Box<Logical>,
        /// Grouping key columns (must be integer-typed).
        keys: Vec<String>,
        /// The aggregates to compute.
        aggs: Vec<AggSpec>,
    },
    /// Ordering by one column.
    Sort {
        /// The input relation.
        input: Box<Logical>,
        /// The sort key column.
        key: String,
        /// Descending order when set.
        descending: bool,
    },
    /// Row-count cap; lowered at the host materialisation boundary.
    Limit {
        /// The input relation.
        input: Box<Logical>,
        /// Maximum number of output rows.
        count: usize,
    },
}

impl Logical {
    fn render_into(&self, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        match self {
            Logical::Scan { table } => out.push_str(&format!("{pad}Scan {table}\n")),
            Logical::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Filter {predicate}\n"));
                input.render_into(indent + 1, out);
            }
            Logical::Map { input, name, expr } => {
                out.push_str(&format!("{pad}Map {name} := {expr}\n"));
                input.render_into(indent + 1, out);
            }
            Logical::Join { left, right, kind, left_key, right_key } => {
                out.push_str(&format!("{pad}{} {left_key} = {right_key}\n", kind.name()));
                left.render_into(indent + 1, out);
                right.render_into(indent + 1, out);
            }
            Logical::GroupBy { input, keys, aggs } => {
                let aggs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!(
                    "{pad}GroupBy [{}] aggs [{}]\n",
                    keys.join(", "),
                    aggs.join(", ")
                ));
                input.render_into(indent + 1, out);
            }
            Logical::Sort { input, key, descending } => {
                let dir = if *descending { "desc" } else { "asc" };
                out.push_str(&format!("{pad}Sort {key} {dir}\n"));
                input.render_into(indent + 1, out);
            }
            Logical::Limit { input, count } => {
                out.push_str(&format!("{pad}Limit {count}\n"));
                input.render_into(indent + 1, out);
            }
        }
    }

    /// Indented tree rendering (used by [`Query::explain`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(0, &mut out);
        out
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        match self {
            Logical::Scan { .. } => 1,
            Logical::Filter { input, .. }
            | Logical::Map { input, .. }
            | Logical::GroupBy { input, .. }
            | Logical::Sort { input, .. }
            | Logical::Limit { input, .. } => 1 + input.node_count(),
            Logical::Join { left, right, .. } => 1 + left.node_count() + right.node_count(),
        }
    }

    /// Every [`Expr::Param`] slot the tree mentions, in first-use order.
    pub fn params(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_params(&mut out);
        out
    }

    fn collect_params(&self, out: &mut Vec<u32>) {
        match self {
            Logical::Scan { .. } => {}
            Logical::Filter { input, predicate } => {
                predicate.collect_params(out);
                input.collect_params(out);
            }
            Logical::Map { input, expr, .. } => {
                expr.collect_params(out);
                input.collect_params(out);
            }
            Logical::Join { left, right, .. } => {
                left.collect_params(out);
                right.collect_params(out);
            }
            Logical::GroupBy { input, .. }
            | Logical::Sort { input, .. }
            | Logical::Limit { input, .. } => input.collect_params(out),
        }
    }

    /// Substitutes parameter slots with the literals `value(id)` yields and
    /// constant-folds every touched expression — substituted trees must
    /// look exactly like their literal-built equivalents before they reach
    /// the lowerer (whose arithmetic arms assume folded operands). Slots
    /// `value` maps to `None` stay in place.
    pub(crate) fn substitute_params(&self, value: &impl Fn(u32) -> Option<Expr>) -> Logical {
        let bind = |expr: &Expr| {
            if expr.has_params() {
                expr.substitute(value).fold().0
            } else {
                expr.clone()
            }
        };
        match self {
            Logical::Scan { .. } => self.clone(),
            Logical::Filter { input, predicate } => Logical::Filter {
                input: Box::new(input.substitute_params(value)),
                predicate: bind(predicate),
            },
            Logical::Map { input, name, expr } => Logical::Map {
                input: Box::new(input.substitute_params(value)),
                name: name.clone(),
                expr: bind(expr),
            },
            Logical::Join { left, right, kind, left_key, right_key } => Logical::Join {
                left: Box::new(left.substitute_params(value)),
                right: Box::new(right.substitute_params(value)),
                kind: *kind,
                left_key: left_key.clone(),
                right_key: right_key.clone(),
            },
            Logical::GroupBy { input, keys, aggs } => Logical::GroupBy {
                input: Box::new(input.substitute_params(value)),
                keys: keys.clone(),
                aggs: aggs.clone(),
            },
            Logical::Sort { input, key, descending } => Logical::Sort {
                input: Box::new(input.substitute_params(value)),
                key: key.clone(),
                descending: *descending,
            },
            Logical::Limit { input, count } => {
                Logical::Limit { input: Box::new(input.substitute_params(value)), count: *count }
            }
        }
    }
}

/// A literal bound to an [`Expr::Param`] slot by [`Query::bind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// An integer (also dictionary codes and day-number dates).
    I32(i32),
    /// A float.
    F32(f32),
}

impl ParamValue {
    fn as_expr(&self) -> Expr {
        match self {
            ParamValue::I32(v) => Expr::LitI32(*v),
            ParamValue::F32(v) => Expr::LitF32(*v),
        }
    }
}

impl From<i32> for ParamValue {
    fn from(value: i32) -> ParamValue {
        ParamValue::I32(value)
    }
}

impl From<f32> for ParamValue {
    fn from(value: f32) -> ParamValue {
        ParamValue::F32(value)
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::I32(v) => write!(f, "{v}"),
            ParamValue::F32(v) => write!(f, "{v:?}"),
        }
    }
}

/// Why a [`Query`] could not be rewritten or lowered.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBuildError {
    /// A column name resolved against neither the relation's base tables
    /// nor its computed columns.
    UnknownColumn {
        /// The unresolved name.
        name: String,
    },
    /// An equi join where neither key column is unique on its side — the
    /// hash join needs a unique build side.
    NoUniqueJoinKey {
        /// Left key column name.
        left_key: String,
        /// Right key column name.
        right_key: String,
    },
    /// A predicate or expression shape the lowerer does not support.
    Unsupported(String),
    /// The query never declared output columns (and its root is not a
    /// grouping, which would imply them).
    NoOutputs,
    /// A parameter slot survived to lowering: the query was compiled
    /// without [`Query::bind`], or the bind supplied too few values.
    UnboundParam {
        /// The first unbound slot id.
        id: u32,
    },
    /// Plan construction failed below the lowering.
    Plan(PlanError),
}

impl fmt::Display for QueryBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryBuildError::UnknownColumn { name } => write!(f, "unknown column {name}"),
            QueryBuildError::NoUniqueJoinKey { left_key, right_key } => write!(
                f,
                "join {left_key} = {right_key}: neither key is unique on its side \
                 (the hash join needs a unique build side)"
            ),
            QueryBuildError::Unsupported(what) => write!(f, "unsupported: {what}"),
            QueryBuildError::NoOutputs => {
                write!(f, "query has no output columns (call .select(..) or group)")
            }
            QueryBuildError::UnboundParam { id } => {
                write!(f, "parameter ${id} is unbound (call .bind(..) with enough values)")
            }
            QueryBuildError::Plan(error) => write!(f, "plan error: {error}"),
        }
    }
}

impl std::error::Error for QueryBuildError {}

impl From<PlanError> for QueryBuildError {
    fn from(error: PlanError) -> QueryBuildError {
        QueryBuildError::Plan(error)
    }
}

/// A logical query: the root of a [`Logical`] tree plus the declared output
/// columns. Built through the fluent DSL, optimized by [`rewrite`], and
/// compiled by [`Query::lower`] into a physical [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    root: Logical,
    outputs: Vec<String>,
}

impl Query {
    /// Starts a query at a base-table scan.
    pub fn scan(table: &str) -> Query {
        Query { root: Logical::Scan { table: table.to_string() }, outputs: Vec::new() }
    }

    fn wrap(mut self, build: impl FnOnce(Box<Logical>) -> Logical) -> Query {
        self.root = build(Box::new(self.root));
        self
    }

    /// Keeps rows matching `predicate`.
    pub fn filter(self, predicate: Expr) -> Query {
        self.wrap(|input| Logical::Filter { input, predicate })
    }

    /// Appends a computed column `name := expr`.
    pub fn map(self, name: &str, expr: Expr) -> Query {
        self.wrap(|input| Logical::Map { input, name: name.to_string(), expr })
    }

    fn join_kind(self, right: Query, kind: JoinKind, left_key: &str, right_key: &str) -> Query {
        self.wrap(|left| Logical::Join {
            left,
            right: Box::new(right.root),
            kind,
            left_key: left_key.to_string(),
            right_key: right_key.to_string(),
        })
    }

    /// Inner PK-FK equi join with `right` on `left_key = right_key`.
    pub fn join(self, right: Query, left_key: &str, right_key: &str) -> Query {
        self.join_kind(right, JoinKind::Inner, left_key, right_key)
    }

    /// Semi join (`EXISTS`): keeps rows of `self` with a match in `right`.
    pub fn semi_join(self, right: Query, left_key: &str, right_key: &str) -> Query {
        self.join_kind(right, JoinKind::Semi, left_key, right_key)
    }

    /// Anti join (`NOT EXISTS`): keeps rows of `self` without a match.
    pub fn anti_join(self, right: Query, left_key: &str, right_key: &str) -> Query {
        self.join_kind(right, JoinKind::Anti, left_key, right_key)
    }

    /// Groups by `keys` (integer columns) computing `aggs`. The grouping's
    /// keys and aggregate outputs become the default output columns.
    pub fn group_by(self, keys: &[&str], aggs: &[AggSpec]) -> Query {
        self.wrap(|input| Logical::GroupBy {
            input,
            keys: keys.iter().map(|k| k.to_string()).collect(),
            aggs: aggs.to_vec(),
        })
    }

    /// Ungrouped (scalar) aggregation — [`Query::group_by`] with no keys.
    pub fn aggregate(self, aggs: &[AggSpec]) -> Query {
        self.group_by(&[], aggs)
    }

    /// Orders rows by `key`.
    pub fn sort_by(self, key: &str, descending: bool) -> Query {
        self.wrap(|input| Logical::Sort { input, key: key.to_string(), descending })
    }

    /// Caps the number of result rows (applied at the host boundary).
    pub fn limit(self, count: usize) -> Query {
        self.wrap(|input| Logical::Limit { input, count })
    }

    /// Declares the output columns, in order. Defaults to the grouping's
    /// keys + aggregates when the query ends in a [`Logical::GroupBy`].
    pub fn select(mut self, columns: &[&str]) -> Query {
        self.outputs = columns.iter().map(|c| c.to_string()).collect();
        self
    }

    /// The logical tree (for tests and tools).
    pub fn root(&self) -> &Logical {
        &self.root
    }

    /// Every parameter slot the query mentions, in first-use order.
    pub fn params(&self) -> Vec<u32> {
        self.root.params()
    }

    /// Whether any parameter slot remains unbound.
    pub fn has_params(&self) -> bool {
        !self.params().is_empty()
    }

    /// Binds parameter slots positionally: slot `$i` receives `params[i]`.
    /// Substituted expressions are constant-folded, so the bound query is
    /// structurally identical to one built with the literals inline.
    /// Errors with [`QueryBuildError::UnboundParam`] when any mentioned
    /// slot has no value (`params` may be longer than needed — serving
    /// layers pass one vector for a whole query family).
    pub fn bind(&self, params: &[ParamValue]) -> Result<Query, QueryBuildError> {
        if let Some(id) = self.params().into_iter().find(|id| *id as usize >= params.len()) {
            return Err(QueryBuildError::UnboundParam { id });
        }
        let root = self.root.substitute_params(&|id| params.get(id as usize).map(|v| v.as_expr()));
        Ok(Query { root, outputs: self.outputs.clone() })
    }

    /// The root-most `Limit`, if any (applied host-side by [`Query::run`]).
    pub fn limit_count(&self) -> Option<usize> {
        let mut node = &self.root;
        let mut limit: Option<usize> = None;
        while let Logical::Limit { input, count } = node {
            limit = Some(limit.map_or(*count, |l| l.min(*count)));
            node = input;
        }
        limit
    }

    /// The effective output column names ([`Query::select`] or the
    /// grouping's implied outputs).
    pub fn output_columns(&self) -> Result<Vec<String>, QueryBuildError> {
        if !self.outputs.is_empty() {
            return Ok(self.outputs.clone());
        }
        let mut node = &self.root;
        loop {
            match node {
                Logical::Limit { input, .. } | Logical::Sort { input, .. } => node = input,
                Logical::GroupBy { keys, aggs, .. } => {
                    let mut out = keys.clone();
                    out.extend(aggs.iter().map(|a| a.output.clone()));
                    return Ok(out);
                }
                _ => return Err(QueryBuildError::NoOutputs),
            }
        }
    }

    /// The rewritten (optimized) logical tree and the rule annotations.
    pub fn optimize(&self, catalog: &Catalog) -> (Logical, Vec<String>) {
        self.optimize_with(catalog, &RewriteConfig::optimized())
    }

    /// [`Query::optimize`] under an explicit rule configuration.
    pub fn optimize_with(&self, catalog: &Catalog, cfg: &RewriteConfig) -> (Logical, Vec<String>) {
        let outputs = self.output_columns().unwrap_or_default();
        let stats = rewrite::Stats::new(catalog);
        rewrite::apply(self.root.clone(), &stats, cfg, &outputs)
    }

    /// Compiles the query: rewrite rules, then lowering onto the physical
    /// plan builder (see module docs for the decisions the lowerer owns).
    pub fn lower(&self, catalog: &Catalog) -> Result<Plan, QueryBuildError> {
        self.lower_with(catalog, &RewriteConfig::optimized())
    }

    /// [`Query::lower`] under an explicit rule configuration (benchmarks
    /// ablate individual rules through this).
    pub fn lower_with(
        &self,
        catalog: &Catalog,
        cfg: &RewriteConfig,
    ) -> Result<Plan, QueryBuildError> {
        let outputs = self.output_columns()?;
        // Parameterized queries must be bound before they can compile —
        // the lowerer's selection/arithmetic arms need concrete literals.
        if let Some(id) = self.params().first() {
            return Err(QueryBuildError::UnboundParam { id: *id });
        }
        // One memoised statistics instance serves both passes, so each
        // referenced column is scanned at most once per compile.
        let stats = rewrite::Stats::new(catalog);
        let (rewritten, _) = rewrite::apply(self.root.clone(), &stats, cfg, &outputs);
        let lowered = lower::lower(&rewritten, &outputs, &stats, cfg)?;
        // Plans compiled through the query layer carry their logical
        // source, so device-loss failover can re-lower the query onto the
        // fallback backend instead of replaying the physical plan blind.
        Ok(lowered.plan.with_source(Arc::new(self.clone())))
    }

    /// Lowers and executes the query in a session, applying any root
    /// `Limit` at the host boundary.
    pub fn run<B: Backend>(
        &self,
        session: &Session<B>,
        catalog: &Catalog,
    ) -> Result<Vec<QueryValue>, QueryBuildError> {
        let plan = self.lower(catalog)?;
        let mut values = session.run(&plan, catalog)?;
        if let Some(limit) = self.limit_count() {
            for value in &mut values {
                match value {
                    QueryValue::Scalar(_) => {}
                    QueryValue::IntColumn(v) => v.truncate(limit),
                    QueryValue::FloatColumn(v) => v.truncate(limit),
                    QueryValue::OidColumn(v) => v.truncate(limit),
                }
            }
        }
        Ok(values)
    }

    /// Renders the query end to end: the logical tree, the rewritten tree
    /// with its rule annotations, the lowered physical plan and the
    /// lowering decisions. The debugging surface of the whole layer.
    pub fn explain(&self, catalog: &Catalog) -> Result<String, QueryBuildError> {
        self.explain_with(catalog, &RewriteConfig::optimized())
    }

    /// [`Query::explain`] under an explicit rule configuration.
    pub fn explain_with(
        &self,
        catalog: &Catalog,
        cfg: &RewriteConfig,
    ) -> Result<String, QueryBuildError> {
        let outputs = self.output_columns()?;
        let stats = rewrite::Stats::new(catalog);
        let (rewritten, rules) = rewrite::apply(self.root.clone(), &stats, cfg, &outputs);
        let mut out = String::new();
        out.push_str("=== logical plan ===\n");
        out.push_str(&self.root.render());
        out.push_str(&format!("output: [{}]\n", outputs.join(", ")));
        let params = self.params();
        if !params.is_empty() {
            let slots: Vec<String> = params.iter().map(|id| format!("${id}")).collect();
            out.push_str(&format!("params: [{}]\n", slots.join(", ")));
        }
        out.push_str(&format!("=== rewritten ({} rule applications) ===\n", rules.len()));
        for note in &rules {
            out.push_str(&format!("  * {note}\n"));
        }
        out.push_str(&rewritten.render());
        if !params.is_empty() {
            // An unbound parameterized query stops at the logical half —
            // lowering needs concrete literals (bind first, or explain
            // through the plan cache to see the physical plan of a shape).
            out.push_str("=== physical plan ===\n");
            out.push_str("  (unbound parameters — call .bind(..) to lower)\n");
            return Ok(out);
        }
        let lowered = lower::lower(&rewritten, &outputs, &stats, cfg)?;
        out.push_str(&format!("=== physical plan ({} nodes) ===\n", lowered.plan.len()));
        for (index, node) in lowered.plan.nodes().iter().enumerate() {
            out.push_str(&format!("  {index:3}: {node}\n"));
        }
        out.push_str("=== lowering decisions ===\n");
        for note in &lowered.notes {
            out.push_str(&format!("  * {note}\n"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::MonetSeqBackend;
    use crate::plan::PlanOp;
    use ocelot_storage::{Bat, Catalog, Table};

    /// fact(k → dim.id, v, flag, d) plus two key-only dimension tables of
    /// different sizes (for the build-side decision).
    fn catalog() -> Catalog {
        let n = 4_000;
        let mut catalog = Catalog::new();
        let fact = Table::new("fact")
            .with_column("k", Bat::from_i32("k", (0..n).map(|i| i % 50).collect()).into_ref())
            .with_column(
                "v",
                Bat::from_f32("v", (0..n).map(|i| (i % 97) as f32 * 0.25).collect()).into_ref(),
            )
            .with_column("flag", Bat::from_i32("flag", (0..n).map(|i| i % 2).collect()).into_ref())
            .with_column("d", Bat::from_i32("d", (0..n).map(|i| i % 1_000).collect()).into_ref())
            .with_column(
                "fact_id",
                Bat::from_i32("fact_id", (0..n).collect()).with_key(true).into_ref(),
            );
        catalog.add_table(fact);
        let dim = Table::new("dim")
            .with_column("id", Bat::from_i32("id", (0..50).collect()).with_key(true).into_ref())
            .with_column(
                "attr",
                Bat::from_i32("attr", (0..50).map(|i| i % 5).collect()).into_ref(),
            );
        catalog.add_table(dim);
        let big = Table::new("big")
            .with_column(
                "big_id",
                Bat::from_i32("big_id", (0..4_000).collect()).with_key(true).into_ref(),
            )
            .with_column(
                "w",
                Bat::from_f32("w", (0..4_000).map(|i| i as f32).collect()).into_ref(),
            );
        catalog.add_table(big);
        catalog
    }

    fn filter_chain_above_scan(node: &Logical) -> Option<Vec<String>> {
        let mut preds = Vec::new();
        let mut cursor = node;
        while let Logical::Filter { input, predicate } = cursor {
            preds.push(predicate.to_string());
            cursor = input;
        }
        matches!(cursor, Logical::Scan { .. }).then_some(preds)
    }

    #[test]
    fn pushdown_moves_single_side_predicates_below_the_join() {
        let catalog = catalog();
        let q = Query::scan("fact")
            .join(Query::scan("dim"), "k", "id")
            .filter(col("attr").eq(3))
            .filter(col("flag").eq(1))
            .select(&["v"]);
        let (rewritten, notes) = q.optimize(&catalog);
        assert!(
            notes.iter().filter(|n| n.contains("predicate pushdown")).count() >= 2,
            "both predicates push: {notes:?}"
        );
        // Both sides of the join are now Filter-over-Scan.
        let Logical::Join { left, right, .. } = &rewritten else {
            panic!("join must be the root after pushdown: {}", rewritten.render());
        };
        assert!(filter_chain_above_scan(left).is_some(), "fact filter pushed:\n{}", left.render());
        assert!(filter_chain_above_scan(right).is_some(), "dim filter pushed:\n{}", right.render());
    }

    #[test]
    fn selectivity_ordering_applies_the_narrow_predicate_first() {
        let catalog = catalog();
        // Written wide-first: d spans [0, 1000) so [0, 499] keeps ~50%,
        // flag = 1 keeps ~50%, d in [0, 9] keeps ~1%.
        let q = Query::scan("fact")
            .filter(col("flag").eq(1))
            .filter(col("d").between(0, 9))
            .filter(col("v").ge(0.0f32))
            .select(&["v"]);
        let (rewritten, notes) = q.optimize(&catalog);
        assert!(
            notes.iter().any(|n| n.contains("selectivity order on fact")),
            "ordering note missing: {notes:?}"
        );
        let chain = filter_chain_above_scan(&rewritten).expect("chain over scan");
        // The chain renders outside-in: the last element executes first.
        assert!(
            chain.last().unwrap().contains('d'),
            "most selective predicate (d in [0, 9]) must execute first: {chain:?}"
        );
        // And the lowered plan's first selection is the d-range.
        let plan = q.lower(&catalog).unwrap();
        let first_select = plan
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                PlanOp::SelectRangeI32 { low, high } => Some((*low, *high)),
                _ => None,
            })
            .unwrap();
        assert_eq!(first_select, (0, 9));
    }

    #[test]
    fn projection_pruning_drops_unused_maps_and_binds() {
        let catalog = catalog();
        let q = Query::scan("fact")
            .map("used", col("v") * lit(2.0f32))
            .map("unused", col("v") + col("v"))
            .select(&["used"]);
        let (rewritten, notes) = q.optimize(&catalog);
        assert!(
            notes.iter().any(|n| n.contains("dropped unused map unused")),
            "prune note missing: {notes:?}"
        );
        assert_eq!(rewritten.node_count(), 2, "scan + the used map:\n{}", rewritten.render());

        // Observable physically: the naive lowering binds every fact
        // column, the pruned lowering only what the query reads.
        let binds = |plan: &Plan| {
            plan.nodes().iter().filter(|n| matches!(n.op, PlanOp::Bind { .. })).count()
        };
        let pruned = q.lower(&catalog).unwrap();
        let naive = q.lower_with(&catalog, &RewriteConfig::naive()).unwrap();
        assert_eq!(binds(&pruned), 1, "only fact.v is read");
        assert_eq!(binds(&naive), 5, "naive lowering materialises all fact columns");
    }

    #[test]
    fn constant_folding_and_year_ranges_are_rewritten() {
        let catalog = catalog();
        let q =
            Query::scan("fact").filter(col("d").between(lit(2) + lit(3), lit(100))).select(&["v"]);
        let (rewritten, notes) = q.optimize(&catalog);
        assert!(notes.iter().any(|n| n.contains("constant folding")), "{notes:?}");
        let chain = filter_chain_above_scan(&rewritten).unwrap();
        assert!(chain[0].contains("BETWEEN 5 AND 100"), "{chain:?}");

        // YEAR(col) = literal becomes a day-number range.
        let q = Query::scan("fact").filter(col("d").year().eq(1970)).select(&["v"]);
        let (rewritten, notes) = q.optimize(&catalog);
        assert!(
            notes.iter().any(|n| n.contains("day-number range")),
            "year rewrite note missing: {notes:?}"
        );
        let chain = filter_chain_above_scan(&rewritten).unwrap();
        assert!(chain[0].contains("BETWEEN"), "{chain:?}");
    }

    #[test]
    fn build_side_follows_estimated_cardinality_when_both_keys_are_unique() {
        let catalog = catalog();
        let q = Query::scan("big")
            .join(Query::scan("fact"), "big_id", "fact_id")
            .filter(col("flag").eq(1))
            .select(&["w"]);
        let text = q.explain(&catalog).unwrap();
        assert!(
            text.contains("both keys unique"),
            "cardinality-based build-side note missing:\n{text}"
        );
        // The filtered fact side (~2000 est rows) is smaller than big
        // (4000), so it builds.
        assert!(text.contains("build side by estimated cardinality: right"), "{text}");
    }

    #[test]
    fn queries_execute_and_limits_truncate_at_the_host_boundary() {
        let catalog = catalog();
        let backend = MonetSeqBackend::new();
        let session = crate::session::Session::new(backend);
        let q = Query::scan("fact")
            .filter(col("flag").eq(1))
            .group_by(&["k"], &[AggSpec::sum("v", "total"), AggSpec::count("n")])
            .sort_by("total", true);
        let values = q.run(&session, &catalog).unwrap();
        assert_eq!(values.len(), 3, "k, total, n");
        let QueryValue::IntColumn(keys) = &values[0] else { panic!("keys are ints") };
        // Odd rows only: k = i % 50 over odd i covers the 25 odd residues.
        assert_eq!(keys.len(), 25);

        let limited = q.clone().limit(7).run(&session, &catalog).unwrap();
        let QueryValue::IntColumn(keys) = &limited[0] else { panic!("keys are ints") };
        assert_eq!(keys.len(), 7, "limit applies host-side");

        // Results are identical to computing the aggregation by hand.
        let expected: f32 = (0..4_000).filter(|i| i % 2 == 1).map(|i| (i % 97) as f32 * 0.25).sum();
        let QueryValue::FloatColumn(totals) = &values[1] else { panic!("totals are floats") };
        let got: f32 = totals.iter().sum();
        assert!((got - expected).abs() / expected < 1e-3, "{got} vs {expected}");
    }

    #[test]
    fn malformed_queries_surface_structured_errors() {
        let catalog = catalog();
        let session = crate::session::Session::monet_seq();

        // No unique key on either side of a join.
        let err = Query::scan("fact")
            .join(Query::scan("dim"), "k", "attr")
            .select(&["v"])
            .lower(&catalog)
            .unwrap_err();
        assert!(matches!(err, QueryBuildError::NoUniqueJoinKey { .. }), "{err}");
        assert!(err.to_string().contains("unique build side"));

        // Unknown column.
        let err = Query::scan("fact").select(&["nope"]).lower(&catalog).unwrap_err();
        assert_eq!(err, QueryBuildError::UnknownColumn { name: "nope".into() });

        // Float equality needs a BETWEEN band.
        let err = Query::scan("fact")
            .filter(col("v").eq(0.5f32))
            .select(&["v"])
            .lower(&catalog)
            .unwrap_err();
        assert!(matches!(err, QueryBuildError::Unsupported(_)), "{err}");

        // Outputs must be declared unless a grouping implies them.
        let err = Query::scan("fact").run(&session, &catalog).unwrap_err();
        assert_eq!(err, QueryBuildError::NoOutputs);

        // Grouping keys must be integer columns.
        let err = Query::scan("fact")
            .group_by(&["v"], &[AggSpec::count("n")])
            .lower(&catalog)
            .unwrap_err();
        assert!(err.to_string().contains("integer column"), "{err}");
    }

    #[test]
    fn semi_and_anti_joins_partition_the_left_relation() {
        let catalog = catalog();
        let session = crate::session::Session::monet_seq();
        // dim rows with attr = 0 → ids {0, 5, 10, ...}; fact.k ∈ those ids.
        let matching = Query::scan("dim").filter(col("attr").eq(0));
        let semi = Query::scan("fact")
            .semi_join(matching.clone(), "k", "id")
            .aggregate(&[AggSpec::sum("v", "total")]);
        let anti = Query::scan("fact")
            .anti_join(matching, "k", "id")
            .aggregate(&[AggSpec::sum("v", "total")]);
        let all = Query::scan("fact").aggregate(&[AggSpec::sum("v", "total")]);
        let value = |q: &Query| match q.run(&session, &catalog).unwrap().as_slice() {
            [QueryValue::Scalar(s)] => *s,
            other => panic!("scalar expected: {other:?}"),
        };
        let (semi, anti, all) = (value(&semi), value(&anti), value(&all));
        assert!(semi > 0.0 && anti > 0.0);
        assert!((semi + anti - all).abs() / all < 1e-3, "{semi} + {anti} != {all}");
    }

    #[test]
    fn naive_and_optimized_lowering_agree_on_results() {
        // Rule safety: disabling every rewrite must not change semantics,
        // only the physical plan.
        let catalog = catalog();
        let session = crate::session::Session::monet_seq();
        let q = Query::scan("fact")
            .join(Query::scan("dim"), "k", "id")
            .filter(col("attr").eq(2))
            .filter(col("d").between(100, 700))
            .map("scaled", col("v") * lit(3.0f32))
            .group_by(&["k"], &[AggSpec::sum("scaled", "total")])
            .sort_by("k", false);
        let optimized = session.run(&q.lower(&catalog).unwrap(), &catalog).unwrap();
        let naive = session
            .run(&q.lower_with(&catalog, &RewriteConfig::naive()).unwrap(), &catalog)
            .unwrap();
        assert_eq!(optimized, naive, "both orderings sort by k, so rows align exactly");
        // The optimized plan does strictly less work (fewer binds).
        let binds = |plan: &Plan| {
            plan.nodes().iter().filter(|n| matches!(n.op, PlanOp::Bind { .. })).count()
        };
        assert!(
            binds(&q.lower(&catalog).unwrap())
                < binds(&q.lower_with(&catalog, &RewriteConfig::naive()).unwrap())
        );
    }
}
