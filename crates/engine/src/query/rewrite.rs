//! Rule-based rewrites over the logical tree.
//!
//! Every rule is a pure tree-to-tree function that appends a human-readable
//! note for each change it makes; [`apply`] runs them in a fixed order
//! under a [`RewriteConfig`] so benchmarks can ablate individual rules.
//! Rule order: constant folding (incl. `YEAR` normalisation and conjunct
//! splitting) → predicate pushdown (to fixpoint) → selectivity ordering →
//! projection pruning.
//!
//! Selectivity estimates come from [`Stats`]: per-column min/max and a
//! sampled distinct-count over the catalog's base data, memoised per
//! rewrite. The estimates are deliberately coarse — they order predicates
//! and pick hash-join build sides; they never affect correctness.

use super::expr::{CmpOp, Expr};
use super::{Logical, QueryBuildError};
use ocelot_storage::types::date_to_days;
use ocelot_storage::Catalog;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// Which rewrite rules run (all on by default; `naive` turns every
/// optimization off for ablation benchmarks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewriteConfig {
    /// Constant folding and `YEAR(date) ⋈ literal` range normalisation.
    pub fold: bool,
    /// Predicate pushdown below joins and maps.
    pub pushdown: bool,
    /// Selectivity-ordered predicate application over scans.
    pub selectivity_order: bool,
    /// Projection pruning: drop unused computed columns; bind only the
    /// columns the query reads (naive lowering materialises every scan
    /// column instead).
    pub prune: bool,
    /// Device memory budget (bytes) the lowering plans joins against:
    /// when a hash join's estimated working set would overflow it, the
    /// lowering emits the partitioned hybrid hash join (planned spilling)
    /// instead of the in-memory join (whose overflow path is the
    /// OOM-restart protocol). `None` always lowers the in-memory join.
    pub device_budget: Option<usize>,
}

impl RewriteConfig {
    /// Every rule enabled — the default pipeline.
    pub fn optimized() -> RewriteConfig {
        RewriteConfig {
            fold: true,
            pushdown: true,
            selectivity_order: true,
            prune: true,
            device_budget: None,
        }
    }

    /// Every rule disabled: predicates run where they were written, scans
    /// materialise all columns. The ablation baseline for `bench_pr5`.
    pub fn naive() -> RewriteConfig {
        RewriteConfig {
            fold: false,
            pushdown: false,
            selectivity_order: false,
            prune: false,
            device_budget: None,
        }
    }

    /// The optimized pipeline planning joins against a device budget (see
    /// [`RewriteConfig::device_budget`]).
    pub fn with_device_budget(mut self, bytes: usize) -> RewriteConfig {
        self.device_budget = Some(bytes);
        self
    }
}

impl Default for RewriteConfig {
    fn default() -> RewriteConfig {
        RewriteConfig::optimized()
    }
}

// ---------------------------------------------------------------------------
// Column statistics
// ---------------------------------------------------------------------------

/// Per-column summary statistics for selectivity estimation.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColStats {
    /// Number of rows.
    pub rows: usize,
    /// Minimum value (as f64, covering i32 and f32 columns).
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Estimated number of distinct values.
    pub ndv: usize,
}

/// Catalog-backed, memoised column statistics.
pub(crate) struct Stats<'a> {
    catalog: &'a Catalog,
    cache: RefCell<HashMap<String, ColStats>>,
}

impl<'a> Stats<'a> {
    pub(crate) fn new(catalog: &'a Catalog) -> Stats<'a> {
        Stats { catalog, cache: RefCell::new(HashMap::new()) }
    }

    /// Statistics instance whose memo is pre-populated from an earlier
    /// compile's [`Stats::snapshot`]. The plan cache uses this on a hit so
    /// the per-execution lowering never re-scans base columns. The keys
    /// carry the generation of the catalog they were computed against, so
    /// a snapshot replayed against a different catalog simply misses.
    pub(crate) fn preloaded(catalog: &'a Catalog, memo: HashMap<String, ColStats>) -> Stats<'a> {
        Stats { catalog, cache: RefCell::new(memo) }
    }

    /// A copy of every memoised per-column statistic computed so far.
    pub(crate) fn snapshot(&self) -> HashMap<String, ColStats> {
        self.cache.borrow().clone()
    }

    pub(crate) fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Statistics of `table.column` (zeroed defaults for unknown columns —
    /// name resolution errors surface in the lowering, not here). The memo
    /// key includes the catalog's generation: statistics computed against
    /// one version of the data can never answer for a re-generated
    /// catalog, even through a preloaded snapshot.
    pub(crate) fn column(&self, table: &str, column: &str) -> ColStats {
        let key = format!("{}:{table}.{column}", self.catalog.generation());
        if let Some(stats) = self.cache.borrow().get(&key) {
            return *stats;
        }
        let stats = match self.catalog.column(table, column) {
            Some(bat) => {
                let rows = bat.len();
                let (min, max) = if let Some(values) = bat.as_i32() {
                    values.iter().fold((f64::MAX, f64::MIN), |(lo, hi), v| {
                        (lo.min(*v as f64), hi.max(*v as f64))
                    })
                } else if let Some(values) = bat.as_f32() {
                    values.iter().fold((f64::MAX, f64::MIN), |(lo, hi), v| {
                        (lo.min(*v as f64), hi.max(*v as f64))
                    })
                } else {
                    (0.0, rows.saturating_sub(1) as f64)
                };
                // Sampled distinct count: a stride sample of ≤ 4096 words.
                // If nearly every sampled value is distinct, assume the
                // column is key-like and scale to the row count; otherwise
                // the sample's distinct count is the (low-cardinality)
                // estimate.
                let stride = (rows / 4096).max(1);
                let mut seen = HashSet::new();
                let mut sampled = 0usize;
                for index in (0..rows).step_by(stride) {
                    seen.insert(bat.word_at(index));
                    sampled += 1;
                }
                let distinct = seen.len().max(1);
                let ndv = if distinct * 10 >= sampled * 9 { rows.max(1) } else { distinct };
                ColStats { rows, min, max, ndv }
            }
            None => ColStats { rows: 0, min: 0.0, max: 0.0, ndv: 1 },
        };
        self.cache.borrow_mut().insert(key, stats);
        stats
    }
}

// ---------------------------------------------------------------------------
// Predicate atoms (shared with the lowering pass)
// ---------------------------------------------------------------------------

/// The element type of a column, as the lowerer needs to know it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColTy {
    /// 32-bit integers (also dictionary codes, day-number dates, keys).
    I32,
    /// 32-bit floats.
    F32,
}

/// A single-selection predicate the lowerer can execute directly.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Atom {
    /// `lo <= col <= hi` over integers.
    RangeI32 { col: String, lo: i32, hi: i32 },
    /// `lo <= col <= hi` over floats.
    RangeF32 { col: String, lo: f32, hi: f32 },
    /// `col = value` over integer codes.
    EqI32 { col: String, value: i32 },
    /// `col <> value`.
    NeI32 { col: String, value: i32 },
    /// `col IN (values…)` — lowered as a union of equality selections.
    InI32 { col: String, values: Vec<i32> },
    /// `left <op> right` over two integer columns — lowered as casts, a
    /// subtraction and a band selection on the delta.
    ColCmp { op: CmpOp, left: String, right: String },
}

impl Atom {
    pub(crate) fn columns(&self) -> Vec<&str> {
        match self {
            Atom::RangeI32 { col, .. }
            | Atom::RangeF32 { col, .. }
            | Atom::EqI32 { col, .. }
            | Atom::NeI32 { col, .. }
            | Atom::InI32 { col, .. } => vec![col],
            Atom::ColCmp { left, right, .. } => vec![left, right],
        }
    }

    pub(crate) fn describe(&self) -> String {
        match self {
            Atom::RangeI32 { col, lo, hi } => format!("{col} in [{lo}, {hi}]"),
            Atom::RangeF32 { col, lo, hi } => format!("{col} in [{lo:?}, {hi:?}]"),
            Atom::EqI32 { col, value } => format!("{col} = {value}"),
            Atom::NeI32 { col, value } => format!("{col} <> {value}"),
            Atom::InI32 { col, values } => format!("{col} in {values:?}"),
            Atom::ColCmp { op, left, right } => format!("{left} {} {right}", op.symbol()),
        }
    }
}

/// A classified predicate: one atom, or a disjunction of atoms (lowered as
/// a candidate-list union).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Pred {
    Atom(Atom),
    Or(Vec<Atom>),
}

impl Pred {
    pub(crate) fn atoms(&self) -> &[Atom] {
        match self {
            Pred::Atom(atom) => std::slice::from_ref(atom),
            Pred::Or(atoms) => atoms,
        }
    }

    pub(crate) fn describe(&self) -> String {
        match self {
            Pred::Atom(atom) => atom.describe(),
            Pred::Or(atoms) => {
                let parts: Vec<String> = atoms.iter().map(|a| a.describe()).collect();
                parts.join(" OR ")
            }
        }
    }
}

fn lit_as_i32(e: &Expr) -> Option<i32> {
    e.as_lit_i32()
}

fn range_i32(col: &str, op: CmpOp, value: i32) -> Atom {
    match op {
        CmpOp::Lt => Atom::RangeI32 { col: col.into(), lo: i32::MIN, hi: value.saturating_sub(1) },
        CmpOp::Le => Atom::RangeI32 { col: col.into(), lo: i32::MIN, hi: value },
        CmpOp::Gt => Atom::RangeI32 { col: col.into(), lo: value.saturating_add(1), hi: i32::MAX },
        CmpOp::Ge => Atom::RangeI32 { col: col.into(), lo: value, hi: i32::MAX },
        CmpOp::Eq => Atom::EqI32 { col: col.into(), value },
        CmpOp::Ne => Atom::NeI32 { col: col.into(), value },
    }
}

fn range_f32(col: &str, op: CmpOp, value: f32) -> Result<Atom, QueryBuildError> {
    // Strict comparisons lower exactly via the adjacent representable
    // float (the workload's data has no NaNs).
    let atom = match op {
        CmpOp::Lt => Atom::RangeF32 { col: col.into(), lo: f32::MIN, hi: value.next_down() },
        CmpOp::Le => Atom::RangeF32 { col: col.into(), lo: f32::MIN, hi: value },
        CmpOp::Gt => Atom::RangeF32 { col: col.into(), lo: value.next_up(), hi: f32::MAX },
        CmpOp::Ge => Atom::RangeF32 { col: col.into(), lo: value, hi: f32::MAX },
        CmpOp::Eq | CmpOp::Ne => {
            return Err(QueryBuildError::Unsupported(format!(
                "float {} comparison on {col} (use a narrow BETWEEN instead)",
                op.symbol()
            )))
        }
    };
    Ok(atom)
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Classifies one conjunct into a [`Pred`] the lowerer can execute.
/// `ty_of` resolves a column name to its element type (None = unknown).
pub(crate) fn classify(
    expr: &Expr,
    ty_of: &dyn Fn(&str) -> Option<ColTy>,
) -> Result<Pred, QueryBuildError> {
    match expr {
        Expr::Or(a, b) => {
            let mut atoms = Vec::new();
            for side in [a.as_ref(), b.as_ref()] {
                match classify(side, ty_of)? {
                    Pred::Atom(atom) => atoms.push(atom),
                    Pred::Or(more) => atoms.extend(more),
                }
            }
            Ok(Pred::Or(atoms))
        }
        _ => classify_atom(expr, ty_of).map(Pred::Atom),
    }
}

fn classify_atom(
    expr: &Expr,
    ty_of: &dyn Fn(&str) -> Option<ColTy>,
) -> Result<Atom, QueryBuildError> {
    let ty = |name: &str| -> Result<ColTy, QueryBuildError> {
        ty_of(name).ok_or_else(|| QueryBuildError::UnknownColumn { name: name.to_string() })
    };
    match expr {
        Expr::Between(col_expr, lo, hi) => {
            let Expr::Col(name) = col_expr.as_ref() else {
                return Err(QueryBuildError::Unsupported(format!(
                    "BETWEEN over a computed expression: {expr}"
                )));
            };
            match ty(name)? {
                ColTy::I32 => match (lit_as_i32(lo), lit_as_i32(hi)) {
                    (Some(lo), Some(hi)) => Ok(Atom::RangeI32 { col: name.clone(), lo, hi }),
                    _ => Err(QueryBuildError::Unsupported(format!(
                        "non-literal BETWEEN bounds on integer column {name}"
                    ))),
                },
                ColTy::F32 => match (lo.as_lit_f32(), hi.as_lit_f32()) {
                    (Some(lo), Some(hi)) => Ok(Atom::RangeF32 { col: name.clone(), lo, hi }),
                    _ => Err(QueryBuildError::Unsupported(format!(
                        "non-literal BETWEEN bounds on float column {name}"
                    ))),
                },
            }
        }
        Expr::InList(col_expr, values) => {
            let Expr::Col(name) = col_expr.as_ref() else {
                return Err(QueryBuildError::Unsupported(format!(
                    "IN over a computed expression: {expr}"
                )));
            };
            if ty(name)? != ColTy::I32 {
                return Err(QueryBuildError::Unsupported(format!(
                    "IN over float column {name} (codes and integers only)"
                )));
            }
            Ok(Atom::InI32 { col: name.clone(), values: values.clone() })
        }
        Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(left), Expr::Col(right)) => {
                if ty(left)? != ColTy::I32 || ty(right)? != ColTy::I32 {
                    return Err(QueryBuildError::Unsupported(format!(
                        "column-vs-column comparison {left} {} {right} needs two integer \
                         columns (the delta select is exact for |values| < 2^24)",
                        op.symbol()
                    )));
                }
                Ok(Atom::ColCmp { op: *op, left: left.clone(), right: right.clone() })
            }
            (Expr::Col(name), lit) if lit.as_lit_f32().is_some() => match ty(name)? {
                ColTy::I32 => match lit.as_lit_i32() {
                    Some(value) => Ok(range_i32(name, *op, value)),
                    None => Err(QueryBuildError::Unsupported(format!(
                        "float literal compared against integer column {name}"
                    ))),
                },
                ColTy::F32 => range_f32(name, *op, lit.as_lit_f32().unwrap()),
            },
            (lit, Expr::Col(name)) if lit.as_lit_f32().is_some() => {
                classify_atom(&Expr::Cmp(flip(*op), b.clone(), a.clone()), ty_of)
            }
            _ => Err(QueryBuildError::Unsupported(format!(
                "comparison not in `column ⋈ literal` or `column ⋈ column` form: {expr}"
            ))),
        },
        Expr::Year(_) => Err(QueryBuildError::Unsupported(format!(
            "bare YEAR() predicate: {expr} (compare it against a literal year)"
        ))),
        other => {
            Err(QueryBuildError::Unsupported(format!("expression is not a predicate: {other}")))
        }
    }
}

/// Default selectivity assumed for a parameterized predicate, whose bounds
/// are unknown until bind time. A middling guess: more selective than a
/// tautology, less than an equality — parameterized conjuncts sort between
/// known-narrow and known-wide ones, and the order is stable per shape.
pub(crate) const PARAM_SELECTIVITY: f64 = 0.25;

/// Estimated selectivity of a predicate (fraction of rows kept), using the
/// column statistics of `table`.
pub(crate) fn selectivity(pred: &Pred, table: &str, stats: &Stats) -> f64 {
    let atom_sel = |atom: &Atom| -> f64 {
        match atom {
            Atom::RangeI32 { col, lo, hi } => {
                let s = stats.column(table, col);
                let width = (s.max - s.min + 1.0).max(1.0);
                let lo = (*lo as f64).max(s.min);
                let hi = (*hi as f64).min(s.max);
                ((hi - lo + 1.0) / width).clamp(0.0, 1.0)
            }
            Atom::RangeF32 { col, lo, hi } => {
                let s = stats.column(table, col);
                let width = (s.max - s.min).max(f64::MIN_POSITIVE);
                let lo = (*lo as f64).max(s.min);
                let hi = (*hi as f64).min(s.max);
                ((hi - lo) / width).clamp(0.0, 1.0)
            }
            Atom::EqI32 { col, .. } => 1.0 / stats.column(table, col).ndv.max(1) as f64,
            Atom::NeI32 { col, .. } => 1.0 - 1.0 / stats.column(table, col).ndv.max(1) as f64,
            Atom::InI32 { col, values } => {
                (values.len() as f64 / stats.column(table, col).ndv.max(1) as f64).min(1.0)
            }
            // Column-vs-column deltas: no joint statistics — fixed priors.
            Atom::ColCmp { op, .. } => match op {
                CmpOp::Eq => 0.1,
                CmpOp::Ne => 0.9,
                _ => 0.5,
            },
        }
    };
    match pred {
        Pred::Atom(atom) => atom_sel(atom),
        Pred::Or(atoms) => atoms.iter().map(atom_sel).sum::<f64>().min(1.0),
    }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// The set of column names a logical subtree makes available.
pub(crate) fn available_columns(node: &Logical, catalog: &Catalog) -> HashSet<String> {
    match node {
        Logical::Scan { table } => catalog
            .table(table)
            .map(|t| t.column_names().into_iter().map(|c| c.to_string()).collect())
            .unwrap_or_default(),
        Logical::Filter { input, .. }
        | Logical::Sort { input, .. }
        | Logical::Limit { input, .. } => available_columns(input, catalog),
        Logical::Map { input, name, .. } => {
            let mut cols = available_columns(input, catalog);
            cols.insert(name.clone());
            cols
        }
        Logical::Join { left, right, kind, .. } => {
            let mut cols = available_columns(left, catalog);
            if *kind == super::JoinKind::Inner {
                cols.extend(available_columns(right, catalog));
            }
            cols
        }
        Logical::GroupBy { keys, aggs, .. } => {
            let mut cols: HashSet<String> = keys.iter().cloned().collect();
            cols.extend(aggs.iter().map(|a| a.output.clone()));
            cols
        }
    }
}

/// Runs the configured rules over `root` and returns the rewritten tree
/// plus one annotation per rule application. `stats` is shared with the
/// lowering pass so each referenced column is scanned at most once per
/// compile.
pub(crate) fn apply(
    root: Logical,
    stats: &Stats,
    cfg: &RewriteConfig,
    outputs: &[String],
) -> (Logical, Vec<String>) {
    let catalog = stats.catalog();
    let mut notes = Vec::new();
    // Conjunct splitting is normalisation, not an optimization: the
    // lowering applies conjuncts one selection at a time either way, so
    // both pipelines see the same shape.
    let mut node = split_conjunctions(root);
    if cfg.fold {
        node = fold_exprs(node, &mut notes);
        node = split_conjunctions(node); // YEAR normalisation can reveal new conjuncts
    }
    if cfg.pushdown {
        let mut rounds = 0;
        loop {
            let mut changed = false;
            node = push_down(node, catalog, &mut notes, &mut changed);
            rounds += 1;
            if !changed || rounds > 16 {
                break;
            }
        }
    }
    if cfg.selectivity_order {
        node = order_by_selectivity(node, stats, &mut notes);
    }
    if cfg.prune {
        let needed: HashSet<String> = outputs.iter().cloned().collect();
        node = prune(node, catalog, &needed, &mut notes);
    }
    (node, notes)
}

fn split_conjunctions(node: Logical) -> Logical {
    map_inputs(node, split_conjunctions, |node| match node {
        Logical::Filter { input, predicate } => {
            let mut out = *input;
            // Innermost filter = first-written conjunct, preserving the
            // author's application order until the ordering rule runs.
            for pred in predicate.conjuncts() {
                out = Logical::Filter { input: Box::new(out), predicate: pred };
            }
            out
        }
        other => other,
    })
}

/// Applies `recurse` to every child, then `transform` to the node itself.
fn map_inputs(
    node: Logical,
    recurse: impl Fn(Logical) -> Logical + Copy,
    transform: impl FnOnce(Logical) -> Logical,
) -> Logical {
    let node = match node {
        Logical::Scan { table } => Logical::Scan { table },
        Logical::Filter { input, predicate } => {
            Logical::Filter { input: Box::new(recurse(*input)), predicate }
        }
        Logical::Map { input, name, expr } => {
            Logical::Map { input: Box::new(recurse(*input)), name, expr }
        }
        Logical::Join { left, right, kind, left_key, right_key } => Logical::Join {
            left: Box::new(recurse(*left)),
            right: Box::new(recurse(*right)),
            kind,
            left_key,
            right_key,
        },
        Logical::GroupBy { input, keys, aggs } => {
            Logical::GroupBy { input: Box::new(recurse(*input)), keys, aggs }
        }
        Logical::Sort { input, key, descending } => {
            Logical::Sort { input: Box::new(recurse(*input)), key, descending }
        }
        Logical::Limit { input, count } => {
            Logical::Limit { input: Box::new(recurse(*input)), count }
        }
    };
    transform(node)
}

/// Rewrites `YEAR(col) ⋈ literal` into a day-number range on `col`.
fn normalize_year(expr: Expr, notes: &mut Vec<String>) -> Expr {
    let range = |col: Expr, lo: i32, hi: i32| {
        Expr::Between(Box::new(col), Box::new(Expr::LitI32(lo)), Box::new(Expr::LitI32(hi)))
    };
    let note = |notes: &mut Vec<String>, before: &str, col: &Expr, lo: i32, hi: i32| {
        notes.push(format!(
            "constant folding: rewrote {before} to day-number range {col} in [{lo}, {hi}]"
        ));
    };
    match expr {
        Expr::Cmp(op, a, b) => {
            let (op, year_side, lit_side) = match (a.as_ref(), b.as_ref()) {
                (Expr::Year(inner), lit) if lit.as_lit_i32().is_some() => {
                    (op, inner.clone(), lit.as_lit_i32().unwrap())
                }
                (lit, Expr::Year(inner)) if lit.as_lit_i32().is_some() => {
                    (flip(op), inner.clone(), lit.as_lit_i32().unwrap())
                }
                _ => {
                    return Expr::Cmp(
                        op,
                        Box::new(normalize_year(*a, notes)),
                        Box::new(normalize_year(*b, notes)),
                    )
                }
            };
            let y = lit_side;
            let before = format!("YEAR({year_side}) {} {y}", op.symbol());
            let (lo, hi) = match op {
                CmpOp::Eq => (date_to_days(y, 1, 1), date_to_days(y, 12, 31)),
                CmpOp::Lt => (i32::MIN, date_to_days(y - 1, 12, 31)),
                CmpOp::Le => (i32::MIN, date_to_days(y, 12, 31)),
                CmpOp::Gt => (date_to_days(y + 1, 1, 1), i32::MAX),
                CmpOp::Ge => (date_to_days(y, 1, 1), i32::MAX),
                CmpOp::Ne => {
                    // No single range; leave for the lowering to reject
                    // with a clear error.
                    return Expr::Cmp(
                        CmpOp::Ne,
                        Box::new(Expr::Year(year_side)),
                        Box::new(Expr::LitI32(y)),
                    );
                }
            };
            note(notes, &before, &year_side, lo, hi);
            range(*year_side, lo, hi)
        }
        Expr::Between(a, lo, hi) => match (a.as_ref(), lo.as_lit_i32(), hi.as_lit_i32()) {
            (Expr::Year(inner), Some(y1), Some(y2)) => {
                let (lo, hi) = (date_to_days(y1, 1, 1), date_to_days(y2, 12, 31));
                let before = format!("YEAR({inner}) BETWEEN {y1} AND {y2}");
                note(notes, &before, inner, lo, hi);
                range((**inner).clone(), lo, hi)
            }
            _ => Expr::Between(
                Box::new(normalize_year(*a, notes)),
                Box::new(normalize_year(*lo, notes)),
                Box::new(normalize_year(*hi, notes)),
            ),
        },
        Expr::And(a, b) => {
            Expr::And(Box::new(normalize_year(*a, notes)), Box::new(normalize_year(*b, notes)))
        }
        Expr::Or(a, b) => {
            Expr::Or(Box::new(normalize_year(*a, notes)), Box::new(normalize_year(*b, notes)))
        }
        other => other,
    }
}

fn fold_exprs(node: Logical, notes: &mut Vec<String>) -> Logical {
    let fold_one = |expr: Expr, context: &str, notes: &mut Vec<String>| -> Expr {
        let expr = normalize_year(expr, notes);
        let (folded, changed) = expr.fold();
        if changed {
            notes.push(format!("constant folding in {context}: {expr} → {folded}"));
        }
        folded
    };
    match node {
        Logical::Scan { table } => Logical::Scan { table },
        Logical::Filter { input, predicate } => {
            let predicate = fold_one(predicate, "filter", notes);
            Logical::Filter { input: Box::new(fold_exprs(*input, notes)), predicate }
        }
        Logical::Map { input, name, expr } => {
            let context = format!("map {name}");
            let expr = fold_one(expr, &context, notes);
            Logical::Map { input: Box::new(fold_exprs(*input, notes)), name, expr }
        }
        Logical::Join { left, right, kind, left_key, right_key } => Logical::Join {
            left: Box::new(fold_exprs(*left, notes)),
            right: Box::new(fold_exprs(*right, notes)),
            kind,
            left_key,
            right_key,
        },
        Logical::GroupBy { input, keys, aggs } => {
            Logical::GroupBy { input: Box::new(fold_exprs(*input, notes)), keys, aggs }
        }
        Logical::Sort { input, key, descending } => {
            Logical::Sort { input: Box::new(fold_exprs(*input, notes)), key, descending }
        }
        Logical::Limit { input, count } => {
            Logical::Limit { input: Box::new(fold_exprs(*input, notes)), count }
        }
    }
}

/// One pushdown sweep: moves filters below joins (to the side that has all
/// their columns) and below maps that don't define their columns.
fn push_down(
    node: Logical,
    catalog: &Catalog,
    notes: &mut Vec<String>,
    changed: &mut bool,
) -> Logical {
    let recurse = |n: Logical, notes: &mut Vec<String>, changed: &mut bool| match n {
        Logical::Scan { table } => Logical::Scan { table },
        Logical::Filter { input, predicate } => Logical::Filter {
            input: Box::new(push_down(*input, catalog, notes, changed)),
            predicate,
        },
        Logical::Map { input, name, expr } => {
            Logical::Map { input: Box::new(push_down(*input, catalog, notes, changed)), name, expr }
        }
        Logical::Join { left, right, kind, left_key, right_key } => Logical::Join {
            left: Box::new(push_down(*left, catalog, notes, changed)),
            right: Box::new(push_down(*right, catalog, notes, changed)),
            kind,
            left_key,
            right_key,
        },
        Logical::GroupBy { input, keys, aggs } => Logical::GroupBy {
            input: Box::new(push_down(*input, catalog, notes, changed)),
            keys,
            aggs,
        },
        Logical::Sort { input, key, descending } => Logical::Sort {
            input: Box::new(push_down(*input, catalog, notes, changed)),
            key,
            descending,
        },
        Logical::Limit { input, count } => {
            Logical::Limit { input: Box::new(push_down(*input, catalog, notes, changed)), count }
        }
    };

    if let Logical::Filter { input, predicate } = node {
        let cols: HashSet<String> = predicate.columns().into_iter().collect();
        match *input {
            Logical::Join { left, right, kind, left_key, right_key } => {
                let left_avail = available_columns(&left, catalog);
                let right_avail = available_columns(&right, catalog);
                if cols.is_subset(&left_avail) {
                    *changed = true;
                    notes.push(format!(
                        "predicate pushdown: moved `{predicate}` below the {} onto the left side",
                        kind.name()
                    ));
                    let pushed = Logical::Filter { input: left, predicate };
                    return recurse(
                        Logical::Join { left: Box::new(pushed), right, kind, left_key, right_key },
                        notes,
                        changed,
                    );
                }
                if kind == super::JoinKind::Inner && cols.is_subset(&right_avail) {
                    *changed = true;
                    notes.push(format!(
                        "predicate pushdown: moved `{predicate}` below the join onto the right side"
                    ));
                    let pushed = Logical::Filter { input: right, predicate };
                    return recurse(
                        Logical::Join { left, right: Box::new(pushed), kind, left_key, right_key },
                        notes,
                        changed,
                    );
                }
                recurse(
                    Logical::Filter {
                        input: Box::new(Logical::Join { left, right, kind, left_key, right_key }),
                        predicate,
                    },
                    notes,
                    changed,
                )
            }
            Logical::Map { input: map_input, name, expr } if !cols.contains(&name) => {
                *changed = true;
                notes.push(format!("predicate pushdown: moved `{predicate}` below map {name}"));
                recurse(
                    Logical::Map {
                        input: Box::new(Logical::Filter { input: map_input, predicate }),
                        name,
                        expr,
                    },
                    notes,
                    changed,
                )
            }
            other => recurse(Logical::Filter { input: Box::new(other), predicate }, notes, changed),
        }
    } else {
        recurse(node, notes, changed)
    }
}

/// Reorders maximal filter chains directly above scans by estimated
/// selectivity (most selective applied first).
fn order_by_selectivity(node: Logical, stats: &Stats, notes: &mut Vec<String>) -> Logical {
    if let Logical::Filter { .. } = node {
        // Collect the whole chain Filter* over a base, taking ownership.
        let mut chain: Vec<Expr> = Vec::new();
        let mut cursor = node;
        while let Logical::Filter { input, predicate } = cursor {
            chain.push(predicate);
            cursor = *input;
        }
        // `chain` is outside-in; execution order (innermost first) is the
        // reverse.
        if let Logical::Scan { table } = &cursor {
            let table = table.clone();
            let catalog = stats.catalog();
            let ty_of = |name: &str| -> Option<ColTy> {
                let bat = catalog.column(&table, name)?;
                Some(if bat.as_f32().is_some() { ColTy::F32 } else { ColTy::I32 })
            };
            // A parameterized conjunct cannot be classified (its bounds
            // are unknown until bind time); it participates in the
            // ordering with a default selectivity so the *shape* still
            // gets a deterministic, cacheable order. Any other
            // unclassifiable conjunct keeps the whole chain in author
            // order, as before.
            let classified: Option<Vec<(Expr, Option<Pred>)>> = chain
                .iter()
                .map(|e| match classify(e, &ty_of) {
                    Ok(p) => Some((e.clone(), Some(p))),
                    Err(_) if e.has_params() => Some((e.clone(), None)),
                    Err(_) => None,
                })
                .collect();
            if let (Some(mut preds), true) = (classified, chain.len() >= 2) {
                preds.reverse();
                let describe = |e: &Expr, p: &Option<Pred>| match p {
                    Some(p) => p.describe(),
                    None => format!("param[{e}]"),
                };
                let before: Vec<String> = preds.iter().map(|(e, p)| describe(e, p)).collect();
                let mut scored: Vec<(Expr, Option<Pred>, f64)> = preds
                    .into_iter()
                    .map(|(e, p)| {
                        let sel = match &p {
                            Some(p) => selectivity(p, &table, stats),
                            None => PARAM_SELECTIVITY,
                        };
                        (e, p, sel)
                    })
                    .collect();
                scored.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
                let after: Vec<String> = scored
                    .iter()
                    .map(|(e, p, s)| format!("{} (≈{s:.3})", describe(e, p)))
                    .collect();
                let reordered =
                    before != scored.iter().map(|(e, p, _)| describe(e, p)).collect::<Vec<_>>();
                notes.push(format!(
                    "selectivity order on {table}: {}{}",
                    after.join(" → "),
                    if reordered { "" } else { " (kept author order)" }
                ));
                let mut rebuilt = Logical::Scan { table };
                for (expr, _, _) in scored {
                    rebuilt = Logical::Filter { input: Box::new(rebuilt), predicate: expr };
                }
                return rebuilt;
            }
        }
        // Not a reorderable chain: recurse below it, keep author order.
        let mut rebuilt = order_by_selectivity(cursor, stats, notes);
        for predicate in chain.into_iter().rev() {
            rebuilt = Logical::Filter { input: Box::new(rebuilt), predicate };
        }
        return rebuilt;
    }
    match node {
        Logical::Scan { .. } => node,
        Logical::Filter { .. } => unreachable!("handled above"),
        Logical::Map { input, name, expr } => {
            Logical::Map { input: Box::new(order_by_selectivity(*input, stats, notes)), name, expr }
        }
        Logical::Join { left, right, kind, left_key, right_key } => Logical::Join {
            left: Box::new(order_by_selectivity(*left, stats, notes)),
            right: Box::new(order_by_selectivity(*right, stats, notes)),
            kind,
            left_key,
            right_key,
        },
        Logical::GroupBy { input, keys, aggs } => Logical::GroupBy {
            input: Box::new(order_by_selectivity(*input, stats, notes)),
            keys,
            aggs,
        },
        Logical::Sort { input, key, descending } => Logical::Sort {
            input: Box::new(order_by_selectivity(*input, stats, notes)),
            key,
            descending,
        },
        Logical::Limit { input, count } => {
            Logical::Limit { input: Box::new(order_by_selectivity(*input, stats, notes)), count }
        }
    }
}

/// Projection pruning: removes computed columns nothing reads and records
/// which base columns each scan actually needs (the lowering binds only
/// those, so pruned columns are never uploaded).
fn prune(
    node: Logical,
    catalog: &Catalog,
    needed: &HashSet<String>,
    notes: &mut Vec<String>,
) -> Logical {
    match node {
        Logical::Scan { table } => {
            let total = catalog.table(&table).map(|t| t.column_count()).unwrap_or(0);
            let used: Vec<&String> = {
                let mut used: Vec<&String> =
                    needed.iter().filter(|c| catalog.column(&table, c).is_some()).collect();
                used.sort();
                used
            };
            notes.push(format!(
                "projection pruning: scan {table} binds {} of {total} columns ({})",
                used.len(),
                used.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            ));
            Logical::Scan { table }
        }
        Logical::Filter { input, predicate } => {
            let mut sub = needed.clone();
            sub.extend(predicate.columns());
            Logical::Filter { input: Box::new(prune(*input, catalog, &sub, notes)), predicate }
        }
        Logical::Map { input, name, expr } => {
            if !needed.contains(&name) {
                notes.push(format!("projection pruning: dropped unused map {name} := {expr}"));
                return prune(*input, catalog, needed, notes);
            }
            let mut sub: HashSet<String> = needed.iter().filter(|c| **c != name).cloned().collect();
            sub.extend(expr.columns());
            Logical::Map { input: Box::new(prune(*input, catalog, &sub, notes)), name, expr }
        }
        Logical::Join { left, right, kind, left_key, right_key } => {
            let left_avail = available_columns(&left, catalog);
            let right_avail = available_columns(&right, catalog);
            let mut left_needed: HashSet<String> =
                needed.intersection(&left_avail).cloned().collect();
            left_needed.insert(left_key.clone());
            let mut right_needed: HashSet<String> = match kind {
                super::JoinKind::Inner => needed.intersection(&right_avail).cloned().collect(),
                _ => HashSet::new(),
            };
            right_needed.insert(right_key.clone());
            Logical::Join {
                left: Box::new(prune(*left, catalog, &left_needed, notes)),
                right: Box::new(prune(*right, catalog, &right_needed, notes)),
                kind,
                left_key,
                right_key,
            }
        }
        Logical::GroupBy { input, keys, aggs } => {
            let kept: Vec<super::AggSpec> = aggs
                .iter()
                .filter(|agg| {
                    let keep = needed.contains(&agg.output);
                    if !keep {
                        notes.push(format!("projection pruning: dropped unused aggregate {agg}"));
                    }
                    keep
                })
                .cloned()
                .collect();
            let mut sub: HashSet<String> = keys.iter().cloned().collect();
            for agg in &kept {
                if let Some(input) = &agg.input {
                    sub.insert(input.clone());
                }
            }
            Logical::GroupBy {
                input: Box::new(prune(*input, catalog, &sub, notes)),
                keys,
                aggs: kept,
            }
        }
        Logical::Sort { input, key, descending } => {
            let mut sub = needed.clone();
            sub.insert(key.clone());
            Logical::Sort { input: Box::new(prune(*input, catalog, &sub, notes)), key, descending }
        }
        Logical::Limit { input, count } => {
            Logical::Limit { input: Box::new(prune(*input, catalog, needed, notes)), count }
        }
    }
}
