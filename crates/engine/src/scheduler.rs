//! The multi-query scheduler: admits several compiled plans and interleaves
//! their node execution.
//!
//! PR 2 made single-query pipelines sync-free, but a synchronous interpreter
//! could still only run one MAL program at a time — the device sat idle at
//! every host-resolve point (a group count, a sort schedule, a hash-build
//! restart check). The scheduler closes that gap: queries become [`QueryJob`]s
//! (a [`Session`] plus a compiled [`Plan`]), several of which are admitted
//! together, and the scheduler steps through their operator DAGs node by
//! node, switching between plans at node granularity. Because every node
//! only *enqueues* device work on its session's private queue (the deferred
//! `DevScalar`/`DevColumn` contract), a host-resolve node of one query
//! naturally interleaves with the enqueue work of another, and each
//! session's flush accounting stays exactly what it would be stand-alone —
//! the per-plan flush bounds of PR 2 hold unchanged under concurrency.
//!
//! # Admission and ordering contract
//!
//! * **FIFO admission.** Jobs are admitted in submission order. At most
//!   [`Scheduler::with_in_flight`] plans are in flight at once; a plan's
//!   completion admits the next waiting job.
//! * **Cost-based admission (optional).** With
//!   [`Scheduler::with_memory_budget`], a job is additionally held back
//!   while the in-flight plans' estimated device footprints
//!   ([`Plan::estimate_device_footprint`]) plus its own would exceed the
//!   budget — two memory-hungry plans are never co-scheduled onto a small
//!   device, so concurrency does not push the memory manager into its
//!   eviction/restart paths. Admission order stays strictly FIFO and a
//!   plan too large even for an idle device still runs alone.
//! * **Round-robin interleaving.** In-flight plans execute one node per
//!   scheduling round, in admission order. Scheduling is deterministic: the
//!   same jobs admitted in the same order execute their nodes in the same
//!   global sequence (the property behind the interleaved-equals-sequential
//!   regression suite).
//! * **Per-plan program order.** A plan's own nodes always execute in its
//!   compiled (topological) order; interleaving never reorders a single
//!   query's dataflow. Combined with per-session queues this means results
//!   are *identical* to running each plan alone — concurrency changes only
//!   which buffers the shared pool hands out (contents are equal either
//!   way; see `ocelot_core::buffer_pool`).
//! * **Results in submission order.** [`Scheduler::run`] returns one result
//!   slot per job, indexed like the input, regardless of completion order.
//! * **Errors are per-job.** A failing plan yields `Err` in its slot and
//!   frees its in-flight slot; other jobs are unaffected. A plan that
//!   exhausted its retry budget is **quarantined**: its typed
//!   [`PlanError::Faulted`] stays in its slot, the quarantine is counted,
//!   and the rest of the stream proceeds.
//! * **Device-loss failover.** Under [`Scheduler::run_with_fallback`],
//!   jobs that unwound with [`PlanError::DeviceLost`] (device loss is
//!   sticky, so every in-flight plan on the lost device unwinds as it next
//!   steps) are re-run on the fallback session **in submission order**
//!   after their device's cached state is invalidated
//!   ([`crate::backend::Backend::on_device_lost`]) — results land in their
//!   original slots, reference-equal to a fault-free run.
//! * **One session per concurrent Ocelot job.** The per-plan flush
//!   guarantees presuppose a private queue per admitted plan; see
//!   [`QueryJob`] for what happens when jobs share a session.
//!
//! # Serving contract ([`ServeScheduler`])
//!
//! The serving policy grows the FIFO scheduler into a multi-tenant
//! admission discipline. Jobs become [`ServeJob`]s — a [`QueryJob`] plus a
//! **tenant** id and a **priority lane** — and the contract is:
//!
//! * **Backpressure.** Each tenant has a bounded admission queue of
//!   [`ServeScheduler::with_queue_capacity`] entries. A submission
//!   arriving when the tenant's backlog is full is rejected *up front*
//!   with typed [`PlanError::Overloaded`] in its result slot — it never
//!   executes, and admitted jobs are unaffected. (The batch API presents
//!   the whole arrival stream at once — an open-loop arrival pattern — so
//!   the capacity bounds each tenant's accepted backlog per drive.)
//! * **Two priority lanes.** [`Lane::Interactive`] is strictly admitted
//!   before [`Lane::Batch`]: while any tenant has an interactive job
//!   queued, no batch job is admitted. Within a lane, tenants share via
//!   DRR (next point); within one tenant and lane, order is strictly FIFO.
//! * **Deficit-round-robin fairness.** Admission within a lane cycles
//!   over tenants in id order, each carrying a deficit counter topped up
//!   by [`ServeScheduler::with_quantum`] cost units per round and charged
//!   the node count of each admitted plan. A tenant submitting many
//!   queries (or heavier ones) cannot crowd out the others: over time
//!   every backlogged tenant is admitted work in proportion to the
//!   quantum, not to its arrival rate. A tenant's deficit resets when its
//!   backlog drains, so idle periods bank no credit.
//! * **What is preserved.** Execution below admission is exactly the
//!   FIFO scheduler's drive: one node per in-flight plan per round in
//!   admission order, per-plan program order untouched, results in
//!   original submission slots, per-job typed errors, and the cost-based
//!   memory admission of [`ServeScheduler::with_memory_budget`] applied
//!   unchanged. Within one tenant and lane, completion respects
//!   submission order ([`ServeStats::completion_order`] exposes it).
//! * **Plan-cache interplay.** Serving stacks compile jobs through
//!   `crate::serve::PlanCache` (shape-cached, parameter-bound plans whose
//!   cache key is the rendered parameter-abstract tree + outputs +
//!   rewrite config + parameter kinds + catalog generation); the
//!   scheduler itself is agnostic to how plans were compiled.

use crate::backend::Backend;
use crate::plan::{Plan, PlanError, PlanRun, QueryValue, RecoveryStats};
use crate::session::Session;
use ocelot_storage::Catalog;
use ocelot_trace::{MetricsRegistry, SchedAction, TraceEvent, TraceEventKind, TraceHandle};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// Emits one scheduler event with the timeline-row convention of the
/// Chrome trace export: `pid` is the tenant, `tid` the job index — so a
/// rendered timeline groups rows by tenant and threads by job.
fn emit_sched(
    trace: &TraceHandle,
    tenant: u64,
    job: u64,
    lane: &'static str,
    action: SchedAction,
    detail: u64,
) {
    trace.emit_with(|sink| TraceEvent {
        ts_ns: sink.now_ns(),
        dur_ns: 0,
        pid: tenant,
        tid: job,
        kind: TraceEventKind::Sched { tenant, job, lane, action, detail },
    });
}

/// One unit of admission: a plan to run in a session against a catalog.
///
/// Jobs may share a session, but for stateful backends (Ocelot) the
/// per-plan guarantees in the module docs — exact flush accounting, the
/// one-flush-per-plan Q6 bound — hold only when **each concurrently
/// admitted job has its own session**: two plans enqueueing on one queue
/// interleave their device work, and either plan's sync point flushes the
/// other's. Results stay correct either way (the queue is in-order); only
/// the per-session accounting blurs. Host-backend jobs (MS/MP) are
/// stateless and share sessions freely.
pub struct QueryJob<'a, B: Backend> {
    /// The session (backend + private queue + pooled memory) to run in.
    pub session: &'a Session<B>,
    /// The compiled plan.
    pub plan: &'a Plan,
    /// The catalog `bind` nodes resolve against.
    pub catalog: &'a Catalog,
}

/// Snapshot of a session's device clocks, taken by the probe around every
/// scheduled node (see [`Scheduler::run_traced`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceClock {
    /// Wall-clock nanoseconds the session's device has spent *executing*
    /// kernels on the host (the simulation stand-in for device busy time).
    pub kernel_host_ns: u64,
    /// Modeled device nanoseconds (kernels + transfers; the figure reported
    /// for discrete devices).
    pub modeled_ns: u64,
}

/// Timing of one scheduled node, attributed to host vs device.
#[derive(Debug, Clone, Copy)]
pub struct StepTrace {
    /// Index of the job (submission order).
    pub job: usize,
    /// Node index within the job's plan.
    pub node: usize,
    /// Host nanoseconds: wall-clock of the step minus the kernel-execution
    /// time the simulation spent standing in for the device.
    pub host_ns: u64,
    /// Modeled device nanoseconds this step caused (0 unless it flushed).
    pub device_ns: u64,
}

/// What one scheduling drive produces: per-job results in submission
/// order, the global-order step trace, and the aggregated recovery
/// counters of every admitted run.
type DriveOutcome = (Vec<Result<Vec<QueryValue>, PlanError>>, Vec<StepTrace>, RecoveryStats);

/// The multi-query scheduler (see module docs for the contract).
#[derive(Debug, Clone)]
pub struct Scheduler {
    in_flight: usize,
    memory_budget: Option<usize>,
    trace: Arc<TraceHandle>,
}

impl Default for Scheduler {
    fn default() -> Scheduler {
        Scheduler::new()
    }
}

impl Scheduler {
    /// A scheduler admitting up to 4 plans at once.
    pub fn new() -> Scheduler {
        Scheduler { in_flight: 4, memory_budget: None, trace: Arc::new(TraceHandle::new()) }
    }

    /// The scheduler's trace attachment point: attach a
    /// [`ocelot_trace::TraceSink`] to receive one
    /// [`TraceEventKind::Sched`] event per admission, completion and
    /// quarantine (tenant 0, lane `"fifo"`).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Sets the admission cap (clamped to at least 1).
    pub fn with_in_flight(mut self, in_flight: usize) -> Scheduler {
        self.in_flight = in_flight.max(1);
        self
    }

    /// Enables **cost-based admission**: each job's device footprint is
    /// estimated from its plan's dataflow
    /// ([`Plan::estimate_device_footprint`]) and two plans whose combined
    /// estimates exceed `bytes` are never co-scheduled — the next job
    /// waits for an in-flight plan to finish instead of pushing the device
    /// into the eviction/restart paths. Admission stays strictly FIFO (an
    /// oversized head never lets later jobs jump the queue, keeping the
    /// deterministic-interleaving contract), and a job too large even for
    /// an idle device is still admitted alone — it then relies on
    /// eviction + node restarts rather than deadlocking the queue.
    pub fn with_memory_budget(mut self, bytes: usize) -> Scheduler {
        self.memory_budget = Some(bytes);
        self
    }

    /// The admission memory budget, if cost-based admission is enabled.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// The admission cap.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Admits and executes every job; returns results in submission order.
    pub fn run<B: Backend>(
        &self,
        jobs: &[QueryJob<'_, B>],
    ) -> Vec<Result<Vec<QueryValue>, PlanError>> {
        self.drive(jobs, None::<fn(&B) -> DeviceClock>).0
    }

    /// Like [`Scheduler::run`], with the scheduler arms of the unified
    /// recovery protocol applied (module docs): after the normal admission
    /// run, every job that unwound with [`PlanError::DeviceLost`] has its
    /// session's device state invalidated and is **resubmitted on
    /// `fallback` in submission order** (re-lowered from its plan's
    /// logical source when it carries one), and every job whose typed
    /// [`PlanError::Faulted`] survived is counted as **quarantined** while
    /// its slot keeps the error. Returns the results plus the aggregated
    /// [`RecoveryStats`] of the whole stream (node retries and OOM
    /// restarts included).
    pub fn run_with_fallback<B: Backend>(
        &self,
        jobs: &[QueryJob<'_, B>],
        fallback: &Session<B>,
    ) -> (Vec<Result<Vec<QueryValue>, PlanError>>, RecoveryStats) {
        let (mut results, _, mut stats) = self.drive(jobs, None::<fn(&B) -> DeviceClock>);
        for (index, job) in jobs.iter().enumerate() {
            if !matches!(results[index], Err(PlanError::DeviceLost)) {
                continue;
            }
            // Invalidation is idempotent, so jobs sharing a lost device
            // may each purge it.
            job.session.backend().on_device_lost();
            let relowered = job.plan.source().and_then(|query| query.lower(job.catalog).ok());
            results[index] = fallback.run(relowered.as_ref().unwrap_or(job.plan), job.catalog);
            stats.failovers += 1;
        }
        for (index, result) in results.iter().enumerate() {
            if matches!(result, Err(PlanError::Faulted { .. })) {
                stats.quarantines += 1;
                emit_sched(&self.trace, 0, index as u64, "fifo", SchedAction::Quarantine, 0);
            }
        }
        (results, stats)
    }

    /// Like [`Scheduler::run`], additionally recording a [`StepTrace`] per
    /// executed node. `probe` samples the session's device clocks (for
    /// Ocelot: from `Queue::total_stats`); the scheduler attributes each
    /// step's wall time to host vs device from the probe deltas. The trace
    /// is in global execution order — exactly the interleaving the
    /// admission contract prescribes — which is what the concurrency
    /// benchmarks replay against a serial baseline.
    pub fn run_traced<B: Backend>(
        &self,
        jobs: &[QueryJob<'_, B>],
        probe: impl Fn(&B) -> DeviceClock,
    ) -> (Vec<Result<Vec<QueryValue>, PlanError>>, Vec<StepTrace>) {
        let (results, traces, _) = self.drive(jobs, Some(probe));
        (results, traces)
    }

    /// The scheduling loop. `probe` is `None` on the untraced path, which
    /// then skips clock sampling and trace recording entirely. Also
    /// aggregates every run's [`RecoveryStats`] for the failover path.
    fn drive<B: Backend>(
        &self,
        jobs: &[QueryJob<'_, B>],
        probe: Option<impl Fn(&B) -> DeviceClock>,
    ) -> DriveOutcome {
        #[cfg(debug_assertions)]
        for (index, job) in jobs.iter().enumerate() {
            let report = crate::analyze::verify(job.plan);
            debug_assert!(report.is_ok(), "ill-formed plan admitted (job {index}):\n{report}");
        }
        let mut results: Vec<Option<Result<Vec<QueryValue>, PlanError>>> =
            (0..jobs.len()).map(|_| None).collect();
        let mut traces = Vec::new();
        let mut stats = RecoveryStats::default();
        // Estimated device footprint per job (only computed under
        // cost-based admission; `0` keeps the plain-FIFO path free).
        let footprints: Vec<usize> = match self.memory_budget {
            Some(_) => {
                jobs.iter().map(|job| job.plan.estimate_device_footprint(job.catalog)).collect()
            }
            None => vec![0; jobs.len()],
        };
        // FIFO admission queue of job indices not yet admitted.
        let mut waiting = (0..jobs.len()).peekable();
        // In-flight runs, in admission order, with their footprints.
        let mut active: Vec<(usize, usize, PlanRun<'_, B>)> = Vec::new();
        loop {
            while active.len() < self.in_flight {
                let Some(&index) = waiting.peek() else { break };
                if let Some(budget) = self.memory_budget {
                    let in_use: usize = active.iter().map(|(_, bytes, _)| *bytes).sum();
                    // Refuse to co-schedule past the budget; an oversized
                    // plan still runs once the device is otherwise idle.
                    if !active.is_empty() && in_use + footprints[index] > budget {
                        break;
                    }
                }
                waiting.next();
                let job = &jobs[index];
                emit_sched(
                    &self.trace,
                    0,
                    index as u64,
                    "fifo",
                    SchedAction::Admit,
                    footprints[index] as u64,
                );
                active.push((
                    index,
                    footprints[index],
                    PlanRun::new(job.plan, job.session.backend(), job.catalog),
                ));
            }
            if active.is_empty() {
                break;
            }
            // One scheduling round: each in-flight plan executes one node.
            let mut slot = 0;
            while slot < active.len() {
                let (index, _, run) = &mut active[slot];
                let index = *index;
                let stepped = match &probe {
                    None => run.step(),
                    Some(probe) => {
                        let backend = jobs[index].session.backend();
                        let node = run.completed_nodes();
                        let before = probe(backend);
                        let started = Instant::now();
                        let stepped = run.step();
                        let wall_ns = started.elapsed().as_nanos() as u64;
                        let after = probe(backend);
                        let kernel_ns = after.kernel_host_ns.saturating_sub(before.kernel_host_ns);
                        traces.push(StepTrace {
                            job: index,
                            node,
                            host_ns: wall_ns.saturating_sub(kernel_ns),
                            device_ns: after.modeled_ns.saturating_sub(before.modeled_ns),
                        });
                        stepped
                    }
                };
                match stepped {
                    Err(error) => {
                        let (_, _, run) = active.remove(slot);
                        stats.absorb(&run.recovery_stats());
                        emit_sched(
                            &self.trace,
                            0,
                            index as u64,
                            "fifo",
                            SchedAction::Complete,
                            run.completed_nodes() as u64,
                        );
                        results[index] = Some(Err(error));
                        // The freed slot admits the next waiting job at the
                        // top of the loop.
                    }
                    Ok(_) if active[slot].2.is_done() => {
                        let (index, _, run) = active.remove(slot);
                        stats.absorb(&run.recovery_stats());
                        emit_sched(
                            &self.trace,
                            0,
                            index as u64,
                            "fifo",
                            SchedAction::Complete,
                            run.completed_nodes() as u64,
                        );
                        results[index] = Some(Ok(run.into_results()));
                    }
                    Ok(_) => {
                        slot += 1;
                    }
                }
            }
        }
        (results.into_iter().map(|r| r.expect("every job scheduled")).collect(), traces, stats)
    }
}

// ---------------------------------------------------------------------------
// Serving policy
// ---------------------------------------------------------------------------

/// The two priority lanes of the serving policy (module docs: interactive
/// admissions strictly precede batch admissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Latency-sensitive traffic; admitted before any batch job.
    Interactive,
    /// Throughput traffic; admitted only when no interactive job waits.
    Batch,
}

impl Lane {
    /// Stable lane name, as tagged on [`TraceEventKind::Sched`] events.
    pub fn name(&self) -> &'static str {
        match self {
            Lane::Interactive => "interactive",
            Lane::Batch => "batch",
        }
    }
}

/// One serving submission: a [`QueryJob`] on behalf of a tenant in a lane.
pub struct ServeJob<'a, B: Backend> {
    /// The plan to run, in its session, against its catalog.
    pub job: QueryJob<'a, B>,
    /// The submitting tenant (fairness and backpressure are per tenant).
    pub tenant: usize,
    /// The priority lane.
    pub lane: Lane,
}

/// Per-tenant serving counters (see [`ServeStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs the tenant submitted.
    pub submitted: usize,
    /// Jobs accepted into the tenant's admission queue.
    pub admitted: usize,
    /// Jobs rejected up front with [`PlanError::Overloaded`].
    pub rejected: usize,
    /// Admitted jobs that ran to completion (success or per-job error).
    pub completed: usize,
}

/// What one serving drive did, beyond the per-job results.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Counters per tenant id.
    pub tenants: BTreeMap<usize, TenantStats>,
    /// Job indices in the order their plans finished (the fairness
    /// observable: under DRR, backlogged tenants alternate here instead
    /// of one tenant completing its whole backlog first).
    pub completion_order: Vec<usize>,
    /// Aggregated recovery counters of every admitted run.
    pub recovery: RecoveryStats,
}

impl ServeStats {
    /// The counters of `tenant` (zeroes if it never submitted).
    pub fn tenant(&self, tenant: usize) -> TenantStats {
        self.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// Registers the per-tenant counters (as
    /// `{prefix}.tenant{id}.submitted` etc.) and the aggregated recovery
    /// counters under `prefix` in `registry`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry
            .set_counter(&format!("{prefix}.completed_total"), self.completion_order.len() as u64);
        for (id, tenant) in &self.tenants {
            registry
                .set_counter(&format!("{prefix}.tenant{id}.submitted"), tenant.submitted as u64);
            registry.set_counter(&format!("{prefix}.tenant{id}.admitted"), tenant.admitted as u64);
            registry.set_counter(&format!("{prefix}.tenant{id}.rejected"), tenant.rejected as u64);
            registry
                .set_counter(&format!("{prefix}.tenant{id}.completed"), tenant.completed as u64);
        }
        self.recovery.register_metrics(&format!("{prefix}.recovery"), registry);
    }
}

/// Per-job results (in submission order) plus the serving statistics.
pub struct ServeOutcome {
    /// One slot per submitted job, indexed like the input. Rejected jobs
    /// hold [`PlanError::Overloaded`].
    pub results: Vec<Result<Vec<QueryValue>, PlanError>>,
    /// Tenant counters, completion order and recovery totals.
    pub stats: ServeStats,
}

/// The serving scheduler: tenant-fair, two-lane, backpressured admission
/// over the FIFO scheduler's execution drive (module docs).
#[derive(Debug, Clone)]
pub struct ServeScheduler {
    in_flight: usize,
    memory_budget: Option<usize>,
    queue_capacity: usize,
    quantum: usize,
    trace: Arc<TraceHandle>,
}

impl Default for ServeScheduler {
    fn default() -> ServeScheduler {
        ServeScheduler::new()
    }
}

impl ServeScheduler {
    /// Up to 4 plans in flight, 16 queued jobs per tenant, a DRR quantum
    /// of 8 plan nodes, no memory budget.
    pub fn new() -> ServeScheduler {
        ServeScheduler {
            in_flight: 4,
            memory_budget: None,
            queue_capacity: 16,
            quantum: 8,
            trace: Arc::new(TraceHandle::new()),
        }
    }

    /// The serving scheduler's trace attachment point: attach a
    /// [`ocelot_trace::TraceSink`] to receive one
    /// [`TraceEventKind::Sched`] event per submission, rejection,
    /// admission and completion, with the tenant as the timeline process
    /// and the job index as the timeline thread — the rows the Chrome
    /// trace export renders.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Sets the in-flight cap (clamped to at least 1).
    pub fn with_in_flight(mut self, in_flight: usize) -> ServeScheduler {
        self.in_flight = in_flight.max(1);
        self
    }

    /// Enables cost-based memory admission, exactly as
    /// [`Scheduler::with_memory_budget`] defines it.
    pub fn with_memory_budget(mut self, bytes: usize) -> ServeScheduler {
        self.memory_budget = Some(bytes);
        self
    }

    /// Sets the per-tenant bounded-queue capacity (clamped to at least 1).
    /// Submissions beyond it are rejected with [`PlanError::Overloaded`].
    pub fn with_queue_capacity(mut self, capacity: usize) -> ServeScheduler {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the DRR quantum in plan-node cost units (clamped to ≥ 1).
    pub fn with_quantum(mut self, quantum: usize) -> ServeScheduler {
        self.quantum = quantum.max(1);
        self
    }

    /// The per-tenant queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// The DRR quantum.
    pub fn quantum(&self) -> usize {
        self.quantum
    }

    /// Admits and executes a serving stream (module docs for the full
    /// contract): bounded per-tenant queues reject overflow up front,
    /// interactive jobs admit before batch, tenants within a lane share
    /// by deficit round-robin, and execution interleaves one node per
    /// in-flight plan per round. Results land in submission slots.
    pub fn run<B: Backend>(&self, jobs: &[ServeJob<'_, B>]) -> ServeOutcome {
        let mut results: Vec<Option<Result<Vec<QueryValue>, PlanError>>> =
            (0..jobs.len()).map(|_| None).collect();
        let mut stats = ServeStats::default();

        // --- Backpressure: bounded per-tenant admission queues. ---------
        // Per (lane, tenant) FIFO backlog of job indices; the bound counts
        // both lanes of a tenant together.
        let mut backlog: BTreeMap<(Lane, usize), VecDeque<usize>> = BTreeMap::new();
        let mut queued: BTreeMap<usize, usize> = BTreeMap::new();
        for (index, job) in jobs.iter().enumerate() {
            let tenant = stats.tenants.entry(job.tenant).or_default();
            tenant.submitted += 1;
            let depth = queued.entry(job.tenant).or_insert(0);
            emit_sched(
                &self.trace,
                job.tenant as u64,
                index as u64,
                job.lane.name(),
                SchedAction::Submit,
                *depth as u64,
            );
            if *depth >= self.queue_capacity {
                tenant.rejected += 1;
                emit_sched(
                    &self.trace,
                    job.tenant as u64,
                    index as u64,
                    job.lane.name(),
                    SchedAction::Reject,
                    self.queue_capacity as u64,
                );
                results[index] = Some(Err(PlanError::Overloaded {
                    queued: *depth,
                    capacity: self.queue_capacity,
                }));
                continue;
            }
            *depth += 1;
            tenant.admitted += 1;
            backlog.entry((job.lane, job.tenant)).or_default().push_back(index);
        }

        // Estimated footprints, as in the FIFO drive (0 when unbudgeted).
        let footprints: Vec<usize> = match self.memory_budget {
            Some(_) => jobs
                .iter()
                .map(|job| job.job.plan.estimate_device_footprint(job.job.catalog))
                .collect(),
            None => vec![0; jobs.len()],
        };

        // --- DRR admission + round-robin execution. ---------------------
        let mut deficits: BTreeMap<usize, usize> = BTreeMap::new();
        // Rotating cursor per lane: the tenant id *after* the last one
        // admitted, so consecutive admissions visit tenants in turn.
        let mut cursors: BTreeMap<Lane, usize> = BTreeMap::new();
        let mut active: Vec<(usize, usize, PlanRun<'_, B>)> = Vec::new();
        loop {
            'admit: while active.len() < self.in_flight {
                // Strict lane priority: batch admits only when no
                // interactive job is backlogged anywhere.
                let lane = [Lane::Interactive, Lane::Batch]
                    .into_iter()
                    .find(|lane| backlog.keys().any(|(l, _)| l == lane));
                let Some(lane) = lane else { break };
                let tenants: Vec<usize> =
                    backlog.keys().filter(|(l, _)| *l == lane).map(|(_, t)| *t).collect();
                // DRR: starting at the lane cursor, admit the first tenant
                // whose deficit covers its head plan's node cost; when no
                // deficit suffices, top every backlogged tenant up by one
                // quantum and retry (terminates: deficits grow monotonically).
                loop {
                    let cursor = cursors.get(&lane).copied().unwrap_or(0);
                    let start = tenants.iter().position(|t| *t >= cursor).unwrap_or(0);
                    let mut admitted = false;
                    for offset in 0..tenants.len() {
                        let tenant = tenants[(start + offset) % tenants.len()];
                        let queue = backlog.get_mut(&(lane, tenant)).expect("backlogged");
                        let index = *queue.front().expect("non-empty queues only");
                        let cost = jobs[index].job.plan.len().max(1);
                        if deficits.get(&tenant).copied().unwrap_or(0) < cost {
                            continue;
                        }
                        if let Some(budget) = self.memory_budget {
                            let in_use: usize = active.iter().map(|(_, bytes, _)| *bytes).sum();
                            // Same rule as the FIFO drive: never
                            // co-schedule past the budget, but an
                            // oversized plan still runs alone.
                            if !active.is_empty() && in_use + footprints[index] > budget {
                                break 'admit;
                            }
                        }
                        queue.pop_front();
                        if queue.is_empty() {
                            backlog.remove(&(lane, tenant));
                            // Classic DRR: an emptied backlog banks no
                            // credit for later bursts.
                            if !backlog.contains_key(&(Lane::Interactive, tenant))
                                && !backlog.contains_key(&(Lane::Batch, tenant))
                            {
                                deficits.remove(&tenant);
                            }
                        }
                        if let Some(deficit) = deficits.get_mut(&tenant) {
                            *deficit -= cost;
                        }
                        cursors.insert(lane, tenant + 1);
                        emit_sched(
                            &self.trace,
                            tenant as u64,
                            index as u64,
                            lane.name(),
                            SchedAction::Admit,
                            cost as u64,
                        );
                        let job = &jobs[index].job;
                        active.push((
                            index,
                            footprints[index],
                            PlanRun::new(job.plan, job.session.backend(), job.catalog),
                        ));
                        admitted = true;
                        break;
                    }
                    if admitted {
                        break;
                    }
                    for tenant in &tenants {
                        *deficits.entry(*tenant).or_insert(0) += self.quantum;
                    }
                }
            }
            if active.is_empty() {
                break;
            }
            // One scheduling round: each in-flight plan executes one node,
            // in admission order — identical to the FIFO drive.
            let mut slot = 0;
            while slot < active.len() {
                let (index, _, run) = &mut active[slot];
                let index = *index;
                match run.step() {
                    Err(error) => {
                        let (_, _, run) = active.remove(slot);
                        stats.recovery.absorb(&run.recovery_stats());
                        self.complete(&mut stats, jobs, index);
                        results[index] = Some(Err(error));
                    }
                    Ok(_) if active[slot].2.is_done() => {
                        let (index, _, run) = active.remove(slot);
                        stats.recovery.absorb(&run.recovery_stats());
                        self.complete(&mut stats, jobs, index);
                        results[index] = Some(Ok(run.into_results()));
                    }
                    Ok(_) => slot += 1,
                }
            }
        }
        ServeOutcome {
            results: results.into_iter().map(|r| r.expect("every job resolved")).collect(),
            stats,
        }
    }

    fn complete<B: Backend>(&self, stats: &mut ServeStats, jobs: &[ServeJob<'_, B>], index: usize) {
        emit_sched(
            &self.trace,
            jobs[index].tenant as u64,
            index as u64,
            jobs[index].lane.name(),
            SchedAction::Complete,
            stats.completion_order.len() as u64,
        );
        stats.completion_order.push(index);
        if let Some(tenant) = stats.tenants.get_mut(&jobs[index].tenant) {
            tenant.completed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::MonetSeqBackend;
    use crate::mal::{compile, example_plan, rewrite_for_ocelot};
    use ocelot_core::SharedDevice;
    use ocelot_storage::{Bat, Catalog, Table};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", (0..5_000).map(|i| i % 100).collect()).into_ref())
            .with_column(
                "b",
                Bat::from_f32("b", (0..5_000).map(|i| i as f32 * 0.25).collect()).into_ref(),
            );
        catalog.add_table(table);
        catalog
    }

    fn scalar(value: &Result<Vec<QueryValue>, PlanError>) -> f32 {
        match value.as_ref().unwrap().as_slice() {
            [QueryValue::Scalar(s)] => *s,
            other => panic!("expected one scalar, got {other:?}"),
        }
    }

    #[test]
    fn interleaved_execution_equals_sequential() {
        let catalog = catalog();
        let plans: Vec<Plan> = (0..6)
            .map(|i| compile(&example_plan("t", "a", "b", i * 7, i * 7 + 20)).unwrap())
            .collect();
        let session = Session::new(MonetSeqBackend::new());
        let sequential: Vec<f32> =
            plans.iter().map(|plan| scalar(&session.run(plan, &catalog))).collect();
        for in_flight in [1, 2, 6] {
            let jobs: Vec<QueryJob<'_, _>> = plans
                .iter()
                .map(|plan| QueryJob { session: &session, plan, catalog: &catalog })
                .collect();
            let results = Scheduler::new().with_in_flight(in_flight).run(&jobs);
            let interleaved: Vec<f32> = results.iter().map(scalar).collect();
            assert_eq!(interleaved, sequential, "in_flight={in_flight}");
        }
    }

    #[test]
    fn failing_jobs_do_not_disturb_others() {
        let catalog = catalog();
        let good = compile(&example_plan("t", "a", "b", 10, 30)).unwrap();
        let bad = compile(&example_plan("missing", "a", "b", 10, 30)).unwrap();
        let session = Session::new(MonetSeqBackend::new());
        let jobs = [
            QueryJob { session: &session, plan: &good, catalog: &catalog },
            QueryJob { session: &session, plan: &bad, catalog: &catalog },
            QueryJob { session: &session, plan: &good, catalog: &catalog },
        ];
        let results = Scheduler::new().with_in_flight(3).run(&jobs);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(PlanError::UnknownColumn { .. })));
        assert!(results[2].is_ok());
        assert_eq!(scalar(&results[0]), scalar(&results[2]));
    }

    #[test]
    fn per_session_flush_bounds_hold_under_interleaving() {
        // Two Ocelot sessions on one shared device, two plans admitted
        // together: each session still flushes exactly once (at its sync
        // node), interleaving notwithstanding.
        let catalog = catalog();
        let shared = SharedDevice::cpu();
        let plan = compile(&rewrite_for_ocelot(&example_plan("t", "a", "b", 10, 60))).unwrap();
        let a = Session::ocelot(&shared);
        let b = Session::ocelot(&shared);
        let jobs = [
            QueryJob { session: &a, plan: &plan, catalog: &catalog },
            QueryJob { session: &b, plan: &plan, catalog: &catalog },
        ];
        let results = Scheduler::new().with_in_flight(2).run(&jobs);
        assert!((scalar(&results[0]) - scalar(&results[1])).abs() < 1e-3);
        for session in [&a, &b] {
            assert_eq!(
                session.backend().context().queue().flush_count(),
                1,
                "{}: one flush per plan under concurrency",
                session.name()
            );
        }
    }

    /// First trace-step index of each job: under round-robin, co-scheduled
    /// jobs start in the same rounds; serialised jobs start strictly after
    /// the previous one finished.
    fn first_step(traces: &[StepTrace], job: usize) -> usize {
        traces.iter().position(|t| t.job == job).unwrap()
    }

    #[test]
    fn memory_budget_refuses_to_coschedule_hungry_plans() {
        let catalog = catalog();
        let plan = compile(&example_plan("t", "a", "b", 0, 50)).unwrap();
        let session = Session::new(MonetSeqBackend::new());
        let footprint = plan.estimate_device_footprint(&catalog);
        assert!(footprint > 0, "t has 5 000-row columns: the estimate must see them");
        let jobs = [
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
        ];

        // Budget below 2x the footprint: the second job must wait for the
        // first to finish (its first step comes after every step of job 0).
        let tight = Scheduler::new().with_in_flight(2).with_memory_budget(footprint * 3 / 2);
        let (results, traces) = tight.run_traced(&jobs, |_| DeviceClock::default());
        assert!(results.iter().all(|r| r.is_ok()));
        let job0_last = traces.iter().rposition(|t| t.job == 0).unwrap();
        assert!(
            first_step(&traces, 1) > job0_last,
            "hungry plans must not be co-scheduled under a tight budget"
        );

        // Ample budget: both are admitted together (round-robin start).
        let ample = Scheduler::new().with_in_flight(2).with_memory_budget(footprint * 4);
        let (results, traces) = ample.run_traced(&jobs, |_| DeviceClock::default());
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(first_step(&traces, 1), 1, "ample budget co-schedules in round-robin");
    }

    #[test]
    fn oversized_plans_still_run_alone_and_fifo_is_preserved() {
        let catalog = catalog();
        let plan = compile(&example_plan("t", "a", "b", 0, 50)).unwrap();
        let session = Session::new(MonetSeqBackend::new());
        // Budget smaller than a single plan: every job still completes
        // (admitted alone, relying on eviction/restart at the device
        // level), in submission order.
        let scheduler = Scheduler::new().with_in_flight(3).with_memory_budget(1);
        let jobs = [
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
        ];
        let (results, traces) = scheduler.run_traced(&jobs, |_| DeviceClock::default());
        assert!(results.iter().all(|r| r.is_ok()));
        for job in 1..3 {
            let previous_last = traces.iter().rposition(|t| t.job == job - 1).unwrap();
            assert!(
                first_step(&traces, job) > previous_last,
                "job {job} must wait for job {} under a minimal budget",
                job - 1
            );
        }
        // Results are identical to an unbudgeted run.
        let plain = Scheduler::new().with_in_flight(3).run(&jobs);
        for (a, b) in results.iter().zip(&plain) {
            assert_eq!(scalar(a).to_bits(), scalar(b).to_bits());
        }
    }

    #[test]
    fn faulted_plans_are_quarantined_and_lost_devices_fail_over() {
        use ocelot_kernel::{FaultPlan, FaultSpec};
        let catalog = catalog();
        let plan = compile(&rewrite_for_ocelot(&example_plan("t", "a", "b", 10, 60))).unwrap();
        let reference = Session::ocelot(&SharedDevice::cpu()).run(&plan, &catalog).unwrap();

        // Three sessions: one on a device lost mid-plan, one on a device
        // whose every launch/transfer faults (exhausts the retry budget),
        // one healthy.
        let lost = SharedDevice::gpu();
        let flaky = SharedDevice::cpu();
        let s_lost = Session::ocelot(&lost);
        let s_flaky = Session::ocelot(&flaky);
        let s_healthy = Session::ocelot(&SharedDevice::cpu());
        lost.device()
            .install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 4 }]));
        flaky.device().install_fault_plan(FaultPlan::seeded(7, 1.0, 0.0));

        let fallback = Session::ocelot(&SharedDevice::cpu());
        let jobs = [
            QueryJob { session: &s_lost, plan: &plan, catalog: &catalog },
            QueryJob { session: &s_flaky, plan: &plan, catalog: &catalog },
            QueryJob { session: &s_healthy, plan: &plan, catalog: &catalog },
        ];
        let (results, stats) =
            Scheduler::new().with_in_flight(3).run_with_fallback(&jobs, &fallback);
        assert_eq!(
            results[0].as_ref().unwrap(),
            &reference,
            "lost-device job fails over with reference-equal results"
        );
        assert!(
            matches!(results[1], Err(PlanError::Faulted { .. })),
            "budget-exhausting job is quarantined with a typed error: {:?}",
            results[1]
        );
        assert_eq!(results[2].as_ref().unwrap(), &reference, "healthy job is undisturbed");
        assert_eq!(stats.failovers, 1);
        assert_eq!(stats.quarantines, 1);
        assert!(stats.retries >= 6, "the quarantined plan retried up to its budget first");
    }

    fn serve_jobs<'a>(
        session: &'a Session<MonetSeqBackend>,
        plans: &'a [Plan],
        catalog: &'a Catalog,
        spec: &[(usize, Lane)],
    ) -> Vec<ServeJob<'a, MonetSeqBackend>> {
        spec.iter()
            .enumerate()
            .map(|(i, (tenant, lane))| ServeJob {
                job: QueryJob { session, plan: &plans[i % plans.len()], catalog },
                tenant: *tenant,
                lane: *lane,
            })
            .collect()
    }

    #[test]
    fn overload_rejects_typed_and_admitted_jobs_complete_in_tenant_order() {
        let catalog = catalog();
        let plans: Vec<Plan> = (0..8)
            .map(|i| compile(&example_plan("t", "a", "b", i * 5, i * 5 + 20)).unwrap())
            .collect();
        let session = Session::new(MonetSeqBackend::new());
        // Tenant 0 floods (6 jobs at capacity 2); tenant 1 stays polite.
        let spec: Vec<(usize, Lane)> =
            (0..6).map(|_| (0, Lane::Batch)).chain([(1, Lane::Batch), (1, Lane::Batch)]).collect();
        let jobs = serve_jobs(&session, &plans, &catalog, &spec);
        let outcome = ServeScheduler::new().with_queue_capacity(2).with_in_flight(2).run(&jobs);

        assert_eq!(outcome.stats.tenant(0).rejected, 4, "capacity 2 admits 2 of 6");
        assert_eq!(outcome.stats.tenant(0).completed, 2);
        assert_eq!(outcome.stats.tenant(1).rejected, 0);
        assert_eq!(outcome.stats.tenant(1).completed, 2);
        for index in 2..6 {
            assert!(
                matches!(
                    outcome.results[index],
                    Err(PlanError::Overloaded { queued: 2, capacity: 2 })
                ),
                "overflow submission {index} is rejected typed: {:?}",
                outcome.results[index]
            );
        }
        // Every admitted job completed reference-equal to a stand-alone
        // run, and each tenant's completions follow its submission order.
        for (index, job) in jobs.iter().enumerate() {
            if outcome.results[index].is_ok() {
                assert_eq!(
                    scalar(&outcome.results[index]),
                    scalar(&session.run(job.job.plan, &catalog))
                );
            }
        }
        for tenant in [0, 1] {
            let completions: Vec<usize> = outcome
                .stats
                .completion_order
                .iter()
                .copied()
                .filter(|i| jobs[*i].tenant == tenant)
                .collect();
            let mut sorted = completions.clone();
            sorted.sort_unstable();
            assert_eq!(completions, sorted, "tenant {tenant} completes in submission order");
        }
    }

    #[test]
    fn drr_shares_admissions_between_a_greedy_and_a_polite_tenant() {
        let catalog = catalog();
        let plans = vec![compile(&example_plan("t", "a", "b", 10, 30)).unwrap()];
        let session = Session::new(MonetSeqBackend::new());
        // Greedy tenant 0 submits 6 jobs before tenant 1's 2 arrive.
        let spec: Vec<(usize, Lane)> =
            (0..6).map(|_| (0, Lane::Batch)).chain([(1, Lane::Batch), (1, Lane::Batch)]).collect();
        let jobs = serve_jobs(&session, &plans, &catalog, &spec);
        // in_flight 1 serialises execution, so completion order equals
        // admission order and exposes the DRR alternation directly.
        let outcome = ServeScheduler::new().with_in_flight(1).run(&jobs);
        assert!(outcome.results.iter().all(|r| r.is_ok()));
        let tenants: Vec<usize> =
            outcome.stats.completion_order.iter().map(|i| jobs[*i].tenant).collect();
        assert_eq!(
            &tenants[..4],
            &[0, 1, 0, 1],
            "DRR alternates tenants instead of draining the greedy backlog: {tenants:?}"
        );
        assert_eq!(tenants[4..], [0, 0, 0, 0], "the greedy tail runs once tenant 1 drained");
    }

    #[test]
    fn interactive_lane_admits_strictly_before_batch() {
        let catalog = catalog();
        let plans = vec![compile(&example_plan("t", "a", "b", 10, 30)).unwrap()];
        let session = Session::new(MonetSeqBackend::new());
        // Batch jobs submitted first; the interactive job arrives last but
        // must be admitted first.
        let spec = [(0, Lane::Batch), (0, Lane::Batch), (1, Lane::Batch), (1, Lane::Interactive)];
        let jobs = serve_jobs(&session, &plans, &catalog, &spec);
        let outcome = ServeScheduler::new().with_in_flight(1).run(&jobs);
        assert!(outcome.results.iter().all(|r| r.is_ok()));
        assert_eq!(
            outcome.stats.completion_order[0], 3,
            "the interactive job completes first: {:?}",
            outcome.stats.completion_order
        );
    }

    #[test]
    fn serve_runs_emit_sched_events_on_tenant_rows() {
        use ocelot_trace::TraceSink;
        let catalog = catalog();
        let plans = vec![compile(&example_plan("t", "a", "b", 10, 30)).unwrap()];
        let session = Session::new(MonetSeqBackend::new());
        // Tenant 0 submits 3 at capacity 2 (one rejection); tenant 1's
        // interactive job admits first.
        let spec = [(0, Lane::Batch), (1, Lane::Interactive), (0, Lane::Batch), (0, Lane::Batch)];
        let jobs = serve_jobs(&session, &plans, &catalog, &spec);
        let scheduler = ServeScheduler::new().with_queue_capacity(2).with_in_flight(2);
        let sink = Arc::new(TraceSink::new());
        scheduler.trace().attach(Arc::clone(&sink));
        let outcome = scheduler.run(&jobs);
        scheduler.trace().detach();

        assert_eq!(outcome.stats.tenant(0).rejected, 1);
        let count = |action: SchedAction| {
            sink.count(|e| matches!(e.kind, TraceEventKind::Sched { action: a, .. } if a == action))
        };
        assert_eq!(count(SchedAction::Submit), 4, "one submit event per arrival");
        assert_eq!(count(SchedAction::Reject), 1, "the overflow submission is rejected");
        assert_eq!(count(SchedAction::Admit), 3, "every accepted job admits exactly once");
        assert_eq!(count(SchedAction::Complete), 3, "every admitted job completes");
        // Timeline-row convention: pid is the tenant, tid the job index.
        for event in sink.events() {
            let TraceEventKind::Sched { tenant, job, .. } = event.kind else {
                panic!("host-backend serve runs emit only sched events");
            };
            assert_eq!(event.pid, tenant);
            assert_eq!(event.tid, job);
            assert_eq!(jobs[job as usize].tenant as u64, tenant);
        }
        let chrome = sink.to_chrome_trace();
        assert!(chrome.contains("\"cat\":\"sched\""), "{chrome}");
    }

    #[test]
    fn traces_cover_every_node_in_admission_round_robin() {
        let catalog = catalog();
        let plan = compile(&example_plan("t", "a", "b", 0, 50)).unwrap();
        let session = Session::new(MonetSeqBackend::new());
        let jobs = [
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
            QueryJob { session: &session, plan: &plan, catalog: &catalog },
        ];
        let (results, traces) =
            Scheduler::new().with_in_flight(2).run_traced(&jobs, |_| DeviceClock::default());
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(traces.len(), 2 * plan.len());
        // Round-robin: the first two steps are node 0 of jobs 0 and 1.
        assert_eq!((traces[0].job, traces[0].node), (0, 0));
        assert_eq!((traces[1].job, traces[1].node), (1, 0));
        // Per-plan program order within each job's trace.
        for job in 0..2 {
            let nodes: Vec<usize> =
                traces.iter().filter(|t| t.job == job).map(|t| t.node).collect();
            assert_eq!(nodes, (0..plan.len()).collect::<Vec<_>>());
        }
    }
}
