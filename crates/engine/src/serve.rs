//! # `engine::serve` — the parameterized compiled-plan cache
//!
//! Serving workloads send the same query *shapes* over and over with
//! different literals: the same dashboard tile per tenant, the same report
//! per day. Compiling a [`Query`] is not free — the rewrite pipeline
//! scans every referenced base column once for min/max statistics and the
//! lowering re-derives every physical decision — so paying it per request
//! throws away exactly the work that is identical across requests.
//!
//! A [`PlanCache`] amortises compilation **per shape**:
//!
//! * Queries are authored once with [`crate::query::param`] placeholders
//!   where per-request literals would go.
//! * On the first execution of a shape (a **miss**) the cache runs the
//!   full pipeline — rewrite rules over the *parameter-abstract* tree,
//!   then bind + lower — and stores the optimized logical tree together
//!   with a snapshot of every column statistic the compile computed.
//! * Every later execution (a **hit**) only substitutes the request's
//!   literals into the cached optimized tree, folds them and lowers — no
//!   rewrite rules, no base-column scans (the statistics snapshot answers
//!   every probe). A hit compiles the *same plan, node for node*, as the
//!   miss that seeded the entry did for the same parameter values.
//!
//! ## The cache key
//!
//! An entry is keyed by the hash of: the rendered parameter-abstract
//! logical tree, the declared output columns, the rewrite configuration,
//! the positional *kinds* of the bound parameters (an `i32` and an `f32`
//! in the same slot are different shapes — they classify into different
//! selection operators), and the **catalog generation**. The generation
//! ([`Catalog::generation`]) moves on every table/dictionary registration,
//! so a re-generated database can never reuse stale plans or stale
//! selectivity estimates of an older catalog, even one of identical shape.
//!
//! ## Device loss
//!
//! A cache created on a [`SharedDevice`] ([`PlanCache::on`]) lives in the
//! device's [`PlanSlot`] and is shared by every session of the device.
//! Device-loss recovery (`Backend::on_device_lost`) bumps the slot's
//! invalidation epoch alongside the column-cache purge; the next lookup
//! observes the stale epoch and drops every entry, so a lost device can
//! never serve a compiled plan from before the loss. Plans handed out by
//! the cache carry the *bound* query as their [`Plan::source`], so the
//! PR 6 failover protocol re-lowers them onto the fallback exactly like
//! plans compiled directly through [`Query::lower`].

use crate::backend::Backend;
use crate::plan::{Plan, QueryValue};
use crate::query::rewrite::{ColStats, Stats};
use crate::query::{lower, rewrite, ParamValue, Query, QueryBuildError, RewriteConfig};
use crate::session::Session;
use ocelot_core::{PlanSlot, SharedDevice};
use ocelot_storage::Catalog;
use ocelot_trace::{MetricsRegistry, TraceEventKind, TraceHandle};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters of a [`PlanCache`] (see [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from a cached shape (no rewrite, no column scans).
    pub hits: u64,
    /// Lookups that ran the full compile pipeline and seeded an entry.
    pub misses: u64,
    /// Times the whole cache was flushed by a device-loss epoch bump.
    pub invalidations: u64,
}

impl PlanCacheStats {
    /// Registers the counters under `prefix` in `registry`.
    pub fn register_metrics(&self, prefix: &str, registry: &mut MetricsRegistry) {
        registry.set_counter(&format!("{prefix}.hits"), self.hits);
        registry.set_counter(&format!("{prefix}.misses"), self.misses);
        registry.set_counter(&format!("{prefix}.invalidations"), self.invalidations);
    }
}

/// One compiled shape: everything a hit needs to produce a plan without
/// re-running the rewrite pipeline or touching base-table data.
struct CacheEntry {
    /// The rewritten logical tree, parameters still abstract.
    optimized: crate::query::Logical,
    /// Output columns, resolved at cold compile.
    outputs: Vec<String>,
    /// Rewrite-rule annotations of the cold compile (for explain).
    rewrite_notes: Vec<String>,
    /// Rule configuration the shape was compiled under.
    cfg: RewriteConfig,
    /// Snapshot of every column statistic the cold compile computed —
    /// preloading these is what makes a hit free of base-column scans.
    stats: HashMap<String, ColStats>,
}

struct CacheInner {
    entries: HashMap<u64, Arc<CacheEntry>>,
    /// The [`PlanSlot`] epoch the entries were compiled under.
    seen_epoch: u64,
    stats: PlanCacheStats,
    /// Key and hit/miss of the most recent lookup (for explain).
    last: Option<(u64, bool)>,
}

/// A device-wide cache of compiled query shapes (module docs).
pub struct PlanCache {
    slot: Arc<PlanSlot>,
    inner: Mutex<CacheInner>,
    trace: TraceHandle,
}

impl PlanCache {
    /// A stand-alone cache with a private invalidation slot (host
    /// backends, tests). Sessions of a shared device should use
    /// [`PlanCache::on`] instead so device loss invalidates the cache.
    pub fn new() -> PlanCache {
        Self::with_slot(Arc::new(PlanSlot::new()))
    }

    fn with_slot(slot: Arc<PlanSlot>) -> PlanCache {
        let seen_epoch = slot.epoch();
        PlanCache {
            slot,
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                seen_epoch,
                stats: PlanCacheStats::default(),
                last: None,
            }),
            trace: TraceHandle::new(),
        }
    }

    /// The cache's trace attachment point: attach a
    /// [`ocelot_trace::TraceSink`] to receive a
    /// [`TraceEventKind::PlanCache`] event per lookup.
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The device-wide cache of `shared`, installing one in the device's
    /// [`PlanSlot`] on first use. Every call for the same device returns
    /// the same cache, and `Backend::on_device_lost` invalidates it.
    pub fn on(shared: &SharedDevice) -> Arc<PlanCache> {
        let slot = Arc::clone(shared.plan_slot());
        let erased = slot.get_or_install(|| {
            Arc::new(PlanCache::with_slot(Arc::clone(shared.plan_slot()))) as Arc<_>
        });
        erased.downcast::<PlanCache>().expect("the plan slot holds exactly one cache type")
    }

    /// Current hit/miss/invalidation counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.inner.lock().stats
    }

    /// Number of compiled shapes currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// Whether no shape is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compiles `query` bound with `params` under the default rule
    /// configuration, from cache when the shape is known (module docs).
    pub fn plan(
        &self,
        query: &Query,
        params: &[ParamValue],
        catalog: &Catalog,
    ) -> Result<Plan, QueryBuildError> {
        self.plan_with(query, params, catalog, &RewriteConfig::optimized())
    }

    /// [`PlanCache::plan`] under an explicit rule configuration.
    pub fn plan_with(
        &self,
        query: &Query,
        params: &[ParamValue],
        catalog: &Catalog,
        cfg: &RewriteConfig,
    ) -> Result<Plan, QueryBuildError> {
        // Bind first: validates arity (typed `UnboundParam`) and gives the
        // plan its failover source. Cheap — a tree clone plus folding.
        let bound = query.bind(params)?;
        let outputs = query.output_columns()?;
        let key = self.key(query, params, &outputs, catalog, cfg);

        let cached = {
            let mut inner = self.inner.lock();
            self.observe_epoch(&mut inner);
            let cached = inner.entries.get(&key).cloned();
            inner.stats.hits += cached.is_some() as u64;
            inner.stats.misses += cached.is_none() as u64;
            inner.last = Some((key, cached.is_some()));
            cached
        };
        self.trace.emit(|| TraceEventKind::PlanCache { hit: cached.is_some() });

        let lowered = match &cached {
            Some(entry) => {
                // Hit: literals into the cached optimized tree, fold,
                // lower against the snapshotted statistics. No rewrite
                // rules run and no base column is scanned.
                let bound_opt = entry
                    .optimized
                    .substitute_params(&|id| params.get(id as usize).map(param_expr));
                let stats = Stats::preloaded(catalog, entry.stats.clone());
                lower::lower(&bound_opt, &entry.outputs, &stats, &entry.cfg)?
            }
            None => {
                // Miss: full pipeline. The rewrite rules run over the
                // *parameter-abstract* tree so the optimized shape is
                // reusable for any later binding, then this request's
                // literals are substituted and lowered. The statistics
                // memo is snapshotted only after lowering, so it holds
                // every probe a future hit's lowering will make.
                let stats = Stats::new(catalog);
                let (optimized, rewrite_notes) =
                    rewrite::apply(query.root().clone(), &stats, cfg, &outputs);
                let bound_opt =
                    optimized.substitute_params(&|id| params.get(id as usize).map(param_expr));
                let lowered = lower::lower(&bound_opt, &outputs, &stats, cfg)?;
                let entry = Arc::new(CacheEntry {
                    optimized,
                    outputs,
                    rewrite_notes,
                    cfg: cfg.clone(),
                    stats: stats.snapshot(),
                });
                let mut inner = self.inner.lock();
                // A device loss between the lookup and here would strand
                // this entry; re-checking the epoch keeps the insert safe.
                self.observe_epoch(&mut inner);
                inner.entries.insert(key, entry);
                lowered
            }
        };
        Ok(lowered.plan.with_source(Arc::new(bound)))
    }

    /// Compiles (from cache when possible) and executes in `session`,
    /// applying any root `Limit` at the host boundary — the serving-layer
    /// counterpart of [`Query::run`].
    pub fn execute<B: Backend>(
        &self,
        session: &Session<B>,
        query: &Query,
        params: &[ParamValue],
        catalog: &Catalog,
    ) -> Result<Vec<QueryValue>, QueryBuildError> {
        let plan = self.plan(query, params, catalog)?;
        let mut values = session.run(&plan, catalog)?;
        if let Some(limit) = query.limit_count() {
            for value in &mut values {
                match value {
                    QueryValue::Scalar(_) => {}
                    QueryValue::IntColumn(v) => v.truncate(limit),
                    QueryValue::FloatColumn(v) => v.truncate(limit),
                    QueryValue::OidColumn(v) => v.truncate(limit),
                }
            }
        }
        Ok(values)
    }

    /// [`Query::explain`] extended with the serving view: the cached
    /// shape's rewrite annotations and whether this cache served the
    /// query's last compile as a hit or a miss.
    pub fn explain(
        &self,
        query: &Query,
        params: &[ParamValue],
        catalog: &Catalog,
    ) -> Result<String, QueryBuildError> {
        let mut out = query.explain(catalog)?;
        let cfg = RewriteConfig::optimized();
        let outputs = query.output_columns()?;
        let key = self.key(query, params, &outputs, catalog, &cfg);
        let inner = self.inner.lock();
        out.push_str("=== plan cache ===\n");
        match inner.last {
            Some((k, hit)) if k == key => {
                out.push_str(&format!("last run: {}\n", if hit { "HIT" } else { "MISS" }));
            }
            _ => out.push_str("last run: (shape not compiled through this cache yet)\n"),
        }
        if let Some(entry) = inner.entries.get(&key) {
            out.push_str(&format!(
                "cached shape: {} rewrite rule applications, {} column statistics\n",
                entry.rewrite_notes.len(),
                entry.stats.len()
            ));
        }
        let stats = inner.stats;
        out.push_str(&format!(
            "totals: {} hits, {} misses, {} invalidations\n",
            stats.hits, stats.misses, stats.invalidations
        ));
        Ok(out)
    }

    /// Flushes the entries when the device-loss epoch moved since they
    /// were compiled (module docs). Caller holds the lock.
    fn observe_epoch(&self, inner: &mut CacheInner) {
        let current = self.slot.epoch();
        if current != inner.seen_epoch {
            inner.entries.clear();
            inner.seen_epoch = current;
            inner.stats.invalidations += 1;
        }
    }

    /// The cache key of a shape (module docs: tree + outputs + rule
    /// configuration + positional parameter kinds + catalog generation).
    fn key(
        &self,
        query: &Query,
        params: &[ParamValue],
        outputs: &[String],
        catalog: &Catalog,
        cfg: &RewriteConfig,
    ) -> u64 {
        let mut hash = Fnv::new();
        hash.write(query.root().render().as_bytes());
        for output in outputs {
            hash.write(output.as_bytes());
            hash.write(b";");
        }
        hash.write(&[
            cfg.fold as u8,
            cfg.pushdown as u8,
            cfg.selectivity_order as u8,
            cfg.prune as u8,
        ]);
        for id in query.params() {
            let kind = match params.get(id as usize) {
                Some(ParamValue::I32(_)) => b'i',
                Some(ParamValue::F32(_)) => b'f',
                None => b'?',
            };
            hash.write(&[kind]);
        }
        hash.write(&catalog.generation().to_le_bytes());
        hash.finish()
    }
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::new()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PlanCache")
            .field("shapes", &inner.entries.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

fn param_expr(value: &ParamValue) -> crate::query::Expr {
    match value {
        ParamValue::I32(v) => crate::query::Expr::LitI32(*v),
        ParamValue::F32(v) => crate::query::Expr::LitF32(*v),
    }
}

/// FNV-1a, 64-bit — deterministic across runs and platforms (std's
/// `DefaultHasher` is randomly seeded, which would defeat cross-session
/// reasoning about keys in tests).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for byte in bytes {
            self.0 ^= *byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{col, param, Query};
    use ocelot_storage::{Bat, Table};

    fn catalog() -> Catalog {
        let n = 2_000;
        let mut catalog = Catalog::new();
        let fact = Table::new("fact")
            .with_column("k", Bat::from_i32("k", (0..n).map(|i| i % 50).collect()).into_ref())
            .with_column(
                "v",
                Bat::from_f32("v", (0..n).map(|i| (i % 97) as f32 * 0.25).collect()).into_ref(),
            )
            .with_column("d", Bat::from_i32("d", (0..n).map(|i| i % 1_000).collect()).into_ref());
        catalog.add_table(fact);
        catalog
    }

    fn shape() -> Query {
        Query::scan("fact")
            .filter(col("d").between(param(0), param(1)))
            .group_by(&["k"], &[crate::query::AggSpec::sum("v", "total")])
            .sort_by("k", false)
    }

    #[test]
    fn hits_produce_node_for_node_identical_plans() {
        let catalog = catalog();
        let cache = PlanCache::new();
        let q = shape();
        let params = [ParamValue::I32(100), ParamValue::I32(300)];
        let cold = cache.plan(&q, &params, &catalog).unwrap();
        let warm = cache.plan(&q, &params, &catalog).unwrap();
        assert_eq!(cold.nodes(), warm.nodes(), "hit must equal the cold compile node for node");
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1, invalidations: 0 });
        assert_eq!(cache.len(), 1);

        // Different literals, same shape: still a hit.
        let other = cache.plan(&q, &[ParamValue::I32(0), ParamValue::I32(50)], &catalog).unwrap();
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(other.len(), cold.len());
    }

    #[test]
    fn bound_plans_execute_like_literal_queries() {
        let catalog = catalog();
        let cache = PlanCache::new();
        let session = Session::monet_seq();
        let q = shape();
        let params = [ParamValue::I32(100), ParamValue::I32(300)];
        let served = cache.execute(&session, &q, &params, &catalog).unwrap();
        let literal = Query::scan("fact")
            .filter(col("d").between(100, 300))
            .group_by(&["k"], &[crate::query::AggSpec::sum("v", "total")])
            .sort_by("k", false)
            .run(&session, &catalog)
            .unwrap();
        assert_eq!(served, literal);
    }

    #[test]
    fn parameter_kinds_and_catalog_generation_are_part_of_the_key() {
        let db = catalog();
        let cache = PlanCache::new();
        let q = Query::scan("fact").filter(col("v").le(param(0))).select(&["v"]);
        cache.plan(&q, &[ParamValue::F32(5.0)], &db).unwrap();
        // An i32 in the same slot is a different shape (different
        // selection classification), not a hit on the float entry.
        cache.plan(&q, &[ParamValue::I32(5)], &db).unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);

        // A re-generated catalog of identical shape cannot reuse entries
        // (its statistics may differ).
        let regenerated = catalog();
        cache.plan(&q, &[ParamValue::F32(5.0)], &regenerated).unwrap();
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn unbound_and_underbound_queries_error_typed() {
        let catalog = catalog();
        let cache = PlanCache::new();
        let q = shape();
        let err = cache.plan(&q, &[ParamValue::I32(1)], &catalog).unwrap_err();
        assert_eq!(err, QueryBuildError::UnboundParam { id: 1 });
        let err = q.lower(&catalog).unwrap_err();
        assert_eq!(err, QueryBuildError::UnboundParam { id: 0 });
    }

    #[test]
    fn epoch_bumps_flush_the_cache() {
        let catalog = catalog();
        let cache = PlanCache::new();
        let q = shape();
        let params = [ParamValue::I32(100), ParamValue::I32(300)];
        cache.plan(&q, &params, &catalog).unwrap();
        cache.slot.invalidate();
        cache.plan(&q, &params, &catalog).unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.invalidations),
            (0, 2, 1),
            "the post-invalidation lookup recompiles"
        );
    }

    #[test]
    fn explain_reports_params_and_hit_state() {
        let catalog = catalog();
        let cache = PlanCache::new();
        let q = shape();
        let params = [ParamValue::I32(100), ParamValue::I32(300)];
        let text = cache.explain(&q, &params, &catalog).unwrap();
        assert!(text.contains("params: [$0, $1]"), "{text}");
        assert!(text.contains("not compiled through this cache"), "{text}");
        cache.plan(&q, &params, &catalog).unwrap();
        let text = cache.explain(&q, &params, &catalog).unwrap();
        assert!(text.contains("last run: MISS"), "{text}");
        cache.plan(&q, &params, &catalog).unwrap();
        let text = cache.explain(&q, &params, &catalog).unwrap();
        assert!(text.contains("last run: HIT"), "{text}");
        assert!(text.contains("cached shape:"), "{text}");
    }
}
