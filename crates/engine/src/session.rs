//! Query sessions: the unit of admission for the multi-query scheduler.
//!
//! A [`Session`] is one client's execution context on one backend
//! configuration. For the Ocelot configurations it is constructed from a
//! [`SharedDevice`], so the session owns a **private command queue** (its
//! flushes never execute another session's work, keeping per-query sync
//! accounting exact) and a **private Memory Manager** whose result buffers
//! recycle through the device's **shared pool** — a finished query donates
//! its intermediates to whichever session allocates next. For the
//! MonetDB-style host backends a session is a thin wrapper; the same
//! session/plan API runs every configuration.
//!
//! Plans are executed with [`Session::run`] (one-shot) or admitted together
//! with other sessions' plans to a [`crate::scheduler::Scheduler`], which
//! interleaves their node execution.

use crate::backend::Backend;
use crate::backends::{MonetParBackend, MonetSeqBackend, OcelotBackend};
use crate::mal::MalPlan;
use crate::plan::{execute_plan, Plan, PlanError, QueryValue};
use ocelot_core::SharedDevice;
use ocelot_storage::Catalog;

/// One client's execution context on one backend configuration.
pub struct Session<B: Backend> {
    backend: B,
}

impl<B: Backend> Session<B> {
    /// Wraps an existing backend as a session.
    pub fn new(backend: B) -> Session<B> {
        Session { backend }
    }

    /// The session's backend (TPC-H query code executes against this).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The configuration name (`MS`, `MP`, `Ocelot CPU`, …).
    pub fn name(&self) -> &str {
        self.backend.name()
    }

    /// Executes an already-compiled plan to completion.
    pub fn run(&self, plan: &Plan, catalog: &Catalog) -> Result<Vec<QueryValue>, PlanError> {
        execute_plan(plan, &self.backend, catalog)
    }

    /// Compiles a MAL program and executes it to completion.
    pub fn run_mal(&self, mal: &MalPlan, catalog: &Catalog) -> Result<Vec<QueryValue>, PlanError> {
        let plan = crate::mal::compile(mal)?;
        self.run(&plan, catalog)
    }
}

impl Session<OcelotBackend> {
    /// An Ocelot session on a shared device: own queue and Memory Manager,
    /// shared buffer pool and shared column cache (see module docs).
    pub fn ocelot(shared: &SharedDevice) -> Session<OcelotBackend> {
        Session::new(OcelotBackend::on_shared(shared))
    }

    /// The device-wide column cache this session binds base columns
    /// through, when it was created from a [`SharedDevice`] (stand-alone
    /// contexts bind through their private Memory Manager instead). The
    /// handle exposes the cache's hit/miss/eviction counters and budget.
    pub fn column_cache(&self) -> Option<&std::sync::Arc<ocelot_core::ColumnCache>> {
        self.backend.context().column_cache()
    }
}

impl Session<MonetSeqBackend> {
    /// A sequential-MonetDB (MS) session.
    pub fn monet_seq() -> Session<MonetSeqBackend> {
        Session::new(MonetSeqBackend::new())
    }
}

impl Session<MonetParBackend> {
    /// A parallel-MonetDB (MP) session.
    pub fn monet_par() -> Session<MonetParBackend> {
        Session::new(MonetParBackend::new())
    }
}

impl<B: Backend> std::fmt::Debug for Session<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("backend", &self.backend.name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mal::{example_plan, rewrite_for_ocelot};
    use ocelot_storage::{Bat, Table};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", (0..1_000).map(|i| i % 50).collect()).into_ref())
            .with_column(
                "b",
                Bat::from_f32("b", (0..1_000).map(|i| i as f32 * 0.1).collect()).into_ref(),
            );
        catalog.add_table(table);
        catalog
    }

    #[test]
    fn sessions_run_the_same_plan_on_every_configuration() {
        let catalog = catalog();
        let mal = example_plan("t", "a", "b", 10, 20);
        let reference = Session::monet_seq().run_mal(&mal, &catalog).unwrap();

        let shared = SharedDevice::cpu();
        let rewritten = rewrite_for_ocelot(&mal);
        for session in [Session::ocelot(&shared), Session::ocelot(&SharedDevice::gpu())] {
            let result = session.run_mal(&rewritten, &catalog).unwrap();
            match (&reference[0], &result[0]) {
                (QueryValue::Scalar(a), QueryValue::Scalar(b)) => {
                    assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "{a} vs {b}");
                }
                other => panic!("unexpected result shapes: {other:?}"),
            }
        }
        assert!(Session::monet_par().name().contains("MP"));
    }

    #[test]
    fn ocelot_sessions_on_one_device_share_the_pool() {
        let catalog = catalog();
        let shared = SharedDevice::cpu();
        let mal = rewrite_for_ocelot(&example_plan("t", "a", "b", 5, 45));
        let a = Session::ocelot(&shared);
        let b = Session::ocelot(&shared);
        // Each session flushes its own queue exactly once (the sync node).
        for session in [&a, &b] {
            let before = session.backend().context().queue().flush_count();
            session.run_mal(&mal, &catalog).unwrap();
            assert_eq!(session.backend().context().queue().flush_count(), before + 1);
        }
        // Queues are independent; the pool is not.
        assert!(std::sync::Arc::ptr_eq(
            a.backend().context().memory().pool(),
            b.backend().context().memory().pool(),
        ));
    }
}
