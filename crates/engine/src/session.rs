//! Query sessions: the unit of admission for the multi-query scheduler.
//!
//! A [`Session`] is one client's execution context on one backend
//! configuration. For the Ocelot configurations it is constructed from a
//! [`SharedDevice`], so the session owns a **private command queue** (its
//! flushes never execute another session's work, keeping per-query sync
//! accounting exact) and a **private Memory Manager** whose result buffers
//! recycle through the device's **shared pool** — a finished query donates
//! its intermediates to whichever session allocates next. For the
//! MonetDB-style host backends a session is a thin wrapper; the same
//! session/plan API runs every configuration.
//!
//! Plans are executed with [`Session::run`] (one-shot) or admitted together
//! with other sessions' plans to a [`crate::scheduler::Scheduler`], which
//! interleaves their node execution.
//!
//! # Failover
//!
//! A session may carry a **fallback session** ([`Session::with_fallback`]).
//! When a plan run unwinds with [`PlanError::DeviceLost`] (the sticky,
//! non-retryable fault class of the unified recovery protocol —
//! `crate::plan` module docs), the session invalidates the lost device's
//! cached state ([`crate::backend::Backend::on_device_lost`]), re-lowers
//! the plan's logical source query onto the fallback (plans compiled
//! through the query layer carry it; hand-built plans are re-run as-is —
//! physical plans are backend-agnostic) and re-runs there, returning
//! results reference-equal to a fault-free run. Every recovery action is
//! counted in [`Session::recovery_stats`] and traced in
//! [`Session::recovery_trace`]. Fallbacks chain: the fallback session may
//! itself have a fallback.

use crate::backend::Backend;
use crate::backends::{MonetParBackend, MonetSeqBackend, OcelotBackend};
use crate::mal::MalPlan;
use crate::plan::{
    Plan, PlanError, PlanProfile, PlanRun, QueryValue, RecoveryEvent, RecoveryStats,
};
use ocelot_core::SharedDevice;
use ocelot_storage::Catalog;
use ocelot_trace::{MetricsRegistry, TraceSink};
use parking_lot::Mutex;
use std::sync::Arc;

/// One client's execution context on one backend configuration.
pub struct Session<B: Backend> {
    backend: B,
    /// Where queries go when this session's device is lost (module docs).
    fallback: Option<Box<Session<B>>>,
    /// Recovery counters and ordered trace, aggregated over every run of
    /// this session (interior mutability: `run` takes `&self`).
    recovery: Mutex<(RecoveryStats, Vec<RecoveryEvent>)>,
}

impl<B: Backend> Session<B> {
    /// Wraps an existing backend as a session.
    pub fn new(backend: B) -> Session<B> {
        Session { backend, fallback: None, recovery: Mutex::new(Default::default()) }
    }

    /// Arms device-loss failover: plans failing on this session with
    /// [`PlanError::DeviceLost`] are re-run on `fallback` (see module
    /// docs).
    pub fn with_fallback(mut self, fallback: Session<B>) -> Session<B> {
        self.fallback = Some(Box::new(fallback));
        self
    }

    /// The armed fallback session, if any.
    pub fn fallback(&self) -> Option<&Session<B>> {
        self.fallback.as_deref()
    }

    /// The session's backend (TPC-H query code executes against this).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The configuration name (`MS`, `MP`, `Ocelot CPU`, …).
    pub fn name(&self) -> &str {
        self.backend.name()
    }

    /// Recovery counters aggregated over every run of this session,
    /// including work its fallback chain performed on its behalf.
    pub fn recovery_stats(&self) -> RecoveryStats {
        let mut stats = self.recovery.lock().0;
        if let Some(fallback) = &self.fallback {
            stats.absorb(&fallback.recovery_stats());
        }
        stats
    }

    /// The ordered recovery decisions this session's runs took (own runs
    /// only; the fallback keeps its own trace).
    pub fn recovery_trace(&self) -> Vec<RecoveryEvent> {
        self.recovery.lock().1.clone()
    }

    /// Executes an already-compiled plan to completion, applying the
    /// device-loss failover protocol when a fallback is armed (module
    /// docs).
    pub fn run(&self, plan: &Plan, catalog: &Catalog) -> Result<Vec<QueryValue>, PlanError> {
        #[cfg(debug_assertions)]
        {
            let report = self.verify_plan(plan);
            debug_assert!(report.is_ok(), "ill-formed plan admitted:\n{report}");
        }
        match self.run_local(plan, catalog) {
            Err(PlanError::DeviceLost) => self.fail_over(plan, catalog),
            outcome => outcome,
        }
    }

    /// Statically verifies a plan against the full check list of
    /// [`crate::analyze`] (definition discipline, operator signatures,
    /// register liveness) and computes its conservative flush bound.
    /// Available in every build; [`Session::run`] re-checks admission
    /// automatically in debug builds.
    pub fn verify_plan(&self, plan: &Plan) -> crate::analyze::VerifyReport {
        crate::analyze::verify(plan)
    }

    /// One plan run on this session's own backend, recovery bookkeeping
    /// included.
    fn run_local(&self, plan: &Plan, catalog: &Catalog) -> Result<Vec<QueryValue>, PlanError> {
        let mut run = PlanRun::new(plan, &self.backend, catalog);
        let outcome = run.run_to_completion();
        let mut recovery = self.recovery.lock();
        recovery.0.absorb(&run.recovery_stats());
        recovery.1.extend_from_slice(run.recovery_trace());
        drop(recovery);
        outcome.map(|_| run.into_results())
    }

    /// The device-loss arm of the recovery protocol: invalidate, re-lower,
    /// re-run on the fallback. Without a fallback the typed error
    /// propagates.
    fn fail_over(&self, plan: &Plan, catalog: &Catalog) -> Result<Vec<QueryValue>, PlanError> {
        self.backend.on_device_lost();
        let Some(fallback) = self.fallback.as_deref() else {
            return Err(PlanError::DeviceLost);
        };
        {
            let mut recovery = self.recovery.lock();
            recovery.0.failovers += 1;
            recovery.1.push(RecoveryEvent::Failover { to: fallback.name().to_string() });
        }
        let relowered = plan.source().and_then(|query| query.lower(catalog).ok());
        fallback.run(relowered.as_ref().unwrap_or(plan), catalog)
    }

    /// EXPLAIN ANALYZE: executes the plan with per-node profiling and
    /// returns the results together with the [`PlanProfile`] — per node,
    /// wall time, output rows, attributed kernel/transfer/flush counts and
    /// restart/retry/spill attribution, with
    /// `total_host_ns == Σ node.host_ns + overhead_ns` holding exactly
    /// (see [`PlanProfile`]). Profiling syncs after every node (observer
    /// effect on flush counts; see [`PlanRun::enable_profiling`]) and
    /// profiles **this session's own backend**: device loss surfaces as
    /// the typed error instead of failing over, since a fallback run's
    /// profile would describe a different device.
    pub fn explain_analyze(
        &self,
        plan: &Plan,
        catalog: &Catalog,
    ) -> Result<(Vec<QueryValue>, PlanProfile), PlanError> {
        let mut run = PlanRun::new(plan, &self.backend, catalog);
        run.enable_profiling();
        let outcome = run.run_to_completion();
        let mut recovery = self.recovery.lock();
        recovery.0.absorb(&run.recovery_stats());
        recovery.1.extend_from_slice(run.recovery_trace());
        drop(recovery);
        outcome?;
        let profile = run.take_profile().expect("profiling was enabled");
        Ok((run.into_results(), profile))
    }

    /// One unified metrics snapshot: the backend's counters (queue totals,
    /// memory/cache/pool/spill/fault stats for Ocelot) plus this session's
    /// aggregated recovery counters under `session.recovery.*`. Every
    /// number remains available through its original typed accessor; the
    /// registry is a projection, not a replacement.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut registry = MetricsRegistry::new();
        self.backend.register_metrics(&mut registry);
        self.recovery_stats().register_metrics("session.recovery", &mut registry);
        registry
    }

    /// Attaches a trace sink to every emitter the session's backend owns
    /// (queue, device, Memory Manager, column cache for Ocelot; no-op for
    /// the host backends).
    pub fn attach_tracer(&self, sink: &Arc<TraceSink>) {
        self.backend.attach_tracer(sink);
    }

    /// Detaches the tracer attached via [`Session::attach_tracer`].
    pub fn detach_tracer(&self) {
        self.backend.detach_tracer();
    }

    /// Compiles a MAL program and executes it to completion.
    pub fn run_mal(&self, mal: &MalPlan, catalog: &Catalog) -> Result<Vec<QueryValue>, PlanError> {
        let plan = crate::mal::compile(mal)?;
        self.run(&plan, catalog)
    }

    /// Executes a parameterized query through a compiled-plan cache: the
    /// shape compiles once, later calls only bind `params` and run (see
    /// `crate::serve::PlanCache`). Any root `Limit` applies at the host
    /// boundary, exactly like [`crate::query::Query::run`].
    pub fn run_cached(
        &self,
        cache: &crate::serve::PlanCache,
        query: &crate::query::Query,
        params: &[crate::query::ParamValue],
        catalog: &Catalog,
    ) -> Result<Vec<QueryValue>, crate::query::QueryBuildError> {
        cache.execute(self, query, params, catalog)
    }
}

impl Session<OcelotBackend> {
    /// An Ocelot session on a shared device: own queue and Memory Manager,
    /// shared buffer pool and shared column cache (see module docs).
    pub fn ocelot(shared: &SharedDevice) -> Session<OcelotBackend> {
        Session::new(OcelotBackend::on_shared(shared))
    }

    /// The device-wide column cache this session binds base columns
    /// through, when it was created from a [`SharedDevice`] (stand-alone
    /// contexts bind through their private Memory Manager instead). The
    /// handle exposes the cache's hit/miss/eviction counters and budget.
    pub fn column_cache(&self) -> Option<&std::sync::Arc<ocelot_core::ColumnCache>> {
        self.backend.context().column_cache()
    }
}

impl Session<MonetSeqBackend> {
    /// A sequential-MonetDB (MS) session.
    pub fn monet_seq() -> Session<MonetSeqBackend> {
        Session::new(MonetSeqBackend::new())
    }
}

impl Session<MonetParBackend> {
    /// A parallel-MonetDB (MP) session.
    pub fn monet_par() -> Session<MonetParBackend> {
        Session::new(MonetParBackend::new())
    }
}

impl<B: Backend> std::fmt::Debug for Session<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("backend", &self.backend.name()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mal::{example_plan, rewrite_for_ocelot};
    use ocelot_storage::{Bat, Table};

    fn catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let table = Table::new("t")
            .with_column("a", Bat::from_i32("a", (0..1_000).map(|i| i % 50).collect()).into_ref())
            .with_column(
                "b",
                Bat::from_f32("b", (0..1_000).map(|i| i as f32 * 0.1).collect()).into_ref(),
            );
        catalog.add_table(table);
        catalog
    }

    #[test]
    fn sessions_run_the_same_plan_on_every_configuration() {
        let catalog = catalog();
        let mal = example_plan("t", "a", "b", 10, 20);
        let reference = Session::monet_seq().run_mal(&mal, &catalog).unwrap();

        let shared = SharedDevice::cpu();
        let rewritten = rewrite_for_ocelot(&mal);
        for session in [Session::ocelot(&shared), Session::ocelot(&SharedDevice::gpu())] {
            let result = session.run_mal(&rewritten, &catalog).unwrap();
            match (&reference[0], &result[0]) {
                (QueryValue::Scalar(a), QueryValue::Scalar(b)) => {
                    assert!((a - b).abs() / a.abs().max(1.0) < 1e-3, "{a} vs {b}");
                }
                other => panic!("unexpected result shapes: {other:?}"),
            }
        }
        assert!(Session::monet_par().name().contains("MP"));
    }

    #[test]
    fn device_loss_fails_over_to_the_fallback_session() {
        use ocelot_kernel::{FaultPlan, FaultSpec};
        let catalog = catalog();
        let mal = rewrite_for_ocelot(&example_plan("t", "a", "b", 10, 20));
        let reference = Session::ocelot(&SharedDevice::cpu()).run_mal(&mal, &catalog).unwrap();

        let lost = SharedDevice::gpu();
        let session = Session::ocelot(&lost).with_fallback(Session::ocelot(&SharedDevice::cpu()));
        lost.device()
            .install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 2 }]));
        let result = session.run_mal(&mal, &catalog).unwrap();
        assert_eq!(result, reference, "failover must deliver reference-equal results");

        let stats = session.recovery_stats();
        assert_eq!(stats.failovers, 1, "one device loss, one failover");
        assert!(session
            .recovery_trace()
            .iter()
            .any(|event| matches!(event, RecoveryEvent::Failover { .. })));
    }

    #[test]
    fn device_loss_without_a_fallback_is_a_typed_error() {
        use ocelot_kernel::{FaultPlan, FaultSpec};
        let catalog = catalog();
        let mal = rewrite_for_ocelot(&example_plan("t", "a", "b", 10, 20));
        let lost = SharedDevice::gpu();
        let session = Session::ocelot(&lost);
        lost.device()
            .install_fault_plan(FaultPlan::scripted(vec![FaultSpec::DeviceLost { at_op: 2 }]));
        let err = session.run_mal(&mal, &catalog).unwrap_err();
        assert_eq!(err, PlanError::DeviceLost);
        assert_eq!(session.recovery_stats().failovers, 0);
    }

    #[test]
    fn ocelot_sessions_on_one_device_share_the_pool() {
        let catalog = catalog();
        let shared = SharedDevice::cpu();
        let mal = rewrite_for_ocelot(&example_plan("t", "a", "b", 5, 45));
        let a = Session::ocelot(&shared);
        let b = Session::ocelot(&shared);
        // Each session flushes its own queue exactly once (the sync node).
        for session in [&a, &b] {
            let before = session.backend().context().queue().flush_count();
            session.run_mal(&mal, &catalog).unwrap();
            assert_eq!(session.backend().context().queue().flush_count(), before + 1);
        }
        // Queues are independent; the pool is not.
        assert!(std::sync::Arc::ptr_eq(
            a.backend().context().memory().pool(),
            b.backend().context().memory().pool(),
        ));
    }
}
