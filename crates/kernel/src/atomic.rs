//! Floating-point atomics emulated through compare-and-swap on integers.
//!
//! OpenCL 1.x does not provide atomic operations on floating point data, so
//! the paper emulates them "through atomic compare-and-swap operations on
//! integer values" (§4.1.7, footnote 7). The grouped-aggregation kernels in
//! `ocelot-core` use these helpers for SUM/MIN/MAX accumulators on `f32`
//! data, and the plain integer helpers for `i32` data.

use std::sync::atomic::{AtomicU32, Ordering};

/// Atomically adds `value` to the `f32` stored (as bits) in `cell`.
///
/// Implemented as a CAS loop: load, add, try to swap, retry on contention.
pub fn atomic_add_f32(cell: &AtomicU32, value: f32) -> f32 {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let old = f32::from_bits(current);
        let new = (old + value).to_bits();
        match cell.compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return old,
            Err(actual) => current = actual,
        }
    }
}

/// Atomically stores the minimum of `value` and the `f32` stored in `cell`.
pub fn atomic_min_f32(cell: &AtomicU32, value: f32) -> f32 {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let old = f32::from_bits(current);
        if old <= value {
            return old;
        }
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return old,
            Err(actual) => current = actual,
        }
    }
}

/// Atomically stores the maximum of `value` and the `f32` stored in `cell`.
pub fn atomic_max_f32(cell: &AtomicU32, value: f32) -> f32 {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let old = f32::from_bits(current);
        if old >= value {
            return old;
        }
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => return old,
            Err(actual) => current = actual,
        }
    }
}

/// Atomically adds `value` to the `i32` stored (as bits) in `cell` and
/// returns the previous value.
pub fn atomic_add_i32(cell: &AtomicU32, value: i32) -> i32 {
    cell.fetch_add(value as u32, Ordering::AcqRel) as i32
}

/// Atomically stores the minimum of `value` and the `i32` stored in `cell`.
pub fn atomic_min_i32(cell: &AtomicU32, value: i32) -> i32 {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let old = current as i32;
        if old <= value {
            return old;
        }
        match cell.compare_exchange_weak(current, value as u32, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => return old,
            Err(actual) => current = actual,
        }
    }
}

/// Atomically stores the maximum of `value` and the `i32` stored in `cell`.
pub fn atomic_max_i32(cell: &AtomicU32, value: i32) -> i32 {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let old = current as i32;
        if old >= value {
            return old;
        }
        match cell.compare_exchange_weak(current, value as u32, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => return old,
            Err(actual) => current = actual,
        }
    }
}

/// Atomic compare-and-swap on a raw 32-bit word. Returns the previous value.
///
/// This is the primitive the parallel hash-table insertion (paper §4.1.4)
/// uses during its pessimistic round.
pub fn atomic_cas_u32(cell: &AtomicU32, expected: u32, new: u32) -> u32 {
    match cell.compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire) {
        Ok(prev) => prev,
        Err(prev) => prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_f32_accumulates() {
        let cell = AtomicU32::new(0f32.to_bits());
        atomic_add_f32(&cell, 1.5);
        atomic_add_f32(&cell, 2.25);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 3.75);
    }

    #[test]
    fn min_max_f32() {
        let cell = AtomicU32::new(10f32.to_bits());
        atomic_min_f32(&cell, 3.0);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 3.0);
        atomic_min_f32(&cell, 5.0);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 3.0);
        atomic_max_f32(&cell, 42.0);
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 42.0);
    }

    #[test]
    fn min_max_i32_handles_negatives() {
        let cell = AtomicU32::new((-5i32) as u32);
        atomic_min_i32(&cell, -10);
        assert_eq!(cell.load(Ordering::Relaxed) as i32, -10);
        atomic_max_i32(&cell, 7);
        assert_eq!(cell.load(Ordering::Relaxed) as i32, 7);
        atomic_max_i32(&cell, -100);
        assert_eq!(cell.load(Ordering::Relaxed) as i32, 7);
    }

    #[test]
    fn cas_returns_previous() {
        let cell = AtomicU32::new(1);
        assert_eq!(atomic_cas_u32(&cell, 1, 2), 1);
        assert_eq!(cell.load(Ordering::Relaxed), 2);
        // Failed CAS leaves the value untouched and reports it.
        assert_eq!(atomic_cas_u32(&cell, 1, 3), 2);
        assert_eq!(cell.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_float_add_is_exact_for_representable_sums() {
        let cell = Arc::new(AtomicU32::new(0f32.to_bits()));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        atomic_add_f32(&cell, 1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(f32::from_bits(cell.load(Ordering::Relaxed)), 8000.0);
    }

    #[test]
    fn concurrent_int_add() {
        let cell = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        atomic_add_i32(&cell, 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(cell.load(Ordering::Relaxed), 40_000);
    }
}
