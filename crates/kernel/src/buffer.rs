//! Device buffers — the `cl_mem` analogue.
//!
//! A [`Buffer`] is a flat array of 32-bit words. The paper restricts Ocelot
//! to four-byte integer and floating point data (§3.1), so a single word
//! type with typed accessors (`i32`, `f32`, `u32`/OID) covers everything the
//! operators need.
//!
//! # The two-tier access contract
//!
//! Storage is a flat array of [`AtomicU32`] cells, and access comes in two
//! tiers that mirror how real OpenCL kernels address global memory:
//!
//! * **Tier 1 — atomic cells** ([`Buffer::cell`], [`Buffer::cells`],
//!   [`Buffer::chunk_cells`], and the per-element `get_*`/`set_*`
//!   accessors). Always legal, from any number of work-items concurrently.
//!   This tier is *mandatory* whenever two work-items may touch the same
//!   word within one kernel phase: the hash-table build (CAS inserts),
//!   grouped aggregation (fetch-add / CAS accumulators) and any other
//!   scattered write whose targets are not provably disjoint.
//!
//! * **Tier 2 — bulk slice views** ([`Buffer::as_words`], [`Buffer::chunk`],
//!   the unsafe [`Buffer::words_mut`] / [`Buffer::chunk_mut`], and the
//!   memcpy-backed bulk operations `fill_u32` / `copy_from_*` / `to_vec_*` /
//!   `prefix_*`). These exploit `AtomicU32`'s guaranteed layout
//!   compatibility with `u32` to hand out plain slices, which removes the
//!   per-element atomic-cell and bounds-check overhead from streaming inner
//!   loops and lets the compiler vectorise them. They are legal **only**
//!   under the runtime's phase invariant: within one kernel phase,
//!   work-items access disjoint index ranges, and phases that write a range
//!   are separated from phases that read it by a barrier (work-items of a
//!   group are serialised) or by event ordering on the [`crate::Queue`].
//!   Concretely: a *read* view (`as_words`, `chunk`) must not overlap any
//!   concurrent writer; a *mut* view (`words_mut`, `chunk_mut`) must not
//!   overlap any other concurrent access at all. Taking a view in a phase
//!   that honours the invariant is sound; violating the invariant is a data
//!   race (undefined behaviour), which is exactly the rule OpenCL itself
//!   imposes on non-atomic global-memory access.
//!
//! Both tiers address the *same* cells coherently: a relaxed atomic store is
//! visible to a later slice read of the same word (and vice versa) once the
//! phases are ordered, so CAS-built structures can be streamed out through
//! tier 2 afterwards.
//!
//! Buffers are charged against the owning device's [`MemAccountant`] and
//! release their bytes when dropped, which is what allows the Memory Manager
//! in `ocelot-core` to free device memory by evicting cache entries.

use crate::device::MemAccountant;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

struct BufferInner {
    id: u64,
    label: String,
    data: Box<[AtomicU32]>,
    accountant: Option<Arc<MemAccountant>>,
}

impl Drop for BufferInner {
    fn drop(&mut self) {
        if let Some(acc) = &self.accountant {
            acc.release(self.data.len() * 4);
        }
    }
}

/// A shared handle to a device buffer of 32-bit words.
///
/// Cloning the handle is cheap; the underlying storage is dropped (and the
/// device memory released) when the last handle goes away.
#[derive(Clone)]
pub struct Buffer {
    inner: Arc<BufferInner>,
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("id", &self.inner.id)
            .field("label", &self.inner.label)
            .field("len", &self.inner.data.len())
            .finish()
    }
}

impl Buffer {
    pub(crate) fn new(
        id: u64,
        words: usize,
        label: &str,
        accountant: Option<Arc<MemAccountant>>,
    ) -> Buffer {
        // Allocate through `vec![0u32; _]` so large buffers come from the
        // allocator's zeroed pages (calloc) instead of a store loop over
        // every cell — result-buffer allocation is on the critical path of
        // every operator.
        let zeroed: Box<[u32]> = vec![0u32; words].into_boxed_slice();
        // SAFETY: `AtomicU32` has the same in-memory representation as
        // `u32`, so transmuting the (uniquely owned) allocation is sound.
        let data: Box<[AtomicU32]> =
            unsafe { Box::from_raw(Box::into_raw(zeroed) as *mut [AtomicU32]) };
        Buffer { inner: Arc::new(BufferInner { id, label: label.to_string(), data, accountant }) }
    }

    /// Creates a buffer that is not charged against any device (useful for
    /// tests and host-side scratch space).
    pub fn host_scratch(words: usize, label: &str) -> Buffer {
        Buffer::new(0, words, label, None)
    }

    /// Unique id of this buffer on its device.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Human-readable label given at allocation time.
    pub fn label(&self) -> &str {
        &self.inner.label
    }

    /// Number of 32-bit words in the buffer.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    /// Whether the buffer holds zero words.
    pub fn is_empty(&self) -> bool {
        self.inner.data.is_empty()
    }

    /// Size of the buffer in bytes.
    pub fn bytes(&self) -> usize {
        self.len() * 4
    }

    /// Number of live handles to this buffer (used by the Memory Manager's
    /// reference-counting eviction guard, paper §3.3).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }

    // ---- tier 1: atomic cells ----

    /// Direct access to the atomic cell at `idx` (for CAS/fetch-add kernels).
    #[inline]
    pub fn cell(&self, idx: usize) -> &AtomicU32 {
        &self.inner.data[idx]
    }

    /// The whole buffer as a slice of atomic cells. Use this in kernels that
    /// scatter: indexing the slice costs one bounds check but no handle
    /// dereference per element, and relaxed stores through it are always
    /// sound.
    #[inline]
    pub fn cells(&self) -> &[AtomicU32] {
        &self.inner.data
    }

    /// The atomic cells of `start..end` (for scattered access restricted to
    /// a known sub-range).
    #[inline]
    pub fn chunk_cells(&self, start: usize, end: usize) -> &[AtomicU32] {
        &self.inner.data[start..end]
    }

    /// Raw word load.
    #[inline]
    pub fn get_u32(&self, idx: usize) -> u32 {
        self.inner.data[idx].load(Ordering::Relaxed)
    }

    /// Raw word store.
    #[inline]
    pub fn set_u32(&self, idx: usize, value: u32) {
        self.inner.data[idx].store(value, Ordering::Relaxed);
    }

    /// Signed-integer load.
    #[inline]
    pub fn get_i32(&self, idx: usize) -> i32 {
        self.get_u32(idx) as i32
    }

    /// Signed-integer store.
    #[inline]
    pub fn set_i32(&self, idx: usize, value: i32) {
        self.set_u32(idx, value as u32);
    }

    /// Floating-point load (bit reinterpretation of the stored word).
    #[inline]
    pub fn get_f32(&self, idx: usize) -> f32 {
        f32::from_bits(self.get_u32(idx))
    }

    /// Floating-point store.
    #[inline]
    pub fn set_f32(&self, idx: usize, value: f32) {
        self.set_u32(idx, value.to_bits());
    }

    // ---- tier 2: bulk slice views ----

    /// The whole buffer as a plain word slice.
    ///
    /// Legal only in phases where no work-item concurrently *writes* any
    /// part of the buffer (see the module-level two-tier contract). This is
    /// the fast path for streaming reads: no per-element atomic loads, no
    /// per-element bounds checks, and the compiler may vectorise loops over
    /// the returned slice.
    #[inline]
    pub fn as_words(&self) -> &[u32] {
        let data = &self.inner.data;
        // SAFETY: `AtomicU32` is guaranteed to have the same in-memory
        // representation (size and alignment) as `u32`. The returned shared
        // slice only makes the caller promise what the module contract
        // already states: no concurrent writers to the viewed words.
        unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u32>(), data.len()) }
    }

    /// The words of `start..end` as a plain slice — the per-work-item view
    /// for streaming reads. Same contract as [`Buffer::as_words`], but scoped
    /// to the chunk a work-item owns.
    #[inline]
    pub fn chunk(&self, start: usize, end: usize) -> &[u32] {
        &self.as_words()[start..end]
    }

    /// The whole buffer as a mutable word slice.
    ///
    /// # Safety
    /// The caller must guarantee that for the lifetime of the returned
    /// slice *no other access* to this buffer happens — no other slice
    /// views, no atomic cells, no clone of the handle used elsewhere. Within
    /// a kernel this holds exactly when the phase invariant assigns the
    /// whole buffer to the calling work-item; host-side it holds during
    /// single-owner setup (upload, fill) before the buffer is shared.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn words_mut(&self) -> &mut [u32] {
        let data = &self.inner.data;
        std::slice::from_raw_parts_mut(data.as_ptr() as *mut u32, data.len())
    }

    /// The words of `start..end` as a mutable slice — the per-work-item view
    /// for streaming writes.
    ///
    /// # Safety
    /// The caller must guarantee that for the lifetime of the returned slice
    /// no other access touches `start..end`: this is the runtime's phase
    /// invariant (work-items own disjoint ranges within a phase). Distinct
    /// work-items taking `chunk_mut` of *disjoint* ranges concurrently is
    /// sound; overlap of any kind is a data race.
    #[allow(clippy::mut_from_ref)]
    #[inline]
    pub unsafe fn chunk_mut(&self, start: usize, end: usize) -> &mut [u32] {
        let cells = &self.inner.data[start..end];
        std::slice::from_raw_parts_mut(cells.as_ptr() as *mut u32, cells.len())
    }

    // ---- memcpy-backed bulk operations (tier 2, single-owner phases) ----

    /// Fills every word of the buffer with `value`.
    ///
    /// Bulk write: legal only while no other thread accesses the buffer
    /// (setup/reset phases — the usual callers are allocation and upload).
    pub fn fill_u32(&self, value: u32) {
        // SAFETY: single-owner bulk phase per the documented contract.
        unsafe { self.words_mut() }.fill(value);
    }

    /// Copies `values` into the first `values.len()` words of the buffer
    /// (single memcpy instead of per-element atomic stores).
    ///
    /// # Panics
    /// Panics if the buffer is shorter than `values`.
    pub fn copy_from_u32(&self, values: &[u32]) {
        assert!(values.len() <= self.len(), "copy_from_u32: buffer too small");
        // SAFETY: single-owner bulk phase per the documented contract.
        unsafe { self.chunk_mut(0, values.len()) }.copy_from_slice(values);
    }

    /// Copies `values` into the buffer.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than `values`.
    pub fn copy_from_i32(&self, values: &[i32]) {
        assert!(values.len() <= self.len(), "copy_from_i32: buffer too small");
        let out = unsafe { self.chunk_mut(0, values.len()) };
        // i32 and u32 words are layout-identical; this compiles to a memcpy.
        for (o, v) in out.iter_mut().zip(values) {
            *o = *v as u32;
        }
    }

    /// Copies `values` into the buffer as floats.
    ///
    /// # Panics
    /// Panics if the buffer is shorter than `values`.
    pub fn copy_from_f32(&self, values: &[f32]) {
        assert!(values.len() <= self.len(), "copy_from_f32: buffer too small");
        let out = unsafe { self.chunk_mut(0, values.len()) };
        for (o, v) in out.iter_mut().zip(values) {
            *o = v.to_bits();
        }
    }

    /// Reads the whole buffer into a `Vec<i32>`.
    pub fn to_vec_i32(&self) -> Vec<i32> {
        self.as_words().iter().map(|&w| w as i32).collect()
    }

    /// Reads the whole buffer into a `Vec<f32>`.
    pub fn to_vec_f32(&self) -> Vec<f32> {
        self.as_words().iter().map(|&w| f32::from_bits(w)).collect()
    }

    /// Reads the whole buffer into a `Vec<u32>`.
    pub fn to_vec_u32(&self) -> Vec<u32> {
        self.as_words().to_vec()
    }

    /// Reads a prefix of the buffer into a `Vec<i32>`.
    pub fn prefix_i32(&self, count: usize) -> Vec<i32> {
        self.chunk(0, count.min(self.len())).iter().map(|&w| w as i32).collect()
    }

    /// Reads a prefix of the buffer into a `Vec<f32>`.
    pub fn prefix_f32(&self, count: usize) -> Vec<f32> {
        self.chunk(0, count.min(self.len())).iter().map(|&w| f32::from_bits(w)).collect()
    }

    /// Reads a prefix of the buffer into a `Vec<u32>`.
    pub fn prefix_u32(&self, count: usize) -> Vec<u32> {
        self.chunk(0, count.min(self.len())).to_vec()
    }

    /// Snapshots the buffer contents into a host-side copy that is *not*
    /// charged against any device. The Memory Manager uses this to offload
    /// intermediate results to the host when device memory runs out
    /// (paper §3.3).
    pub fn offload_to_host(&self) -> HostCopy {
        HostCopy { label: self.inner.label.clone(), words: self.to_vec_u32() }
    }
}

/// A host-resident snapshot of a buffer's contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostCopy {
    label: String,
    words: Vec<u32>,
}

impl HostCopy {
    /// Creates a host copy from raw words.
    pub fn from_words(label: &str, words: Vec<u32>) -> HostCopy {
        HostCopy { label: label.to_string(), words }
    }

    /// The label the originating buffer carried.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Number of 32-bit words held.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the copy holds zero words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// The raw words.
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Restores the snapshot into an already-allocated device buffer.
    ///
    /// # Panics
    /// Panics if the target buffer is smaller than the snapshot.
    pub fn restore_into(&self, target: &Buffer) {
        assert!(target.len() >= self.words.len(), "restore_into: target buffer too small");
        target.copy_from_u32(&self.words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn typed_accessors_round_trip() {
        let buf = Buffer::host_scratch(4, "t");
        buf.set_i32(0, -42);
        buf.set_f32(1, 3.5);
        buf.set_u32(2, u32::MAX);
        assert_eq!(buf.get_i32(0), -42);
        assert_eq!(buf.get_f32(1), 3.5);
        assert_eq!(buf.get_u32(2), u32::MAX);
        assert_eq!(buf.get_u32(3), 0, "buffers start zeroed");
    }

    #[test]
    fn fill_and_vectors() {
        let buf = Buffer::host_scratch(3, "t");
        buf.fill_u32(7);
        assert_eq!(buf.to_vec_u32(), vec![7, 7, 7]);
        buf.copy_from_i32(&[1, -2, 3]);
        assert_eq!(buf.to_vec_i32(), vec![1, -2, 3]);
        assert_eq!(buf.prefix_i32(2), vec![1, -2]);
        assert_eq!(buf.prefix_i32(100), vec![1, -2, 3], "prefix clamps to len");
    }

    #[test]
    fn bytes_and_len() {
        let buf = Buffer::host_scratch(10, "t");
        assert_eq!(buf.len(), 10);
        assert_eq!(buf.bytes(), 40);
        assert!(!buf.is_empty());
        assert!(Buffer::host_scratch(0, "e").is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn copy_too_large_panics() {
        let buf = Buffer::host_scratch(1, "t");
        buf.copy_from_i32(&[1, 2]);
    }

    #[test]
    fn offload_and_restore() {
        let buf = Buffer::host_scratch(4, "data");
        buf.copy_from_i32(&[10, 20, 30, 40]);
        let copy = buf.offload_to_host();
        assert_eq!(copy.len(), 4);
        assert_eq!(copy.bytes(), 16);
        assert_eq!(copy.label(), "data");

        let restored = Buffer::host_scratch(4, "data");
        copy.restore_into(&restored);
        assert_eq!(restored.to_vec_i32(), vec![10, 20, 30, 40]);
    }

    #[test]
    fn handle_count_tracks_clones() {
        let buf = Buffer::host_scratch(1, "t");
        assert_eq!(buf.handle_count(), 1);
        let clone = buf.clone();
        assert_eq!(buf.handle_count(), 2);
        drop(clone);
        assert_eq!(buf.handle_count(), 1);
    }

    // ---- two-tier access API ----

    #[test]
    fn bulk_views_round_trip() {
        let buf = Buffer::host_scratch(100, "t");
        let values: Vec<u32> = (0..100).map(|i| i * 3 + 1).collect();
        buf.copy_from_u32(&values);
        assert_eq!(buf.as_words(), &values[..]);
        assert_eq!(buf.chunk(10, 20), &values[10..20]);
        assert_eq!(buf.prefix_u32(5), values[..5].to_vec());
        assert_eq!(buf.to_vec_u32(), values);
    }

    #[test]
    fn chunk_mut_writes_are_visible_to_every_tier() {
        let buf = Buffer::host_scratch(8, "t");
        // SAFETY: exclusive single-threaded access in this test.
        let slice = unsafe { buf.chunk_mut(2, 6) };
        slice.copy_from_slice(&[9, 8, 7, 6]);
        // Atomic tier observes the slice writes.
        assert_eq!(buf.get_u32(2), 9);
        assert_eq!(buf.cell(5).load(Ordering::Relaxed), 6);
        // And the read view observes both.
        assert_eq!(buf.as_words(), &[0, 0, 9, 8, 7, 6, 0, 0]);
    }

    #[test]
    fn atomic_writes_are_visible_to_slice_views() {
        let buf = Buffer::host_scratch(4, "t");
        buf.cell(1).store(11, Ordering::Relaxed);
        buf.cell(3).fetch_add(5, Ordering::Relaxed);
        assert_eq!(buf.as_words(), &[0, 11, 0, 5]);
        assert_eq!(buf.chunk(1, 4), &[11, 0, 5]);
    }

    #[test]
    fn chunk_cells_expose_the_same_storage() {
        let buf = Buffer::host_scratch(6, "t");
        let cells = buf.chunk_cells(2, 5);
        assert_eq!(cells.len(), 3);
        cells[0].store(42, Ordering::Relaxed);
        assert_eq!(buf.get_u32(2), 42);
    }

    #[test]
    #[should_panic(expected = "range end index")]
    fn chunk_bounds_are_checked() {
        let buf = Buffer::host_scratch(4, "t");
        let _ = buf.chunk(0, 5);
    }

    #[test]
    fn concurrent_cas_inserts_still_work_against_viewed_cells() {
        // Hash-table-style CAS inserts from many threads into one buffer:
        // tier 1 must keep its full atomicity guarantees regardless of the
        // existence of tier-2 views taken in other (here: later) phases.
        const SLOTS: usize = 512;
        const THREADS: usize = 8;
        const PER_THREAD: usize = 32;
        let buf = Buffer::host_scratch(SLOTS, "hash");
        buf.fill_u32(u32::MAX); // u32::MAX = empty slot
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let buf = buf.clone();
                scope.spawn(move || {
                    let cells = buf.cells();
                    for k in 0..PER_THREAD {
                        let key = (t * PER_THREAD + k) as u32;
                        // Linear probing with CAS, exactly like the
                        // optimistic hash-table build kernel.
                        let mut slot = (key as usize * 37) % SLOTS;
                        loop {
                            match cells[slot].compare_exchange(
                                u32::MAX,
                                key,
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break,
                                Err(_) => slot = (slot + 1) % SLOTS,
                            }
                        }
                    }
                });
            }
        });
        // Read phase (after the build phase): the slice view must observe
        // every CAS-inserted key exactly once.
        let mut inserted: Vec<u32> =
            buf.as_words().iter().copied().filter(|w| *w != u32::MAX).collect();
        inserted.sort_unstable();
        let expected: Vec<u32> = (0..(THREADS * PER_THREAD) as u32).collect();
        assert_eq!(inserted, expected);
    }

    #[test]
    fn disjoint_chunk_mut_and_atomic_writers_coexist() {
        // One thread streams through a mut slice view of the lower half
        // while another does atomic stores into the upper half — the phase
        // invariant in miniature. Both writes must land.
        const N: usize = 4096;
        let buf = Buffer::host_scratch(N, "t");
        std::thread::scope(|scope| {
            let lower = buf.clone();
            scope.spawn(move || {
                // SAFETY: this thread exclusively owns words 0..N/2.
                let out = unsafe { lower.chunk_mut(0, N / 2) };
                for (i, word) in out.iter_mut().enumerate() {
                    *word = i as u32;
                }
            });
            let upper = buf.clone();
            scope.spawn(move || {
                for i in N / 2..N {
                    upper.set_u32(i, i as u32);
                }
            });
        });
        let words = buf.as_words();
        assert!((0..N).all(|i| words[i] == i as u32));
    }
}
